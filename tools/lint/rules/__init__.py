"""loren-lint rule registry.

Each rule module exposes RULE_ID, SUMMARY, and run(ctx) -> list[Finding].
`ctx` is a RuleContext holding every file's Extraction plus the global
declaration indexes (atomic contracts, mutex declarations) the
cross-file resolution steps need.
"""

from __future__ import annotations

import dataclasses

from . import cacheline_discipline, lock_discipline, mo_audit, sim_coverage

MODULES = (mo_audit, sim_coverage, lock_discipline, cacheline_discipline)
ALL_RULE_IDS = tuple(rid for m in MODULES for rid in m.RULE_IDS)


@dataclasses.dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def render(self, root=None):
        path = self.file
        if root is not None:
            import os
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        return f"{path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class RuleContext:
    extractions: list                 # per-file Extraction, every scanned file
    scopes: dict                      # rule id -> predicate(path) -> bool
    atomic_index: dict = None         # name -> [AtomicDecl]
    mutex_index: dict = None          # name -> [MutexDecl]

    def __post_init__(self):
        self.atomic_index = {}
        self.mutex_index = {}
        for ex in self.extractions:
            for d in ex.atomic_decls:
                self.atomic_index.setdefault(d.name, []).append(d)
            for d in ex.mutex_decls:
                self.mutex_index.setdefault(d.name, []).append(d)

    def in_scope(self, rule_id, path):
        pred = self.scopes.get(rule_id)
        return True if pred is None else pred(path)


def run_all(ctx: RuleContext, only=None):
    findings = []
    for mod in MODULES:
        if only is not None and not (set(mod.RULE_IDS) & set(only)):
            continue
        findings.extend(mod.run(ctx))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings
