"""Rules MO01/MO02 — the memory-order audit.

MO01: every std::atomic variable declaration (member, namespace-scope, or
static local) must carry a `// mo: <orders> — <why>` annotation declaring
which memory orders its operations are allowed to use and why that is
correct. The order list is a comma/slash-separated subset of
{relaxed, acquire, release, acq_rel, seq_cst}.

MO02: every atomic operation that passes memory_order_relaxed must either
(a) resolve its receiver to a declared atomic whose `mo:` contract
includes `relaxed`, or (b) carry a `// mo:relaxed-ok(<reason>)`
annotation on its statement. The telemetry stripes (src/telemetry/) are
exempt from MO02 by scope: their single-writer relaxed protocol is the
subsystem's documented design (docs/observability.md), re-arguing it at
every line would be noise.
"""

from __future__ import annotations

MO01 = "MO01"
MO02 = "MO02"
RULE_IDS = (MO01, MO02)
SUMMARY = "memory-order audit: contracts on atomics, justified relaxed ops"


def run(ctx):
    from . import Finding
    findings = []
    for ex in ctx.extractions:
        if ctx.in_scope(MO01, ex.path):
            for d in ex.atomic_decls:
                ann = d.annotations
                if ann.mo_malformed:
                    findings.append(Finding(
                        MO01, ex.path, d.line,
                        f"atomic '{d.name}' has a malformed mo: annotation "
                        "(expected '// mo: <orders> — <why>' with orders in "
                        "relaxed|acquire|release|acq_rel|seq_cst)"))
                elif ann.mo_orders is None:
                    findings.append(Finding(
                        MO01, ex.path, d.line,
                        f"atomic '{d.name}' lacks a memory-order contract "
                        "annotation ('// mo: <orders> — <why>')"))
        if ctx.in_scope(MO02, ex.path):
            for op in ex.atomic_ops:
                if "memory_order_relaxed" not in op.orders:
                    continue
                if op.annotations.relaxed_ok is not None:
                    continue
                decls = ctx.atomic_index.get(op.receiver or "", [])
                contracts = [d for d in decls if d.annotations.mo_orders]
                if any("relaxed" in d.annotations.mo_orders
                       for d in contracts):
                    continue
                if op.receiver is None:
                    findings.append(Finding(
                        MO02, ex.path, op.line,
                        f"relaxed {op.method} on an unresolvable receiver "
                        "needs '// mo:relaxed-ok(<reason>)'"))
                elif contracts:
                    findings.append(Finding(
                        MO02, ex.path, op.line,
                        f"relaxed {op.method} on '{op.receiver}' violates "
                        "its declared contract "
                        f"({'/'.join(sorted(contracts[0].annotations.mo_orders))}); "
                        "widen the contract or add "
                        "'// mo:relaxed-ok(<reason>)'"))
                else:
                    findings.append(Finding(
                        MO02, ex.path, op.line,
                        f"relaxed {op.method} on '{op.receiver}' has no "
                        "declared contract in the scanned tree; annotate "
                        "the declaration ('// mo: ...') or this use "
                        "('// mo:relaxed-ok(<reason>)')"))
    return findings
