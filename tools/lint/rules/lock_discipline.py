"""Rule LK01 — lock discipline in sim-visible code.

The scenario engine serializes workers and suspends them at sim points.
A worker suspended *inside* a critical section guarded by a plain
std::mutex deadlocks any worker that blocks on the same lock for real,
so sim-visible code must use loren::SimMutex (platform/sim_point.h) for
any mutex whose critical sections can hit a sim point.

The rule bans raw std::mutex (and cousins) in sim-visible sources:
 * a std::mutex declaration needs `// sim:lock-ok(<reason>)` asserting
   its critical sections never yield (cold registries and the like);
 * a guard (lock_guard/unique_lock/scoped_lock/shared_lock) must resolve
   its lock argument to a SimMutex or to an annotated std::mutex
   declaration; unresolvable guards need a site annotation.
SimMutex declarations and guards over them always pass.
"""

from __future__ import annotations

LK01 = "LK01"
RULE_IDS = (LK01,)
SUMMARY = "lock discipline: SimMutex (or justified std::mutex) only"


def run(ctx):
    from . import Finding
    findings = []
    for ex in ctx.extractions:
        if not ctx.in_scope(LK01, ex.path):
            continue
        for d in ex.mutex_decls:
            if d.sim_mutex:
                continue
            if d.annotations.sim_lock_ok is not None:
                continue
            findings.append(Finding(
                LK01, ex.path, d.line,
                f"raw std::mutex '{d.name}' in sim-visible code; use "
                "loren::SimMutex, or annotate '// sim:lock-ok(<reason>)' "
                "if its critical sections can never hit a sim point"))
        for site in ex.lock_sites:
            if site.annotations.sim_lock_ok is not None:
                continue
            name = site.mutex_name
            decls = ctx.mutex_index.get(name or "", [])
            if decls:
                if any(d.sim_mutex for d in decls):
                    continue  # guards over a SimMutex are the rule's goal
                if any(d.annotations.sim_lock_ok is not None for d in decls):
                    continue  # covered by the declaration's justification
                # Unannotated std::mutex declaration: reported there, not
                # at every guard.
                continue
            if site.explicit_std_mutex:
                findings.append(Finding(
                    LK01, ex.path, site.line,
                    "std::mutex named in sim-visible code outside an "
                    "annotated declaration; use loren::SimMutex or "
                    "annotate '// sim:lock-ok(<reason>)'"))
            elif name is not None:
                findings.append(Finding(
                    LK01, ex.path, site.line,
                    f"lock guard over '{name}' does not resolve to a "
                    "SimMutex or an annotated std::mutex declaration; "
                    "annotate the declaration or this site "
                    "('// sim:lock-ok(<reason>)')"))
    return findings
