"""Rule SP01 — sim-point coverage.

Every atomic RMW/CAS in sim-visible sources (src/tas, src/elastic,
src/platform/epoch.h, src/renaming) is a potential linearization point
the deterministic scenario engine (src/sim/scenario/) must be able to
schedule around. The rule requires a LOREN_SIM_POINT within the RMW's
enclosing statement list — anywhere inside the innermost function or
control block containing the call, nested statements included — or an
explicit `// sim:exempt(<reason>)` annotation stating why this RMW is
not linearization-critical (reset paths behind external quiescence,
registration counters, seed-substrate surfaces the engine never
schedules, ...).
"""

from __future__ import annotations

SP01 = "SP01"
RULE_IDS = (SP01,)
SUMMARY = "sim-point coverage: every RMW scheduled or exempted"

_RMW_METHODS = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
}

# Receiver method names that are not std::atomic RMWs despite the shared
# spelling (project wrappers dispatch to an instrumented substrate;
# flagging the wrapper call would double-count the underlying RMW).
_WRAPPER_RECEIVER_HINT = None  # reserved for future use


def run(ctx):
    from . import Finding
    findings = []
    for ex in ctx.extractions:
        if not ctx.in_scope(SP01, ex.path):
            continue
        for op in ex.atomic_ops:
            if op.method not in _RMW_METHODS:
                continue
            if op.has_sim_point_in_scope:
                continue
            if op.annotations.sim_exempt is not None:
                continue
            findings.append(Finding(
                SP01, ex.path, op.line,
                f"atomic {op.method} has no LOREN_SIM_POINT in its "
                "enclosing statement list; add one before the RMW or "
                "annotate '// sim:exempt(<reason>)'"))
    return findings
