"""Rule CL01 — cacheline discipline.

Padding for false sharing must go through the one project constant
(loren::kCacheLine, platform/cacheline.h), never a raw integer literal:
a port to a 128-byte-line machine must be one -DLOREN_CACHE_LINE_SIZE
away, not a grep for 64. The rule flags every `alignas(<integer>)`;
`alignas(kCacheLine)`, `alignas(TasArena::kCacheLine)` etc. pass by
construction (the argument is an identifier, not a literal). A literal
alignment that genuinely is not cache-line padding (an ABI contract, a
SIMD requirement) carries `// cl:raw-ok(<reason>)`.
"""

from __future__ import annotations

CL01 = "CL01"
RULE_IDS = (CL01,)
SUMMARY = "cacheline discipline: alignas via platform/cacheline.h constants"


def run(ctx):
    from . import Finding
    findings = []
    for ex in ctx.extractions:
        if not ctx.in_scope(CL01, ex.path):
            continue
        for site in ex.alignas_sites:
            if site.annotations.cl_raw_ok is not None:
                continue
            findings.append(Finding(
                CL01, ex.path, site.line,
                f"raw alignas({site.literal}); use loren::kCacheLine "
                "(platform/cacheline.h) for false-sharing padding, or "
                "annotate '// cl:raw-ok(<reason>)' for a genuine "
                "fixed-alignment requirement"))
    return findings
