"""Lexical C++ source model for loren-lint.

This is the fallback extraction engine: a deterministic C++ lexer plus a
light structural pass (brace-block classification, statement splitting)
that is sufficient to find the constructs the project rules care about —
atomic variable declarations, atomic member-function call sites, mutex
declarations and guard instantiations, alignas() specifiers — together
with the comment annotations that exempt or contract them.

It is *not* a C++ parser. It errs on the side of flagging: an ambiguous
construct becomes a finding (which a human resolves with an annotation),
never a silent pass. The libclang engine (clang_engine.py) produces the
same Extraction data classes from a real AST when python3-clang is
installed; the rules consume either engine's output unchanged.
"""

from __future__ import annotations

import bisect
import dataclasses
import re
from typing import Optional

# --------------------------------------------------------------------------
# Tokens and lexing
# --------------------------------------------------------------------------

IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"

_PUNCT3 = ("<<=", ">>=", "...", "->*", "<=>")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based
    col: int   # 0-based


@dataclasses.dataclass(frozen=True)
class Comment:
    text: str
    first_line: int
    last_line: int
    trailing: bool  # code appears before the comment on first_line


_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


def lex(text: str):
    """Tokenize C++ source. Returns (tokens, comments, code_lines) where
    code_lines is the set of line numbers that carry at least one token."""
    tokens: list[Token] = []
    comments: list[Comment] = []
    code_lines: set[int] = set()
    i, n = 0, len(text)
    line, line_start = 1, 0

    def col(pos):
        return pos - line_start

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments -----------------------------------------------------
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                start, first = i, line
                while i < n and text[i] != "\n":
                    i += 1
                comments.append(Comment(text[start:i], first, first,
                                        trailing=first in code_lines))
                continue
            if text[i + 1] == "*":
                start, first = i, line
                i += 2
                while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                    if text[i] == "\n":
                        line += 1
                        line_start = i + 1
                    i += 1
                i = min(i + 2, n)
                comments.append(Comment(text[start:i], first, line,
                                        trailing=first in code_lines))
                continue
        # Preprocessor directive: consume the logical line ------------
        if c == "#" and line not in code_lines:
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    line_start = i
                    continue
                if text[i] == "\n":
                    break
                # A // comment ends the directive's interesting part but
                # we still must swallow to end of line.
                i += 1
            continue
        # Raw strings --------------------------------------------------
        if c == 'R' and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j != -1:
                delim = text[i + 2:j]
                end = text.find(")" + delim + '"', j)
                end = n if end == -1 else end + len(delim) + 2
                code_lines.add(line)
                tokens.append(Token(STRING, text[i:end], line, col(i)))
                line += text.count("\n", i, end)
                nl = text.rfind("\n", i, end)
                if nl != -1:
                    line_start = nl + 1
                i = end
                continue
        # Strings / chars ---------------------------------------------
        if c == '"' or c == "'":
            quote, start = c, i
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail at newline
                    break
                i += 1
            i = min(i + 1, n)
            code_lines.add(line)
            tokens.append(Token(STRING if quote == '"' else CHAR,
                                text[start:i], line, col(start)))
            continue
        # Identifiers --------------------------------------------------
        if c in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            code_lines.add(line)
            tokens.append(Token(IDENT, text[start:i], line, col(start)))
            continue
        # Numbers (incl. hex, digit separators, suffixes) -------------
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            start = i
            while i < n and (text[i] in _IDENT_CONT or text[i] in ".'" or
                             (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            code_lines.add(line)
            tokens.append(Token(NUMBER, text[start:i], line, col(start)))
            continue
        # Punctuation --------------------------------------------------
        for group in (_PUNCT3, _PUNCT2):
            tri = text[i:i + len(group[0])]
            if tri in group:
                code_lines.add(line)
                tokens.append(Token(PUNCT, tri, line, col(i)))
                i += len(tri)
                break
        else:
            code_lines.add(line)
            tokens.append(Token(PUNCT, c, line, col(i)))
            i += 1
    return tokens, comments, code_lines


# --------------------------------------------------------------------------
# Block structure
# --------------------------------------------------------------------------

# Block kinds
FILE = "file"
NAMESPACE = "namespace"
CLASS = "class"
FUNCTION = "function"
CONTROL = "control"
ENUM = "enum"
INIT = "init"  # braced initializer / expression braces

_CONTROL_KW = {"if", "for", "while", "switch", "catch"}
_CLASS_KW = {"class", "struct", "union"}


@dataclasses.dataclass
class Block:
    kind: str
    parent: Optional["Block"]
    open_idx: int   # token index of '{' (-1 for file scope)
    close_idx: int  # token index of '}' (len(tokens) for file scope)
    children: list = dataclasses.field(default_factory=list)


def _match_back_paren(tokens, close_idx):
    depth = 0
    for j in range(close_idx, -1, -1):
        t = tokens[j].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return j
    return -1


def build_blocks(tokens):
    """Returns (file_block, block_of) where block_of[i] is the innermost
    Block containing token i."""
    file_block = Block(FILE, None, -1, len(tokens))
    block_of = [file_block] * len(tokens)
    stack = [file_block]
    # statement start per open block: index after last ';' '{' '}' ':' label
    stmt_start = [0]

    for i, tok in enumerate(tokens):
        block_of[i] = stack[-1]
        t = tok.text
        if tok.kind == PUNCT and t == "{":
            kind = _classify_open(tokens, i, stmt_start[-1], stack[-1])
            blk = Block(kind, stack[-1], i, len(tokens))
            stack[-1].children.append(blk)
            block_of[i] = blk
            stack.append(blk)
            stmt_start.append(i + 1)
        elif tok.kind == PUNCT and t == "}":
            if len(stack) > 1:
                stack[-1].close_idx = i
                block_of[i] = stack[-1]
                stack.pop()
                stmt_start.pop()
            stmt_start[-1] = i + 1
        elif tok.kind == PUNCT and t == ";":
            stmt_start[-1] = i + 1
    return file_block, block_of


def _classify_open(tokens, i, stmt_start, parent):
    """Classify the '{' at token index i."""
    # Scan back for the previous significant token.
    j = i - 1
    if j < 0:
        return INIT
    prev = tokens[j]
    # Braced init / expression contexts.
    if prev.kind == PUNCT and prev.text in ("=", ",", "(", "[", "{", "return"):
        return INIT
    if prev.kind == IDENT and prev.text == "return":
        return INIT
    # Statement keywords owning blocks.
    if prev.kind == IDENT and prev.text in ("else", "do", "try"):
        return CONTROL
    # ')' ... '{' or trailing specifiers: function or control.
    k = j
    while k >= 0 and tokens[k].kind == IDENT and tokens[k].text in (
            "const", "noexcept", "override", "final", "mutable"):
        k -= 1
    if k >= 0 and tokens[k].text == ")":
        op = _match_back_paren(tokens, k)
        if op > 0:
            before = tokens[op - 1]
            if before.kind == IDENT and before.text in _CONTROL_KW:
                return CONTROL
            if before.text == "]":  # lambda introducer
                return FUNCTION
        return FUNCTION if parent.kind in (FILE, NAMESPACE, CLASS) else _fn_or_control(tokens, op, stmt_start)
    # '-> type {' trailing return; 'noexcept {': handled above mostly.
    # Scan the statement head for namespace/class/enum keywords.
    head = range(max(stmt_start, 0), i)
    depth = 0
    for k in head:
        t = tokens[k]
        if t.kind == PUNCT:
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                depth -= 1
            continue
        if depth != 0 or t.kind != IDENT:
            continue
        if t.text == "namespace":
            return NAMESPACE
        if t.text == "enum":
            return ENUM
        if t.text in _CLASS_KW:
            return CLASS
    # identifier '{' at class scope is a member braced-init; elsewhere an
    # initializer / aggregate.
    return INIT


def _fn_or_control(tokens, op, stmt_start):
    # A ')' '{' inside a function: lambda or control statement already
    # handled; nested function definitions don't exist — treat as control.
    if op > 0 and tokens[op - 1].kind == IDENT and tokens[op - 1].text in _CONTROL_KW:
        return CONTROL
    return FUNCTION


# --------------------------------------------------------------------------
# Annotations
# --------------------------------------------------------------------------

_VALID_ORDERS = {"relaxed", "acquire", "release", "acq_rel", "seq_cst"}

_MO_RE = re.compile(r"\bmo:\s*([a-z_]+(?:\s*[,/]\s*[a-z_]+)*)\s*(?:—|--|-)\s*(\S.*)")
_MO_RELAXED_OK_RE = re.compile(r"\bmo:relaxed-ok\(([^)]*)\)")
_SIM_EXEMPT_RE = re.compile(r"\bsim:exempt\(([^)]*)\)")
_SIM_LOCK_OK_RE = re.compile(r"\bsim:lock-ok\(([^)]*)\)")
_CL_RAW_OK_RE = re.compile(r"\bcl:raw-ok\(([^)]*)\)")
_EXPECT_RE = re.compile(r"\blint-expect:\s*([A-Z]{2}\d{2})\b")


@dataclasses.dataclass
class Annotations:
    mo_orders: Optional[set] = None    # parsed order set, None = absent
    mo_why: str = ""
    mo_malformed: bool = False
    relaxed_ok: Optional[str] = None   # reason, None = absent
    sim_exempt: Optional[str] = None
    sim_lock_ok: Optional[str] = None
    cl_raw_ok: Optional[str] = None
    expects: list = dataclasses.field(default_factory=list)


def parse_annotations(text: str) -> Annotations:
    ann = Annotations()
    m = _MO_RELAXED_OK_RE.search(text)
    if m:
        ann.relaxed_ok = m.group(1).strip()
    # mo: contract — avoid matching the mo:relaxed-ok form itself.
    stripped = _MO_RELAXED_OK_RE.sub("", text)
    m = _MO_RE.search(stripped)
    if m:
        orders = {o.strip() for o in re.split(r"[,/]", m.group(1)) if o.strip()}
        if orders and orders <= _VALID_ORDERS:
            ann.mo_orders = orders
            ann.mo_why = m.group(2).strip()
        else:
            ann.mo_malformed = True
    elif re.search(r"\bmo:", stripped):
        ann.mo_malformed = True
    m = _SIM_EXEMPT_RE.search(text)
    if m:
        ann.sim_exempt = m.group(1).strip()
    m = _SIM_LOCK_OK_RE.search(text)
    if m:
        ann.sim_lock_ok = m.group(1).strip()
    m = _CL_RAW_OK_RE.search(text)
    if m:
        ann.cl_raw_ok = m.group(1).strip()
    ann.expects = _EXPECT_RE.findall(text)
    return ann


def merge_annotations(target: Annotations, extra: Annotations):
    if target.mo_orders is None and not target.mo_malformed:
        target.mo_orders = extra.mo_orders
        target.mo_why = extra.mo_why
        target.mo_malformed = extra.mo_malformed
    for field in ("relaxed_ok", "sim_exempt", "sim_lock_ok", "cl_raw_ok"):
        if getattr(target, field) is None:
            setattr(target, field, getattr(extra, field))
    target.expects.extend(extra.expects)
    return target


# --------------------------------------------------------------------------
# Extraction data classes (shared with the libclang engine)
# --------------------------------------------------------------------------

@dataclasses.dataclass
class AtomicDecl:
    name: str
    line: int
    annotations: Annotations
    file: str = ""


@dataclasses.dataclass
class AtomicOp:
    """A member-function call on (what is believed to be) an atomic."""
    receiver: Optional[str]  # innermost member/variable name, None if unresolvable
    method: str
    orders: list             # memory_order_* argument names, in order
    line: int
    annotations: Annotations
    has_sim_point_in_scope: bool = False
    file: str = ""


@dataclasses.dataclass
class MutexDecl:
    name: str
    line: int
    sim_mutex: bool
    annotations: Annotations
    file: str = ""


@dataclasses.dataclass
class LockSite:
    """A guard instantiation or other textual std::mutex use."""
    mutex_name: Optional[str]  # resolved lock argument, if any
    explicit_std_mutex: bool   # statement names std::mutex textually
    line: int
    annotations: Annotations
    is_decl: bool = False      # the statement *declares* a mutex
    file: str = ""


@dataclasses.dataclass
class AlignasSite:
    literal: str
    line: int
    annotations: Annotations
    file: str = ""


@dataclasses.dataclass
class Extraction:
    path: str
    atomic_decls: list = dataclasses.field(default_factory=list)
    atomic_ops: list = dataclasses.field(default_factory=list)
    mutex_decls: list = dataclasses.field(default_factory=list)
    lock_sites: list = dataclasses.field(default_factory=list)
    alignas_sites: list = dataclasses.field(default_factory=list)
    expects: list = dataclasses.field(default_factory=list)  # (line, rule_id)


# --------------------------------------------------------------------------
# The extractor
# --------------------------------------------------------------------------

_RMW_METHODS = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
}
_ATOMIC_METHODS = _RMW_METHODS | {"load", "store", "clear", "wait",
                                  "notify_one", "notify_all"}
_GUARD_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
_MUTEX_TYPES = {"mutex", "recursive_mutex", "timed_mutex",
                "recursive_timed_mutex", "shared_mutex"}
_DECL_SKIP_LEAD = {"using", "typedef", "friend", "template", "return"}


class SourceModel:
    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.tokens, self.comments, self.code_lines = lex(text)
        self.file_block, self.block_of = build_blocks(self.tokens)
        self._comment_by_line: dict[int, list[Comment]] = {}
        for c in self.comments:
            self._comment_by_line.setdefault(c.first_line, []).append(c)
        self._comment_lines = set()
        for c in self.comments:
            for ln in range(c.first_line, c.last_line + 1):
                self._comment_lines.add(ln)
        self._line_of_idx = [t.line for t in self.tokens]

    # -- annotations -----------------------------------------------------
    def annotations_for_lines(self, first: int, last: int) -> Annotations:
        """Annotations attached to a statement spanning [first, last]:
        comments on any of those lines, plus the contiguous run of
        comment-only lines immediately above `first`."""
        texts = []
        for ln in range(first, last + 1):
            for c in self._comment_by_line.get(ln, ()):  # same-line comments
                texts.append(c.text)
        above = []
        ln = first - 1
        while ln > 0 and ln in self._comment_lines and ln not in self.code_lines:
            for c in self._comment_by_line.get(ln, ()):
                above.append(c.text)
            # A block comment may start well above ln; hop to its first line.
            covering = [c for c in self.comments
                        if c.first_line <= ln <= c.last_line]
            ln = min([c.first_line for c in covering], default=ln) - 1
        # The comment block is parsed as one text so an annotation's
        # (<reason>) may wrap across '//' lines; above-run lines were
        # gathered bottom-up, so restore top-down order.
        texts.extend(reversed(above))
        return parse_annotations("\n".join(texts))

    # -- statements ------------------------------------------------------
    def _statement_range(self, idx: int):
        """(start, end) token indices of the statement containing token idx,
        staying at the brace level of that token's block. end points at the
        terminating ';' (or block close)."""
        blk = self.block_of[idx]
        lo = blk.open_idx + 1
        hi = blk.close_idx
        start = lo
        depth = 0
        j = idx
        # walk back
        while j > lo:
            t = self.tokens[j - 1]
            if t.kind == PUNCT:
                if t.text == "}":
                    # A closed block at this level: either an earlier
                    # sibling construct's end (statement boundary) or a
                    # braced init earlier in this statement — only the
                    # init case nests, and then we are inside its braces
                    # already (depth > 0 from its closing on the way).
                    if depth == 0:
                        break
                    depth += 1
                elif t.text in (")", "]"):
                    depth += 1
                elif t.text in ("(", "[", "{"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and t.text == ";":
                    break
            j -= 1
        start = j
        # walk forward
        j = idx
        depth = 0
        while j < hi:
            t = self.tokens[j]
            if t.kind == PUNCT:
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    depth -= 1
                elif t.text == ";" and depth <= 0:
                    break
            j += 1
        return start, min(j, hi - 1) if hi > lo else (start)

    def statement_annotations(self, idx: int) -> Annotations:
        s, e = self._statement_range(idx)
        first = self.tokens[s].line
        last = self.tokens[min(e, len(self.tokens) - 1)].line
        return self.annotations_for_lines(first, last)

    # -- main extraction -------------------------------------------------
    def extract(self) -> Extraction:
        ex = Extraction(self.path)
        toks = self.tokens
        n = len(toks)
        for c in self.comments:
            for rule in _EXPECT_RE.findall(c.text):
                ex.expects.append((c.first_line, rule))

        i = 0
        while i < n:
            t = toks[i]
            if t.kind != IDENT:
                i += 1
                continue
            # std::atomic... -------------------------------------------
            if (t.text == "std" and i + 2 < n and toks[i + 1].text == "::"
                    and toks[i + 2].text in ("atomic", "atomic_flag",
                                             "atomic_bool", "atomic_int",
                                             "atomic_uint")):
                self._maybe_atomic_decl(ex, i)
                i += 3
                continue
            # atomic method calls: recv.load(...) ----------------------
            if (t.text in _ATOMIC_METHODS and i + 1 < n
                    and toks[i + 1].text == "("
                    and i > 0 and toks[i - 1].text in (".", "->")):
                self._atomic_op(ex, i)
                i += 1
                continue
            # mutex / guard sites --------------------------------------
            if (t.text in _MUTEX_TYPES and i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                self._mutex_mention(ex, i)
                i += 1
                continue
            if t.text == "SimMutex":
                self._sim_mutex_decl(ex, i)
                i += 1
                continue
            if (t.text in _GUARD_TYPES and i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                self._guard_site(ex, i)
                i += 1
                continue
            # alignas(<integer>) ---------------------------------------
            if (t.text == "alignas" and i + 2 < n and toks[i + 1].text == "("
                    and toks[i + 2].kind == NUMBER):
                ann = self.statement_annotations(i)
                ex.alignas_sites.append(AlignasSite(
                    toks[i + 2].text, t.line, ann, self.path))
                i += 3
                continue
            i += 1
        return ex

    # -- helpers ---------------------------------------------------------
    def _decl_context_ok(self, idx: int):
        """True when token idx sits where a variable declaration can be:
        class/namespace/file scope, or a `static` declaration statement in
        function scope. Also rejects positions inside parentheses."""
        blk = self.block_of[idx]
        s, _ = self._statement_range(idx)
        # inside parens (parameter list / argument list / cast)? The
        # statement walk stops at an unmatched '(' — so either a '(' is
        # still open between s and idx, or s itself sits right after one.
        depth = 0
        for j in range(s, idx):
            t = self.tokens[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
        if depth > 0:
            return False, s
        if s > blk.open_idx + 1 and s > 0 and self.tokens[s - 1].text == "(":
            return False, s
        lead = self.tokens[s]
        if lead.kind == IDENT and lead.text in _DECL_SKIP_LEAD:
            return False, s
        if blk.kind in (CLASS, NAMESPACE, FILE):
            return True, s
        if blk.kind in (FUNCTION, CONTROL):
            # only `static`/`thread_local` declarations count
            for j in range(s, idx):
                tt = self.tokens[j]
                if tt.kind == IDENT and tt.text in ("static", "thread_local"):
                    return True, s
        return False, s

    def _declared_name(self, idx: int):
        """The declared variable name for a declaration statement whose
        type mention starts around token idx: the last identifier at
        paren/angle depth 0 before `;`, `=`, `{`, `[`, or `(`. Returns
        (name, is_function_like)."""
        s, e = self._statement_range(idx)
        angle = 0
        paren = 0
        last_ident = None
        j = idx
        while j <= e:
            t = self.tokens[j]
            if t.kind == PUNCT:
                if t.text == "<":
                    angle += 1
                elif t.text == ">":
                    angle = max(0, angle - 1)
                elif t.text == ">>":
                    angle = max(0, angle - 2)
                elif t.text == "(":
                    if angle == 0 and paren == 0:
                        return last_ident, last_ident is not None
                    paren += 1
                elif t.text == ")":
                    paren = max(0, paren - 1)
                elif angle == 0 and paren == 0 and t.text in (";", "=", "{", "["):
                    return last_ident, False
                elif angle == 0 and paren == 0 and t.text == ",":
                    # multi-declarator: report the first
                    return last_ident, False
            elif t.kind == IDENT and angle == 0 and paren == 0:
                if t.text not in ("const", "constexpr", "inline", "mutable",
                                  "static", "volatile", "thread_local"):
                    last_ident = t.text
            j += 1
        return last_ident, False

    def _maybe_atomic_decl(self, ex: Extraction, idx: int):
        ok, _ = self._decl_context_ok(idx)
        if not ok:
            return
        name, fn_like = self._declared_name(idx)
        if name is None or fn_like:
            return
        if name in ("atomic", "atomic_flag"):
            return
        ann = self.statement_annotations(idx)
        ex.atomic_decls.append(AtomicDecl(name, self.tokens[idx].line, ann,
                                          self.path))

    def _atomic_op(self, ex: Extraction, idx: int):
        toks = self.tokens
        # receiver: identifier chain component right before '.'/'->'
        recv = None
        j = idx - 1  # '.' or '->'
        if j - 1 >= 0:
            prev = toks[j - 1]
            if prev.kind == IDENT:
                recv = prev.text
            elif prev.text == "]":  # arr[i].op — take the array name
                depth = 0
                k = j - 1
                while k >= 0:
                    if toks[k].text == "]":
                        depth += 1
                    elif toks[k].text == "[":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k > 0 and toks[k - 1].kind == IDENT:
                    recv = toks[k - 1].text
        # memory_order arguments within the call parens
        orders = []
        depth = 0
        k = idx + 1
        while k < len(toks):
            t = toks[k]
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif t.kind == IDENT and t.text.startswith("memory_order"):
                if t.text == "memory_order":
                    # std::memory_order::relaxed spelling
                    if k + 2 < len(toks) and toks[k + 1].text == "::":
                        orders.append("memory_order_" + toks[k + 2].text)
                else:
                    orders.append(t.text)
            k += 1
        ann = self.statement_annotations(idx)
        op = AtomicOp(recv, toks[idx].text, orders, toks[idx].line, ann,
                      file=self.path)
        op.has_sim_point_in_scope = self._sim_point_in_scope(idx)
        ex.atomic_ops.append(op)

    def _sim_point_in_scope(self, idx: int):
        """True when a LOREN_SIM_POINT appears anywhere inside the
        innermost enclosing function/control block (nested blocks
        included) of token idx."""
        blk = self.block_of[idx]
        while blk is not None and blk.kind not in (FUNCTION, CONTROL):
            blk = blk.parent
        if blk is None:
            return False
        lo = blk.open_idx + 1 if blk.open_idx >= 0 else 0
        hi = blk.close_idx
        for j in range(lo, hi):
            if self.tokens[j].kind == IDENT and \
                    self.tokens[j].text == "LOREN_SIM_POINT":
                return True
        return False

    def _mutex_mention(self, ex: Extraction, idx: int):
        """A textual std::mutex (or cousin) mention: a declaration, a
        guard template argument, or a parameter."""
        toks = self.tokens
        s, _e = self._statement_range(idx)
        ann = self.statement_annotations(idx)
        # Guard template argument? std::lock_guard<std::mutex> ...
        stmt_has_guard = False
        for j in range(s, idx):
            if toks[j].kind == IDENT and toks[j].text in _GUARD_TYPES:
                stmt_has_guard = True
                break
        if stmt_has_guard:
            return  # the guard-site pass reports it with its argument
        ok, _ = self._decl_context_ok(idx)
        is_decl = False
        name = None
        if ok or self.block_of[idx].kind in (FUNCTION, CONTROL):
            name, fn_like = self._declared_name(idx)
            is_decl = name is not None and not fn_like
        if is_decl:
            ex.mutex_decls.append(MutexDecl(name, toks[idx].line, False, ann,
                                            self.path))
        else:
            ex.lock_sites.append(LockSite(None, True, toks[idx].line, ann,
                                          is_decl=False, file=self.path))

    def _sim_mutex_decl(self, ex: Extraction, idx: int):
        ok, _ = self._decl_context_ok(idx)
        if not ok:
            return
        name, fn_like = self._declared_name(idx)
        if name is None or fn_like or name == "SimMutex":
            return
        ann = self.statement_annotations(idx)
        ex.mutex_decls.append(MutexDecl(name, self.tokens[idx].line, True,
                                        ann, self.path))

    def _guard_site(self, ex: Extraction, idx: int):
        toks = self.tokens
        n = len(toks)
        explicit_std_mutex = False
        # template argument scan
        j = idx + 1
        angle = 0
        while j < n:
            t = toks[j]
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle -= 1
                if angle <= 0:
                    j += 1
                    break
            elif t.text == ">>":
                angle -= 2
                if angle <= 0:
                    j += 1
                    break
            elif angle == 0:
                break
            elif t.kind == IDENT and t.text in _MUTEX_TYPES and \
                    toks[j - 1].text == "::" and toks[j - 2].text == "std":
                explicit_std_mutex = True
            j += 1
        # variable name then '(' arg ')': first identifier inside parens,
        # following member access to its last component so that
        # `lock(shard.mu)` / `lock(sp->mu)` resolve to the declaration of
        # `mu` rather than to the enclosing object.
        mutex_name = None
        while j < n and toks[j].text not in ("(", ";", "{"):
            j += 1
        if j < n and toks[j].text == "(":
            depth = 0
            while j < n:
                t = toks[j]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t.kind == IDENT and not t.text.startswith("std") and \
                        (mutex_name is None
                         or toks[j - 1].text in (".", "->")):
                    mutex_name = t.text
                j += 1
        ann = self.statement_annotations(idx)
        ex.lock_sites.append(LockSite(mutex_name, explicit_std_mutex,
                                      toks[idx].line, ann, file=self.path))


def extract_file(path: str) -> Extraction:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    return SourceModel(path, text).extract()
