"""libclang extraction engine for loren-lint.

When the clang python bindings (python3-clang + libclang.so) are
installed, this engine walks the real AST via clang.cindex and produces
the same Extraction records as the lexical engine (model.py), with exact
semantic answers for the questions the lexical engine approximates:
whether a declaration's type really is std::atomic, which overload a
member call binds to, and which block a statement belongs to.

The engine is OPT-IN (`--engine clang` or `--engine auto`): the default
container toolchain for this project does not ship libclang, so the
lexical engine is the one CI exercises. Annotation attachment reuses the
lexical model — comments are not part of the clang AST at the fidelity
we need, and one annotation grammar implementation beats two.

Every entry point degrades loudly: import/availability problems raise
EngineUnavailable so the driver can fall back (or fail, under
`--engine clang`) with a clear message.
"""

from __future__ import annotations

import os

from model import (AlignasSite, AtomicDecl, AtomicOp, Extraction, LockSite,
                   MutexDecl, SourceModel)


class EngineUnavailable(RuntimeError):
    pass


def _import_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        raise EngineUnavailable(
            "python clang bindings not importable "
            f"({e}); install python3-clang + libclang, or use --engine lex"
        ) from e
    try:
        cindex.Index.create()
    except Exception as e:  # libclang.so missing/mismatched
        raise EngineUnavailable(
            f"libclang not loadable ({e}); use --engine lex") from e
    return cindex


def available() -> bool:
    try:
        _import_cindex()
        return True
    except EngineUnavailable:
        return False


_RMW_METHODS = {
    "exchange", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
}
_ATOMIC_METHODS = _RMW_METHODS | {"load", "store", "clear"}
_MUTEX_TYPES = {"std::mutex", "std::recursive_mutex", "std::timed_mutex",
                "std::recursive_timed_mutex", "std::shared_mutex"}
_GUARD_TYPES = {"std::lock_guard", "std::unique_lock", "std::scoped_lock",
                "std::shared_lock"}
_ORDER_SPELLING = {
    "memory_order_relaxed", "memory_order_consume", "memory_order_acquire",
    "memory_order_release", "memory_order_acq_rel", "memory_order_seq_cst",
}


def _compile_args(compdb_dir, path, cindex):
    try:
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        cmds = db.getCompileCommands(path)
        if cmds:
            args = list(cmds[0].arguments)[1:]  # drop the compiler itself
            # Strip -c/-o and the source file; keep -I/-D/-std.
            out, skip = [], False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a in ("-c", path) or a.endswith(os.path.basename(path)):
                    continue
                if a == "-o":
                    skip = True
                    continue
                out.append(a)
            return out
    except Exception:
        pass
    return ["-std=c++20", "-xc++"]


def extract_file(path: str, compdb_dir=None) -> Extraction:
    cindex = _import_cindex()
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    # The lexical model supplies annotation attachment and the sim-point
    # scope test (macro invocations survive in the token stream, not the
    # -P AST).
    lexmodel = SourceModel(path, text)
    lex_ex = lexmodel.extract()
    sim_point_by_line = {op.line: op.has_sim_point_in_scope
                         for op in lex_ex.atomic_ops}

    index = cindex.Index.create()
    args = _compile_args(compdb_dir, path, cindex) if compdb_dir else [
        "-std=c++20", "-xc++"]
    tu = index.parse(path, args=args,
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)

    ex = Extraction(path)
    ex.expects = lex_ex.expects

    def canonical(t):
        return t.get_canonical().spelling

    def ann_for(line):
        return lexmodel.annotations_for_lines(line, line)

    def visit(cur):
        kind = cur.kind
        if cur.location.file and cur.location.file.name != path:
            return  # stay in the primary file; headers are scanned directly
        K = cindex.CursorKind
        if kind in (K.FIELD_DECL, K.VAR_DECL):
            tspell = canonical(cur.type)
            if "atomic<" in tspell or tspell.endswith("atomic_flag"):
                ex.atomic_decls.append(AtomicDecl(
                    cur.spelling, cur.location.line,
                    ann_for(cur.location.line), path))
            elif tspell in _MUTEX_TYPES:
                ex.mutex_decls.append(MutexDecl(
                    cur.spelling, cur.location.line, False,
                    ann_for(cur.location.line), path))
            elif tspell.endswith("SimMutex"):
                ex.mutex_decls.append(MutexDecl(
                    cur.spelling, cur.location.line, True,
                    ann_for(cur.location.line), path))
            elif any(tspell.startswith(g) for g in _GUARD_TYPES):
                arg_name = None
                explicit = any(m in tspell for m in _MUTEX_TYPES)
                for child in cur.walk_preorder():
                    if child.kind in (K.DECL_REF_EXPR, K.MEMBER_REF_EXPR) \
                            and child.spelling:
                        arg_name = child.spelling
                        break
                ex.lock_sites.append(LockSite(
                    arg_name, explicit, cur.location.line,
                    ann_for(cur.location.line), file=path))
        elif kind == K.CALL_EXPR and cur.spelling in _ATOMIC_METHODS:
            recv = None
            orders = []
            for child in cur.walk_preorder():
                if child.kind == K.MEMBER_REF_EXPR and \
                        child.spelling == cur.spelling:
                    for sub in child.get_children():
                        if sub.kind in (K.MEMBER_REF_EXPR, K.DECL_REF_EXPR):
                            recv = sub.spelling
                if child.kind == K.DECL_REF_EXPR and \
                        child.spelling in _ORDER_SPELLING:
                    orders.append(child.spelling)
            line = cur.location.line
            op = AtomicOp(recv, cur.spelling, orders, line, ann_for(line),
                          file=path)
            op.has_sim_point_in_scope = sim_point_by_line.get(line, False)
            ex.atomic_ops.append(op)
        for child in cur.get_children():
            visit(child)

    visit(tu.cursor)
    # alignas() does not surface as a cursor; the lexical sites are exact.
    ex.alignas_sites = lex_ex.alignas_sites
    return ex
