#!/usr/bin/env python3
"""loren-lint: the project's concurrency static-analysis pass.

Four machine-checked rules over the service stack (docs/static-analysis.md
holds the catalog and the annotation grammar):

  MO01  every std::atomic declaration carries '// mo: <orders> — <why>'
  MO02  memory_order_relaxed ops match their declared contract or carry
        '// mo:relaxed-ok(<reason>)'   (telemetry stripes out of scope)
  SP01  every atomic RMW/CAS in sim-visible sources has a LOREN_SIM_POINT
        in its enclosing statement list or '// sim:exempt(<reason>)'
  LK01  raw std::mutex/lock_guard banned in sim-visible sources: SimMutex,
        or '// sim:lock-ok(<reason>)' on the declaration
  CL01  alignas(<integer literal>) banned: use loren::kCacheLine
        (platform/cacheline.h) or '// cl:raw-ok(<reason>)'

Usage:
  loren_lint.py --root <repo> [--compdb <build>/compile_commands.json]
  loren_lint.py --selftest <fixture-dir>       # golden-corpus self-check
  loren_lint.py --root <repo> --list           # dump scanned files + scopes

Engines: `--engine lex` (default) is the self-contained lexical extractor
(model.py); `--engine clang` uses libclang via python3-clang
(clang_engine.py) and fails loudly when unavailable; `--engine auto`
prefers clang, falls back to lex. The compile database, when given, is
used to cross-check that every compiled source under src/ was scanned
(and feeds compile flags to the clang engine).

Exit codes: 0 clean, 1 findings (or selftest mismatch), 2 usage/internal
error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import model  # noqa: E402
import rules  # noqa: E402

SIM_VISIBLE_DIRS = ("src/tas", "src/elastic", "src/renaming", "src/lease")
SIM_VISIBLE_FILES = ("src/platform/epoch.h",)
TELEMETRY_DIR = "src/telemetry"
CL_EXTRA_DIRS = ("bench", "tests", "examples")
FIXTURE_DIR = "tests/lint_fixtures"
SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc")


def rel(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def is_sim_visible(path, root):
    r = rel(path, root)
    return (r in SIM_VISIBLE_FILES
            or any(r.startswith(d + "/") for d in SIM_VISIBLE_DIRS))


def project_scopes(root):
    """Rule scopes over the real tree (fixture mode overrides these)."""
    def in_src(p):
        return rel(p, root).startswith("src/")

    def mo02_scope(p):
        r = rel(p, root)
        return r.startswith("src/") and not r.startswith(TELEMETRY_DIR + "/")

    def sim_scope(p):
        return is_sim_visible(p, root)

    def cl_scope(p):
        r = rel(p, root)
        if r.startswith(FIXTURE_DIR + "/"):
            return False
        return r.startswith(("src/",) + tuple(d + "/" for d in CL_EXTRA_DIRS))

    return {
        "MO01": in_src,
        "MO02": mo02_scope,
        "SP01": sim_scope,
        "LK01": sim_scope,
        "CL01": cl_scope,
    }


def collect_files(root):
    files = []
    for top in ("src",) + CL_EXTRA_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            if rel(dirpath, root).startswith(FIXTURE_DIR):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def compdb_cross_check(compdb_path, root, scanned):
    """Every compiled source under src/ must be in the scan set; a file
    the build knows about but the linter missed is a silent hole."""
    try:
        with open(compdb_path) as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        return [f"warning: compile_commands.json unreadable ({e}); "
                "tree-walk file set used as-is"]
    notes = []
    scanned_set = {os.path.realpath(p) for p in scanned}
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        src = os.path.realpath(src)
        try:
            r = rel(src, os.path.realpath(root))
        except ValueError:
            continue
        if r.startswith("src/") and src not in scanned_set:
            notes.append(f"error: compiled source not scanned: {r}")
    return notes


def make_extractor(engine_name, compdb_dir):
    if engine_name == "lex":
        return model.extract_file, "lex"
    import clang_engine
    if engine_name == "clang":
        if not clang_engine.available():
            # Surface the precise reason.
            clang_engine._import_cindex()
        return (lambda p: clang_engine.extract_file(p, compdb_dir)), "clang"
    # auto
    if clang_engine.available():
        return (lambda p: clang_engine.extract_file(p, compdb_dir)), "clang"
    return model.extract_file, "lex"


def run_project(args):
    root = os.path.abspath(args.root)
    files = collect_files(root)
    if not files:
        print(f"loren-lint: no sources under {root}", file=sys.stderr)
        return 2
    compdb_dir = os.path.dirname(os.path.abspath(args.compdb)) \
        if args.compdb else None
    extract, engine = make_extractor(args.engine, compdb_dir)

    extractions = [extract(p) for p in files]
    ctx = rules.RuleContext(extractions, project_scopes(root))
    findings = rules.run_all(ctx, only=args.rules)

    notes = []
    if args.compdb:
        notes = compdb_cross_check(args.compdb, root, files)
    hard_notes = [n for n in notes if n.startswith("error:")]
    for n in notes:
        print(f"loren-lint: {n}", file=sys.stderr)

    if args.list:
        for p in files:
            print(rel(p, root))
    for f in findings:
        print(f.render(root))
    n_files = len(files)
    if findings or hard_notes:
        print(f"loren-lint[{engine}]: {len(findings)} finding(s) over "
              f"{n_files} files", file=sys.stderr)
        return 1
    print(f"loren-lint[{engine}]: clean over {n_files} files",
          file=sys.stderr)
    return 0


def run_selftest(args):
    """Golden corpus check: the fixtures must trigger *exactly* the
    finding IDs their '// lint-expect: <ID>' markers declare — same
    file, same line set per rule, nothing extra, nothing missing."""
    fdir = os.path.abspath(args.selftest)
    files = []
    for dirpath, _dirnames, filenames in os.walk(fdir):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                files.append(os.path.join(dirpath, name))
    if not files:
        print(f"loren-lint: no fixtures under {fdir}", file=sys.stderr)
        return 2
    extract, engine = make_extractor(args.engine, None)
    extractions = [extract(p) for p in files]
    # Fixtures are in scope for every rule.
    scopes = {rid: (lambda p: True) for rid in rules.ALL_RULE_IDS}
    ctx = rules.RuleContext(extractions, scopes)
    findings = rules.run_all(ctx)

    expected = set()
    for ex in extractions:
        for line, rule_id in ex.expects:
            expected.add((ex.path, line, rule_id))
    actual = {(f.file, f.line, f.rule) for f in findings}

    ok = True
    for path, line, rule_id in sorted(expected - actual):
        ok = False
        print(f"{rel(path, fdir)}:{line}: expected {rule_id}, not fired")
    for f in sorted(findings, key=lambda f: (f.file, f.line, f.rule)):
        if (f.file, f.line, f.rule) not in expected:
            ok = False
            print(f"{rel(f.file, fdir)}:{f.line}: unexpected {f.rule}: "
                  f"{f.message}")
    n_pos = len(expected)
    if ok:
        print(f"loren-lint[{engine}] selftest: {len(files)} fixtures, "
              f"{n_pos} expected findings, all exact", file=sys.stderr)
        return 0
    print(f"loren-lint[{engine}] selftest: corpus mismatch "
          f"(expected {n_pos}, fired {len(actual)})", file=sys.stderr)
    return 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="loren-lint",
        description="concurrency static-analysis pass for the loren stack")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compdb", default=None,
                    help="path to compile_commands.json (cross-checks "
                         "coverage; feeds the clang engine)")
    ap.add_argument("--engine", choices=("lex", "clang", "auto"),
                    default="lex",
                    help="extraction engine (default lex; clang needs "
                         "python3-clang + libclang)")
    ap.add_argument("--rules", nargs="*", default=None,
                    metavar="ID", help="run only these rule IDs")
    ap.add_argument("--list", action="store_true",
                    help="print the scanned file list")
    ap.add_argument("--selftest", metavar="FIXTURE_DIR", default=None,
                    help="run the golden-corpus self-check instead of "
                         "linting the tree")
    args = ap.parse_args(argv)
    try:
        if args.selftest:
            return run_selftest(args)
        return run_project(args)
    except BrokenPipeError:
        return 2


if __name__ == "__main__":
    sys.exit(main())
