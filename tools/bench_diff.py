#!/usr/bin/env python3
"""Compare a fresh BENCH_throughput.json against the committed baseline.

Promotes the former inline CI snippet into a real tool: per-cell ratios
keyed by (scenario, variant, threads), per-scenario regression
thresholds (noisy scenario families tolerate more), a human-readable
table of every flagged cell, and a summary of cells that exist on only
one side (so silently dropped coverage is visible, not just slowdowns).

Oversubscribed cells (threads flagged oversubscribed in *either* run's
thread_counts_meta) measure timeslicing on that machine, not scaling;
they are compared with the loosest threshold and labelled in the table.

The optional "metrics" block (registry snapshots from the telemetry-on
bench cells, see docs/observability.md) is display-only: when both files
carry it, the probe-length p50/p99 shifts are printed so a distribution
change is visible next to the throughput ratios, but no metric ever
feeds a threshold — log2-bucket quantiles are too coarse to gate on,
and latency ticks are machine-specific.

Usage:
    tools/bench_diff.py BASELINE FRESH [--threshold R] [--quiet]

Exit codes (documented in docs/benchmarks.md):
    0  no cell regressed past its threshold
    1  at least one cell regressed past its threshold
    2  usage error, unreadable file, or malformed JSON

CI runs this warn-only (continue-on-error): shared runners are noisy and
the committed baseline was produced elsewhere, so exit 1 is a prompt to
re-measure locally, never a red build on its own.
"""

import argparse
import json
import sys

# Default fraction of baseline a cell may drop to before it is flagged.
DEFAULT_THRESHOLD = 0.70

# Scenario families with inherently noisier cells get looser thresholds:
# burst-drain phases are sub-second windows over a moving thread ramp,
# thread-churn includes thread spawn/teardown in every measurement, and
# full-churn-hot runs at 15/16 occupancy where a handful of probe-path
# collisions swings short runs.
SCENARIO_THRESHOLDS = {
    "burst-drain-up": 0.50,
    "burst-drain-down": 0.50,
    "thread-churn": 0.55,
    "full-churn-hot": 0.60,
}

OVERSUBSCRIBED_THRESHOLD = 0.50


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"bench_diff: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def key(row):
    return (row["scenario"], row["variant"], row["threads"])


def fmt_key(k):
    scenario, variant, threads = k
    return f"{scenario}/{variant}@{threads}"


def metric_deltas(base, fresh):
    """Pairs of (cell key, histogram name, base hist, fresh hist) for the
    probe-length histograms present in both runs' metrics blocks."""
    def rows(data):
        out = {}
        for m in data.get("metrics", []):
            k = (m["scenario"], m["variant"], m["threads"])
            for name, h in m.get("histograms", {}).items():
                if name.endswith(".probe_len"):
                    out[(k, name)] = h
        return out

    b_rows, f_rows = rows(base), rows(fresh)
    return [(k, name, b_rows[(k, name)], h)
            for (k, name), h in sorted(f_rows.items())
            if (k, name) in b_rows]


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_throughput.json files cell by cell.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="default ratio below which a cell is flagged "
             f"(default {DEFAULT_THRESHOLD}; per-scenario overrides apply)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table; summary + exit code only")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    for name, data in (("baseline", base), ("fresh", fresh)):
        if "results" not in data:
            print(f"bench_diff: {name} has no 'results' array",
                  file=sys.stderr)
            sys.exit(2)

    # A thread count oversubscribed on EITHER machine makes the cell a
    # timeslicing measurement on that side, so the comparison is loose if
    # either run's meta flags it (baseline from an 8-core workstation vs
    # a 2-core CI runner must not read the runner's 4-thread cell as a
    # strict-threshold regression).
    oversubscribed = {
        m["threads"]
        for data in (base, fresh)
        for m in data.get("thread_counts_meta", [])
        if m.get("oversubscribed")
    }

    baseline = {key(r): r for r in base["results"]}
    fresh_rows = {key(r): r for r in fresh["results"]}

    flagged = []
    compared = 0
    for k, row in fresh_rows.items():
        b = baseline.get(k)
        if b is None or b["items_per_sec"] <= 0:
            continue
        compared += 1
        ratio = row["items_per_sec"] / b["items_per_sec"]
        threshold = SCENARIO_THRESHOLDS.get(k[0], args.threshold)
        note = ""
        if k[2] in oversubscribed:
            threshold = min(threshold, OVERSUBSCRIBED_THRESHOLD)
            note = "oversubscribed"
        if ratio < threshold:
            flagged.append((ratio, threshold, k, b["items_per_sec"],
                            row["items_per_sec"], note))

    only_base = sorted(set(baseline) - set(fresh_rows))
    only_fresh = sorted(set(fresh_rows) - set(baseline))

    if flagged and not args.quiet:
        flagged.sort()
        wid = max(len(fmt_key(k)) for _, _, k, _, _, _ in flagged)
        print(f"{'cell':<{wid}}  {'ratio':>6}  {'limit':>6}  "
              f"{'baseline':>12}  {'fresh':>12}  note")
        for ratio, threshold, k, b_ips, f_ips, note in flagged:
            print(f"{fmt_key(k):<{wid}}  {ratio:>6.2f}  {threshold:>6.2f}  "
                  f"{b_ips:>12.0f}  {f_ips:>12.0f}  {note}")
        print()

    deltas = metric_deltas(base, fresh)
    if deltas and not args.quiet:
        print("probe-length distributions (display only, not thresholded):")
        for k, name, bh, fh in deltas:
            print(f"  {fmt_key(k)} {name}: "
                  f"p50 {bh['p50']} -> {fh['p50']}, "
                  f"p99 {bh['p99']} -> {fh['p99']} "
                  f"(n={bh['count']} -> {fh['count']})")
        print()

    cpu = base.get("cpu_model", "unknown cpu")
    print(f"bench_diff: compared {compared} cells against baseline "
          f"({cpu}); {len(flagged)} regressed past threshold")
    if only_base:
        print(f"bench_diff: {len(only_base)} baseline cells absent from "
              f"fresh run (first: {fmt_key(only_base[0])})")
    if only_fresh:
        print(f"bench_diff: {len(only_fresh)} fresh cells not in baseline "
              f"(first: {fmt_key(only_fresh[0])})")
    sys.exit(1 if flagged else 0)


if __name__ == "__main__":
    main()
