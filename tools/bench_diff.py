#!/usr/bin/env python3
"""Compare a fresh BENCH_throughput.json against the committed baseline.

Promotes the former inline CI snippet into a real tool: per-cell ratios
keyed by (scenario, variant, threads), per-scenario regression
thresholds (noisy scenario families tolerate more), a human-readable
table of every flagged cell, and a per-scenario breakdown of cells that
exist on only one side (so silently dropped coverage — and coverage a
new bench family adds before the baseline is re-measured — is visible,
not just slowdowns). Rows missing the key fields are reported as
malformed and skipped, never a traceback: an old baseline produced by a
different bench build must still diff against a fresh run.

Oversubscribed cells (threads flagged oversubscribed in *either* run's
thread_counts_meta) measure timeslicing on that machine, not scaling;
they are compared with the loosest threshold and labelled in the table.

The optional "metrics" block (registry snapshots from the telemetry-on
bench cells, see docs/observability.md) is display-only: when both files
carry it, the probe-length p50/p99 shifts are printed so a distribution
change is visible next to the throughput ratios, but no metric ever
feeds a threshold — log2-bucket quantiles are too coarse to gate on,
and latency ticks are machine-specific.

Usage:
    tools/bench_diff.py BASELINE FRESH [--threshold R] [--quiet]

Exit codes (documented in docs/benchmarks.md):
    0  no cell regressed past its threshold
    1  at least one cell regressed past its threshold
    2  usage error, unreadable file, or malformed JSON

CI runs this warn-only (continue-on-error): shared runners are noisy and
the committed baseline was produced elsewhere, so exit 1 is a prompt to
re-measure locally, never a red build on its own.
"""

import argparse
import json
import sys

# Default fraction of baseline a cell may drop to before it is flagged.
DEFAULT_THRESHOLD = 0.70

# Scenario families with inherently noisier cells get looser thresholds:
# burst-drain phases are sub-second windows over a moving thread ramp,
# thread-churn includes thread spawn/teardown in every measurement, and
# full-churn-hot runs at 15/16 occupancy where a handful of probe-path
# collisions swings short runs.
SCENARIO_THRESHOLDS = {
    "burst-drain-up": 0.50,
    "burst-drain-down": 0.50,
    "thread-churn": 0.55,
    "full-churn-hot": 0.60,
    # A crasher thread spawns/reaps holder threads throughout the
    # measurement window, so churner throughput swings with scheduler
    # noise far more than the steady-state families.
    "crash-churn": 0.50,
}

# Scenario families that exist only under a build/runtime flag (or were
# introduced after a given baseline was committed): when one of these
# shows up fresh-only, that is expected configuration skew, not coverage
# drift worth a warning line in the drift report.
FLAG_GATED_FAMILIES = {"crash-churn"}

OVERSUBSCRIBED_THRESHOLD = 0.50


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"bench_diff: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def key(row):
    """(scenario, variant, threads) for a well-formed row, else None."""
    if not isinstance(row, dict):
        return None
    k = (row.get("scenario"), row.get("variant"), row.get("threads"))
    if any(v is None for v in k):
        return None
    return k


def index_rows(name, data, malformed):
    """results[] keyed by cell; rows without a key or a usable
    items_per_sec are collected into `malformed`, not crashed on."""
    out = {}
    for row in data["results"]:
        k = key(row)
        if k is None or not isinstance(row.get("items_per_sec"), (int, float)):
            malformed.append((name, row))
            continue
        out[k] = row
    return out


def fmt_key(k):
    scenario, variant, threads = k
    return f"{scenario}/{variant}@{threads}"


def by_scenario(keys):
    """One-sided cells grouped per scenario: [(scenario, [cell, ...])]."""
    groups = {}
    for k in keys:
        groups.setdefault(k[0], []).append(f"{k[1]}@{k[2]}")
    return sorted(groups.items())


def metric_deltas(base, fresh):
    """Pairs of (cell key, histogram name, base hist, fresh hist) for the
    probe-length histograms present in both runs' metrics blocks."""
    def rows(data):
        out = {}
        for m in data.get("metrics", []):
            k = key(m)
            if k is None:
                continue  # malformed metric row: display-only, just skip
            for name, h in m.get("histograms", {}).items():
                if name.endswith(".probe_len") and isinstance(h, dict):
                    out[(k, name)] = h
        return out

    b_rows, f_rows = rows(base), rows(fresh)
    return [(k, name, b_rows[(k, name)], h)
            for (k, name), h in sorted(f_rows.items())
            if (k, name) in b_rows]


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_throughput.json files cell by cell.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="default ratio below which a cell is flagged "
             f"(default {DEFAULT_THRESHOLD}; per-scenario overrides apply)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the table; summary + exit code only")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    for name, data in (("baseline", base), ("fresh", fresh)):
        if "results" not in data:
            print(f"bench_diff: {name} has no 'results' array",
                  file=sys.stderr)
            sys.exit(2)

    # A thread count oversubscribed on EITHER machine makes the cell a
    # timeslicing measurement on that side, so the comparison is loose if
    # either run's meta flags it (baseline from an 8-core workstation vs
    # a 2-core CI runner must not read the runner's 4-thread cell as a
    # strict-threshold regression).
    oversubscribed = {
        m["threads"]
        for data in (base, fresh)
        for m in data.get("thread_counts_meta", [])
        if m.get("oversubscribed")
    }

    malformed = []
    baseline = index_rows("baseline", base, malformed)
    fresh_rows = index_rows("fresh", fresh, malformed)

    flagged = []
    compared = 0
    for k, row in fresh_rows.items():
        b = baseline.get(k)
        if b is None or b["items_per_sec"] <= 0:
            continue
        compared += 1
        ratio = row["items_per_sec"] / b["items_per_sec"]
        threshold = SCENARIO_THRESHOLDS.get(k[0], args.threshold)
        note = ""
        if k[2] in oversubscribed:
            threshold = min(threshold, OVERSUBSCRIBED_THRESHOLD)
            note = "oversubscribed"
        if ratio < threshold:
            flagged.append((ratio, threshold, k, b["items_per_sec"],
                            row["items_per_sec"], note))

    only_base = sorted(set(baseline) - set(fresh_rows))
    only_fresh = sorted(set(fresh_rows) - set(baseline))

    if flagged and not args.quiet:
        flagged.sort()
        wid = max(len(fmt_key(k)) for _, _, k, _, _, _ in flagged)
        print(f"{'cell':<{wid}}  {'ratio':>6}  {'limit':>6}  "
              f"{'baseline':>12}  {'fresh':>12}  note")
        for ratio, threshold, k, b_ips, f_ips, note in flagged:
            print(f"{fmt_key(k):<{wid}}  {ratio:>6.2f}  {threshold:>6.2f}  "
                  f"{b_ips:>12.0f}  {f_ips:>12.0f}  {note}")
        print()

    deltas = metric_deltas(base, fresh)
    if deltas and not args.quiet:
        print("probe-length distributions (display only, not thresholded):")
        for k, name, bh, fh in deltas:
            print(f"  {fmt_key(k)} {name}: "
                  f"p50 {bh.get('p50', '?')} -> {fh.get('p50', '?')}, "
                  f"p99 {bh.get('p99', '?')} -> {fh.get('p99', '?')} "
                  f"(n={bh.get('count', '?')} -> {fh.get('count', '?')})")
        print()

    cpu = base.get("cpu_model", "unknown cpu")
    print(f"bench_diff: compared {compared} cells against baseline "
          f"({cpu}); {len(flagged)} regressed past threshold")
    if malformed:
        side, row = malformed[0]
        print(f"bench_diff: skipped {len(malformed)} malformed result "
              f"rows (first, from {side}: {row!r})")
    # One-sided cells are coverage drift, not regressions: report the
    # full per-scenario breakdown (a renamed variant, a dropped thread
    # count, or a bench family newer than the baseline all read
    # differently here) and never let them flag or crash the diff.
    if only_base:
        print(f"bench_diff: {len(only_base)} baseline cells absent from "
              f"fresh run:")
        for scenario, cells in by_scenario(only_base):
            print(f"  {scenario}: {len(cells)} cells "
                  f"({', '.join(cells[:4])}{', ...' if len(cells) > 4 else ''})")
    if only_fresh:
        # Flag-gated families are expected to appear fresh-only when the
        # baseline predates them or was produced without the flag: list
        # them as an informational note, keep the drift report for the
        # rest. Exit codes are unchanged either way.
        gated = [c for c in only_fresh if c[0] in FLAG_GATED_FAMILIES]
        drift = [c for c in only_fresh if c not in gated]
        if gated:
            print(f"bench_diff: note: {len(gated)} fresh cells from "
                  f"flag-gated families absent from baseline:")
            for scenario, cells in by_scenario(gated):
                print(f"  {scenario}: {len(cells)} cells "
                      f"({', '.join(cells[:4])}"
                      f"{', ...' if len(cells) > 4 else ''})")
        if drift:
            print(f"bench_diff: {len(drift)} fresh cells not in baseline:")
            for scenario, cells in by_scenario(drift):
                print(f"  {scenario}: {len(cells)} cells "
                      f"({', '.join(cells[:4])}"
                      f"{', ...' if len(cells) > 4 else ''})")
    sys.exit(1 if flagged else 0)


if __name__ == "__main__":
    main()
