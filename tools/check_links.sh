#!/usr/bin/env bash
# check_links.sh — fail on broken intra-repo markdown links.
#
# Scans every tracked *.md file for inline links `[text](target)` and
# checks that relative targets exist on disk (resolved against the linking
# file's directory, with `#fragment` suffixes and `:line` anchors
# stripped). External links (a scheme like https://) and pure in-page
# fragments (#section) are skipped — this is a repo-consistency check, not
# a crawler. CI runs it as the docs job; run it locally from anywhere in
# the repo:
#
#   tools/check_links.sh
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

# Tracked markdown only, so build trees and scratch files don't count.
if git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  mapfile -t files < <(git ls-files '*.md')
else
  mapfile -t files < <(find . -name '*.md' -not -path './build*/*' | sed 's|^\./||')
fi

broken=0
checked=0
for file in "${files[@]}"; do
  dir="$(dirname "$file")"
  # Inline links only: [text](target). Reference-style links are rare
  # here and reported unmatched by grep exiting nonzero (harmless).
  while IFS= read -r target; do
    case "$target" in
      *://*|mailto:*) continue ;;   # external
      '#'*) continue ;;             # in-page fragment
      '') continue ;;
    esac
    path="${target%%#*}"     # strip fragment
    path="${path%%\?*}"      # strip query (defensive)
    case "$path" in
      /*) resolved="$root$path" ;;
      *) resolved="$dir/$path" ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target"
      broken=$((broken + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" 2>/dev/null | sed 's/^](//; s/)$//')
done

echo "checked $checked intra-repo links across ${#files[@]} markdown files; $broken broken"
[ "$broken" -eq 0 ]
