// Thread-facing public API: loose renaming for real concurrent programs.
//
// These wrappers run the exact coroutine algorithms from this library over
// std::atomic cells (ArenaEnv), so the code paths measured against the
// simulated adversaries are the code paths that execute on hardware. A
// hand-inlined non-coroutine fast path is provided for the E10 overhead
// ablation and for users who want the minimal-latency variant.
//
// The shared substrate is a TasArena (tas/tas_arena.h): cache-line-padded
// by default so concurrent probes never false-share, generation-stamped so
// reset() is O(1), with the minimal memory orders that keep TAS
// linearizable. The direct path walks a FlatProbeSchedule — the batch
// geometry precomputed into one (offset, size) array — and the bookkeeping
// counters are padded/striped so acquisition never serializes on a single
// cache line.
//
// Typical use (see examples/quickstart.cpp):
//
//   loren::ConcurrentRenamer renamer(max_threads, /*epsilon=*/0.5);
//   ...in each thread...
//   loren::sim::Name id = renamer.get_name();   // unique in [0, capacity)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "platform/striped_counter.h"
#include "renaming/adaptive.h"
#include "renaming/probe_schedule.h"
#include "renaming/rebatching.h"
#include "tas/tas_arena.h"

namespace loren {

/// Non-adaptive renaming: n known in advance, names in [0, capacity()).
/// All methods except the constructor and reset() are safe to call
/// concurrently.
class ConcurrentRenamer {
 public:
  explicit ConcurrentRenamer(std::uint64_t n, double epsilon = 0.5,
                             std::uint64_t seed = 0x10053,
                             BatchLayoutParams extra = {},
                             ArenaLayout arena_layout = ArenaLayout::kPadded);

  /// Wait-free unique name; log log n + O(1) shared-memory steps w.h.p.
  sim::Name get_name();

  /// Same algorithm, hand-inlined (no coroutine frames, no virtual Env):
  /// a linear walk of the flattened probe schedule.
  sim::Name get_name_direct();

  /// Returns `name` to the namespace so later get_name calls can claim it
  /// again (long-lived renaming, cf. [16, 20] in the paper). The paper's
  /// w.h.p. step bounds are proved for the one-shot problem; with
  /// release/reacquire they hold per acquisition as long as at most n
  /// names are live at any moment. Releasing a name not currently held
  /// throws; the check is a single exchange, so two racing releases of
  /// the same name cannot both succeed.
  void release(sim::Name name);

  /// O(1) full-namespace reset (epoch bump; see TasArena::reset). Not
  /// safe concurrently with get_name/release — quiesce first. Replaces
  /// the seed's reset-by-reallocation between experiment rounds.
  void reset();

  [[nodiscard]] std::uint64_t capacity() const { return algo_.layout().total(); }
  [[nodiscard]] const BatchLayout& layout() const { return algo_.layout(); }
  [[nodiscard]] ArenaLayout arena_layout() const { return cells_.layout(); }
  /// Approximate while acquisitions are in flight, exact at quiescence.
  [[nodiscard]] std::uint64_t names_assigned() const {
    const std::int64_t live = assigned_.sum();
    return live > 0 ? static_cast<std::uint64_t>(live) : 0;
  }

 private:
  std::uint64_t seed_;
  TasArena cells_;
  ReBatching algo_;
  FlatProbeSchedule schedule_;
  /// Ticket and the assigned counter each live on their own cache line:
  /// in the seed they shared one, so every acquisition paid two RMW
  /// bounces on the same hot line. The assigned counter is additionally
  /// striped so acquire/release never serialize on a single cell.
  // mo: relaxed -- per-caller RNG ticket: uniqueness only, no ordering
  // with the cells the caller then probes.
  alignas(TasArena::kCacheLine) std::atomic<std::uint32_t> ticket_{0};
  alignas(TasArena::kCacheLine) StripedCounter assigned_;
};

/// Adaptive renaming: contention k unknown; names are O(k) w.h.p. Capacity
/// is bounded by `max_contention` (the largest k the preallocated cells can
/// serve; the paper's unbounded-space construction truncated for practice).
class AdaptiveConcurrentRenamer {
 public:
  explicit AdaptiveConcurrentRenamer(std::uint64_t max_contention,
                                     double epsilon = 1.0,
                                     std::uint64_t seed = 0x10053);

  /// Unique name of value O(k) w.h.p.; empty only beyond max_contention.
  std::optional<sim::Name> try_get_name();
  /// Convenience: throws std::runtime_error when try_get_name is empty.
  sim::Name get_name();

  [[nodiscard]] std::uint64_t capacity() const { return cells_.size(); }

 private:
  std::uint64_t seed_;
  /// Packed layout: the adaptive construction stacks many ReBatching
  /// objects in one address space, so density beats padding here.
  TasArena cells_;
  AdaptiveReBatching algo_;
  // mo: relaxed -- per-caller RNG ticket: uniqueness only, no ordering
  // with the cells the caller then probes.
  alignas(TasArena::kCacheLine) std::atomic<std::uint32_t> ticket_{0};
};

}  // namespace loren
