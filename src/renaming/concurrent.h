// Thread-facing public API: loose renaming for real concurrent programs.
//
// These wrappers run the exact coroutine algorithms from this library over
// std::atomic cells (DirectEnv), so the code paths measured against the
// simulated adversaries are the code paths that execute on hardware. A
// hand-inlined non-coroutine fast path is provided for the E10 overhead
// ablation and for users who want the minimal-latency variant.
//
// Typical use (see examples/quickstart.cpp):
//
//   loren::ConcurrentRenamer renamer(max_threads, /*epsilon=*/0.5);
//   ...in each thread...
//   loren::sim::Name id = renamer.get_name();   // unique in [0, capacity)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "renaming/adaptive.h"
#include "renaming/rebatching.h"
#include "tas/atomic_tas.h"

namespace loren {

/// Non-adaptive renaming: n known in advance, names in [0, capacity()).
/// All methods except the constructor are safe to call concurrently.
class ConcurrentRenamer {
 public:
  explicit ConcurrentRenamer(std::uint64_t n, double epsilon = 0.5,
                             std::uint64_t seed = 0x10053,
                             BatchLayoutParams extra = {});

  /// Wait-free unique name; log log n + O(1) shared-memory steps w.h.p.
  sim::Name get_name();

  /// Same algorithm, hand-inlined (no coroutine frames, no virtual Env).
  sim::Name get_name_direct();

  /// Returns `name` to the namespace so later get_name calls can claim it
  /// again (long-lived renaming, cf. [16, 20] in the paper). The paper's
  /// w.h.p. step bounds are proved for the one-shot problem; with
  /// release/reacquire they hold per acquisition as long as at most n
  /// names are live at any moment. Releasing a name not currently held is
  /// undefined behaviour (checked: throws when the cell was never won).
  void release(sim::Name name);

  [[nodiscard]] std::uint64_t capacity() const { return algo_.layout().total(); }
  [[nodiscard]] const BatchLayout& layout() const { return algo_.layout(); }
  [[nodiscard]] std::uint64_t names_assigned() const {
    return assigned_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t seed_;
  AtomicTasArray cells_;
  ReBatching algo_;
  std::atomic<std::uint32_t> ticket_{0};  // distinct rng stream per call
  std::atomic<std::uint64_t> assigned_{0};
};

/// Adaptive renaming: contention k unknown; names are O(k) w.h.p. Capacity
/// is bounded by `max_contention` (the largest k the preallocated cells can
/// serve; the paper's unbounded-space construction truncated for practice).
class AdaptiveConcurrentRenamer {
 public:
  explicit AdaptiveConcurrentRenamer(std::uint64_t max_contention,
                                     double epsilon = 1.0,
                                     std::uint64_t seed = 0x10053);

  /// Unique name of value O(k) w.h.p.; empty only beyond max_contention.
  std::optional<sim::Name> try_get_name();
  /// Convenience: throws std::runtime_error when try_get_name is empty.
  sim::Name get_name();

  [[nodiscard]] std::uint64_t capacity() const { return cells_.size(); }

 private:
  std::uint64_t seed_;
  AtomicTasArray cells_;
  AdaptiveReBatching algo_;
  std::atomic<std::uint32_t> ticket_{0};
};

}  // namespace loren
