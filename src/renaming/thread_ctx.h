// Shared thread-context plumbing for the service layer.
//
// Both long-lived services (the fixed RenamingService and the
// ElasticRenamingService) want the same per-thread machinery: a dense
// thread slot for home-shard hashing, a cached per-thread generator, and a
// tiny per-(thread, service) state table keyed by a process-unique service
// id. This header factors the parts that were private to service.cpp so
// the elastic service doesn't re-implement them.
//
// The per-service table is a small open-addressed map with one entry per
// (thread, service) and no eviction — entries (and any registered nodes
// they cache) are reused for the thread's lifetime, so no call pattern can
// re-register nodes and grow a service's registries without bound. Keys
// are process-unique instance ids, never `this`: a service constructed at
// a dead service's recycled address must not inherit its state — in
// particular cached nodes pointing into freed registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/rng.h"

namespace loren {

/// Process-unique service instance id; ids start at 1 so 0 can mean
/// "empty" in the per-thread tables forever.
inline std::uint64_t next_service_instance_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Threads get dense slots 0, 1, 2, ... in arrival order, so `slot mod S`
/// spreads the first S threads over S distinct home shards (a random hash
/// would collide at birthday rates).
inline std::uint64_t dense_thread_slot() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Open-addressed (thread-local, so single-threaded) map from service id
/// to a Payload. Payload must be default-constructible and cheap to copy
/// (raw pointers + small ints).
template <class Payload>
class PerServiceTable {
 public:
  PerServiceTable() : entries_(16) {}  // power-of-two capacity

  /// The payload for `service_id`; on first touch the entry is default-
  /// constructed and `init(payload)` runs once.
  template <class Init>
  Payload& for_service(std::uint64_t service_id, Init&& init) {
    std::size_t i = probe(entries_, service_id);
    if (entries_[i].service_id == service_id) return entries_[i].payload;
    if ((distinct_ + 1) * 2 > entries_.size()) {
      grow();
      i = probe(entries_, service_id);
    }
    ++distinct_;
    entries_[i].service_id = service_id;
    entries_[i].payload = Payload{};
    init(entries_[i].payload);
    return entries_[i].payload;
  }

 private:
  struct Entry {
    std::uint64_t service_id = 0;  // 0 = empty
    Payload payload{};
  };

  /// Index of service_id's entry, or of the empty slot where it belongs.
  static std::size_t probe(const std::vector<Entry>& table,
                           std::uint64_t service_id) {
    const std::size_t mask = table.size() - 1;
    std::size_t i = service_id & mask;
    while (table[i].service_id != 0 && table[i].service_id != service_id) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<Entry> bigger(entries_.size() * 2);
    for (const Entry& e : entries_) {
      if (e.service_id != 0) bigger[probe(bigger, e.service_id)] = e;
    }
    entries_.swap(bigger);
  }

  std::vector<Entry> entries_;
  std::size_t distinct_ = 0;
};

}  // namespace loren
