// Shared thread-context plumbing for the service layer.
//
// Both long-lived services (the fixed RenamingService and the
// ElasticRenamingService) want the same per-thread machinery: a dense
// thread slot for home-shard hashing, a cached per-thread generator, a
// tiny per-(thread, service) state table keyed by a process-unique service
// id, and — since the thread-local name cache — a per-(thread, service)
// NameStash. This header factors the parts that were private to
// service.cpp so the elastic service doesn't re-implement them.
//
// The per-service table is a small open-addressed map with one entry per
// (thread, service) and no eviction — entries (and any registered nodes
// they cache) are reused for the thread's lifetime, so no call pattern can
// re-register nodes and grow a service's registries without bound. Keys
// are process-unique instance ids, never `this`: a service constructed at
// a dead service's recycled address must not inherit its state — in
// particular cached nodes pointing into freed registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "platform/rng.h"

namespace loren {

/// NameStash: the per-(thread, service) free-name cache ("magazine").
///
/// A steady-state churn workload releases and re-acquires the same names
/// per thread, yet every acquisition pays the probe schedule and every
/// release an arena RMW. The stash short-circuits that loop: release
/// pushes the name into a bounded thread-local LIFO (the name's cell stays
/// *taken* in the shared arena and stays counted by the live counter —
/// counter accounting is deferred until the stash interacts with the
/// shared path), and a later acquire pops it back with zero probes, zero
/// counter traffic, and no shared RMW. Misses fall through to the shared
/// path; overflow spills through the service's shared release path.
///
/// Invalidation is generation-based: `gen()` records the service-side
/// generation the contents were stashed under (the reset generation for
/// the fixed service, the resize generation for the elastic one). The
/// owning service compares it against its current generation on every
/// operation and, on mismatch, discards (fixed: the cells were
/// epoch-reset) or flushes (elastic: the names are still held in a
/// retired group and must drain through the tag table) before serving.
/// `expected_tag()` additionally pins the elastic stash to the live
/// group's 3-bit tag so only live-generation names are ever stashed.
///
/// Adaptive sizing: every kAdaptWindow acquisitions the capacity doubles
/// when the hit rate ran >= 3/4 (hot reuse: deepen the stash) and halves
/// when it fell <= 1/4 (adversarial zero-reuse: stop hoarding names other
/// threads may need), clamped to [kMinCapacity, kMaxCapacity]. The caller
/// spills any excess above a shrunken capacity through its shared path.
///
/// Single-threaded by construction (it lives in a thread_local table);
/// trivially copyable so PerServiceTable growth can relocate it.
class NameStash {
 public:
  static constexpr std::uint32_t kMinCapacity = 4;
  static constexpr std::uint32_t kMaxCapacity = 64;
  static constexpr std::uint32_t kAdaptWindow = 128;

  /// Window roll-up handed back by note_acquire: when `rolled`, the
  /// just-completed window's counts are ready for the service to fold
  /// into its (cold) aggregate statistics.
  struct WindowStats {
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
    bool rolled = false;
  };

  /// Sets the starting capacity (clamped into [kMin, kMax]); adaptation
  /// moves it from there.
  void configure(std::uint32_t capacity) {
    capacity_ = capacity < kMinCapacity
                    ? kMinCapacity
                    : (capacity > kMaxCapacity ? kMaxCapacity : capacity);
  }

  /// Applies an external upper bound to the capacity (the controller's
  /// stash knob, control/adaptive_controller.h): capacity only ever
  /// shrinks here, never below kMinCapacity, and contents are untouched —
  /// the owner spills the excess() a shrink exposes through its shared
  /// release path, exactly as after a hit-rate halving.
  void clamp_capacity(std::uint32_t cap) {
    if (cap < kMinCapacity) cap = kMinCapacity;
    if (capacity_ > cap) capacity_ = cap;
  }

  [[nodiscard]] std::uint64_t gen() const { return gen_; }
  void set_gen(std::uint64_t gen) { gen_ = gen; }
  [[nodiscard]] std::uint32_t expected_tag() const { return expected_tag_; }
  void set_expected_tag(std::uint32_t tag) { expected_tag_ = tag; }

  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ >= capacity_; }
  /// Entries above the current (possibly just shrunk) capacity; the owner
  /// spills these through its shared release path.
  [[nodiscard]] std::uint32_t excess() const {
    return count_ > capacity_ ? count_ - capacity_ : 0;
  }

  /// LIFO pop — the most recently released name, whose cache lines are
  /// the hottest. Precondition: !empty().
  std::int64_t pop() { return names_[--count_]; }

  /// Precondition: !full(). (The owner spills before pushing when full.)
  void push(std::int64_t name) { names_[count_++] = name; }

  /// Linear scan (<= kMaxCapacity entries): the same-thread double-release
  /// detector — a name already stashed must not be stashed again.
  [[nodiscard]] bool contains(std::int64_t name) const {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (names_[i] == name) return true;
    }
    return false;
  }

  /// Moves up to `k` of the *oldest* entries into `out` (spill policy:
  /// keep the most recently released — hottest — half). Returns the count.
  std::uint32_t take_oldest(std::int64_t* out, std::uint32_t k) {
    const std::uint32_t n = k < count_ ? k : count_;
    for (std::uint32_t i = 0; i < n; ++i) out[i] = names_[i];
    for (std::uint32_t i = n; i < count_; ++i) names_[i - n] = names_[i];
    count_ -= n;
    return n;
  }

  /// Empties the stash without handing the names anywhere (fixed-service
  /// reset invalidation: the cells were epoch-reset, nothing to release).
  void clear() { count_ = 0; }

  /// Records one acquisition outcome and, at each kAdaptWindow boundary,
  /// adapts the capacity and returns the window's counts for aggregation.
  WindowStats note_acquire(bool hit) {
    window_ops_ += 1;
    window_hits_ += hit ? 1u : 0u;
    WindowStats stats;
    if (window_ops_ >= kAdaptWindow) {
      stats.hits = window_hits_;
      stats.misses = window_ops_ - window_hits_;
      stats.rolled = true;
      if (window_hits_ * 4 >= window_ops_ * 3) {
        capacity_ = capacity_ * 2 > kMaxCapacity ? kMaxCapacity : capacity_ * 2;
      } else if (window_hits_ * 4 <= window_ops_) {
        capacity_ = capacity_ / 2 < kMinCapacity ? kMinCapacity : capacity_ / 2;
      }
      window_ops_ = 0;
      window_hits_ = 0;
    }
    return stats;
  }

  /// The in-flight (not yet rolled-up) window counts, exported when the
  /// stash is flushed so aggregate statistics stay honest on short runs.
  WindowStats take_partial_window() {
    WindowStats stats;
    stats.hits = window_hits_;
    stats.misses = window_ops_ - window_hits_;
    stats.rolled = window_ops_ != 0;
    window_ops_ = 0;
    window_hits_ = 0;
    return stats;
  }

 private:
  std::int64_t names_[kMaxCapacity] = {};
  std::uint32_t count_ = 0;
  std::uint32_t capacity_ = kMinCapacity;  // configure() overrides
  std::uint32_t window_ops_ = 0;
  std::uint32_t window_hits_ = 0;
  std::uint64_t gen_ = 0;           // 0 = never tagged (services start at 1)
  std::uint32_t expected_tag_ = 0;  // elastic only: the live group's tag
};

/// Process-unique service instance id; ids start at 1 so 0 can mean
/// "empty" in the per-thread tables forever.
inline std::uint64_t next_service_instance_id() {
  // mo: relaxed -- id ticket: uniqueness only, no ordering contract.
  static std::atomic<std::uint64_t> next{1};
  // sim:exempt(one-time id draw at service construction, not an
  // algorithm step)
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace detail {
/// ~0 = "no override"; see force_thread_slot.
inline std::uint64_t& forced_thread_slot_ref() {
  thread_local std::uint64_t forced = ~std::uint64_t{0};
  return forced;
}
}  // namespace detail

/// Test/simulation hook: pins the *calling thread's* dense slot to
/// `slot`, overriding arrival-order assignment. The scenario engine
/// (src/sim/scenario/) calls this with the worker id before a workload
/// body runs, so per-thread probe schedules, home shards and stash
/// identity depend only on the worker id — not on how many threads the
/// process happened to create earlier — which is what makes schedule
/// traces byte-identical across runs in one process. Must be called
/// before the thread first touches a service (the slot is captured into
/// the thread's per-service context on first use).
inline void force_thread_slot(std::uint64_t slot) {
  detail::forced_thread_slot_ref() = slot;
}

/// Threads get dense slots 0, 1, 2, ... in arrival order, so `slot mod S`
/// spreads the first S threads over S distinct home shards (a random hash
/// would collide at birthday rates). force_thread_slot (above) overrides
/// the assignment for deterministic-schedule testing.
inline std::uint64_t dense_thread_slot() {
  const std::uint64_t forced = detail::forced_thread_slot_ref();
  if (forced != ~std::uint64_t{0}) return forced;
  // mo: relaxed -- slot ticket: uniqueness only, no ordering contract.
  static std::atomic<std::uint64_t> next{0};
  // sim:exempt(one-time per-thread slot draw; the scenario engine pins
  // slots via force_thread_slot anyway)
  thread_local const std::uint64_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Open-addressed (thread-local, so single-threaded) map from service id
/// to a Payload. Payload must be default-constructible and cheap to copy
/// (raw pointers + small ints).
template <class Payload>
class PerServiceTable {
 public:
  PerServiceTable() : entries_(16) {}  // power-of-two capacity

  /// The payload for `service_id`; on first touch the entry is default-
  /// constructed and `init(payload)` runs once.
  template <class Init>
  Payload& for_service(std::uint64_t service_id, Init&& init) {
    std::size_t i = probe(entries_, service_id);
    if (entries_[i].service_id == service_id) return entries_[i].payload;
    if ((distinct_ + 1) * 2 > entries_.size()) {
      grow();
      i = probe(entries_, service_id);
    }
    ++distinct_;
    entries_[i].service_id = service_id;
    entries_[i].payload = Payload{};
    init(entries_[i].payload);
    return entries_[i].payload;
  }

  /// Visits every occupied entry as (service_id, payload&). The thread-
  /// exit flush walk (renaming/service_directory.h): the owning thread's
  /// ThreadCtx destructor hands each still-registered service its
  /// payload so stashed names don't die with the thread.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (Entry& e : entries_) {
      if (e.service_id != 0) fn(e.service_id, e.payload);
    }
  }

 private:
  struct Entry {
    std::uint64_t service_id = 0;  // 0 = empty
    Payload payload{};
  };

  /// Index of service_id's entry, or of the empty slot where it belongs.
  static std::size_t probe(const std::vector<Entry>& table,
                           std::uint64_t service_id) {
    const std::size_t mask = table.size() - 1;
    std::size_t i = service_id & mask;
    while (table[i].service_id != 0 && table[i].service_id != service_id) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<Entry> bigger(entries_.size() * 2);
    for (const Entry& e : entries_) {
      if (e.service_id != 0) bigger[probe(bigger, e.service_id)] = e;
    }
    entries_.swap(bigger);
  }

  std::vector<Entry> entries_;
  std::size_t distinct_ = 0;
};

}  // namespace loren
