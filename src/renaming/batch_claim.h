// The shared seed-and-run-claim ring walk behind every batched surface.
//
// RenamingService::acquire_many and ShardGroup::try_acquire_many run the
// same algorithm over different substrates (per-shard TasArenas with
// per-shard schedules vs ArenaSegment windows of one group arena under a
// shared schedule): walk the shard ring from the caller's sticky hint;
// per visited shard, one probe-schedule walk wins a *seed* cell and the
// batch's remaining demand is run-claimed linearly from the seed
// (forward to the shard end, then wrapping once to the cells before it);
// if the schedule phase leaves a shortfall, a deterministic sweep of
// every shard backstops, so returning < k means the namespace really had
// fewer than k free cells when scanned. This header keeps exactly one
// copy of that walk; the substrates plug in via two callables. On a
// bitmap substrate (ArenaKind::kBitmap) the plugged-in claim callable
// bottoms out in BitmapArena::try_claim_run, so a k-cell run is claimed
// via assembled bit masks — one fetch_or per word — rather than k
// per-cell RMWs; the walk itself is identical either way.
//
// The walk origin is captured before the loop: the sticky hint is
// updated *during* the walk (migrate on late wins, move to the serving
// shard when stealing), and indexing the ring off the live hint would
// revisit already-probed shards and skip others.
#pragma once

#include <cstdint>

#include "platform/sim_point.h"

namespace loren {

/// Runs a raw cell-index claim into the caller's output slots, then
/// encodes in place as (cell << shard_shift) | si — the name layout both
/// substrates share. `raw_claim(raw)` must write up to its budget of
/// claimed cell indices to `raw` and return the count. uint64/int64
/// alias legally and every claimed index fits either, so no scratch
/// buffer is needed.
template <class RawClaim>
std::uint64_t claim_encode_inplace(RawClaim&& raw_claim,
                                   std::uint32_t shard_shift,
                                   std::uint64_t si, std::int64_t* out) {
  std::uint64_t* raw = reinterpret_cast<std::uint64_t*>(out);
  const std::uint64_t got = raw_claim(raw);
  for (std::uint64_t i = 0; i < got; ++i) {
    out[i] = static_cast<std::int64_t>((raw[i] << shard_shift) | si);
  }
  return got;
}

/// Claims up to `k` names into `out`, returning the count.
///
/// `probe(si, &late)` walks shard si's probe schedule and returns the
/// *encoded* name of one won cell (or -1 on a full miss), setting `late`
/// when the win arrived at or past the migration threshold. `claim(si,
/// from, to, budget, out)` linearly claims up to `budget` free cells of
/// shard si's window [from, to) and writes them *encoded* to `out`,
/// returning the count. Encoded names are (cell << shard_shift) | si for
/// both substrates, which is why the seed's cell index is recovered here
/// with one shift.
///
/// `sweep_budget` bounds the phase-2 backstop to that many shard sweeps
/// (0 = unbounded, the historical full walk). When the budget truncates
/// the sweep while demand remains, `*sweep_budget_hit` is set so the
/// caller can distinguish "bounded scan gave up" from true exhaustion —
/// the two must not feed the same pressure signals (an elastic service
/// that grew on a truncated scan would reintroduce the spurious-grow
/// bug). `sweep_budget_hit` may be null when the budget is 0.
///
/// `walk_stats` (optional) reports how far the walk actually went — the
/// telemetry layer turns ring_shards into the `*.batch.ring_walk`
/// histogram and sweep_shards into the sweep counters (see
/// docs/observability.md).
struct BatchWalkStats {
  std::uint32_t ring_shards = 0;   // phase-1 shards visited
  std::uint32_t sweep_shards = 0;  // phase-2 backstop shards scanned
};

template <class Probe, class Claim>
std::uint64_t batch_claim_ring(std::uint64_t shard_mask,
                               std::uint32_t shard_shift,
                               std::uint64_t shard_stride,
                               std::uint32_t* sticky, std::uint64_t k,
                               std::int64_t* out, Probe&& probe,
                               Claim&& claim, std::uint64_t sweep_budget = 0,
                               bool* sweep_budget_hit = nullptr,
                               BatchWalkStats* walk_stats = nullptr) {
  const std::uint64_t S = shard_mask + 1;
  std::uint64_t got = 0;
  // Phase 1 — schedule-seeded run claims: k names for ~one schedule walk.
  const std::uint32_t origin = *sticky;
  std::uint64_t walked = 0;
  for (; walked < S && got < k; ++walked) {
    const std::uint64_t si = (origin + walked) & shard_mask;
    bool late = false;
    const std::int64_t seed = probe(si, &late);
    if (seed < 0) continue;
    out[got++] = seed;
    const std::uint64_t x = static_cast<std::uint64_t>(seed) >> shard_shift;
    if (got < k) got += claim(si, x + 1, shard_stride, k - got, out + got);
    if (got < k) got += claim(si, 0, x, k - got, out + got);
    if (walked != 0) {
      *sticky = static_cast<std::uint32_t>(si);
    } else if (late) {
      *sticky = static_cast<std::uint32_t>((si + 1) & shard_mask);
    }
  }
  if (walk_stats != nullptr) {
    walk_stats->ring_shards = static_cast<std::uint32_t>(walked);
  }
  // Phase 2 — deterministic sweep backstop: a shortfall past here is true
  // (near-)exhaustion — or, with a budget set, a deliberately truncated
  // scan (reported via *sweep_budget_hit, never mistaken for pressure).
  // Fresh origin: the hint may have moved in phase 1.
  if (got < k) {
    const std::uint64_t sweep_cap =
        sweep_budget == 0 || sweep_budget > S ? S : sweep_budget;
    const std::uint32_t origin2 = *sticky;
    std::uint64_t w = 0;
    for (; w < sweep_cap && got < k; ++w) {
      const std::uint64_t si = (origin2 + w) & shard_mask;
      LOREN_SIM_POINT("sweep.shard");
      got += claim(si, 0, shard_stride, k - got, out + got);
    }
    if (walk_stats != nullptr) {
      walk_stats->sweep_shards = static_cast<std::uint32_t>(w);
    }
    if (got < k && w == sweep_cap && sweep_cap < S &&
        sweep_budget_hit != nullptr) {
      *sweep_budget_hit = true;
    }
  }
  return got;
}

}  // namespace loren
