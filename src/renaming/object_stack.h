// A lazily instantiated stack of ReBatching objects R_1, R_2, ... with
// consecutive namespaces, shared by both adaptive algorithms (Section 5).
//
// R_i renames n_i = 2^i processes into a namespace of size m_i ~ (1+eps)2^i
// occupying locations [s_i, s_i + m_i), s_i = sum_{j<i} m_j. Objects are
// created on first touch (thread-safe), so the stack is conceptually
// unbounded as the paper requires, while memory stays proportional to the
// largest object actually probed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "renaming/rebatching.h"

namespace loren {

class ReBatchingStack {
 public:
  ReBatchingStack(BatchLayoutParams layout, sim::Location base,
                  std::uint64_t max_index);

  /// Object R_i, 1-based; creates R_1..R_i on first touch. Throws if i is 0
  /// or exceeds max_index (callers guard; see AdaptiveReBatching::Options).
  ReBatching& object(std::uint64_t i);

  /// Index i such that `name` is in R_i's namespace; 0 when name < 0 or no
  /// instantiated object owns it. This is the paper's "u ∈ R_i" test.
  [[nodiscard]] std::uint64_t object_index_of(sim::Name name) const;

  [[nodiscard]] std::uint64_t max_index() const { return max_index_; }
  [[nodiscard]] sim::Location base() const { return base_; }
  [[nodiscard]] std::uint64_t instantiated() const;

 private:
  BatchLayoutParams layout_;
  sim::Location base_;
  std::uint64_t max_index_;
  // sim:lock-ok(cold instantiation registry; first-touch construction
  // and index scans never hit a sim point)
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ReBatching>> objects_;  // objects_[i-1] == R_i
  std::vector<sim::Location> ends_;
};

}  // namespace loren
