// Long-lived loose renaming (cf. [16, 20] in the paper's related work).
//
// The PODC'13 algorithms solve one-shot renaming: each process acquires a
// name once. Many applications (thread registries, resource pools) need
// the long-lived variant: processes repeatedly acquire and release names,
// and the correctness condition becomes
//   * uniqueness: at any time, a name is held by at most one process;
//   * namespace: every name is < (1+eps) * (max concurrent holders) — the
//     namespace must adapt to the *high-water* concurrency, not to the
//     total number of acquisitions.
//
// LongLivedRenaming wraps a ReBatching layout with release support: a
// release returns the name's TAS cell to 0 (a single shared-memory write),
// after which future probes can re-win it. The one-shot analysis applies
// per acquisition whenever at most n names are concurrently held: a
// released cell is indistinguishable from a never-claimed one to the
// probing logic. (Unlike fully linearizable long-lived renaming [16], a
// concurrent probe may observe the cell mid-release; for TAS cells this is
// harmless — exchange(1) on a freed cell simply claims it.)
#pragma once

#include <cstdint>

#include "renaming/rebatching.h"
#include "sim/env.h"
#include "sim/task.h"

namespace loren {

class LongLivedRenaming {
 public:
  /// Serves up to `n` concurrent holders from a (1+eps)n namespace.
  LongLivedRenaming(std::uint64_t n, ReBatching::Options options)
      : algo_(n, options) {}
  LongLivedRenaming(std::uint64_t n, double epsilon)
      : algo_(n, ReBatching::Options{
                     .layout = BatchLayoutParams{.epsilon = epsilon}}) {}

  /// Acquire a name; identical step bounds to one-shot ReBatching per call
  /// (log log n + O(1) w.h.p.) while at most n names are held.
  sim::Task<sim::Name> acquire(sim::Env& env) {
    co_return co_await algo_.get_name(env);
  }

  /// Release a held name: one shared-memory write. The caller must hold
  /// `name` (acquired and not since released) — the class cannot check
  /// this without stronger primitives, matching the standard long-lived
  /// renaming interface.
  sim::Task<bool> release(sim::Env& env, sim::Name name) {
    if (!algo_.owns(name)) co_return false;
    co_await sim::write(env, static_cast<sim::Location>(name), 0);
    co_return true;
  }

  [[nodiscard]] const ReBatching& algorithm() const { return algo_; }
  [[nodiscard]] std::uint64_t capacity() const { return algo_.layout().total(); }

 private:
  ReBatching algo_;
};

}  // namespace loren
