#include "renaming/fast_adaptive.h"

namespace loren {

using sim::Env;
using sim::Name;
using sim::Task;

Task<Name> FastAdaptiveReBatching::search(Env& env, std::uint64_t a,
                                          std::uint64_t b, Name u,
                                          std::uint64_t t) {
  // Line 11: enough TryGetName calls on R_a already; a is confirmed.
  if (t > kappa(a)) co_return u;
  // Line 12: one more probe round on R_a.
  const Name u_prime = co_await stack_.object(a).try_get_name(env, t);
  if (u_prime != -1) co_return u_prime;  // line 13
  // Line 14: split the index range (a, b] at its median.
  const std::uint64_t d = (a + b + 1) / 2;  // ceil((a+b)/2)
  // Line 15: first improve the upper bound within (d, b].
  if (d < b) u = co_await search(env, d, b, u, 0);
  // Line 16: if the name is now from R_d, d is the new hard upper bound;
  // keep working on (a, d] with one more visit to R_a accounted for.
  if (stack_.object_index_of(u) == d) {
    u = co_await search(env, a, d, u, t + 1);
  }
  co_return u;  // line 17
}

Task<Name> FastAdaptiveReBatching::get_name(Env& env) {
  // Lines 1-5: race upward with a single batch-0 probe round per object.
  std::uint64_t ell = 0;
  Name u = -1;
  for (;; ++ell) {
    const std::uint64_t idx = std::uint64_t{1} << ell;
    if (idx > stack_.max_index()) co_return -1;
    u = co_await stack_.object(idx).try_get_name(env, 0);
    if (u != -1) break;
  }
  // Lines 6-9: walk back down while the name still comes from R_{2^ell}.
  while (ell >= 1 &&
         stack_.object_index_of(u) == (std::uint64_t{1} << ell)) {
    u = co_await search(env, std::uint64_t{1} << (ell - 1),
                        std::uint64_t{1} << ell, u, 1);
    --ell;
  }
  co_return u;
}

}  // namespace loren
