#include "renaming/adaptive.h"

namespace loren {

using sim::Env;
using sim::Name;
using sim::Task;

Task<Name> AdaptiveReBatching::get_name(Env& env) {
  // Phase 1: doubling race over R_1, R_2, R_4, R_8, ...
  std::uint64_t ell = 0;
  Name u = -1;
  for (;; ++ell) {
    const std::uint64_t idx = std::uint64_t{1} << ell;
    if (idx > stack_.max_index()) co_return -1;  // see Options docs
    u = co_await stack_.object(idx).get_name(env);
    if (u != -1) break;
  }
  if (ell == 0) co_return u;

  // Phase 2: binary search on R_{2^(ell-1)+1} .. R_{2^ell} for the
  // smallest-index object that still yields a name. The invariant is the
  // paper's: b is "hard" (we hold a name from R_b), a is "weak".
  std::uint64_t a = (std::uint64_t{1} << (ell - 1)) + 1;
  std::uint64_t b = std::uint64_t{1} << ell;
  Name from_b = u;
  while (a < b) {
    const std::uint64_t d = (a + b) / 2;
    const Name v = co_await stack_.object(d).get_name(env);
    if (v != -1) {
      b = d;
      from_b = v;
    } else {
      a = d + 1;
    }
  }
  co_return from_b;
}

}  // namespace loren
