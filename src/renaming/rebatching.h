// ReBatching (paper Section 4, Figure 1): non-adaptive loose renaming.
//
// n processes rename into a namespace of size ~(1+eps)n backed by one TAS
// object per name. A process walks the batches B_0..B_kappa in order,
// performing t_i independent uniformly random probes on batch B_i, and
// returns the index of the first TAS it wins. Processes that fail every
// batch (probability < 1/n^(beta-o(1)), Lemma 4.2) fall back to a
// sequential scan of all objects, so termination is deterministic while the
// step complexity is log2 log2 n + O(1) with high probability.
#pragma once

#include <cstdint>

#include "renaming/batch_layout.h"
#include "sim/env.h"
#include "sim/task.h"
#include "tas/tas_service.h"

namespace loren {

/// Per-object instrumentation (simulation runs only; not thread-safe).
/// `entered[i]` counts TryGetName(i) calls, `failed[i]` counts calls that
/// returned -1 — so failed[i-1] is the paper's n_i of Lemma 4.2.
struct ReBatchingStats {
  std::vector<std::uint64_t> entered;
  std::vector<std::uint64_t> failed;
  std::uint64_t backup_entries = 0;

  void reset(std::uint64_t num_batches) {
    entered.assign(num_batches, 0);
    failed.assign(num_batches, 0);
    backup_entries = 0;
  }
};

class ReBatching {
 public:
  struct Options {
    BatchLayoutParams layout{};
    /// First cell / smallest name of this object. The adaptive algorithms
    /// stack many ReBatching objects in one address space.
    sim::Location base = 0;
    /// Run the sequential backup phase after a full miss (Figure 1 lines
    /// 5-7). The adaptive algorithms turn this off (Section 5.1).
    bool backup = true;
    /// When set, probes go through this service (e.g. read/write TAS);
    /// otherwise each probe is one hardware TAS on cell base+index.
    TasService* service = nullptr;
  };

  ReBatching(std::uint64_t n, Options options);
  ReBatching(std::uint64_t n, double epsilon)
      : ReBatching(n, Options{.layout = {.epsilon = epsilon}}) {}

  /// Figure 1, GetName(). Returns a name in [base, base+total()), or -1
  /// when backup is disabled and every batch failed.
  sim::Task<sim::Name> get_name(sim::Env& env);

  /// Figure 1, TryGetName(i): t_i random probes on batch i.
  sim::Task<sim::Name> try_get_name(sim::Env& env, std::uint64_t batch);

  [[nodiscard]] const BatchLayout& layout() const { return layout_; }
  [[nodiscard]] sim::Location base() const { return base_; }
  /// Smallest location past this object (== base + namespace size).
  [[nodiscard]] sim::Location end() const { return base_ + layout_.total(); }
  /// True iff `name` lies in this object's namespace (the paper's "u ∈ R_i").
  [[nodiscard]] bool owns(sim::Name name) const {
    return name >= 0 && static_cast<sim::Location>(name) >= base_ &&
           static_cast<sim::Location>(name) < end();
  }

  void attach_stats(ReBatchingStats* stats) {
    stats_ = stats;
    if (stats_ != nullptr) stats_->reset(layout_.num_batches());
  }

 private:
  sim::Task<bool> probe(sim::Env& env, std::uint64_t logical);

  BatchLayout layout_;
  sim::Location base_;
  bool backup_;
  TasService* service_;
  ReBatchingStats* stats_ = nullptr;
};

}  // namespace loren
