// RenamingService: sharded long-lived loose renaming as a service.
//
// The ConcurrentRenamer is one ReBatching object over one arena: every
// thread probes the same B_0, and under churn all acquisitions funnel
// through one probe geometry and one set of hot lines. The service splits
// the namespace into S shards (a power of two), each an independent
// cache-line-padded TasArena with its own flattened ReBatching layout
// sized for n/S holders. A thread probes a *sticky* shard — initially its
// home shard, a cheap dense thread hash — so disjoint thread groups run
// on disjoint memory, and S is chosen so one padded shard fits in L1:
// under churn a thread's entire probe target stays cache-resident, which
// a single (1+eps)n-cell arena can never be. When a shard runs hot (wins
// start arriving late in the probe schedule) the thread migrates to the
// next shard in ring order; when a schedule misses outright it steals
// from the neighbours; and after all S schedules miss it falls back to a
// deterministic sweep of every cell, so acquire() fails only when the
// whole namespace is exhausted.
//
// Names are interleaved across shards — name = local * S + shard — so
// mapping a name back to its shard is a mask, not a division, and the
// namespace stays exactly [0, S * (1+eps)ceil(n/S) + O(S)).
//
// Guarantees (cf. the long-lived variant in Aspnes's notes, and [16, 20]
// in the paper's related work):
//   * uniqueness — names are handed out by per-cell TAS, so a name is
//     held by at most one caller at any time, globally across shards;
//   * namespace — every name is < capacity() = S * (1+eps)ceil(n/S) + O(S)
//     (each shard's layout rounds its batches independently);
//   * per-acquisition step bounds — while a shard serves at most n/S
//     concurrent holders, an acquisition that stays on its sticky shard
//     performs log2 log2 (n/S) + O(1) probes w.h.p.; migration/stealing
//     adds one schedule walk per visited shard.
//
// Hot-path engineering (measured in bench/bench_throughput.cpp):
//   * one thread_local context per call — cached Xoshiro256, thread slot,
//     shard hints, and counter node behind a single TLS access; the
//     per-call reseed-from-ticket of ConcurrentRenamer::get_name_direct
//     (a shared fetch_add + six SplitMix64 rounds per acquisition)
//     happens once per thread here;
//   * padded L1-sized arenas — concurrent wins on distinct names never
//     share a cache line, and a sticky thread's probes stay in L1;
//   * registered per-thread live counter — bookkeeping is a plain store
//     to a thread-owned cache line, not a locked RMW, and acquire/release
//     never serialize on one cell;
//   * shift/mask name decoding — release() does no division.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/adaptive_controller.h"
#include "lease/lease_table.h"
#include "platform/rng.h"
#include "platform/registered_counter.h"
#include "renaming/acquire_result.h"
#include "renaming/batch_layout.h"
#include "renaming/probe_schedule.h"
#include "renaming/thread_ctx.h"
#include "sim/env.h"
#include "tas/arena_segment.h"
#include "tas/bitmap_arena.h"
#include "tas/tas_arena.h"
#include "telemetry/metrics.h"

namespace loren {

/// The auto-sharding heuristic shared by RenamingService and the elastic
/// shard groups: the smallest power-of-two shard count such that (a)
/// hardware threads get distinct home shards and (b) a padded shard arena
/// fits in half an L1d (32 KiB), clamped so every shard still serves
/// >= 64 holders (tiny shards overflow constantly and every acquisition
/// degenerates to stealing).
///
/// `hw_threads` is the hardware thread count to shard for; 0 means
/// "unknown" (std::thread::hardware_concurrency() is allowed to return 0)
/// and is treated as 1 — left unclamped it would silently disable the
/// distinct-home-shards growth condition. Injectable so the policy is
/// unit-testable without faking the host's topology.
std::uint64_t auto_shard_count(std::uint64_t n, const BatchLayoutParams& params,
                               std::uint32_t hw_threads);
/// Convenience overload: shard for this host (hardware_concurrency()).
std::uint64_t auto_shard_count(std::uint64_t n, const BatchLayoutParams& params);

/// Resolves a requested shard count: 0 = auto_shard_count, otherwise
/// rounded up to a power of two and clamped so a shard never serves less
/// than one holder. One policy for RenamingService and the elastic groups.
/// The three-argument form uses this host's hardware_concurrency().
std::uint64_t shard_count_for(std::uint64_t n, std::uint64_t requested,
                              const BatchLayoutParams& params);
std::uint64_t shard_count_for(std::uint64_t n, std::uint64_t requested,
                              const BatchLayoutParams& params,
                              std::uint32_t hw_threads);

struct RenamingServiceOptions {
  double epsilon = 0.5;
  /// Number of shards, rounded up to a power of two. 0 = auto: enough
  /// shards that (a) hardware threads get distinct home shards and (b) a
  /// padded shard arena fits in half an L1d (32 KiB), clamped so every
  /// shard still serves >= 64 holders.
  std::uint64_t shards = 0;
  ArenaLayout arena_layout = ArenaLayout::kPadded;
  /// Substrate for the shard arenas: kCellProbe (TasArena, one RMW per
  /// cell probed) or kBitmap (BitmapArena, 64 cells per probe via word
  /// scans — see tas/bitmap_arena.h for the tradeoff).
  ArenaKind arena_kind = ArenaKind::kCellProbe;
  std::uint64_t seed = 0x53ED;
  BatchLayoutParams layout_extra{};
  /// Thread-local name cache: each thread keeps a bounded stash of names
  /// it released against this service, so a steady-state churn thread
  /// re-acquires its own names with zero probes, zero counter traffic and
  /// no shared RMW. A stashed name's cell stays taken and stays counted
  /// by names_live() until the stash spills or is flushed — see
  /// docs/protocols.md, "The thread-local name cache". Disable for the
  /// tightest exhaustion semantics (acquire() == -1 then means *zero*
  /// cells free, with no residue parked in other threads' stashes).
  bool name_cache = true;
  /// Initial per-thread stash capacity; per-thread hit-rate adaptation
  /// moves it within [NameStash::kMinCapacity, NameStash::kMaxCapacity].
  std::uint32_t name_cache_capacity = 16;
  /// Bounded retry budget for the deterministic sweep backstop: the
  /// maximum number of shards a single acquire()/acquire_many() may
  /// sweep after every probe schedule missed. 0 = unbounded (sweep the
  /// whole namespace — the historical behaviour). With a budget set, an
  /// acquisition that exhausts it fails fast with kSweepBudgetExhausted
  /// instead of walking every remaining cell, and the service counts the
  /// event in sweep_budget_exhausted() — the explicit bounded failure
  /// mode admission control (ROADMAP) and the fault engine inject
  /// against.
  std::uint32_t sweep_retry_budget = 0;
  /// Observability surface (telemetry/metrics.h). With a registry
  /// attached, the service publishes its `service.*` metrics there —
  /// including the per-op hot-path histograms (acquire/release latency,
  /// probe lengths, lost races, batch ring-walk lengths), which are
  /// recorded only in this mode. Left null, the service counts its event
  /// metrics (cache hits/misses, sweeps, migrations, spills) on an
  /// internal registry — one counting idiom either way — and the per-op
  /// histograms stay off, so the default configuration pays nothing per
  /// operation. See docs/observability.md.
  telemetry::TelemetryOptions telemetry{};
  /// Closed-loop control (control/adaptive_controller.h). With mode !=
  /// kOff the service constructs an AdaptiveController over its metrics
  /// registry: per-window latency/arrival measurement, the acquire_many
  /// batch clamp, the stash capacity bound, and — in kAdapt mode —
  /// admission control (acquire fails fast with kShed once the
  /// consecutive-failure streak reaches control.retry_budget, until a
  /// release frees capacity). Enabling control switches the service into
  /// detailed telemetry mode (the controller is fed from the per-op
  /// latency histograms). See docs/adaptive-control.md.
  control::ControlOptions control{};
  /// Crash-safe ownership (lease/lease_table.h). With lease.ttl_ticks !=
  /// 0 every shared acquisition also registers a lease, every op by the
  /// holder's thread heartbeats it alive, and abandoned names (holder
  /// crashed, parked, or exited) are reaped back into the arena after
  /// ttl + grace ticks — at which point any late release by a revived
  /// holder is rejected (kLeaseExpired / a guard trip), never applied to
  /// a cell that may have been reissued. ttl_ticks == 0 (the default)
  /// disables leasing entirely: no per-op cost, the pre-lease behavior.
  /// See docs/leases.md.
  lease::LeaseOptions lease{};
};

class RenamingService {
 public:
  /// acquire() failure codes (acquire_many reports shortfalls by count).
  /// kExhausted: every cell scanned was taken. kSweepBudgetExhausted:
  /// the bounded sweep budget (options.sweep_retry_budget) ran out
  /// before a free cell was found — the namespace may NOT be full; the
  /// caller chose bounded latency over a full walk. kShed: admission
  /// control rejected the call outright — the controller's consecutive-
  /// failure streak hit its retry budget, and the caller pays one
  /// relaxed load instead of another sweep; a successful release
  /// re-admits (see control/adaptive_controller.h). kLeaseExpired: a
  /// lease operation (renew_lease, a guarded release) referred to a name
  /// whose lease the reaper already expired — the caller no longer owns
  /// it and the cell may have been reissued. The values are defined from
  /// the shared loren::AcquireResult enum (renaming/acquire_result.h) so
  /// both services and every embedder agree on the numbers forever.
  static constexpr sim::Name kExhausted = to_name(AcquireResult::kExhausted);
  static constexpr sim::Name kSweepBudgetExhausted =
      to_name(AcquireResult::kSweepBudgetExhausted);
  static constexpr sim::Name kShed = to_name(AcquireResult::kShed);
  static constexpr sim::Name kLeaseExpired =
      to_name(AcquireResult::kLeaseExpired);

  /// Serves up to `n` concurrent holders from a ~(1+eps)n namespace.
  /// Throws std::invalid_argument for n == 0. The constructed service is
  /// immediately usable from any thread.
  explicit RenamingService(std::uint64_t n, RenamingServiceOptions options = {});

  /// Unregisters from the ServiceDirectory first, so by the time members
  /// tear down no exiting thread can flush a stash into this instance.
  ~RenamingService();
  RenamingService(const RenamingService&) = delete;
  RenamingService& operator=(const RenamingService&) = delete;

  /// Unique name in [0, capacity()), or -1 iff no free cell was found.
  /// Safe to call from any thread; never blocks and never spins — the
  /// slow path is one bounded deterministic sweep over every cell, after
  /// which -1 means every cell was taken when scanned. With the name
  /// cache on, "taken" includes names parked in *other* threads' stashes
  /// (bounded by stash capacity x threads); callers that must squeeze the
  /// last few names out have the holders flush_thread_cache() first.
  /// With options.sweep_retry_budget set, a truncated sweep returns
  /// kSweepBudgetExhausted (-2) instead — see the option's doc.
  sim::Name acquire();

  /// Frees `name` for reacquisition. Returns false (and changes nothing)
  /// when the name is not currently held — a double release or a foreign
  /// value. Safe from any thread; never blocks. Uncached, validation is a
  /// single RMW, so concurrent double releases cannot both succeed; with
  /// the name cache on, a release the stash absorbs validates with a
  /// stash-duplicate scan plus a cell load instead (same observable
  /// results for conforming callers; two *racing* releases of one held
  /// name — already outside the release contract — may both return true).
  bool release(sim::Name name);

  /// Batched acquisition: claims up to `k` unique names into `out` and
  /// returns the number acquired. Returns < k only when fewer than k
  /// cells were free over the scan: at quiescence that means namespace
  /// exhaustion, while under concurrent churn the one-pass sweep can
  /// transiently come up short even though k cells were free at every
  /// instant (cells freed behind the scan cursor are not revisited) —
  /// callers that must have all k retry the remainder. One sticky-shard
  /// ring walk (renaming/batch_claim.h): per visited shard a single
  /// probe-schedule walk seeds a linear run-claim
  /// (TasArena::try_claim_run), the deterministic sweep backstops, and
  /// the live counter gets one add of +got — so a batch of k costs one
  /// TLS lookup, ~one schedule walk, and one counter update instead of k
  /// of each. Names are the same interleaved encoding as acquire();
  /// uniqueness and the namespace bound are unchanged (every claim is
  /// still a per-cell TAS).
  std::uint64_t acquire_many(std::uint64_t k, sim::Name* out);

  /// Frees `count` names with one counter add (stash absorption first,
  /// then one shared pass for the remainder). Returns how many were
  /// actually freed; invalid or not-held entries are skipped (validation
  /// as in release()). Safe from any thread; never blocks.
  std::uint64_t release_many(const sim::Name* names, std::uint64_t count);

  /// Releases every name in the calling thread's stash for this service
  /// through the shared path (one counter add) and folds the thread's
  /// pending cache statistics into the aggregate. Returns the number of
  /// names flushed. Call it when a thread parks, before a worker thread
  /// exits (a dead thread's stash strands its names until reset()), or
  /// before asserting exact names_live() figures at quiescence. No-op
  /// when the cache is off or the stash is empty.
  std::uint64_t flush_thread_cache();

  /// Explicitly renews the calling thread's lease on `name` (every
  /// service op already renews implicitly by stamping the thread's
  /// heartbeat — this is for holders that go quiet between ops, e.g. a
  /// thread parking on I/O while holding names). Returns `name` on
  /// success and kLeaseExpired when the lease no longer exists: the
  /// reaper reclaimed the cell and the caller must treat the name as
  /// lost. With leasing off it trivially returns `name`.
  sim::Name renew_lease(sim::Name name);

  /// One full blocking reap pass over the lease table: every stale lease
  /// is expired and its cell handed back to the arena. Returns the
  /// number of cells reclaimed. The op paths already poll try_reap()
  /// periodically — this is the deterministic variant for tests,
  /// shutdown drains, and dedicated reaper threads. 0 with leasing off.
  std::size_t reap_expired();

  /// Lease observability (all 0 / false with leasing off).
  [[nodiscard]] bool leasing_enabled() const { return leases_ != nullptr; }
  [[nodiscard]] std::uint64_t leases_live() const {
    return leases_ != nullptr ? leases_->leases_live() : 0;
  }
  [[nodiscard]] std::uint64_t lease_expired() const {
    return leases_ != nullptr ? leases_->expired() : 0;
  }
  /// Times the generation guard rejected a stale lease operation (late
  /// release/renew/validate after the reaper won). Each trip is a
  /// detected — not silently applied — stale-ownership event.
  [[nodiscard]] std::uint64_t lease_guard_trips() const {
    return leases_ != nullptr ? leases_->guard_trips() : 0;
  }
  /// The underlying table (null with leasing off): test/bench
  /// introspection, never needed on the hot path.
  [[nodiscard]] lease::LeaseTable* lease_table() const { return leases_.get(); }

  /// O(S) full reset: epoch-bumps every shard arena, zeroes the live
  /// counter, and invalidates every thread's stash (their contents are
  /// discarded on the owning thread's next call — the epoch bump already
  /// freed the cells). Not safe concurrently with acquire/release —
  /// quiesce first.
  void reset();

  /// Geometry accessors: fixed at construction, safe from any thread.
  /// Every issued name is < capacity(); each shard is laid out for
  /// shard_holders() concurrent holders.
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::uint64_t shard_holders() const { return shard_n_; }
  [[nodiscard]] ArenaLayout arena_layout() const { return options_.arena_layout; }
  [[nodiscard]] ArenaKind arena_kind() const { return options_.arena_kind; }
  /// Approximate while calls are in flight, exact at quiescence (after
  /// the workers have been joined or otherwise synchronized). Names
  /// parked in thread stashes count as live — they are unavailable to
  /// every other thread; flush_thread_cache() on each thread drains them.
  [[nodiscard]] std::uint64_t names_live() const {
    const std::int64_t live = live_.sum();
    return live > 0 ? static_cast<std::uint64_t>(live) : 0;
  }
  /// Aggregate name-cache statistics, folded in window-at-a-time from the
  /// per-thread stashes (so they lag by up to one adaptation window per
  /// thread until flush_thread_cache()). Approximate while in flight.
  /// Thin snapshot reads of the metrics registry (the counting moved
  /// there; same values, same contract).
  [[nodiscard]] std::uint64_t cache_hits() const {
    return ins_.registry->counter_value(ins_.cache_hits);
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return ins_.registry->counter_value(ins_.cache_misses);
  }
  /// Times the bounded sweep budget ran out (acquire returning
  /// kSweepBudgetExhausted, or an acquire_many shortfall caused by the
  /// budget rather than true exhaustion). Always 0 when
  /// options.sweep_retry_budget is 0.
  [[nodiscard]] std::uint64_t sweep_budget_exhausted() const {
    return ins_.registry->counter_value(ins_.sweep_budget_exhausted);
  }
  /// The registry this service records into: the one attached via
  /// options.telemetry, or the internal fallback. Snapshot/exposition
  /// surface for callers and the bench harness.
  [[nodiscard]] telemetry::MetricsRegistry& metrics_registry() const {
    return *ins_.registry;
  }
  /// Admissions rejected with kShed (exact: one per kShed returned).
  /// Always 0 without a controller (options.control.mode == kOff).
  [[nodiscard]] std::uint64_t shed_events() const {
    return controller_ != nullptr ? controller_->shed_events() : 0;
  }
  /// The attached controller, or nullptr when control is off. Knob and
  /// window introspection for tests, benches and operators.
  [[nodiscard]] control::AdaptiveController* controller() const {
    return controller_.get();
  }
  /// The calling thread's stash occupancy / adaptive capacity for this
  /// service (introspection and tests).
  [[nodiscard]] std::uint32_t thread_cache_size() const;
  [[nodiscard]] std::uint32_t thread_cache_capacity() const;
  /// The shard acquire() tries first on this thread before any migration
  /// (for tests).
  [[nodiscard]] std::uint64_t home_shard() const;

 private:
  struct Shard {
    Shard(std::uint64_t holders, const BatchLayoutParams& params,
          ArenaLayout arena_layout, ArenaKind arena_kind)
        : layout(holders, params), schedule(layout) {
      if (arena_kind == ArenaKind::kBitmap) {
        bitmap = std::make_unique<BitmapArena>(layout.total(), arena_layout);
        seg = ArenaSegment(*bitmap, 0, layout.total());
      } else {
        arena = std::make_unique<TasArena>(layout.total(), arena_layout);
        seg = ArenaSegment(*arena, 0, layout.total());
      }
    }

    void reset() {
      if (bitmap != nullptr) {
        bitmap->reset();
      } else {
        arena->reset();
      }
    }

    BatchLayout layout;
    FlatProbeSchedule schedule;
    /// Exactly one substrate is engaged (by options.arena_kind); all
    /// probe/claim/release traffic goes through `seg`, which dispatches.
    std::unique_ptr<TasArena> arena;
    std::unique_ptr<BitmapArena> bitmap;
    ArenaSegment seg;
  };

  /// Wins arriving at or past this probe position mean the shard is
  /// running hot (expected position under the analysis' load is O(1)),
  /// and the caller's sticky hint migrates to the next shard.
  static constexpr std::ptrdiff_t kMigrateThreshold = 8;

  /// Detailed-mode sampling: every (mask+1)-th acquire/release on a
  /// thread is the observed sample — timestamped, probe counts
  /// accumulated and recorded. 1-in-256 keeps the histograms
  /// representative (tens of thousands of samples per bench second)
  /// while amortizing the timestamp cost to well under the 5% overhead
  /// contract even where rdtsc is hypervisor-slow (docs/observability.md).
  static constexpr std::uint32_t kLatencySampleMask = 255;

  /// Resolved telemetry surface: the registry (attached or internal
  /// fallback) plus the service's interned metric ids. The event
  /// counters always count; the per-op histograms record only when
  /// `detailed` (a registry was attached via options.telemetry).
  struct Instruments {
    telemetry::MetricsRegistry* registry = nullptr;
    bool detailed = false;
    // Event counters (always on; recorded off the hot path or on rare
    // events only).
    telemetry::MetricId cache_hits = 0;
    telemetry::MetricId cache_misses = 0;
    telemetry::MetricId sweep_budget_exhausted = 0;
    telemetry::MetricId shard_migrations = 0;
    telemetry::MetricId sweeps = 0;
    telemetry::MetricId stash_spills = 0;
    telemetry::MetricId stash_flushes = 0;
    // Per-op histograms (detailed mode only).
    telemetry::MetricId acquire_ticks = 0;
    telemetry::MetricId release_ticks = 0;
    telemetry::MetricId probe_len = 0;
    telemetry::MetricId lost_races = 0;
    telemetry::MetricId ring_walk = 0;
  };

  /// Walk one shard's flattened probe schedule. Returns the interleaved
  /// global name, or -1 on a full miss; sets `late` when the win arrived
  /// at or past kMigrateThreshold. `probes` (optional) accumulates the
  /// schedule slots walked (win position + 1, or the full schedule on a
  /// miss); `lost_races` forwards the substrate's observable-loss count.
  sim::Name probe_shard(Shard& shard, std::uint64_t shard_index,
                        Xoshiro256& rng, bool& late,
                        std::uint32_t* probes = nullptr,
                        std::uint32_t* lost_races = nullptr);

  /// Run-claim over `shard`'s cells [from, to), encoding wins as
  /// interleaved global names directly into `out`. Returns the count.
  std::uint64_t claim_encoded(Shard& shard, std::uint64_t shard_index,
                              std::uint64_t from, std::uint64_t to,
                              std::uint64_t k, sim::Name* out,
                              std::uint32_t* lost_races = nullptr);

  /// The shared (arena + counter) release path, bypassing the stash: the
  /// try_release loop plus one add to `counter` (the caller's already-
  /// resolved registered node, so chunked callers don't re-pay the
  /// thread-local lookup per chunk). Both public release surfaces and the
  /// stash spill/flush paths bottom out here. With leasing on, each
  /// name's lease is closed first; a close the reaper already won — or
  /// one presenting a heartbeat the lease is not bound to (same-bits
  /// ABA) — skips the arena release (the cell is not ours to free).
  /// `stripe` is the caller's cached stripe, nullable only on the
  /// thread-exit flush path. `hb` is the releasing thread's heartbeat
  /// (the identity the lease close is checked against).
  std::uint64_t release_shared(const sim::Name* names, std::uint64_t count,
                               RegisteredCounter::Node& counter,
                               telemetry::MetricsRegistry::ThreadStripe* stripe,
                               const lease::Heartbeat* hb);

  /// Per-op lease prologue (called only when leasing is on): registers
  /// and stamps the calling thread's heartbeat, revalidates the stash
  /// after a self-detected stale gap (its names may have been reaped),
  /// and runs the sampled try_reap poll. The hb/poll references are the
  /// caller's per-thread per-service context fields.
  void lease_heartbeat(lease::Heartbeat*& hb, std::uint32_t& poll,
                       NameStash* st, RegisteredCounter::Node& counter,
                       telemetry::MetricsRegistry::ThreadStripe& stripe);

  /// LeaseTable::ReclaimFn: frees an expired name's cell back into its
  /// shard arena. The live counter is adjusted by the *reaping* thread
  /// (which has a counter node); this callback has no thread context.
  static bool reclaim_cell(void* ctx, sim::Name name);

  /// ServiceDirectory::FlushFn: an exiting thread's stash flush, driven
  /// entirely off the payload's cached pointers (the thread is mid-TLS-
  /// destruction, so no thread_local lookups are legal here).
  static void directory_flush(void* service, void* payload);
  void flush_thread_state(void* payload);

  /// Re-tags `st` against cache_gen_, discarding contents stranded by a
  /// reset() (the epoch bump already freed those cells).
  void cache_sync_gen(NameStash& st) const;
  /// Hit/miss accounting; at each window roll-up folds the counts into
  /// the registry (via `stripe`, the caller's cached thread stripe) and
  /// spills any excess above an adaptively shrunk capacity.
  void cache_note_acquire(NameStash& st, bool hit,
                          RegisteredCounter::Node& counter,
                          telemetry::MetricsRegistry::ThreadStripe& stripe,
                          const lease::Heartbeat* hb);
  /// Spills the `k` oldest stashed names through release_shared. `hb` is
  /// the stash owner's heartbeat — stashed leases are rebound to it on
  /// absorb, so it is the identity their closes must present.
  void cache_spill(NameStash& st, std::uint32_t k,
                   RegisteredCounter::Node& counter,
                   telemetry::MetricsRegistry::ThreadStripe& stripe,
                   const lease::Heartbeat* hb);

  RenamingServiceOptions options_;
  /// Process-unique instance id. Per-thread caches (sticky shard hint,
  /// counter node) are keyed by this, never by `this`: a new service
  /// placed at a recycled address must not inherit another instance's
  /// cached state — in particular a counter node pointing into a freed
  /// registry.
  std::uint64_t id_;
  std::uint64_t shard_n_ = 0;       // holders each shard is laid out for
  std::uint64_t shard_stride_ = 0;  // cells per shard (equal across shards)
  std::uint64_t shard_mask_ = 0;    // num_shards - 1 (power of two)
  std::uint32_t shard_shift_ = 0;   // log2(num_shards)
  std::uint64_t capacity_ = 0;
  /// unique_ptr per shard: Shard owns its arena (a TasArena or a
  /// BitmapArena per options_.arena_kind; non-movable storage either
  /// way) and each arena's cell block is independently allocated, so
  /// shards never share an allocation — and, on the padded cell-probe
  /// substrate, never a cache line (bitmap shards pack 64+ cells per
  /// line by design; see tas/bitmap_arena.h for that tradeoff).
  std::vector<std::unique_ptr<Shard>> shards_;
  RegisteredCounter live_;
  /// Stash-invalidation generation: reset() bumps it, and a stash tagged
  /// with an older value discards its contents on its owner's next call
  /// (the epoch bump already freed those cells). Starts at 1 so a fresh
  /// stash (gen 0) always re-tags before serving.
  // mo: relaxed -- invalidation stamp: readers only compare it against
  // their stash tag; reset() already requires external quiescence, so the
  // bump never races the arena epoch bump it trails.
  std::atomic<std::uint64_t> cache_gen_{1};
  /// Internal registry fallback (engaged when options.telemetry.registry
  /// is null) — all counting goes through a registry either way.
  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;
  Instruments ins_;
  /// The closed control loop (null when options.control.mode == kOff);
  /// constructed over ins_.registry, after it, destroyed before it.
  std::unique_ptr<control::AdaptiveController> controller_;
  /// The lease table (null when options.lease.ttl_ticks == 0, which is
  /// what keeps the leasing-off hot path at literally zero extra cost —
  /// one null check per op).
  std::unique_ptr<lease::LeaseTable> leases_;

  /// Sampled op-path reap poll: every 64th op per thread attempts a
  /// non-blocking try_reap, so expiry latency is bounded by op traffic
  /// without a dedicated reaper thread.
  static constexpr std::uint32_t kLeasePollMask = 63;
};

}  // namespace loren
