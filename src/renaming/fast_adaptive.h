// FastAdaptiveReBatching (paper Section 5.2, Figure 2).
//
// Same namespace guarantee as AdaptiveReBatching (names O(k) w.h.p.) but
// total step complexity O(k log log k) w.h.p. instead of
// Theta(k (log log k)^2). The trick: instead of running a full GetName on
// every object visited during the binary search, a process performs a
// *single* TryGetName per visit and pipelines its probes across objects via
// the recursive Search(a, b, u, t) walk over the implicit binary search
// tree of R_1, R_2, ... — revisiting an object with the next batch index
// each time. The paper fixes eps = 1 for this algorithm (R_i's namespace
// has size 2*n_i = 2^(i+1)).
#pragma once

#include <cstdint>

#include "renaming/object_stack.h"

namespace loren {

class FastAdaptiveReBatching {
 public:
  struct Options {
    /// Figure 2 requires eps = 1; beta/t0 stay tunable.
    int beta = 3;
    int t0_override = 0;
    sim::Location base = 0;
    std::uint64_t max_object_index = 26;  // same safety valve as adaptive.h
  };

  FastAdaptiveReBatching() : FastAdaptiveReBatching(Options{}) {}
  explicit FastAdaptiveReBatching(Options options)
      : stack_({.epsilon = 1.0, .beta = options.beta,
                .t0_override = options.t0_override},
               options.base, options.max_object_index) {}

  /// Figure 2, GetName(): doubling race with single TryGetName(0) calls,
  /// then the recursive Search descent. Name value O(k) w.h.p.
  sim::Task<sim::Name> get_name(sim::Env& env);

  [[nodiscard]] ReBatchingStack& stack() { return stack_; }
  [[nodiscard]] const ReBatchingStack& stack() const { return stack_; }

 private:
  /// Figure 2, Search(a, b, u, t). Preconditions (paper): a < b, u is a
  /// name already acquired from R_b, and this process has already executed
  /// TryGetName(j) on R_a for j = 0..t-1.
  sim::Task<sim::Name> search(sim::Env& env, std::uint64_t a, std::uint64_t b,
                              sim::Name u, std::uint64_t t);

  /// kappa(i) = max batch index of R_i (= ceil(log2 i), since n_i = 2^i).
  [[nodiscard]] std::uint64_t kappa(std::uint64_t i) {
    return stack_.object(i).layout().kappa();
  }

  ReBatchingStack stack_;
};

}  // namespace loren
