#include "renaming/concurrent.h"

#include <cmath>
#include <stdexcept>

namespace loren {

using sim::Name;

namespace {

BatchLayoutParams with_epsilon(BatchLayoutParams p, double epsilon) {
  p.epsilon = epsilon;
  return p;
}

}  // namespace

ConcurrentRenamer::ConcurrentRenamer(std::uint64_t n, double epsilon,
                                     std::uint64_t seed,
                                     BatchLayoutParams extra,
                                     ArenaLayout arena_layout)
    : seed_(seed),
      cells_(BatchLayout(n, with_epsilon(extra, epsilon)).total(), arena_layout),
      algo_(n, ReBatching::Options{.layout = with_epsilon(extra, epsilon)}),
      schedule_(algo_.layout()) {}

Name ConcurrentRenamer::get_name() {
  // sim:exempt(RNG ticket draw; the probe RMWs inside the arena are the
  // schedulable steps)
  ArenaEnv env(cells_, seed_,
               ticket_.fetch_add(1, std::memory_order_relaxed));
  const Name name = sim::run_sync(algo_.get_name(env));
  if (name >= 0) assigned_.add(1);
  return name;
}

Name ConcurrentRenamer::get_name_direct() {
  // sim:exempt(RNG ticket draw; the probe RMWs inside the arena are the
  // schedulable steps)
  Xoshiro256 rng(mix_seed(seed_, ticket_.fetch_add(1, std::memory_order_relaxed)));
  for (const auto& slot : schedule_) {
    const std::uint64_t x = slot.offset + rng.below(slot.size);
    // sim:exempt(forwards to the arena RMW, which carries the sim point)
    if (cells_.test_and_set(x)) {
      assigned_.add(1);
      return static_cast<Name>(x);
    }
  }
  for (std::uint64_t u = 0; u < schedule_.total(); ++u) {  // backup sweep
    // sim:exempt(forwards to the arena RMW, which carries the sim point)
    if (cells_.test_and_set(u)) {
      assigned_.add(1);
      return static_cast<Name>(u);
    }
  }
  return -1;
}

void ConcurrentRenamer::release(sim::Name name) {
  // Single-RMW validation: exchange the cell to free and check it really
  // was held. The seed's read()==0 check followed by write(0) let two
  // racing releases both pass the check and double-decrement assigned_.
  if (name < 0 || static_cast<std::uint64_t>(name) >= cells_.size() ||
      !cells_.try_release(static_cast<std::uint64_t>(name))) {
    throw std::invalid_argument("release: name is not currently held");
  }
  assigned_.add(-1);
}

void ConcurrentRenamer::reset() {
  cells_.reset();
  assigned_.reset();
}

namespace {

/// Cells needed so the adaptive stack can reach objects large enough for
/// max_contention: the doubling race stops at R_i with 2^i >= k w.h.p., and
/// we add two doubling levels of headroom.
std::uint64_t adaptive_capacity(std::uint64_t max_contention, double epsilon) {
  std::uint64_t top = 1;
  while ((std::uint64_t{1} << top) < max_contention) ++top;
  // The race touches power-of-two indices only; round up to one.
  std::uint64_t race_top = 1;
  while (race_top < top) race_top <<= 1;
  std::uint64_t total = 0;
  for (std::uint64_t i = 1; i <= race_top; ++i) {
    total += BatchLayout(std::uint64_t{1} << i, epsilon).total();
  }
  return total;
}

}  // namespace

AdaptiveConcurrentRenamer::AdaptiveConcurrentRenamer(
    std::uint64_t max_contention, double epsilon, std::uint64_t seed)
    : seed_(seed),
      cells_(adaptive_capacity(max_contention, epsilon), ArenaLayout::kPacked),
      algo_(AdaptiveReBatching::Options{.layout = {.epsilon = epsilon}}) {
  if (max_contention == 0) {
    throw std::invalid_argument("max_contention must be >= 1");
  }
}

std::optional<Name> AdaptiveConcurrentRenamer::try_get_name() {
  // sim:exempt(RNG ticket draw; the probe RMWs inside the arena are the
  // schedulable steps)
  ArenaEnv env(cells_, seed_,
               ticket_.fetch_add(1, std::memory_order_relaxed));
  try {
    const Name name = sim::run_sync(algo_.get_name(env));
    if (name < 0) return std::nullopt;
    return name;
  } catch (const std::length_error&) {
    // The doubling race outgrew the preallocated cells: contention exceeded
    // max_contention by far more than the w.h.p. slack.
    return std::nullopt;
  }
}

Name AdaptiveConcurrentRenamer::get_name() {
  if (auto name = try_get_name()) return *name;
  throw std::runtime_error(
      "AdaptiveConcurrentRenamer: contention exceeded configured capacity");
}

}  // namespace loren
