// AdaptiveReBatching (paper Section 5.1).
//
// Renaming when neither n nor the contention k is known. The algorithm
// stacks ReBatching objects R_1, R_2, ... where R_i serves a namespace of
// size ~(1+eps)*2^i (see object_stack.h). A process
//   1. races through R_{2^l} for l = 0, 1, ... until some GetName succeeds
//      (each call is a full batched walk, with the backup phase *disabled*),
//   2. binary-searches R_{2^(l-1)+1} .. R_{2^l} for the smallest-indexed
//      object it can still win a name in.
// W.h.p. the final name is O(k) and the process takes O((log log k)^2)
// steps (Theorem 5.1).
#pragma once

#include <cstdint>

#include "renaming/object_stack.h"

namespace loren {

class AdaptiveReBatching {
 public:
  struct Options {
    BatchLayoutParams layout{};  // epsilon defaults to 1.0
    sim::Location base = 0;
    /// Safety valve: the largest object index the doubling race may touch.
    /// R_i holds ~(1+eps)*2^i cells, so unbounded growth would exhaust
    /// memory long before the w.h.p. guarantees let the race get there. A
    /// process that somehow fails beyond this bound returns -1.
    std::uint64_t max_object_index = 26;
  };

  AdaptiveReBatching() : AdaptiveReBatching(Options{}) {}
  explicit AdaptiveReBatching(Options options)
      : stack_(options.layout, options.base, options.max_object_index) {}

  /// Returns a unique name of value O(k) w.h.p., k = number of processes
  /// that ever invoke this.
  sim::Task<sim::Name> get_name(sim::Env& env);

  [[nodiscard]] ReBatchingStack& stack() { return stack_; }
  [[nodiscard]] const ReBatchingStack& stack() const { return stack_; }

 private:
  ReBatchingStack stack_;
};

}  // namespace loren
