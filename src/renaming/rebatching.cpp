#include "renaming/rebatching.h"

namespace loren {

using sim::Env;
using sim::Name;
using sim::Task;

ReBatching::ReBatching(std::uint64_t n, Options options)
    : layout_(n, options.layout),
      base_(options.base),
      backup_(options.backup),
      service_(options.service) {}

Task<bool> ReBatching::probe(Env& env, std::uint64_t logical) {
  if (service_ != nullptr) {
    co_return co_await service_->acquire(env, base_ + logical);
  }
  co_return co_await sim::tas(env, base_ + logical);
}

Task<Name> ReBatching::try_get_name(Env& env, std::uint64_t batch) {
  if (stats_ != nullptr) ++stats_->entered[batch];
  const std::uint64_t b = layout_.size(batch);
  const int t = layout_.probes(batch);
  for (int j = 0; j < t; ++j) {
    const std::uint64_t x = env.random_below(b);
    const std::uint64_t logical = layout_.offset(batch) + x;
    if (co_await probe(env, logical)) {
      co_return static_cast<Name>(base_ + logical);
    }
  }
  if (stats_ != nullptr) ++stats_->failed[batch];
  co_return -1;
}

Task<Name> ReBatching::get_name(Env& env) {
  // In service mode the service's creator sized the cell region; here we
  // only own the hardware-cell layout.
  if (service_ == nullptr) env.ensure_locations(end());
  for (std::uint64_t i = 0; i < layout_.num_batches(); ++i) {
    const Name u = co_await try_get_name(env, i);
    if (u != -1) co_return u;
  }
  if (backup_) {
    // Figure 1 lines 5-7: deterministic sweep; reached with probability
    // 1/n^(beta-o(1)) but indispensable for worst-case termination.
    if (stats_ != nullptr) ++stats_->backup_entries;
    for (std::uint64_t u = 0; u < layout_.total(); ++u) {
      if (co_await probe(env, u)) co_return static_cast<Name>(base_ + u);
    }
  }
  co_return -1;
}

}  // namespace loren
