// ServiceDirectory: the thread-exit flush rendezvous.
//
// A thread that exits without calling flush_thread_cache() used to strand
// its stashed names for the service's lifetime (the NameStash lives in
// the exiting thread's thread_ctx, and nobody else can reach it). The
// directory closes that leak: each service registers (instance id ->
// flush callback) on construction and unregisters first thing in its
// destructor; the per-thread ThreadCtx destructor walks its
// PerServiceTable and hands each still-registered service its per-thread
// payload to flush. The payload pointer is passed directly — the exiting
// thread is mid-TLS-destruction, so the callback must never re-enter
// thread_local lookups; it works only off the payload's cached pointers
// (counter node, stripe, epoch slot — all heap-owned by the service and
// guaranteed to outlive the thread).
//
// Locking: the directory mutex is held across the callback, so a service
// destructor's unregister() blocks until in-flight exit flushes drain —
// after unregister returns, no thread can touch the dying service again.
// Lock order is directory -> service internals; services never call into
// the directory while holding their own locks (register/unregister run in
// ctor/dtor bodies only). The mutex is a SimMutex because the flush
// callbacks contain LOREN_SIM_POINTs (stash flush, arena releases).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "platform/sim_point.h"

namespace loren {

class ServiceDirectory {
 public:
  /// `payload` is the thread's per-service context (the service's private
  /// PerService/PerElastic struct), passed type-erased.
  using FlushFn = void (*)(void* service, void* payload);

  static ServiceDirectory& instance() {
    static ServiceDirectory directory;
    return directory;
  }

  void register_service(std::uint64_t id, void* service, FlushFn fn) {
    std::lock_guard<SimMutex> lock(mu_);
    entries_[id] = Entry{service, fn};
  }

  void unregister_service(std::uint64_t id) {
    std::lock_guard<SimMutex> lock(mu_);
    entries_.erase(id);
  }

  /// Called by the exiting thread for each service id in its table; a
  /// no-op when the service was already destroyed (its names died with
  /// it). The lock is held across the callback — see the file comment.
  void flush(std::uint64_t id, void* payload) {
    std::lock_guard<SimMutex> lock(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end()) it->second.fn(it->second.service, payload);
  }

 private:
  struct Entry {
    void* service = nullptr;
    FlushFn fn = nullptr;
  };

  ServiceDirectory() = default;

  SimMutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace loren
