// ScheduleCache: memoized probe plans for heterogeneous group sizes.
//
// A fixed-capacity service computes its BatchLayout + FlatProbeSchedule
// once in the constructor. The elastic service creates shard groups at
// runtime with *different* holder counts — and a workload that oscillates
// between two load levels re-creates groups of the same two sizes over and
// over. The layout/schedule for a given (holders, params) pair is pure, so
// the cache hands out one immutable shared instance per holder count:
// resizing back to a size seen before costs a mutex-protected map lookup,
// not a layout recomputation, and retired groups can outlive the resize
// that replaced them while sharing their schedule with their successor.
//
// Entries are shared_ptr<const ...>: a ShardGroup keeps its schedule alive
// for its own lifetime (including limbo, after the service has moved on),
// and the cache never invalidates.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "renaming/batch_layout.h"
#include "renaming/probe_schedule.h"

namespace loren {

/// One immutable probe plan: the batch geometry for `n` holders and its
/// flattened schedule.
struct CachedSchedule {
  CachedSchedule(std::uint64_t n, const BatchLayoutParams& params)
      : layout(n, params), schedule(layout) {}

  BatchLayout layout;
  FlatProbeSchedule schedule;
};

/// Keyed by holder count; the layout params are fixed per cache (one cache
/// per service — every group of a service shares epsilon/beta/t0).
class ScheduleCache {
 public:
  explicit ScheduleCache(const BatchLayoutParams& params) : params_(params) {}

  std::shared_ptr<const CachedSchedule> get(std::uint64_t holders) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = entries_[holders];
    if (entry == nullptr) {
      entry = std::make_shared<const CachedSchedule>(holders, params_);
    }
    return entry;
  }

  [[nodiscard]] const BatchLayoutParams& params() const { return params_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  BatchLayoutParams params_;
  // sim:lock-ok(cold schedule-construction cache; map lookups and the
  // one-time layout build never hit a sim point)
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const CachedSchedule>> entries_;
};

}  // namespace loren
