// AcquireResult: the one shared vocabulary of acquisition failures.
//
// Both RenamingService and ElasticRenamingService historically hand-rolled
// the same negative sentinels (-1 exhausted, -2 sweep budget, -3 shed) as
// private `static constexpr sim::Name` members — three magic numbers that
// had to agree across two headers and every test that pattern-matched on
// them. This header is now the single source of truth: the services'
// constants are defined *from* this enum, so the numeric values cannot
// drift apart, and kLeaseExpired joins the family for the lease subsystem
// (src/lease/). The numeric values are frozen — tests, the bench JSON and
// any embedder treating names as raw int64 rely on them — so new failure
// kinds append (more negative), never renumber.
#pragma once

#include "sim/env.h"

namespace loren {

/// Negative sentinel returned in place of a name when an acquisition (or
/// a lease operation) cannot produce one. Any non-negative value is a
/// real name; `result < 0` is the one test an embedder needs.
enum class AcquireResult : sim::Name {
  /// The namespace is exhausted: every probe and the exhaustive fallback
  /// sweep found no free cell. (The seed's original -1.)
  kExhausted = -1,
  /// The bounded fallback sweep ran out of retry budget before covering
  /// the arena; the namespace may still have free cells. Retryable.
  kSweepBudgetExhausted = -2,
  /// The admission controller shed this call at saturation without
  /// touching shared memory. Retryable after backoff.
  kShed = -3,
  /// The caller's lease on the name expired and the reaper reclaimed the
  /// cell: the operation (renew, release) refers to a name this holder
  /// no longer owns. Never silent — the reclaimed cell may already be
  /// someone else's, so the stale operation is rejected, not applied.
  kLeaseExpired = -4,
};

/// The raw sentinel value, for APIs whose return type is sim::Name.
[[nodiscard]] constexpr sim::Name to_name(AcquireResult r) {
  return static_cast<sim::Name>(r);
}

}  // namespace loren
