// FlatProbeSchedule: the ReBatching probe plan, precomputed for the
// hand-inlined hot paths.
//
// BatchLayout answers offset/size/probes queries through three vectors,
// so the direct acquisition loop of the seed did two nested loops with
// four indexed loads per probe. The whole plan is static per layout —
// batch i contributes probes(i) identical (offset, size) probes — so it
// flattens into one contiguous array of log2 log2 n + O(1) slots that the
// hot path walks linearly: one pointer increment and two loads per probe,
// a single predictable branch, and the entire schedule for n = 2^20 fits
// in three cache lines.
#pragma once

#include <cstdint>
#include <vector>

#include "renaming/batch_layout.h"

namespace loren {

class FlatProbeSchedule {
 public:
  struct Slot {
    std::uint64_t offset;  // first cell of the batch this probe targets
    std::uint64_t size;    // batch size (the rng bound)
  };

  explicit FlatProbeSchedule(const BatchLayout& layout)
      : total_(layout.total()) {
    slots_.reserve(static_cast<std::size_t>(layout.max_probes_main_phase()));
    for (std::uint64_t i = 0; i < layout.num_batches(); ++i) {
      const Slot slot{layout.offset(i), layout.size(i)};
      for (int j = 0; j < layout.probes(i); ++j) slots_.push_back(slot);
    }
  }

  [[nodiscard]] const Slot* begin() const { return slots_.data(); }
  [[nodiscard]] const Slot* end() const { return slots_.data() + slots_.size(); }
  [[nodiscard]] std::size_t probes() const { return slots_.size(); }
  /// Namespace size; the backup sweep bound after a full miss.
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::vector<Slot> slots_;
  std::uint64_t total_;
};

}  // namespace loren
