#include "renaming/object_stack.h"

#include <stdexcept>

namespace loren {

ReBatchingStack::ReBatchingStack(BatchLayoutParams layout, sim::Location base,
                                 std::uint64_t max_index)
    : layout_(layout), base_(base), max_index_(max_index) {
  if (max_index_ < 1 || max_index_ > 40) {
    throw std::invalid_argument("ReBatchingStack max_index must be in [1, 40]");
  }
}

ReBatching& ReBatchingStack::object(std::uint64_t i) {
  if (i < 1 || i > max_index_) {
    throw std::out_of_range("ReBatchingStack object index");
  }
  std::scoped_lock lock(mu_);
  while (objects_.size() < i) {
    const std::uint64_t next = objects_.size() + 1;  // creating R_next
    ReBatching::Options opts;
    opts.layout = layout_;
    opts.base = ends_.empty() ? base_ : ends_.back();
    opts.backup = false;  // Section 5: GetName may return -1
    objects_.push_back(
        std::make_unique<ReBatching>(std::uint64_t{1} << next, opts));
    ends_.push_back(objects_.back()->end());
  }
  return *objects_[i - 1];
}

std::uint64_t ReBatchingStack::object_index_of(sim::Name name) const {
  std::scoped_lock lock(mu_);
  if (name < 0) return 0;
  const auto loc = static_cast<sim::Location>(name);
  for (std::uint64_t i = 0; i < ends_.size(); ++i) {
    if (loc < ends_[i]) {
      const sim::Location begin = i == 0 ? base_ : ends_[i - 1];
      return loc >= begin ? i + 1 : 0;
    }
  }
  return 0;
}

std::uint64_t ReBatchingStack::instantiated() const {
  std::scoped_lock lock(mu_);
  return objects_.size();
}

}  // namespace loren
