#include "renaming/batch_layout.h"

#include <cmath>
#include <stdexcept>

namespace loren {

namespace {

std::uint64_t ceil_log2_log2(std::uint64_t n) {
  // kappa = ceil(log2 log2 n); 0 for n <= 2 (log2 log2 degenerates).
  if (n <= 2) return 0;
  const double ll = std::log2(std::log2(static_cast<double>(n)));
  const auto k = static_cast<std::uint64_t>(std::ceil(ll - 1e-12));
  return k;
}

}  // namespace

BatchLayout::BatchLayout(std::uint64_t n, const BatchLayoutParams& params)
    : n_(n), params_(params) {
  if (n == 0) throw std::invalid_argument("BatchLayout: n must be >= 1");
  if (params.epsilon <= 0.0) {
    throw std::invalid_argument("BatchLayout: epsilon must be > 0");
  }
  if (params.beta < 1) throw std::invalid_argument("BatchLayout: beta >= 1");

  const double eps = params.epsilon;
  const std::uint64_t kappa = ceil_log2_log2(n);

  // Eq. (1): b_0 = n, b_i = ceil(eps*n / 2^i).
  sizes_.reserve(kappa + 1);
  sizes_.push_back(n);
  for (std::uint64_t i = 1; i <= kappa; ++i) {
    const double b = eps * static_cast<double>(n) / std::exp2(static_cast<double>(i));
    sizes_.push_back(static_cast<std::uint64_t>(std::ceil(b)));
  }

  offsets_.reserve(sizes_.size());
  for (std::uint64_t s : sizes_) {
    offsets_.push_back(total_);
    total_ += s;
  }

  // Eq. (2): t_0 = ceil(17 ln(8e/eps) / eps), t_i = 1, t_kappa = beta.
  const int t0 =
      params.t0_override > 0
          ? params.t0_override
          : static_cast<int>(std::ceil(17.0 * std::log(8.0 * std::exp(1.0) / eps) / eps));
  probes_.assign(sizes_.size(), 1);
  probes_.front() = t0;
  probes_.back() = kappa == 0 ? std::max(t0, params.beta) : params.beta;
  for (int t : probes_) probe_sum_ += t;
}

double BatchLayout::survivor_bound(std::uint64_t i, double delta) const {
  if (i == 0 || i > kappa()) {
    throw std::out_of_range("survivor_bound defined for 1 <= i <= kappa");
  }
  const auto nd = static_cast<double>(n_);
  if (i == kappa()) {
    const double lg = std::log2(nd);
    return lg * lg;
  }
  const double exponent = std::exp2(static_cast<double>(i)) +
                          static_cast<double>(i) + delta;
  return params_.epsilon * nd / std::exp2(exponent);
}

}  // namespace loren
