#include "renaming/service.h"

#include <algorithm>
#include <vector>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "platform/sim_point.h"
#include "renaming/batch_claim.h"
#include "renaming/service_directory.h"
#include "renaming/thread_ctx.h"
#include "telemetry/trace.h"

namespace {

using loren::RegisteredCounter;

/// Everything the acquire/release hot path needs from the calling thread,
/// behind a single thread_local access: the dense thread slot (the
/// home-shard hash), the cached per-thread generator (the seed path
/// re-derived one from a shared ticket on *every* call), and a small
/// per-service state table — the sticky shard hint and this thread's
/// registered counter node. The slot/table machinery is shared with the
/// elastic service (renaming/thread_ctx.h).
///
/// The sticky hint is what keeps a loaded home shard from becoming a tax:
/// without it, a thread whose home shard has filled walks that shard's
/// entire probe schedule (t_0 ~ 17 ln(8e/eps)/eps probes on B_0 alone)
/// and fails it on *every* acquisition before stealing. The hint moves as
/// soon as wins start arriving late in the schedule (the shard is running
/// hot) or the schedule misses outright, so steady-state work goes
/// straight to a shard with free cells; after a reset the hint is merely
/// stale, never wrong, because any shard can serve any thread.
struct PerService {
  std::uint32_t shard = 0;
  RegisteredCounter::Node* counter = nullptr;
  /// This thread's stripe of the service's metrics registry, resolved
  /// alongside the counter node so a record is one cached-pointer deref
  /// plus a relaxed add (telemetry/metrics.h).
  loren::telemetry::MetricsRegistry::ThreadStripe* stripe = nullptr;
  /// Detailed-mode sampling phases (every (mask+1)-th op observed).
  /// Acquire and release keep separate phases: churn loops alternate the
  /// two ops strictly, so a shared counter would park one side on a
  /// parity the mask never selects.
  std::uint32_t op_tick = 0;
  std::uint32_t rel_tick = 0;
  /// The thread-local name cache (renaming/thread_ctx.h): released names
  /// parked here are re-issued to this thread with no shared-memory
  /// traffic at all. Tagged with the service's reset generation.
  loren::NameStash stash;
  /// This thread's lease heartbeat cell (null until the first op under a
  /// leasing service; heap-owned by the LeaseTable, outlives the thread).
  loren::lease::Heartbeat* hb = nullptr;
  /// Sampled reap-poll phase (see RenamingService::kLeasePollMask).
  std::uint32_t lease_poll = 0;
};

struct ThreadCtx {
  std::uint64_t slot;
  loren::Xoshiro256 rng;
  loren::PerServiceTable<PerService> services;

  explicit ThreadCtx(std::uint64_t seed, std::uint64_t slot_)
      : slot(slot_), rng(loren::mix_seed(seed, slot_)) {}

  /// Thread exit: hand every still-registered service its per-thread
  /// state so stashed names are flushed, not stranded (the thread-exit
  /// leak fix — see renaming/service_directory.h). Runs during TLS
  /// destruction; the directory callback works only off the payload's
  /// cached pointers.
  ~ThreadCtx() {
    services.for_each([](std::uint64_t id, PerService& p) {
      loren::ServiceDirectory::instance().flush(id, &p);
    });
  }

  PerService& for_service(std::uint64_t service_id, std::uint64_t home,
                          std::uint32_t stash_capacity) {
    return services.for_service(service_id, [home, stash_capacity](PerService& p) {
      p.shard = static_cast<std::uint32_t>(home);
      p.stash.configure(stash_capacity);
    });
  }
};

/// The rng seed is fixed by the first service a thread touches; streams
/// stay independent across threads either way, which is all the analysis
/// needs.
ThreadCtx& thread_ctx(std::uint64_t seed) {
  thread_local ThreadCtx ctx(seed, loren::dense_thread_slot());
  return ctx;
}

std::uint64_t padded_shard_bytes(std::uint64_t n, std::uint64_t shards,
                                 const loren::BatchLayoutParams& params) {
  const std::uint64_t holders = (n + shards - 1) / shards;
  return loren::BatchLayout(holders, params).total() *
         loren::TasArena::kCacheLine;
}

}  // namespace

namespace loren {

using sim::Name;

std::uint64_t auto_shard_count(std::uint64_t n, const BatchLayoutParams& params,
                               std::uint32_t hw_threads) {
  // hardware_concurrency() may legitimately return 0 ("unknown"). Treat
  // it as 1 — the conservative reading, made explicit here rather than
  // left to the accident that `shards < 0u` is unsatisfiable (the clamp
  // pins the hw==0 contract down so it is documented and, with hw
  // injectable, unit-tested; the L1-size condition below still drives
  // the shard count up for large namespaces).
  const std::uint64_t hw = std::max<std::uint32_t>(1u, hw_threads);
  // Grow while (a) hardware threads would share home shards or (b) a
  // padded shard spills out of half an L1d — the sticky hot path is
  // fastest when a thread's whole probe target is cache-resident — but
  // never shard below 64 holders.
  constexpr std::uint64_t kHalfL1 = 32 * 1024;
  std::uint64_t shards = 1;
  while (n / (shards * 2) >= 64 &&
         (shards < hw || padded_shard_bytes(n, shards, params) > kHalfL1)) {
    shards <<= 1;
  }
  return shards;
}

std::uint64_t auto_shard_count(std::uint64_t n,
                               const BatchLayoutParams& params) {
  return auto_shard_count(n, params, std::thread::hardware_concurrency());
}

std::uint64_t shard_count_for(std::uint64_t n, std::uint64_t requested,
                              const BatchLayoutParams& params,
                              std::uint32_t hw_threads) {
  if (requested == 0) return auto_shard_count(n, params, hw_threads);
  std::uint64_t shards = 1;
  while (shards < requested) shards <<= 1;  // round up to a power of two
  while (shards > 1 && shards > n) shards >>= 1;
  return shards;
}

std::uint64_t shard_count_for(std::uint64_t n, std::uint64_t requested,
                              const BatchLayoutParams& params) {
  return shard_count_for(n, requested, params,
                         std::thread::hardware_concurrency());
}

RenamingService::RenamingService(std::uint64_t n,
                                 RenamingServiceOptions options)
    : options_(options), id_(next_service_instance_id()) {
  if (n == 0) throw std::invalid_argument("RenamingService: n must be >= 1");
  options_.layout_extra.epsilon = options_.epsilon;

  const std::uint64_t shards =
      shard_count_for(n, options_.shards, options_.layout_extra);

  shard_n_ = (n + shards - 1) / shards;
  shard_mask_ = shards - 1;
  shard_shift_ = 0;
  for (std::uint64_t s = shards; s > 1; s >>= 1) ++shard_shift_;
  shards_.reserve(shards);
  for (std::uint64_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_n_, options_.layout_extra,
                                              options_.arena_layout,
                                              options_.arena_kind));
  }
  shard_stride_ = shards_[0]->layout.total();
  capacity_ = shard_stride_ << shard_shift_;

  // Resolve the telemetry surface once: attached registry = detailed mode
  // (per-op histograms live), internal fallback = event counters only.
  // Metric ids are interned here so the hot paths never touch a name.
  if (options_.telemetry.registry != nullptr) {
    ins_.registry = options_.telemetry.registry;
    ins_.detailed = true;
  } else {
    owned_metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    ins_.registry = owned_metrics_.get();
  }
  telemetry::MetricsRegistry& reg = *ins_.registry;
  ins_.cache_hits = reg.counter("service.cache.hits");
  ins_.cache_misses = reg.counter("service.cache.misses");
  ins_.sweep_budget_exhausted = reg.counter("service.sweep.budget_exhausted");
  ins_.shard_migrations = reg.counter("service.shard.migrations");
  ins_.sweeps = reg.counter("service.sweep.invocations");
  ins_.stash_spills = reg.counter("service.stash.spills");
  ins_.stash_flushes = reg.counter("service.stash.flushes");
  ins_.acquire_ticks = reg.histogram("service.acquire.ticks");
  ins_.release_ticks = reg.histogram("service.release.ticks");
  ins_.probe_len = reg.histogram("service.acquire.probe_len");
  ins_.lost_races = reg.histogram("service.acquire.lost_races");
  ins_.ring_walk = reg.histogram("service.batch.ring_walk");

  if (options_.control.mode != control::ControlMode::kOff) {
    // The controller is fed from the per-op latency histograms, so
    // enabling control implies detailed sampling even on the internal
    // registry (the sampled 1-in-256 cadence keeps the hot-path cost
    // inside the telemetry overhead contract either way).
    ins_.detailed = true;
    static_assert(control::AdaptiveController::kStashFloor ==
                  NameStash::kMinCapacity);
    control::AdaptiveController::KnobSeeds seeds;
    seeds.stash_cap = NameStash::kMaxCapacity;
    controller_ = std::make_unique<control::AdaptiveController>(
        options_.control, ins_.registry, ins_.acquire_ticks, seeds);
  }

  if (options_.lease.ttl_ticks != 0) {
    leases_ = std::make_unique<lease::LeaseTable>(options_.lease, ins_.registry);
    leases_->set_reclaimer(&RenamingService::reclaim_cell, this);
  }
  // Last: once registered, exiting threads may flush into us, so every
  // member above must already be live.
  ServiceDirectory::instance().register_service(
      id_, this, &RenamingService::directory_flush);
}

RenamingService::~RenamingService() {
  // Unregister first: the directory holds its lock across in-flight exit
  // flushes, so after this returns no thread can touch the dying service.
  ServiceDirectory::instance().unregister_service(id_);
}

bool RenamingService::reclaim_cell(void* ctx, Name name) {
  auto* self = static_cast<RenamingService*>(ctx);
  if (name < 0 || static_cast<std::uint64_t>(name) >= self->capacity_) {
    return false;
  }
  const std::uint64_t si = static_cast<std::uint64_t>(name) & self->shard_mask_;
  const std::uint64_t local =
      static_cast<std::uint64_t>(name) >> self->shard_shift_;
  return self->shards_[si]->seg.try_release(local);
}

void RenamingService::directory_flush(void* service, void* payload) {
  static_cast<RenamingService*>(service)->flush_thread_state(payload);
}

void RenamingService::flush_thread_state(void* payload) {
  auto& per = *static_cast<PerService*>(payload);
  NameStash& st = per.stash;
  // A stash stranded across a reset() holds dead values — the epoch bump
  // already freed those cells; discard, don't double-free.
  // mo:relaxed-ok(invalidation stamp compare; see cache_gen_'s contract)
  if (st.gen() != cache_gen_.load(std::memory_order_relaxed)) {
    st.clear();
    return;
  }
  if (st.empty()) return;
  // Mid-TLS-destruction: only the payload's cached pointers are legal.
  // The counter node is heap-owned and registrable without TLS; the
  // stripe is not (MetricsRegistry::stripe() probes a thread_local
  // table), so a thread that never cached one flushes uninstrumented.
  if (per.counter == nullptr) per.counter = &live_.register_thread();
  if (per.stripe != nullptr) per.stripe->add(ins_.stash_flushes);
  Name buf[NameStash::kMaxCapacity];
  const std::uint32_t n = st.take_oldest(buf, st.size());
  release_shared(buf, n, *per.counter, per.stripe, per.hb);
}

void RenamingService::lease_heartbeat(
    lease::Heartbeat*& hb, std::uint32_t& poll, NameStash* st,
    RegisteredCounter::Node& counter,
    telemetry::MetricsRegistry::ThreadStripe& stripe) {
  if (hb == nullptr) hb = &leases_->register_thread();
  const std::uint64_t now = leases_->now();
  // mo:relaxed-ok(single-writer heartbeat stamp; the reaper's max() with
  // the lease deadline makes a stale read expiry-delaying, never
  // expiry-causing — see lease/lease_table.h)
  const std::uint64_t prev = hb->last.load(std::memory_order_relaxed);
  // mo:relaxed-ok(same single-writer stamp contract)
  hb->last.store(now, std::memory_order_relaxed);
  if (prev != 0 && now - prev >= leases_->ttl() && st != nullptr) {
    // This thread went quiet for a full ttl: its leases may have been
    // reaped, so every stashed name must be revalidated before it can be
    // re-issued. A name whose lease is gone was already reclaimed into
    // the arena — dropping the stash entry is the correct (and only
    // safe) move.
    cache_sync_gen(*st);
    if (!st->empty()) {
      Name buf[NameStash::kMaxCapacity];
      const std::uint32_t n = st->take_oldest(buf, st->size());
      for (std::uint32_t i = 0; i < n; ++i) {
        if (leases_->validate(buf[i], hb)) st->push(buf[i]);
      }
    }
  }
  if ((poll++ & kLeasePollMask) == 0) {
    const std::size_t reclaimed = leases_->try_reap(now, &stripe);
    if (reclaimed > 0) {
      RegisteredCounter::add(counter, -static_cast<std::int64_t>(reclaimed));
      if (controller_ != nullptr) controller_->note_release();
    }
  }
}

Name RenamingService::renew_lease(Name name) {
  if (leases_ == nullptr) return name;
  if (name < 0 || static_cast<std::uint64_t>(name) >= capacity_) {
    return kLeaseExpired;
  }
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_,
                              options_.name_cache_capacity);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  lease_heartbeat(per.hb, per.lease_poll,
                  options_.name_cache ? &per.stash : nullptr, *per.counter,
                  *per.stripe);
  return leases_->renew(name, leases_->now(), per.hb, per.stripe) ? name
                                                          : kLeaseExpired;
}

std::size_t RenamingService::reap_expired() {
  if (leases_ == nullptr) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_,
                              options_.name_cache_capacity);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  // Deliberately NO heartbeat stamp here: reap_expired is a maintenance
  // op (a dedicated reaper holds nothing; the post-crash drain must be
  // able to expire the *caller's own* abandoned names). Holders keep
  // their leases alive through regular ops or renew_lease().
  const std::size_t reclaimed = leases_->reap(leases_->now(), per.stripe);
  if (reclaimed > 0) {
    RegisteredCounter::add(*per.counter,
                           -static_cast<std::int64_t>(reclaimed));
    if (controller_ != nullptr) controller_->note_release();
  }
  return reclaimed;
}

Name RenamingService::probe_shard(Shard& shard, std::uint64_t shard_index,
                                  Xoshiro256& rng, bool& late,
                                  std::uint32_t* probes,
                                  std::uint32_t* lost_races) {
  const FlatProbeSchedule::Slot* const first = shard.schedule.begin();
  if (shard.seg.kind() == ArenaKind::kBitmap) {
    // Word-granular probes: the slot's random draw nominates a word and
    // the 64-way scan claims any free cell in it, so a probe fails only
    // when its whole word is full (see tas/bitmap_arena.h).
    for (const auto* slot = first; slot != shard.schedule.end(); ++slot) {
      const std::uint64_t x = slot->offset + rng.below(slot->size);
      const std::int64_t cell = shard.seg.try_claim_word(x, lost_races);
      if (cell >= 0) {
        late = (slot - first) >= kMigrateThreshold;
        if (probes != nullptr) {
          *probes += static_cast<std::uint32_t>(slot - first) + 1;
        }
        return static_cast<Name>(
            (static_cast<std::uint64_t>(cell) << shard_shift_) | shard_index);
      }
    }
    if (probes != nullptr) {
      *probes += static_cast<std::uint32_t>(shard.schedule.end() - first);
    }
    return -1;
  }
  for (const auto* slot = first; slot != shard.schedule.end(); ++slot) {
    const std::uint64_t x = slot->offset + rng.below(slot->size);
    // sim:exempt(forwards to the arena RMW, which carries the sim point)
    if (shard.seg.test_and_set(x)) {
      late = (slot - first) >= kMigrateThreshold;
      if (probes != nullptr) {
        *probes += static_cast<std::uint32_t>(slot - first) + 1;
      }
      // Interleaved encoding: local * S + shard, so decode is shift/mask.
      return static_cast<Name>((x << shard_shift_) | shard_index);
    }
  }
  if (probes != nullptr) {
    *probes += static_cast<std::uint32_t>(shard.schedule.end() - first);
  }
  return -1;
}

void RenamingService::cache_sync_gen(NameStash& st) const {
  const std::uint64_t gen = cache_gen_.load(std::memory_order_relaxed);
  if (st.gen() != gen) {
    // reset() ran since the stash was filled: the epoch bump already made
    // every stashed cell winnable again, so the values are simply stale.
    st.clear();
    st.set_gen(gen);
  }
}

void RenamingService::cache_note_acquire(
    NameStash& st, bool hit, RegisteredCounter::Node& counter,
    telemetry::MetricsRegistry::ThreadStripe& stripe,
    const lease::Heartbeat* hb) {
  const NameStash::WindowStats ws = st.note_acquire(hit);
  if (ws.rolled) {
    stripe.add(ins_.cache_hits, ws.hits);
    stripe.add(ins_.cache_misses, ws.misses);
    // The controller's capacity bound is re-applied at every adaptation
    // rollup, so the stash's own doubling can never outrun it for more
    // than one window; the excess spill below drains what the clamp cut.
    if (controller_ != nullptr) st.clamp_capacity(controller_->stash_cap());
    if (st.excess() > 0) cache_spill(st, st.excess(), counter, stripe, hb);
  }
}

void RenamingService::cache_spill(
    NameStash& st, std::uint32_t k, RegisteredCounter::Node& counter,
    telemetry::MetricsRegistry::ThreadStripe& stripe,
    const lease::Heartbeat* hb) {
  Name buf[NameStash::kMaxCapacity];
  const std::uint32_t n = st.take_oldest(buf, k);
  // Names leave the (thread-private) stash and hit shared cells/counter.
  LOREN_SIM_POINT("stash.spill");
  LOREN_TRACE("stash.spill", n);
  stripe.add(ins_.stash_spills, n);
  release_shared(buf, n, counter, &stripe, hb);
}

Name RenamingService::acquire() {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.counter,
                    *per.stripe);
  }
  // Detailed mode: every (mask+1)-th op is the observed sample — one
  // rdtsc pair plus probe/lost-race accumulation into stack locals,
  // recorded as single stripe adds at the exits, never an RMW on shared
  // state. The unobserved ops pay one counter increment and a
  // predictable branch, which is what keeps detailed mode inside the
  // <= 5% hot-path overhead contract (docs/observability.md).
  const bool timed =
      ins_.detailed && ((per.op_tick++ & kLatencySampleMask) == 0);
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  const auto finish = [&](Name name) {
    if (timed) {
      per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
    }
    return name;
  };
  if (controller_ != nullptr) {
    controller_->note_ops(*per.stripe, 1, per.op_tick);
  }
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st);
    if (!st.empty()) {
      // The whole hot path: a pop from thread-owned memory. The name's
      // cell stayed taken and the live counter never moved, so no shared
      // state needs touching at all.
      const Name name = static_cast<Name>(st.pop());
      cache_note_acquire(st, true, *per.counter, *per.stripe, per.hb);
      return finish(name);
    }
    cache_note_acquire(st, false, *per.counter, *per.stripe, per.hb);
  }
  // Admission control gates the *shared* namespace only: a stash hit
  // above still serves (it touches no shared state), but a shedding
  // controller fails the call here before any probe or sweep.
  if (controller_ != nullptr && !controller_->admit(*per.stripe)) {
    return finish(kShed);
  }
  std::uint32_t probes = 0;
  std::uint32_t lost = 0;
  std::uint32_t* const pprobes = timed ? &probes : nullptr;
  std::uint32_t* const plost = timed ? &lost : nullptr;
  const auto note_probes = [&] {
    if (timed) {
      per.stripe->record(ins_.probe_len, probes);
      if (lost != 0) per.stripe->record(ins_.lost_races, lost);
    }
  };
  const std::uint64_t S = shard_mask_ + 1;
  // Fast path: the sticky shard; on pressure (late win) migrate ringward,
  // on a full miss steal ringward, so loaded shards shed to neighbours.
  for (std::uint64_t k = 0; k < S; ++k) {
    const std::uint64_t si = (per.shard + k) & shard_mask_;
    bool late = false;
    const Name name = probe_shard(*shards_[si], si, ctx.rng, late, pprobes, plost);
    if (name >= 0) {
      if (k != 0) {
        per.shard = static_cast<std::uint32_t>(si);
        per.stripe->add(ins_.shard_migrations);
        LOREN_TRACE("service.migrate", si);
      } else if (late) {
        per.shard = static_cast<std::uint32_t>((si + 1) & shard_mask_);
        per.stripe->add(ins_.shard_migrations);
        LOREN_TRACE("service.migrate", per.shard);
      }
      RegisteredCounter::add(*per.counter, 1);
      if (leases_ != nullptr) {
        leases_->open(name, leases_->now(), per.hb, per.stripe);
      }
      note_probes();
      return finish(name);
    }
  }
  // Every schedule missed (probability 1/n^(beta-o(1)) per shard unless
  // the namespace really is near-exhausted): deterministic sweep — a
  // one-cell run-claim per shard, word-at-a-time on a bitmap substrate
  // (64 cells per snapshot) — so acquire() fails only when zero cells
  // are free, or fails fast with kSweepBudgetExhausted once the bounded
  // retry budget (if configured) is spent.
  const std::uint64_t sweep_cap =
      options_.sweep_retry_budget == 0
          ? S
          : std::min<std::uint64_t>(S, options_.sweep_retry_budget);
  for (std::uint64_t k = 0; k < sweep_cap; ++k) {
    const std::uint64_t si = (per.shard + k) & shard_mask_;
    LOREN_SIM_POINT("service.sweep");
    per.stripe->add(ins_.sweeps);
    LOREN_TRACE("service.sweep", si);
    std::uint64_t u = 0;
    if (shards_[si]->seg.try_claim_run(0, shard_stride_, 1, &u, plost) == 1) {
      per.shard = static_cast<std::uint32_t>(si);
      RegisteredCounter::add(*per.counter, 1);
      const Name name = static_cast<Name>((u << shard_shift_) | si);
      if (leases_ != nullptr) {
        leases_->open(name, leases_->now(), per.hb, per.stripe);
      }
      note_probes();
      return finish(name);
    }
  }
  note_probes();
  if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
  if (sweep_cap < S) {
    per.stripe->add(ins_.sweep_budget_exhausted);
    return finish(kSweepBudgetExhausted);
  }
  return finish(kExhausted);
}

std::uint64_t RenamingService::claim_encoded(Shard& shard,
                                             std::uint64_t shard_index,
                                             std::uint64_t from,
                                             std::uint64_t to, std::uint64_t k,
                                             Name* out,
                                             std::uint32_t* lost_races) {
  return claim_encode_inplace(
      [&](std::uint64_t* raw) {
        return shard.seg.try_claim_run(from, to, k, raw, lost_races);
      },
      shard_shift_, shard_index, out);
}

std::uint64_t RenamingService::acquire_many(std::uint64_t k, Name* out) {
  if (k == 0) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.counter,
                    *per.stripe);
  }
  const bool timed =
      ins_.detailed && ((per.op_tick++ & kLatencySampleMask) == 0);
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  std::uint64_t got = 0;
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st);
    while (got < k && !st.empty()) {
      out[got++] = static_cast<Name>(st.pop());
      cache_note_acquire(st, true, *per.counter, *per.stripe, per.hb);
    }
    if (got == k) {
      if (controller_ != nullptr) {
        controller_->note_ops(*per.stripe, got, per.op_tick);
      }
      if (timed) {
        per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
      }
      return got;
    }
  }
  std::uint64_t want = k - got;
  if (controller_ != nullptr) {
    if (!controller_->admit(*per.stripe)) {
      // Shedding: hand back whatever the stash served, touch nothing
      // shared. The partial batch is the admission-control contract, not
      // an exhaustion signal.
      controller_->note_ops(*per.stripe, got, per.op_tick);
      if (timed) {
        per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
      }
      return got;
    }
    // The batch knob: one call claims at most batch_limit() names from
    // the shared namespace, whatever was asked.
    want = std::min<std::uint64_t>(want, controller_->batch_limit());
  }
  std::uint32_t probes = 0;
  std::uint32_t lost = 0;
  std::uint32_t* const pprobes = ins_.detailed ? &probes : nullptr;
  std::uint32_t* const plost = ins_.detailed ? &lost : nullptr;
  // The shared seed-and-run-claim ring walk (renaming/batch_claim.h): a
  // shortfall past its sweep backstop means fewer than k cells were free
  // across the whole namespace when scanned — unless the bounded sweep
  // budget truncated the scan, which is counted, not conflated.
  bool budget_hit = false;
  BatchWalkStats walk;
  const std::uint64_t shared_got = batch_claim_ring(
      shard_mask_, shard_shift_, shard_stride_, &per.shard, want, out + got,
      [&](std::uint64_t si, bool* late) {
        return probe_shard(*shards_[si], si, ctx.rng, *late, pprobes, plost);
      },
      [&](std::uint64_t si, std::uint64_t from, std::uint64_t to,
          std::uint64_t budget, Name* dst) {
        return claim_encoded(*shards_[si], si, from, to, budget, dst, plost);
      },
      options_.sweep_retry_budget, &budget_hit, &walk);
  if (budget_hit) {
    per.stripe->add(ins_.sweep_budget_exhausted);
  }
  if (controller_ != nullptr) {
    // A clamped request coming back short is still a failed shared
    // acquisition from the controller's seat — the walk scanned and
    // found less than it wanted.
    if (budget_hit || shared_got < want) {
      controller_->note_saturation(*per.stripe);
    }
    controller_->note_ops(*per.stripe, got + shared_got, per.op_tick);
  }
  if (walk.sweep_shards > 0) {
    per.stripe->add(ins_.sweeps, walk.sweep_shards);
    LOREN_TRACE("service.sweep", walk.sweep_shards);
  }
  if (ins_.detailed) {
    per.stripe->record(ins_.ring_walk, walk.ring_shards);
    if (probes != 0) per.stripe->record(ins_.probe_len, probes);
    if (lost != 0) per.stripe->record(ins_.lost_races, lost);
  }
  if (shared_got > 0) {
    RegisteredCounter::add(*per.counter, static_cast<std::int64_t>(shared_got));
    if (leases_ != nullptr) {
      const std::uint64_t lnow = leases_->now();
      for (std::uint64_t i = 0; i < shared_got; ++i) {
        leases_->open(out[got + i], lnow, per.hb, per.stripe);
      }
    }
  }
  if (options_.name_cache) {
    for (std::uint64_t i = 0; i < shared_got; ++i) {
      cache_note_acquire(per.stash, false, *per.counter, *per.stripe, per.hb);
    }
  }
  if (timed) {
    per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
  }
  return got + shared_got;
}

std::uint64_t RenamingService::release_shared(
    const Name* names, std::uint64_t count, RegisteredCounter::Node& counter,
    telemetry::MetricsRegistry::ThreadStripe* stripe,
    const lease::Heartbeat* hb) {
  std::uint64_t freed = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Name name = names[i];
    if (name < 0 || static_cast<std::uint64_t>(name) >= capacity_) continue;
    if (leases_ != nullptr && !leases_->close(name, hb, stripe) &&
        leases_->release_guard()) {
      // The reaper won the close: the cell was already reclaimed (and
      // possibly reissued to someone else) — a late release must be
      // rejected here, never applied. The guard trip is counted.
      continue;
    }
    const std::uint64_t si = static_cast<std::uint64_t>(name) & shard_mask_;
    const std::uint64_t local = static_cast<std::uint64_t>(name) >> shard_shift_;
    if (shards_[si]->seg.try_release(local)) ++freed;
  }
  if (freed > 0) {
    RegisteredCounter::add(counter, -static_cast<std::int64_t>(freed));
    // Shared capacity really freed (stash absorbs don't count — their
    // cells stay taken): end any admission-control saturation episode.
    if (controller_ != nullptr) controller_->note_release();
  }
  return freed;
}

std::uint64_t RenamingService::release_many(const Name* names,
                                            std::uint64_t count) {
  if (count == 0) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.counter,
                    *per.stripe);
  }
  if (!options_.name_cache) {
    return release_shared(names, count, *per.counter, per.stripe, per.hb);
  }
  NameStash& st = per.stash;
  cache_sync_gen(st);
  std::uint64_t freed = 0;
  // Names the stash cannot absorb are forwarded to the shared path in
  // chunks, so an arbitrarily long batch still does O(count / chunk)
  // counter adds.
  Name shared_buf[NameStash::kMaxCapacity];
  std::uint32_t n_shared = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Name name = names[i];
    if (name < 0 || static_cast<std::uint64_t>(name) >= capacity_) continue;
    if (st.contains(name)) continue;  // same-thread double release
    if (!st.full()) {
      const std::uint64_t si = static_cast<std::uint64_t>(name) & shard_mask_;
      const std::uint64_t local =
          static_cast<std::uint64_t>(name) >> shard_shift_;
      if (shards_[si]->seg.read(local) != 1) continue;  // not held
      // Absorbing a name re-homes its lease onto this thread's heartbeat
      // (the original holder may exit; the stash must keep it alive). A
      // rebind the reaper already beat means the cell isn't ours to park.
      if (leases_ != nullptr &&
          !leases_->rebind(name, leases_->now(), per.hb) &&
          leases_->release_guard()) {
        continue;
      }
      st.push(name);
      ++freed;
      continue;
    }
    shared_buf[n_shared++] = name;
    if (n_shared == NameStash::kMaxCapacity) {
      freed += release_shared(shared_buf, n_shared, *per.counter, per.stripe,
                              per.hb);
      n_shared = 0;
    }
  }
  if (n_shared > 0) {
    freed += release_shared(shared_buf, n_shared, *per.counter, per.stripe,
                              per.hb);
  }
  return freed;
}

bool RenamingService::release(Name name) {
  if (name < 0 || static_cast<std::uint64_t>(name) >= capacity_) return false;
  const std::uint64_t si = static_cast<std::uint64_t>(name) & shard_mask_;
  const std::uint64_t local = static_cast<std::uint64_t>(name) >> shard_shift_;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  if (leases_ != nullptr) {
    if (per.counter == nullptr) {
      per.counter = &live_.register_thread();
      per.stripe = &ins_.registry->stripe();
    }
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.counter,
                    *per.stripe);
  }
  const bool timed =
      ins_.detailed && ((per.rel_tick++ & kLatencySampleMask) == 0);
  if (timed && per.stripe == nullptr) per.stripe = &ins_.registry->stripe();
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  const auto finish = [&](bool ok) {
    if (timed) {
      per.stripe->record(ins_.release_ticks, telemetry::trace_ticks() - t0);
    }
    return ok;
  };
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st);
    if (st.contains(name)) return finish(false);  // same-thread double release
    // The cell must actually be taken for the release to be legitimate; a
    // plain load suffices (the cell stays taken while stashed), and for a
    // conforming caller the line is still in this core's cache from the
    // acquisition. Contract-violating races (two threads releasing one
    // held name) are undetectable without the RMW — see release()'s
    // contract in service.h.
    if (shards_[si]->seg.read(local) != 1) return finish(false);
    // Absorbing re-homes the lease onto this thread (see release_many).
    if (leases_ != nullptr &&
        !leases_->rebind(name, leases_->now(), per.hb) &&
        leases_->release_guard()) {
      return finish(false);
    }
    if (st.full()) {
      if (per.counter == nullptr) {
        per.counter = &live_.register_thread();
        per.stripe = &ins_.registry->stripe();
      }
      cache_spill(st, st.capacity() / 2 + 1, *per.counter, *per.stripe, per.hb);
    }
    st.push(name);
    return finish(true);
  }
  if (leases_ != nullptr && !leases_->close(name, per.hb, per.stripe) &&
      leases_->release_guard()) {
    // The reaper won: the cell was reclaimed (and possibly reissued) —
    // reject the late release rather than free someone else's cell.
    return finish(false);
  }
  if (!shards_[si]->seg.try_release(local)) return finish(false);
  if (per.counter == nullptr) {
    per.counter = &live_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  RegisteredCounter::add(*per.counter, -1);
  if (controller_ != nullptr) controller_->note_release();
  return finish(true);
}

std::uint64_t RenamingService::flush_thread_cache() {
  if (!options_.name_cache) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  NameStash& st = per.stash;
  cache_sync_gen(st);
  if (per.stripe == nullptr) per.stripe = &ins_.registry->stripe();
  const NameStash::WindowStats ws = st.take_partial_window();
  if (ws.rolled) {
    per.stripe->add(ins_.cache_hits, ws.hits);
    per.stripe->add(ins_.cache_misses, ws.misses);
  }
  if (st.empty()) return 0;
  if (per.counter == nullptr) per.counter = &live_.register_thread();
  Name buf[NameStash::kMaxCapacity];
  const std::uint32_t n = st.take_oldest(buf, st.size());
  LOREN_SIM_POINT("stash.flush");
  LOREN_TRACE("stash.flush", n);
  per.stripe->add(ins_.stash_flushes);
  return release_shared(buf, n, *per.counter, per.stripe, per.hb);
}

std::uint32_t RenamingService::thread_cache_size() const {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  cache_sync_gen(per.stash);
  return per.stash.size();
}

std::uint32_t RenamingService::thread_cache_capacity() const {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_, options_.name_cache_capacity);
  return per.stash.capacity();
}

void RenamingService::reset() {
  for (auto& shard : shards_) shard->reset();
  live_.reset();
  // Drop every lease without reclaiming — the epoch bumps above already
  // freed every cell, so reclaim callbacks would double-free.
  if (leases_ != nullptr) leases_->clear();
  // Invalidate every thread's stash: contents are discarded (not spilled)
  // on the owning thread's next call, because the epoch bumps above
  // already made the stashed cells winnable again.
  // sim:exempt(reset() requires external quiescence; nothing races it)
  cache_gen_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RenamingService::home_shard() const {
  return thread_ctx(options_.seed).slot & shard_mask_;
}

}  // namespace loren
