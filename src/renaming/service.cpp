#include "renaming/service.h"

#include <vector>
#include <atomic>
#include <stdexcept>
#include <thread>

namespace {

using loren::RegisteredCounter;

/// Everything the acquire/release hot path needs from the calling thread,
/// behind a single thread_local access: the dense thread slot (the
/// home-shard hash), the cached per-thread generator (the seed path
/// re-derived one from a shared ticket on *every* call), and a small
/// per-service state table — the sticky shard hint and this thread's
/// registered counter node.
///
/// The sticky hint is what keeps a loaded home shard from becoming a tax:
/// without it, a thread whose home shard has filled walks that shard's
/// entire probe schedule (t_0 ~ 17 ln(8e/eps)/eps probes on B_0 alone)
/// and fails it on *every* acquisition before stealing. The hint moves as
/// soon as wins start arriving late in the schedule (the shard is running
/// hot) or the schedule misses outright, so steady-state work goes
/// straight to a shard with free cells; after a reset the hint is merely
/// stale, never wrong, because any shard can serve any thread. Entries
/// are keyed by a process-unique service id, so a service constructed at
/// a dead service's address cannot inherit its state. The table is a
/// tiny open-addressed map with one entry per (thread, service) and no
/// eviction — entries (and their registered counter nodes) are reused
/// for the thread's lifetime, so no call pattern can re-register nodes
/// and grow a service's counter registry without bound.
struct ThreadCtx {
  struct PerService {
    std::uint64_t service_id = 0;  // 0 = empty (instance ids start at 1)
    std::uint32_t shard = 0;
    RegisteredCounter::Node* counter = nullptr;
  };

  std::uint64_t slot;
  loren::Xoshiro256 rng;
  std::vector<PerService> services{16};  // power-of-two capacity
  std::size_t distinct_services = 0;

  explicit ThreadCtx(std::uint64_t seed, std::uint64_t slot_)
      : slot(slot_), rng(loren::mix_seed(seed, slot_)) {}

  PerService& for_service(std::uint64_t service_id, std::uint64_t home) {
    std::size_t i = probe(services, service_id);
    if (services[i].service_id == service_id) return services[i];
    if ((distinct_services + 1) * 2 > services.size()) {
      grow();
      i = probe(services, service_id);
    }
    ++distinct_services;
    services[i].service_id = service_id;
    services[i].shard = static_cast<std::uint32_t>(home);
    services[i].counter = nullptr;
    return services[i];
  }

 private:
  /// Index of service_id's entry, or of the empty slot where it belongs.
  static std::size_t probe(const std::vector<PerService>& table,
                           std::uint64_t service_id) {
    const std::size_t mask = table.size() - 1;
    std::size_t i = service_id & mask;
    while (table[i].service_id != 0 && table[i].service_id != service_id) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow() {
    std::vector<PerService> bigger(services.size() * 2);
    for (const PerService& s : services) {
      if (s.service_id != 0) bigger[probe(bigger, s.service_id)] = s;
    }
    services.swap(bigger);
  }
};

/// Threads get dense slots 0, 1, 2, ... in arrival order, so `slot mod S`
/// spreads the first S threads over S distinct home shards (a random hash
/// would collide at birthday rates). The rng seed is fixed by the first
/// service a thread touches; streams stay independent across threads
/// either way, which is all the analysis needs.
ThreadCtx& thread_ctx(std::uint64_t seed) {
  static std::atomic<std::uint64_t> next{0};
  thread_local ThreadCtx ctx(seed, next.fetch_add(1, std::memory_order_relaxed));
  return ctx;
}

std::uint64_t padded_shard_bytes(std::uint64_t n, std::uint64_t shards,
                                 const loren::BatchLayoutParams& params) {
  const std::uint64_t holders = (n + shards - 1) / shards;
  return loren::BatchLayout(holders, params).total() *
         loren::TasArena::kCacheLine;
}

}  // namespace

namespace loren {

using sim::Name;

namespace {
std::uint64_t next_service_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

RenamingService::RenamingService(std::uint64_t n,
                                 RenamingServiceOptions options)
    : options_(options), id_(next_service_id()) {
  if (n == 0) throw std::invalid_argument("RenamingService: n must be >= 1");
  options_.layout_extra.epsilon = options_.epsilon;

  std::uint64_t shards = 1;
  if (options_.shards == 0) {
    const std::uint64_t hw = std::thread::hardware_concurrency();
    // Grow while (a) hardware threads would share home shards or (b) a
    // padded shard spills out of half an L1d — the sticky hot path is
    // fastest when a thread's whole probe target is cache-resident — but
    // never shard below 64 holders (tiny shards overflow constantly and
    // every acquisition degenerates to stealing).
    constexpr std::uint64_t kHalfL1 = 32 * 1024;
    while (n / (shards * 2) >= 64 &&
           (shards < hw ||
            padded_shard_bytes(n, shards, options_.layout_extra) > kHalfL1)) {
      shards <<= 1;
    }
  } else {
    while (shards < options_.shards) shards <<= 1;  // round up to power of two
    while (shards > 1 && shards > n) shards >>= 1;
  }

  shard_n_ = (n + shards - 1) / shards;
  shard_mask_ = shards - 1;
  shard_shift_ = 0;
  for (std::uint64_t s = shards; s > 1; s >>= 1) ++shard_shift_;
  shards_.reserve(shards);
  for (std::uint64_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_n_, options_.layout_extra,
                                              options_.arena_layout));
  }
  shard_stride_ = shards_[0]->layout.total();
  capacity_ = shard_stride_ << shard_shift_;
}

Name RenamingService::probe_shard(Shard& shard, std::uint64_t shard_index,
                                  Xoshiro256& rng, bool& late) {
  const FlatProbeSchedule::Slot* const first = shard.schedule.begin();
  for (const auto* slot = first; slot != shard.schedule.end(); ++slot) {
    const std::uint64_t x = slot->offset + rng.below(slot->size);
    if (shard.arena.test_and_set(x)) {
      late = (slot - first) >= kMigrateThreshold;
      // Interleaved encoding: local * S + shard, so decode is shift/mask.
      return static_cast<Name>((x << shard_shift_) | shard_index);
    }
  }
  return -1;
}

Name RenamingService::acquire() {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_);
  if (per.counter == nullptr) per.counter = &live_.register_thread();
  const std::uint64_t S = shard_mask_ + 1;
  // Fast path: the sticky shard; on pressure (late win) migrate ringward,
  // on a full miss steal ringward, so loaded shards shed to neighbours.
  for (std::uint64_t k = 0; k < S; ++k) {
    const std::uint64_t si = (per.shard + k) & shard_mask_;
    bool late = false;
    const Name name = probe_shard(*shards_[si], si, ctx.rng, late);
    if (name >= 0) {
      if (k != 0) {
        per.shard = static_cast<std::uint32_t>(si);
      } else if (late) {
        per.shard = static_cast<std::uint32_t>((si + 1) & shard_mask_);
      }
      RegisteredCounter::add(*per.counter, 1);
      return name;
    }
  }
  // Every schedule missed (probability 1/n^(beta-o(1)) per shard unless
  // the namespace really is near-exhausted): deterministic sweep, so
  // acquire() fails only when zero cells are free.
  for (std::uint64_t k = 0; k < S; ++k) {
    const std::uint64_t si = (per.shard + k) & shard_mask_;
    Shard& shard = *shards_[si];
    for (std::uint64_t u = 0; u < shard_stride_; ++u) {
      if (shard.arena.test_and_set(u)) {
        per.shard = static_cast<std::uint32_t>(si);
        RegisteredCounter::add(*per.counter, 1);
        return static_cast<Name>((u << shard_shift_) | si);
      }
    }
  }
  return -1;
}

bool RenamingService::release(Name name) {
  if (name < 0 || static_cast<std::uint64_t>(name) >= capacity_) return false;
  const std::uint64_t si = static_cast<std::uint64_t>(name) & shard_mask_;
  const std::uint64_t local = static_cast<std::uint64_t>(name) >> shard_shift_;
  if (!shards_[si]->arena.try_release(local)) return false;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  auto& per = ctx.for_service(id_, ctx.slot & shard_mask_);
  if (per.counter == nullptr) per.counter = &live_.register_thread();
  RegisteredCounter::add(*per.counter, -1);
  return true;
}

void RenamingService::reset() {
  for (auto& shard : shards_) shard->arena.reset();
  live_.reset();
}

std::uint64_t RenamingService::home_shard() const {
  return thread_ctx(options_.seed).slot & shard_mask_;
}

}  // namespace loren
