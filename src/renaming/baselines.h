// Baseline renaming algorithms the paper's analysis compares against.
//
// * uniform_probing — the strawman from Section 4: "if processes do just
//   uniform random probes among all objects, then with probability 1-o(1)
//   some process will have to do Omega(log n) probes before it acquires a
//   name". Experiment E4 reproduces exactly this separation.
// * linear_scan — classic deterministic fallback: start at a uniformly
//   random location, claim the first free object scanning upward (mod m).
//   Good average, Theta(n)-ish tails under contention bursts.
// * doubling_uniform — adaptive strawman: uniform probing over a namespace
//   that doubles after every c failed probes; the natural "guess k" scheme
//   AdaptiveReBatching is measured against in E5.
#pragma once

#include <cstdint>

#include "sim/env.h"
#include "sim/runner.h"
#include "sim/task.h"

namespace loren {

/// Repeated single uniform probes over m = namespace size locations.
/// Always terminates (some probe eventually hits a free slot as long as
/// fewer than m names are taken), but the tail is logarithmic.
sim::Task<sim::Name> uniform_probing(sim::Env& env, std::uint64_t m,
                                     sim::Location base = 0);

/// One random probe, then linear scan; at most m + 1 steps, name unique.
sim::Task<sim::Name> linear_scan(sim::Env& env, std::uint64_t m,
                                 sim::Location base = 0);

/// Adaptive baseline: level l has a fresh namespace of size
/// ceil((1+eps)*2^l); a process performs `probes_per_level` uniform probes
/// on level l and escalates. Name values O(k) in expectation but with a
/// heavier tail and more steps than AdaptiveReBatching.
sim::Task<sim::Name> doubling_uniform(sim::Env& env, double epsilon,
                                      int probes_per_level,
                                      std::uint64_t max_levels = 40,
                                      sim::Location base = 0);

}  // namespace loren
