// Batch geometry of the ReBatching algorithm (paper Eq. (1) and Eq. (2)).
//
// The (1+eps)n TAS objects are arranged into kappa+1 disjoint batches
//   B_0 of size n,  B_i of size ceil(eps*n / 2^i)  for 1 <= i <= kappa,
// with kappa = ceil(log2 log2 n), and a process performs
//   t_0 = ceil(17 ln(8e/eps) / eps)  probes on B_0,
//   t_i = 1                          probes on B_i, 1 <= i <= kappa-1,
//   t_kappa = beta                   probes on the last batch.
// (The published text lost the eps symbols in PDF extraction; see DESIGN.md
// for why these are the paper's formulas.)
//
// For small n the asymptotic expressions degenerate; this class defines the
// layout for every n >= 1 (kappa = 0 means "only batch B_0") and exposes the
// invariants the analysis relies on so they can be property-tested.
#pragma once

#include <cstdint>
#include <vector>

namespace loren {

struct BatchLayoutParams {
  double epsilon = 1.0;  // namespace slack; m ~ (1+eps)n
  int beta = 3;          // probes on the last batch (paper: beta >= 3 gives
                         // O(n) expected total steps)
  /// Overrides t_0 when positive. The paper's constant 17/eps is chosen for
  /// proof convenience; the E2/E10 ablations show far smaller values work.
  int t0_override = 0;
};

class BatchLayout {
 public:
  BatchLayout(std::uint64_t n, const BatchLayoutParams& params);
  BatchLayout(std::uint64_t n, double epsilon)
      : BatchLayout(n, BatchLayoutParams{.epsilon = epsilon}) {}

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double epsilon() const { return params_.epsilon; }
  /// Highest batch index (the paper's kappa = ceil(log2 log2 n)).
  [[nodiscard]] std::uint64_t kappa() const { return sizes_.size() - 1; }
  [[nodiscard]] std::uint64_t num_batches() const { return sizes_.size(); }
  /// Size b_i of batch i.
  [[nodiscard]] std::uint64_t size(std::uint64_t i) const { return sizes_[i]; }
  /// Offset s_i of batch i within the object's location range.
  [[nodiscard]] std::uint64_t offset(std::uint64_t i) const { return offsets_[i]; }
  /// Probe budget t_i for batch i.
  [[nodiscard]] int probes(std::uint64_t i) const { return probes_[i]; }
  /// Total number of TAS objects (== namespace size of this object).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Sum of all probe budgets: the per-process step bound of the main phase,
  /// log2 log2 n + O(1).
  [[nodiscard]] int max_probes_main_phase() const { return probe_sum_; }

  /// The paper's survivor bound n*_i for 1 <= i <= kappa (Lemma 4.2), used
  /// by experiment E2: eps*n / 2^(2^i + i + delta) for i < kappa, log^2 n
  /// for i = kappa.
  [[nodiscard]] double survivor_bound(std::uint64_t i, double delta = 0.1) const;

 private:
  std::uint64_t n_;
  BatchLayoutParams params_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint64_t> offsets_;
  std::vector<int> probes_;
  std::uint64_t total_ = 0;
  int probe_sum_ = 0;
};

}  // namespace loren
