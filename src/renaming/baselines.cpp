#include "renaming/baselines.h"

#include <cmath>

namespace loren {

using sim::Env;
using sim::Name;
using sim::Task;

Task<Name> uniform_probing(Env& env, std::uint64_t m, sim::Location base) {
  env.ensure_locations(base + m);
  for (;;) {
    const std::uint64_t x = env.random_below(m);
    if (co_await sim::tas(env, base + x)) {
      co_return static_cast<Name>(base + x);
    }
  }
}

Task<Name> linear_scan(Env& env, std::uint64_t m, sim::Location base) {
  env.ensure_locations(base + m);
  const std::uint64_t start = env.random_below(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t x = (start + i) % m;
    if (co_await sim::tas(env, base + x)) {
      co_return static_cast<Name>(base + x);
    }
  }
  co_return -1;  // more processes than names; cannot happen when m >= n
}

Task<Name> doubling_uniform(Env& env, double epsilon, int probes_per_level,
                            std::uint64_t max_levels, sim::Location base) {
  sim::Location level_base = base;
  for (std::uint64_t level = 0; level < max_levels; ++level) {
    const auto size = static_cast<std::uint64_t>(
        std::ceil((1.0 + epsilon) * std::exp2(static_cast<double>(level))));
    env.ensure_locations(level_base + size);
    for (int j = 0; j < probes_per_level; ++j) {
      const std::uint64_t x = env.random_below(size);
      if (co_await sim::tas(env, level_base + x)) {
        co_return static_cast<Name>(level_base + x);
      }
    }
    level_base += size;
  }
  co_return -1;
}

}  // namespace loren
