#include "control/adaptive_controller.h"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "telemetry/trace.h"

namespace loren::control {

AdaptiveController::AdaptiveController(const ControlOptions& options,
                                       telemetry::MetricsRegistry* registry,
                                       telemetry::MetricId latency_hist,
                                       KnobSeeds seeds)
    : options_(options),
      registry_(registry),
      latency_hist_(latency_hist),
      ops_id_(registry->counter("control.ops")),
      sat_id_(registry->counter("control.saturation")),
      shed_id_(registry->counter("control.shed")),
      stash_seed_(std::max(seeds.stash_cap, kStashFloor)),
      grow_seed_(seeds.grow_miss_threshold),
      shrink_seed_(std::max<std::uint32_t>(seeds.shrink_low_threshold, 1)),
      batch_(std::max<std::uint32_t>(options.batch_max, 1)),
      stash_(std::max(seeds.stash_cap, kStashFloor)),
      grow_(seeds.grow_miss_threshold),
      shrink_(seeds.shrink_low_threshold) {
  if (options_.clock == nullptr) options_.clock = &telemetry::trace_ticks;
  if (options_.batch_min == 0) options_.batch_min = 1;
  if (options_.batch_max < options_.batch_min) {
    options_.batch_max = options_.batch_min;
  }
  if (options_.window == 0) options_.window = 1;
  const std::uint64_t now = options_.clock();
  window_start_ = now;
  deadline_.store(now + options_.window, std::memory_order_relaxed);
}

void AdaptiveController::note_saturation(
    telemetry::MetricsRegistry::ThreadStripe& stripe) {
  stripe.add(sat_id_);
  if (options_.mode != ControlMode::kAdapt || options_.retry_budget == 0) {
    return;
  }
  const std::uint32_t streak =
      fail_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= options_.retry_budget &&
      !shed_.load(std::memory_order_relaxed)) {
    // The admission gate flips here — the linearization-critical step the
    // burst-storm scenarios stall workers around.
    LOREN_SIM_POINT("control.shed");
    shed_.store(true, std::memory_order_relaxed);
  }
}

void AdaptiveController::poll() {
  const std::uint64_t now = options_.clock();
  const std::uint64_t dl = deadline_.load(std::memory_order_relaxed);
  if (now < dl) {
    if (now + options_.window >= dl) return;  // normal: inside the window
    // The deadline sits more than one full window in the future: the
    // clock ran backwards, i.e. it changed domains (trace_ticks is the
    // TSC at construction but the engine's step counter once a scenario
    // run binds the thread). Re-anchor the window in the new domain —
    // counter/histogram baselines stay valid, only the time origin moves.
    std::unique_lock<SimMutex> lock(step_mu_, std::try_to_lock);
    if (!lock.owns_lock()) return;
    if (now + options_.window >= deadline_.load(std::memory_order_relaxed)) {
      return;  // someone re-anchored (or stepped) first
    }
    window_start_ = now;
    deadline_.store(now + options_.window, std::memory_order_relaxed);
    return;
  }
  std::unique_lock<SimMutex> lock(step_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // someone else is already stepping
  if (now < deadline_.load(std::memory_order_relaxed)) return;  // they won
  step(now);
}

bool AdaptiveController::may_move(int knob, int dir) const {
  if (last_dir_[knob] == 0 || last_dir_[knob] == dir) return true;
  // Reversal needs one full quiet window between the opposing moves, so
  // a signal flickering across the deadband cannot thrash a knob.
  return window_index_ >= last_move_window_[knob] + 2;
}

void AdaptiveController::record_move(int knob, int dir) {
  last_dir_[knob] = dir;
  last_move_window_[knob] = window_index_;
  LOREN_SIM_POINT("control.knob");
}

void AdaptiveController::step(std::uint64_t now) {
  LOREN_SIM_POINT("control.window");
  const std::uint64_t ops = registry_->counter_value(ops_id_);
  const std::uint64_t sat = registry_->counter_value(sat_id_);
  const std::uint64_t shed = registry_->counter_value(shed_id_);
  const telemetry::HistogramSnapshot h =
      registry_->histogram_value(latency_hist_);

  WindowRecord rec;
  rec.index = window_index_;
  rec.ticks = now - window_start_;
  rec.ops = ops - prev_ops_;
  rec.saturations = sat - prev_sat_;
  rec.sheds = shed - prev_shed_;

  // Windowed latency: the histogram delta since the previous rollover.
  // Sample count is the bucket-delta sum (count and buckets are bumped
  // by separate relaxed stores, so the aggregate `count` can be one off
  // mid-flight; the walk below must stay self-consistent).
  std::uint64_t delta[telemetry::kHistogramBuckets];
  std::uint64_t samples = 0;
  for (std::uint32_t b = 0; b < telemetry::kHistogramBuckets; ++b) {
    delta[b] = h.buckets[b] - prev_buckets_[b];
    samples += delta[b];
  }
  rec.samples = samples;
  if (samples != 0) {
    const std::uint64_t target = (samples * 99 + 99) / 100;  // ceil(.99 n)
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < telemetry::kHistogramBuckets; ++b) {
      cum += delta[b];
      if (cum >= target) {
        rec.p99 = telemetry::bucket_upper_edge(b);
        break;
      }
    }
  }
  last_rate_ = rec.ticks != 0
                   ? static_cast<double>(rec.ops) / static_cast<double>(rec.ticks)
                   : 0.0;
  last_p99_ = rec.p99;

  if (options_.mode == ControlMode::kAdapt) {
    const bool measured = rec.samples != 0;
    const bool over = measured && rec.p99 > options_.target_p99;
    const bool under = measured && rec.p99 * 2 <= options_.target_p99;
    const bool saturated = rec.saturations != 0 || rec.sheds != 0;

    // Batch knob: tighten under pressure, re-open in calm windows.
    const std::uint32_t b = batch_.load(std::memory_order_relaxed);
    if ((over || saturated) && b > options_.batch_min && may_move(0, -1)) {
      batch_.store(std::max(options_.batch_min, b / 2),
                   std::memory_order_relaxed);
      record_move(0, -1);
    } else if (under && !saturated && b < options_.batch_max &&
               may_move(0, +1)) {
      batch_.store(std::min(options_.batch_max, b * 2),
                   std::memory_order_relaxed);
      record_move(0, +1);
    }

    // Stash knob: saturation means names parked in stashes are starving
    // other threads' probes — shrink the bound; calm windows restore it.
    const std::uint32_t s = stash_.load(std::memory_order_relaxed);
    if (saturated && s > kStashFloor && may_move(1, -1)) {
      stash_.store(std::max(kStashFloor, s / 2), std::memory_order_relaxed);
      record_move(1, -1);
    } else if (!saturated && !over && s < stash_seed_ && may_move(1, +1)) {
      stash_.store(std::min(stash_seed_, s * 2), std::memory_order_relaxed);
      record_move(1, +1);
    }

    // Elastic hysteresis knob (inert when seeded 0): pressure makes
    // growing easier AND shrinking harder in one move, so the two
    // thresholds can never be driven against each other.
    const std::uint32_t g = grow_.load(std::memory_order_relaxed);
    if (g != 0) {
      const std::uint32_t sh = shrink_.load(std::memory_order_relaxed);
      if ((over || saturated) && (g > 1 || sh < 64) && may_move(2, -1)) {
        grow_.store(std::max(1u, g / 2), std::memory_order_relaxed);
        shrink_.store(std::min(64u, sh * 2), std::memory_order_relaxed);
        record_move(2, -1);
      } else if (under && !saturated && (g < grow_seed_ || sh > shrink_seed_) &&
                 may_move(2, +1)) {
        grow_.store(std::min(grow_seed_, g * 2), std::memory_order_relaxed);
        shrink_.store(std::max(shrink_seed_, sh / 2),
                      std::memory_order_relaxed);
        record_move(2, +1);
      }
    }
  }

  rec.batch = batch_.load(std::memory_order_relaxed);
  rec.stash = stash_.load(std::memory_order_relaxed);
  rec.grow = grow_.load(std::memory_order_relaxed);
  rec.shrink = shrink_.load(std::memory_order_relaxed);
  rec.shedding = shed_.load(std::memory_order_relaxed);

  if (history_.size() < kTraceCapacity) {
    history_.push_back(rec);
  } else {
    ++dropped_records_;
  }

  prev_ops_ = ops;
  prev_sat_ = sat;
  prev_shed_ = shed;
  prev_hist_count_ = h.count;
  for (std::uint32_t i = 0; i < telemetry::kHistogramBuckets; ++i) {
    prev_buckets_[i] = h.buckets[i];
  }
  ++window_index_;
  window_start_ = now;
  deadline_.store(now + options_.window, std::memory_order_relaxed);
}

std::uint64_t AdaptiveController::windows() const {
  std::lock_guard<SimMutex> lock(step_mu_);
  return window_index_;
}

double AdaptiveController::arrival_rate() const {
  std::lock_guard<SimMutex> lock(step_mu_);
  return last_rate_;
}

std::uint64_t AdaptiveController::last_p99() const {
  std::lock_guard<SimMutex> lock(step_mu_);
  return last_p99_;
}

std::vector<AdaptiveController::WindowRecord> AdaptiveController::history()
    const {
  std::lock_guard<SimMutex> lock(step_mu_);
  return history_;
}

std::string AdaptiveController::trace() const {
  std::lock_guard<SimMutex> lock(step_mu_);
  // Integers only: the line is a deterministic function of the
  // observation sequence (no floats, no pointers, no wall clock).
  std::ostringstream os;
  for (const WindowRecord& r : history_) {
    os << "w=" << r.index << " ticks=" << r.ticks << " ops=" << r.ops
       << " sat=" << r.saturations << " shed=" << r.sheds << " p99=" << r.p99
       << " n=" << r.samples << " batch=" << r.batch << " stash=" << r.stash
       << " grow=" << r.grow << " shrink=" << r.shrink
       << " shedding=" << (r.shedding ? 1 : 0) << "\n";
  }
  if (dropped_records_ != 0) {
    os << "(+" << dropped_records_ << " windows past trace capacity)\n";
  }
  return os.str();
}

}  // namespace loren::control
