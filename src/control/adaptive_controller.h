// AdaptiveController: the closed feedback loop over the service stack.
//
// Every tuning constant in the services — the acquire_many batch budget,
// the NameStash capacity, the elastic grow/shrink streak thresholds — is
// a hand-picked compromise between latency and throughput at one assumed
// load. The paper's premise is the opposite: namespace work should track
// *observed* contention. This controller closes that loop. It measures
// two signals over sliding windows — arrival rate (ops per clock tick)
// and per-op latency p99 (the telemetry acquire-latency histogram,
// telemetry/metrics.h) — and at each window rollover moves up to three
// knobs, one step each, toward the configured latency target:
//
//   * batch  — the per-call cap acquire_many() may claim from the shared
//     namespace, within [batch_min, batch_max]. Over-target latency or
//     saturation halves it (smaller claims shrink sweep exposure and
//     namespace pressure spikes); a comfortably under-target window
//     doubles it back (amortization is free when the namespace is calm).
//   * stash  — an upper bound clamped onto every thread's NameStash
//     capacity at its adaptation-window rollups. Saturation halves it
//     (names parked in stashes inflate occupancy exactly when other
//     threads are probing into full schedules); calm windows re-open it.
//   * elastic — the grow/shrink hysteresis of ElasticRenamingService:
//     over-target windows halve grow_miss_threshold (grow on less
//     sustained pressure) and double shrink_low_threshold (hold capacity
//     longer); under-target windows reverse both. Inert (seeded 0) for
//     the fixed service.
//
// Admission control rides on the same object: every failed shared
// acquisition (kExhausted / kSweepBudgetExhausted) feeds a consecutive-
// failure streak, and when the streak reaches ControlOptions::retry_budget
// the controller enters the *shed* state — admit() fails, and the owning
// service returns kShed without touching the arena, so a saturated
// namespace costs one relaxed load per rejected call instead of a full
// sweep per retry. Any successful release re-admits (capacity provably
// exists again). This replaces the unbounded sweep as the only backstop:
// the sweep still runs, but at most retry_budget times per saturation
// episode.
//
// Determinism contract: the controller never reads a wall clock directly.
// All timing goes through ControlOptions::clock — by default
// telemetry::trace_ticks(), which is the TSC in production and the
// scenario engine's serialized step counter under LOREN_SIM — and every
// window rollover and knob move passes a LOREN_SIM_POINT, so control
// decisions are unit-testable with an injected fake clock and
// sim-schedulable like any other protocol step. The decision trace
// (trace()) is a pure function of the observation sequence: two runs of
// one seeded scenario produce byte-identical traces.
//
// Threading: note_ops()/admit()/note_saturation()/note_release() are
// hot-path safe from any thread (relaxed loads/stores plus one striped
// counter add; the only RMW is the failure-streak ticket). The window
// step itself is serialized by a try-locked SimMutex — exactly one caller
// per rollover runs it; everyone else keeps going.
//
// See docs/adaptive-control.md for the model, the shed contract, and how
// to pick target_p99.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/sim_point.h"
#include "telemetry/metrics.h"

namespace loren::control {

/// kOff: no controller is constructed — the options struct exists so the
/// field can sit in every service's options at zero cost.
/// kObserve: measure and trace every window, move nothing, never shed.
/// kAdapt: measure, move knobs, and shed past the retry budget.
enum class ControlMode : std::uint8_t { kOff = 0, kObserve = 1, kAdapt = 2 };

struct ControlOptions {
  ControlMode mode = ControlMode::kOff;
  /// The latency target, in clock ticks (the unit of `clock`): the
  /// controller steers the windowed acquire-latency p99 toward
  /// (target_p99/2, target_p99]. Above it knobs tighten; at or below
  /// half of it they re-open — the deadband between is the fixed point.
  std::uint64_t target_p99 = std::uint64_t{1} << 14;
  /// Sliding-window length in clock ticks. Rollover is checked on the
  /// op path (sampled 1-in-64 per thread), so an idle service never
  /// steps — windows advance with traffic, which is what a load
  /// controller wants to see anyway.
  std::uint64_t window = std::uint64_t{1} << 22;
  /// Batch-knob range for acquire_many's per-call shared claim.
  std::uint32_t batch_min = 1;
  std::uint32_t batch_max = 64;
  /// Consecutive failed shared acquisitions (kExhausted or
  /// kSweepBudgetExhausted, any thread) before the controller sheds.
  /// The bound is exact: failure retry_budget trips the state, so call
  /// retry_budget+1 is the first to return kShed. 0 disables shedding.
  std::uint32_t retry_budget = 8;
  /// Injectable deterministic clock; nullptr = telemetry::trace_ticks()
  /// (TSC in production, the engine step counter under LOREN_SIM).
  std::uint64_t (*clock)() = nullptr;
};

class AdaptiveController {
 public:
  /// Initial knob values, seeded by the owning service from its own
  /// options. A zero grow/shrink seed marks the elastic knob inert (the
  /// fixed service has no resize machinery to steer).
  struct KnobSeeds {
    std::uint32_t stash_cap = 64;  // NameStash::kMaxCapacity
    std::uint32_t grow_miss_threshold = 0;
    std::uint32_t shrink_low_threshold = 0;
  };

  /// One decision record per window rollover (the programmatic twin of
  /// one trace() line).
  struct WindowRecord {
    std::uint64_t index = 0;        // 0-based window number
    std::uint64_t ticks = 0;        // window length actually observed
    std::uint64_t ops = 0;          // ops completed in the window
    std::uint64_t saturations = 0;  // failed shared acquisitions
    std::uint64_t sheds = 0;        // admissions rejected
    std::uint64_t p99 = 0;          // windowed latency p99 (clock ticks)
    std::uint64_t samples = 0;      // latency samples behind that p99
    std::uint32_t batch = 0;        // knob values AFTER this window's moves
    std::uint32_t stash = 0;
    std::uint32_t grow = 0;
    std::uint32_t shrink = 0;
    bool shedding = false;          // shed state at rollover
  };

  /// `registry` must outlive the controller (it is the owning service's
  /// resolved registry); `latency_hist` is the service's acquire-latency
  /// histogram id in that registry — the controller reads it per window
  /// via histogram_value(), it never records into it.
  AdaptiveController(const ControlOptions& options,
                     telemetry::MetricsRegistry* registry,
                     telemetry::MetricId latency_hist, KnobSeeds seeds);

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  // ------------------------------------------------------------ hot path --

  /// Count `n` completed ops into the window and, every 64th call per
  /// thread (`tick` is the caller's per-thread op counter; pass 0 to
  /// check every call), poll the clock for a window rollover.
  void note_ops(telemetry::MetricsRegistry::ThreadStripe& stripe,
                std::uint64_t n, std::uint32_t tick = 0) {
    stripe.add(ops_id_, n);
    if ((tick & 63u) == 0) poll();
  }

  /// False iff the controller is shedding: the caller must fail the
  /// acquisition with kShed without touching the shared namespace. The
  /// rejection is counted (shed accounting is exact; see shed_events()).
  bool admit(telemetry::MetricsRegistry::ThreadStripe& stripe) {
    // mo:relaxed-ok(shed flag is a heuristic gate; note_release clears it
    // and a stale read only costs one extra sweep or one extra rejection)
    if (!shed_.load(std::memory_order_relaxed)) return true;
    stripe.add(shed_id_);
    return false;
  }

  /// One failed shared acquisition (kExhausted / kSweepBudgetExhausted).
  /// In kAdapt mode the consecutive-failure streak advances and trips
  /// the shed state exactly at retry_budget.
  void note_saturation(telemetry::MetricsRegistry::ThreadStripe& stripe);

  /// Capacity was freed (a successful release): end any saturation
  /// episode — clear the streak and re-admit.
  void note_release() {
    // mo:relaxed-ok(streak/shed are heuristic admission state; the fast
    // exit below races benignly with note_saturation's ticket)
    if (fail_streak_.load(std::memory_order_relaxed) == 0) return;
    fail_streak_.store(0, std::memory_order_relaxed);
    if (shed_.load(std::memory_order_relaxed)) {
      shed_.store(false, std::memory_order_relaxed);
    }
  }

  /// Check the clock and run the window step on rollover (the note_ops
  /// sampling calls this; tests and drains may force a check).
  void poll();

  // ---------------------------------------------------------- knob reads --

  [[nodiscard]] std::uint32_t batch_limit() const {
    return batch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t stash_cap() const {
    return stash_.load(std::memory_order_relaxed);
  }
  /// 0 = inert (fixed service); the elastic service substitutes these
  /// for its configured thresholds when a controller is attached.
  [[nodiscard]] std::uint32_t grow_miss_threshold() const {
    return grow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t shrink_low_threshold() const {
    return shrink_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool shedding() const {
    return shed_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------- introspection --

  [[nodiscard]] const ControlOptions& options() const { return options_; }
  /// Rejected admissions (exact: one count per kShed returned).
  [[nodiscard]] std::uint64_t shed_events() const {
    return registry_->counter_value(shed_id_);
  }
  /// Failed shared acquisitions observed (note_saturation calls).
  [[nodiscard]] std::uint64_t saturation_events() const {
    return registry_->counter_value(sat_id_);
  }
  /// Completed window rollovers.
  [[nodiscard]] std::uint64_t windows() const;
  /// Ops per clock tick over the last completed window.
  [[nodiscard]] double arrival_rate() const;
  /// Windowed latency p99 of the last completed window (clock ticks).
  [[nodiscard]] std::uint64_t last_p99() const;
  /// Copy of the per-window decision records (bounded; newest last).
  [[nodiscard]] std::vector<WindowRecord> history() const;
  /// The decision log as text, one line per window — a deterministic
  /// function of the observation sequence, so seeded scenario runs can
  /// assert byte-identical traces. Bounded to kTraceCapacity windows.
  [[nodiscard]] std::string trace() const;

  static constexpr std::uint32_t kTraceCapacity = 512;
  /// Stash-knob floor (mirrors NameStash::kMinCapacity without the
  /// header dependency; static_assert'd against it in the service).
  static constexpr std::uint32_t kStashFloor = 4;

 private:
  /// One window's bookkeeping, serialized by step_mu_.
  void step(std::uint64_t now);
  /// Hysteresis guard: a knob may always repeat its last direction, but
  /// reversing requires a full quiet window between the opposing moves.
  [[nodiscard]] bool may_move(int knob, int dir) const;
  void record_move(int knob, int dir);

  ControlOptions options_;
  telemetry::MetricsRegistry* registry_;
  telemetry::MetricId latency_hist_;
  telemetry::MetricId ops_id_;
  telemetry::MetricId sat_id_;
  telemetry::MetricId shed_id_;
  std::uint32_t stash_seed_;
  std::uint32_t grow_seed_;
  std::uint32_t shrink_seed_;

  // Knob cells: single-step moves under step_mu_, relaxed reads on the
  // hot paths — a stale knob value steers one extra batch, never breaks
  // an invariant.
  // mo: relaxed -- heuristic knob value; written under step_mu_ only,
  // read lock-free by the op paths.
  std::atomic<std::uint32_t> batch_;
  // mo: relaxed -- heuristic knob value; written under step_mu_ only,
  // read lock-free at stash window rollups.
  std::atomic<std::uint32_t> stash_;
  // mo: relaxed -- heuristic knob value; written under step_mu_ only,
  // read lock-free by the elastic grow path.
  std::atomic<std::uint32_t> grow_;
  // mo: relaxed -- heuristic knob value; written under step_mu_ only,
  // read lock-free by the elastic maintenance path.
  std::atomic<std::uint32_t> shrink_;

  // Admission state.
  // mo: relaxed -- consecutive-failure ticket: exactness of the shed
  // bound needs the RMW, not ordering; note_release's store-0 races it
  // benignly (a lost clear costs one early shed, never a missed admit).
  std::atomic<std::uint32_t> fail_streak_{0};
  // mo: relaxed -- shed gate read per admission; flips are heuristic
  // state transitions with no payload to publish.
  std::atomic<bool> shed_{false};

  // Window rollover gate, checked (sampled) on the op path.
  // mo: relaxed -- rollover deadline: a stale read only defers the step
  // to the next poll; step_mu_ serializes the actual rollover.
  std::atomic<std::uint64_t> deadline_;

  /// Serializes step() and guards everything below. SimMutex: the step
  /// body passes sim points (window rollover, knob moves) and the
  /// scenario engine must be able to suspend a worker inside it without
  /// deadlocking the serialized schedule.
  mutable SimMutex step_mu_;
  std::uint64_t window_start_;
  std::uint64_t window_index_ = 0;
  std::uint64_t prev_ops_ = 0;
  std::uint64_t prev_sat_ = 0;
  std::uint64_t prev_shed_ = 0;
  std::uint64_t prev_hist_count_ = 0;
  std::uint64_t prev_buckets_[telemetry::kHistogramBuckets] = {};
  double last_rate_ = 0.0;
  std::uint64_t last_p99_ = 0;
  /// Per-knob hysteresis memory (0=batch, 1=stash, 2=elastic).
  std::uint64_t last_move_window_[3] = {0, 0, 0};
  int last_dir_[3] = {0, 0, 0};
  std::vector<WindowRecord> history_;
  std::uint64_t dropped_records_ = 0;
};

}  // namespace loren::control
