#include "elastic/shard_group.h"

#include <stdexcept>

#include "platform/sim_point.h"
#include "renaming/batch_claim.h"

namespace loren {

ShardGroup::ShardGroup(std::uint32_t tag, std::uint64_t generation,
                       std::uint64_t holders, std::uint64_t shards,
                       ArenaLayout arena_layout, ArenaKind arena_kind,
                       std::shared_ptr<const CachedSchedule> schedule)
    : tag_(tag),
      generation_(generation),
      holders_(holders),
      shard_stride_(schedule->layout.total()),
      shard_mask_(shards - 1),
      shard_shift_(0),
      schedule_(std::move(schedule)) {
  if (shards == 0 || (shards & (shards - 1)) != 0) {
    throw std::invalid_argument("ShardGroup: shards must be a power of two");
  }
  for (std::uint64_t s = shards; s > 1; s >>= 1) ++shard_shift_;
  const std::uint64_t total = shard_stride_ * shards;
  if (arena_kind == ArenaKind::kBitmap) {
    bitmap_ = std::make_unique<BitmapArena>(total, arena_layout);
  } else {
    arena_ = std::make_unique<TasArena>(total, arena_layout);
  }
  segments_.reserve(shards);
  for (std::uint64_t i = 0; i < shards; ++i) {
    if (bitmap_ != nullptr) {
      segments_.emplace_back(*bitmap_, i * shard_stride_, shard_stride_);
    } else {
      segments_.emplace_back(*arena_, i * shard_stride_, shard_stride_);
    }
  }
}

std::int64_t ShardGroup::probe_segment(std::uint64_t si, Xoshiro256& rng,
                                       bool* late, ProbeStats* stats) {
  ArenaSegment& seg = segments_[si];
  const FlatProbeSchedule::Slot* const first = schedule_->schedule.begin();
  std::uint32_t* const lost =
      stats != nullptr ? &stats->lost_races : nullptr;
  if (seg.kind() == ArenaKind::kBitmap) {
    // Word-granular probe schedule: each slot's random draw nominates a
    // word, and the 64-way scan claims any free cell in it (clamped to
    // this shard's window). A probe fails only when its whole word is
    // full, so a word-scan schedule walk covers up to 64x the cells of a
    // cell-probe walk at the same probe budget.
    for (const auto* slot = first; slot != schedule_->schedule.end(); ++slot) {
      const std::uint64_t x = slot->offset + rng.below(slot->size);
      const std::int64_t cell = seg.try_claim_word(x, lost);
      if (cell >= 0) {
        *late = (slot - first) >= kMigrateThreshold;
        if (stats != nullptr) {
          stats->probes += static_cast<std::uint32_t>(slot - first) + 1;
        }
        return static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(cell) << shard_shift_) | si);
      }
    }
    if (stats != nullptr) {
      stats->probes +=
          static_cast<std::uint32_t>(schedule_->schedule.end() - first);
    }
    return -1;
  }
  for (const auto* slot = first; slot != schedule_->schedule.end(); ++slot) {
    const std::uint64_t x = slot->offset + rng.below(slot->size);
    // sim:exempt(forwards to the arena RMW, which carries the sim point)
    if (seg.test_and_set(x)) {
      *late = (slot - first) >= kMigrateThreshold;
      if (stats != nullptr) {
        stats->probes += static_cast<std::uint32_t>(slot - first) + 1;
      }
      return static_cast<std::int64_t>((x << shard_shift_) | si);
    }
  }
  if (stats != nullptr) {
    stats->probes +=
        static_cast<std::uint32_t>(schedule_->schedule.end() - first);
  }
  return -1;
}

std::int64_t ShardGroup::try_acquire(Xoshiro256& rng, std::uint32_t* sticky,
                                     ProbeStats* stats) {
  const std::uint64_t S = shard_mask_ + 1;
  for (std::uint64_t k = 0; k < S; ++k) {
    const std::uint64_t si = (*sticky + k) & shard_mask_;
    bool late = false;
    const std::int64_t local = probe_segment(si, rng, &late, stats);
    if (local >= 0) {
      if (k != 0) {
        *sticky = static_cast<std::uint32_t>(si);
      } else if (late) {
        *sticky = static_cast<std::uint32_t>((si + 1) & shard_mask_);
      }
      return local;
    }
  }
  return -1;
}

std::int64_t ShardGroup::sweep_acquire(std::uint32_t* sticky,
                                       std::uint64_t sweep_budget,
                                       ProbeStats* stats) {
  const std::uint64_t S = shard_mask_ + 1;
  const std::uint64_t cap =
      sweep_budget == 0 || sweep_budget > S ? S : sweep_budget;
  for (std::uint64_t k = 0; k < cap; ++k) {
    const std::uint64_t si = (*sticky + k) & shard_mask_;
    LOREN_SIM_POINT("group.sweep");
    if (stats != nullptr) ++stats->sweep_shards;
    // One-cell run-claim: word-at-a-time snapshots on a bitmap segment
    // (64 cells per load), line-at-a-time load-before-RMW on a cell
    // arena — either way the backstop fails only when the shard really
    // had zero free cells when scanned.
    std::uint64_t cell = 0;
    if (segments_[si].try_claim_run(
            0, shard_stride_, 1, &cell,
            stats != nullptr ? &stats->lost_races : nullptr) == 1) {
      *sticky = static_cast<std::uint32_t>(si);
      return static_cast<std::int64_t>((cell << shard_shift_) | si);
    }
  }
  return cap < S ? kSweepBudgetTruncated : -1;
}

std::uint64_t ShardGroup::claim_encoded(std::uint64_t si, std::uint64_t from,
                                        std::uint64_t to, std::uint64_t k,
                                        std::int64_t* out,
                                        std::uint32_t* lost_races) {
  return claim_encode_inplace(
      [&](std::uint64_t* raw) {
        return segments_[si].try_claim_run(from, to, k, raw, lost_races);
      },
      shard_shift_, si, out);
}

std::uint64_t ShardGroup::try_acquire_many(Xoshiro256& rng,
                                           std::uint32_t* sticky,
                                           std::uint64_t k, std::int64_t* out,
                                           std::uint64_t sweep_budget,
                                           bool* sweep_budget_hit,
                                           ProbeStats* stats) {
  std::uint32_t* const lost =
      stats != nullptr ? &stats->lost_races : nullptr;
  BatchWalkStats walk;
  const std::uint64_t got = batch_claim_ring(
      shard_mask_, shard_shift_, shard_stride_, sticky, k, out,
      [&](std::uint64_t si, bool* late) {
        return probe_segment(si, rng, late, stats);
      },
      [&](std::uint64_t si, std::uint64_t from, std::uint64_t to,
          std::uint64_t budget, std::int64_t* dst) {
        return claim_encoded(si, from, to, budget, dst, lost);
      },
      sweep_budget, sweep_budget_hit, stats != nullptr ? &walk : nullptr);
  if (stats != nullptr) {
    stats->ring_shards += walk.ring_shards;
    stats->sweep_shards += walk.sweep_shards;
  }
  return got;
}

bool ShardGroup::release_local(std::uint64_t local) {
  if (local >= local_capacity()) return false;
  const std::uint64_t si = local & shard_mask_;
  const std::uint64_t cell = local >> shard_shift_;
  return segments_[si].try_release(cell);
}

}  // namespace loren
