// ElasticRenamingService: a contention-adaptive namespace that grows and
// shrinks at runtime.
//
// The fixed RenamingService freezes n, shard count, and arena size at
// construction, so a deployment serving bursty traffic must provision for
// peak forever. This service makes capacity a runtime quantity — the
// paper's "namespace proportional to actual contention" promise, carried
// from the one-shot setting into a long-lived, resizable one (cf. the
// long-lived/adaptive renaming chapters of Aspnes's notes):
//
//   * The live namespace is one ShardGroup (shard_group.h): a TasArena
//     carved into sticky-probed shards under a ReBatching schedule sized
//     for the group's holder count.
//   * GROW: when acquisitions keep missing the whole probe schedule
//     (a streak of `grow_miss_threshold` full misses with no intervening
//     schedule win — "sustained pressure"), or when even the backstop
//     sweep finds nothing, a group with double the holders is built,
//     linked into the tag table, and published with one pointer store —
//     an RCU-style swap; no acquisition ever blocks on a resize.
//   * SHRINK: shrink() (or the sampled auto-shrink watermark) publishes a
//     *smaller* group the same way. The old group is not torn down: it
//     retires. New acquisitions only ever probe the live group, so the
//     retiree only drains; a name acquired from generation g stays valid —
//     release(name) finds g through the tag table — until its holder
//     releases it, however many resizes have happened since.
//   * RECLAIM: a retired group's memory is freed only after (a) the epoch
//     domain quiesced past the retirement (no acquisition that might still
//     insert into it is in flight), (b) its live counter drained to zero
//     (no held names), and (c) a second quiescence after it is unlinked
//     from the tag table (no release() can still be dereferencing it).
//     See DESIGN.md, "Elastic renaming: the epoch-based resize protocol".
//
// Name encoding: name = (group_local << kTagBits) | tag. The tag selects
// one of kMaxGroups (8) table slots, so release() decodes its group with a
// mask — no search — and uniqueness across generations is structural:
// distinct tags can never collide, and a tag is only reused after its
// previous group was reclaimed (which requires zero held names). The cost
// is namespace looseness: issued names are < capacity() =
// local_capacity * 2^kTagBits, a constant factor over the (1+eps)-tight
// fixed service. That is the price of elasticity here, and it is bounded
// and documented rather than hidden (DESIGN.md discusses the tradeoff).
//
// Concurrency contract: acquire/release/grow/shrink/resize/reclaim are
// safe from any thread. Destruction requires external quiescence (no
// calls in flight), the same contract as the other services' reset().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "control/adaptive_controller.h"
#include "elastic/shard_group.h"
#include "lease/lease_table.h"
#include "platform/epoch.h"
#include "platform/sim_point.h"
#include "renaming/acquire_result.h"
#include "renaming/batch_layout.h"
#include "renaming/schedule_cache.h"
#include "renaming/thread_ctx.h"
#include "sim/env.h"
#include "tas/tas_arena.h"
#include "telemetry/metrics.h"

namespace loren {

struct ElasticOptions {
  double epsilon = 0.5;
  /// Smallest holder count shrink may reach. 0 = the initial holder count.
  std::uint64_t min_holders = 0;
  /// Largest holder count grow may reach.
  std::uint64_t max_holders = std::uint64_t{1} << 22;
  /// Shards per group: 0 = auto per group size (the RenamingService
  /// heuristic, so a small generation gets few shards and a large one
  /// many).
  std::uint64_t shards = 0;
  ArenaLayout arena_layout = ArenaLayout::kPadded;
  /// Substrate for every generation's arena: kCellProbe (TasArena, one
  /// RMW per cell probed) or kBitmap (BitmapArena, 64 cells per probe
  /// via word scans — see tas/bitmap_arena.h for the tradeoff).
  ArenaKind arena_kind = ArenaKind::kCellProbe;
  std::uint64_t seed = 0xE1A5;
  BatchLayoutParams layout_extra{};
  /// Grow automatically under sustained probe-schedule misses (and always
  /// on true exhaustion). Off = fixed capacity, explicit resize only.
  bool auto_grow = true;
  /// Full-schedule misses (with no intervening schedule win) that trigger
  /// an automatic grow.
  std::uint32_t grow_miss_threshold = 4;
  /// Shrink automatically (sampled on the release path) when live names
  /// stay below holders/4 across `shrink_low_threshold` consecutive
  /// samples — like grow, the pressure must be *sustained*, so a
  /// transient dip between bursts does not thrash the namespace. Off by
  /// default: shrinking trades latency for memory and most callers prefer
  /// to decide when (e.g. between traffic phases).
  bool auto_shrink = false;
  std::uint32_t shrink_low_threshold = 2;
  /// Thread-local name cache: each thread keeps a bounded stash of
  /// live-generation names it released, re-issued to that thread with no
  /// epoch pin, no probes and no shared RMW. Stashes are tagged with the
  /// resize generation: any grow/shrink invalidates them, and their
  /// contents are flushed through the shared tag-table path on the owning
  /// thread's next call, so retired generations still drain (a *parked*
  /// thread's stash delays that drain until it calls again or
  /// flush_thread_cache()s — see docs/protocols.md). Stashed names stay
  /// counted by names_live() and keep their group's live counter up.
  bool name_cache = true;
  /// Initial per-thread stash capacity; per-thread hit-rate adaptation
  /// moves it within [NameStash::kMinCapacity, NameStash::kMaxCapacity].
  std::uint32_t name_cache_capacity = 16;
  /// Bounded retry budget for the deterministic sweep backstop: at most
  /// this many shards of the live group are swept per acquisition after
  /// every probe schedule missed. 0 = unbounded (the historical full
  /// walk). A budget-truncated sweep fails fast with
  /// kSweepBudgetExhausted (-2) and counts in sweep_budget_exhausted();
  /// it is deliberately NOT exhaustion evidence, so it neither feeds the
  /// miss streak nor triggers a grow — a bounded scan giving up says
  /// nothing about how full the namespace is.
  std::uint32_t sweep_retry_budget = 0;
  /// Diagnostic hardening against *contract-violating* releases: stamp
  /// the issuing generation into bits [48, 63) of every name and reject a
  /// release whose stamp does not match the generation currently holding
  /// the name's tag. This catches the stale double-release ABA — a copy
  /// of a name from a long-reclaimed generation whose 3-bit tag has been
  /// recycled would otherwise free a victim's cell in the *new* group.
  /// Stamped names are no longer < capacity() (the stamp rides above the
  /// value bits), so keep this off in production and on in tests/debug
  /// deployments. See DESIGN.md, "The release contract".
  bool debug_release_guard = false;
  /// Observability (telemetry/metrics.h). Attaching a registry switches
  /// the service into *detailed* mode: per-op histograms (acquire/release
  /// latency, probe lengths, lost races, ring-walk depth, quiescence
  /// waits) record alongside the always-on event counters. With no
  /// registry the service owns a private one, so the `elastic.*` event
  /// counters and their accessors work either way at one relaxed add per
  /// event, but the per-op histograms stay off.
  telemetry::TelemetryOptions telemetry{};
  /// Closed-loop control (control/adaptive_controller.h). With mode !=
  /// kOff the service constructs an AdaptiveController: per-window
  /// latency/arrival measurement, the acquire_many batch clamp, the
  /// stash capacity bound, the grow/shrink hysteresis knob (the
  /// controller's thresholds substitute for grow_miss_threshold /
  /// shrink_low_threshold above, seeded from them), and — in kAdapt
  /// mode — admission control: acquire fails fast with kShed once the
  /// consecutive-failure streak reaches control.retry_budget, until a
  /// release frees capacity. Implies detailed telemetry mode. See
  /// docs/adaptive-control.md.
  control::ControlOptions control{};
  /// Crash-safe ownership (lease/lease_table.h): with lease.ttl_ticks !=
  /// 0 every shared acquisition registers a lease, every op heartbeats
  /// the holder's leases alive, and names abandoned by a crashed/parked/
  /// exited holder are reaped back into their generation's group after
  /// ttl + grace — after which a revived holder's late release is
  /// rejected (kLeaseExpired / a guard trip), never applied to a
  /// possibly-reissued cell. 0 (default) disables leasing: zero per-op
  /// cost. See docs/leases.md.
  lease::LeaseOptions lease{};
};

class ElasticRenamingService {
 public:
  /// Tag bits spent in every name; bounds the generations that can be
  /// in flight (live + draining) at once.
  static constexpr std::uint32_t kTagBits = 3;
  static constexpr std::uint32_t kMaxGroups = 1u << kTagBits;
  /// debug_release_guard stamp geometry: 15 generation bits at bit 48 —
  /// far above any realistic local<<kTagBits value (max_holders tops out
  /// at 2^22 by default) and, at 15 bits, stopping short of bit 63 so a
  /// stamped name can never go negative (sim::Name is a signed int64 and
  /// negative means "failure" everywhere).
  static constexpr std::uint32_t kGenStampShift = 48;
  static constexpr std::uint64_t kGenStampMask = 0x7FFF;

  /// acquire() failure codes. kExhausted: the namespace is full and
  /// cannot grow. kSweepBudgetExhausted: the bounded sweep budget
  /// (options.sweep_retry_budget) ran out first — capacity may remain;
  /// the caller chose bounded latency over a full walk.
  /// kShed: admission control rejected the call before any probe — the
  /// controller's consecutive-failure streak hit its retry budget; a
  /// successful release re-admits (control/adaptive_controller.h).
  /// kLeaseExpired: a lease operation referred to a name whose lease the
  /// reaper already expired. Defined from the shared loren::AcquireResult
  /// enum (renaming/acquire_result.h), the single source of truth for
  /// these values across both services.
  static constexpr sim::Name kExhausted = to_name(AcquireResult::kExhausted);
  static constexpr sim::Name kSweepBudgetExhausted =
      to_name(AcquireResult::kSweepBudgetExhausted);
  static constexpr sim::Name kShed = to_name(AcquireResult::kShed);
  static constexpr sim::Name kLeaseExpired =
      to_name(AcquireResult::kLeaseExpired);

  /// Publishes generation 1, laid out for `initial_holders` (clamped to
  /// [min_holders, max_holders]). Throws std::invalid_argument for
  /// initial_holders == 0 or min_holders > max_holders. Immediately
  /// usable from any thread.
  explicit ElasticRenamingService(std::uint64_t initial_holders,
                                  ElasticOptions options = {});
  /// Requires external quiescence (no calls in flight on any thread) —
  /// the same contract as the other services' reset().
  ~ElasticRenamingService();

  ElasticRenamingService(const ElasticRenamingService&) = delete;
  ElasticRenamingService& operator=(const ElasticRenamingService&) = delete;

  /// Unique name in [0, capacity()), or -1 iff the namespace is exhausted
  /// and cannot grow (auto_grow off, max_holders reached, or all
  /// kMaxGroups tags still draining). Never blocks on a concurrent
  /// resize.
  sim::Name acquire();

  /// Frees `name`. Valid for names from *any* generation, including
  /// groups retired by grow/shrink since the acquisition. Returns false
  /// (and changes nothing) for names not currently held.
  bool release(sim::Name name);

  /// Batched acquisition: claims up to `k` unique names into `out` and
  /// returns the number acquired. One epoch pin covers the whole batch
  /// (safe: a pin never blocks a resize, only delays reclamation by at
  /// most one batch — see DESIGN.md), miss accounting is per *batch* (a
  /// batch the probe schedules could not fill is one pressure event, not
  /// k), and a shortfall past the sweep backstop grows the namespace
  /// immediately and claims the remainder from the new generation — so a
  /// batch may span generations (each sub-batch carries its own tag) and
  /// returns < k only when growth is unavailable (auto_grow off,
  /// max_holders reached, or all tags draining).
  std::uint64_t acquire_many(std::uint64_t k, sim::Name* out);

  /// Frees `count` names (any mix of generations) under one epoch pin
  /// with batched per-group live accounting. Returns how many were
  /// actually freed; invalid or not-held entries are skipped.
  std::uint64_t release_many(const sim::Name* names, std::uint64_t count);

  /// Publish a generation with double / half / exactly `holders` holders
  /// (clamped to [min_holders, max_holders]). False when the target equals
  /// the current size, the clamp makes it a no-op, or no tag slot is free
  /// (kMaxGroups generations already in flight). Safe concurrently with
  /// acquire/release.
  bool grow();
  bool shrink();
  bool resize(std::uint64_t holders);

  /// One reclamation pass: unlink drained retirees, free quiesced limbo
  /// groups. Returns groups freed by this call. Also runs opportunistically
  /// (sampled) on the release path, so calling it is optional. Safe from
  /// any thread; takes the (cold) resize mutex. Cannot reclaim a group
  /// whose names sit in some thread's stash — that thread must call into
  /// the service (or flush_thread_cache()) once after the resize first.
  std::size_t reclaim();

  /// Releases every name in the calling thread's stash for this service
  /// through the shared tag-table path (names from any generation route
  /// to their own group) and folds the thread's pending cache statistics
  /// into the aggregate. Returns the number flushed. Call when a thread
  /// parks or before it exits — a dead thread's stash otherwise pins its
  /// names' generations against draining for the service's lifetime.
  std::uint64_t flush_thread_cache();

  /// Explicitly renews the calling thread's lease on `name` (every op
  /// already renews implicitly via the heartbeat — this is for holders
  /// going quiet between ops). Returns `name`, or kLeaseExpired when the
  /// lease is gone: the reaper reclaimed the cell and the caller must
  /// treat the name as lost. Trivially `name` with leasing off.
  sim::Name renew_lease(sim::Name name);

  /// One full blocking reap pass: expires every stale lease and hands
  /// the cells back to their generations' groups (which lets retired
  /// generations finish draining). Returns cells reclaimed. The op paths
  /// poll try_reap() on a sampled cadence already; this is the
  /// deterministic variant for tests and shutdown drains. 0 when off.
  std::size_t reap_expired();

  /// Lease observability (all 0 / false with leasing off).
  [[nodiscard]] bool leasing_enabled() const { return leases_ != nullptr; }
  [[nodiscard]] std::uint64_t leases_live() const {
    return leases_ != nullptr ? leases_->leases_live() : 0;
  }
  [[nodiscard]] std::uint64_t lease_expired() const {
    return leases_ != nullptr ? leases_->expired() : 0;
  }
  /// Stale lease operations the guard rejected (late release/renew after
  /// the reaper won) — detected, never silently applied.
  [[nodiscard]] std::uint64_t lease_guard_trips() const {
    return leases_ != nullptr ? leases_->guard_trips() : 0;
  }
  [[nodiscard]] lease::LeaseTable* lease_table() const { return leases_.get(); }

  /// Bound on newly issued names: local capacity of the live generation
  /// times 2^kTagBits. Names issued by earlier, larger generations may
  /// exceed this until released (they stay valid; see release()).
  [[nodiscard]] std::uint64_t capacity() const {
    return live_local_capacity_.load(std::memory_order_acquire) << kTagBits;
  }
  /// Holder count the live generation is laid out for.
  [[nodiscard]] std::uint64_t holders() const {
    return live_holders_.load(std::memory_order_acquire);
  }
  /// Monotonic resize count (initial construction = 1).
  [[nodiscard]] std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Names currently held, summed over every in-flight generation.
  /// Approximate while calls are in flight, exact at quiescence.
  [[nodiscard]] std::uint64_t names_live() const;
  /// Linked generations (live + draining). 1 at rest.
  [[nodiscard]] std::size_t groups_in_flight() const;
  /// Cell-storage bytes across linked + limbo groups: the number that
  /// shrinking + reclamation drives back down.
  [[nodiscard]] std::uint64_t footprint_bytes() const;

  /// Event-counter accessors: thin snapshot reads of the telemetry
  /// registry (`elastic.*` counters — the one counting idiom), exact at
  /// quiescence like every registry sum.
  [[nodiscard]] std::uint64_t grow_events() const {
    return ins_.registry->counter_value(ins_.grow_events);
  }
  [[nodiscard]] std::uint64_t shrink_events() const {
    return ins_.registry->counter_value(ins_.shrink_events);
  }
  [[nodiscard]] std::uint64_t reclaimed_groups() const {
    return ins_.registry->counter_value(ins_.reclaimed_groups);
  }
  /// Aggregate name-cache statistics (folded in window-at-a-time; they
  /// lag by up to one adaptation window per thread until flushed).
  [[nodiscard]] std::uint64_t cache_hits() const {
    return ins_.registry->counter_value(ins_.cache_hits);
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return ins_.registry->counter_value(ins_.cache_misses);
  }
  /// Times the bounded sweep budget ran out (acquire returning
  /// kSweepBudgetExhausted, or an acquire_many shortfall caused by the
  /// budget). Always 0 when options.sweep_retry_budget is 0.
  [[nodiscard]] std::uint64_t sweep_budget_exhausted() const {
    return ins_.registry->counter_value(ins_.sweep_budget_exhausted);
  }
  /// The registry this service records into — the attached one in
  /// detailed mode, else the internally owned fallback. Snapshot it for
  /// the full `elastic.*` metric surface (docs/observability.md).
  [[nodiscard]] telemetry::MetricsRegistry& metrics_registry() const {
    return *ins_.registry;
  }
  /// The calling thread's stash occupancy / adaptive capacity for this
  /// service (introspection and tests).
  /// Admissions rejected with kShed (exact: one per kShed returned).
  /// Always 0 without a controller (options.control.mode == kOff).
  [[nodiscard]] std::uint64_t shed_events() const {
    return controller_ != nullptr ? controller_->shed_events() : 0;
  }
  /// The attached controller, or nullptr when control is off.
  [[nodiscard]] control::AdaptiveController* controller() const {
    return controller_.get();
  }
  [[nodiscard]] std::uint32_t thread_cache_size() const;
  [[nodiscard]] std::uint32_t thread_cache_capacity() const;
  [[nodiscard]] const ElasticOptions& options() const { return options_; }

 private:
  struct LimboEntry {
    std::unique_ptr<ShardGroup> group;
    std::uint64_t unlink_epoch;
  };

  /// Resize if the generation still equals `seen_gen`; returns true when
  /// the service resized (by this call or a concurrent one) so the caller
  /// should re-probe. Prevents a stampede of threads that all saw the
  /// same pressure from growing once each.
  bool grow_from(std::uint64_t seen_gen);

  bool resize_locked(std::uint64_t target);
  std::size_t reclaim_locked();
  int find_free_tag_locked() const;
  /// Sampled release-path maintenance: reclamation + auto-shrink check.
  void maintenance();

  /// The shared release path, bypassing the stash: one epoch pin, the
  /// tag-table decode/release loop, coalesced per-group live updates.
  /// `slot` is the caller's registered epoch slot. Both public release
  /// surfaces and the stash flush/spill paths bottom out here. With
  /// leasing on, each name's lease closes first; a close the reaper beat
  /// — or one presenting a heartbeat the lease is not bound to (same-bits
  /// ABA) — skips the group release (the cell is not ours to free).
  /// `stripe` is nullable only on the thread-exit flush path; `hb` is the
  /// releasing thread's heartbeat, the identity closes are checked
  /// against.
  std::uint64_t release_shared(const sim::Name* names, std::uint64_t count,
                               EpochDomain::Slot& slot,
                               telemetry::MetricsRegistry::ThreadStripe* stripe,
                               const lease::Heartbeat* hb);

  /// Per-op lease prologue (leasing on only): registers/stamps the
  /// calling thread's heartbeat, revalidates the stash after a
  /// self-detected stale gap, and runs the sampled try_reap poll under
  /// an epoch pin (the reclaim callback dereferences the tag table).
  void lease_heartbeat(lease::Heartbeat*& hb, std::uint32_t& poll,
                       NameStash* st, EpochDomain::Slot& slot,
                       telemetry::MetricsRegistry::ThreadStripe& stripe);

  /// LeaseTable::ReclaimFn: routes an expired name back into its
  /// generation's group via the tag table (caller holds an epoch pin).
  static bool reclaim_cell(void* ctx, sim::Name name);

  /// ServiceDirectory::FlushFn pair — an exiting thread's stash flush,
  /// driven entirely off the payload's cached pointers (mid-TLS-
  /// destruction: no thread_local lookups are legal here).
  static void directory_flush(void* service, void* payload);
  void flush_thread_state(void* payload);

  /// Re-tags `st` against the current resize generation; on mismatch the
  /// contents — names still held in a now-retired group — are flushed
  /// through release_shared so that group can drain (the stash-
  /// invalidation rule; see docs/protocols.md).
  void cache_sync_gen(NameStash& st, EpochDomain::Slot& slot,
                      telemetry::MetricsRegistry::ThreadStripe& stripe,
                      const lease::Heartbeat* hb);
  /// Hit/miss accounting; window roll-ups fold into the aggregate and
  /// spill any excess above an adaptively shrunk capacity.
  void cache_note_acquire(NameStash& st, bool hit, EpochDomain::Slot& slot,
                          telemetry::MetricsRegistry::ThreadStripe& stripe,
                          const lease::Heartbeat* hb);
  /// Spills the `k` oldest stashed names through release_shared. `hb`
  /// is the stash owner's heartbeat (stashed leases are rebound to it).
  void cache_spill(NameStash& st, std::uint32_t k, EpochDomain::Slot& slot,
                   telemetry::MetricsRegistry::ThreadStripe& stripe,
                   const lease::Heartbeat* hb);

  ElasticOptions options_;
  std::uint64_t min_holders_;
  std::uint64_t id_;  // process-unique (thread_ctx.h), keys per-thread state
  EpochDomain domain_;
  ScheduleCache schedules_;

  /// RCU-published pointers: the live group (acquire path) and the tag
  /// table (release path). Dereferenced only under an epoch pin.
  // mo: acquire, release, relaxed -- RCU pointer: release-publish on swap,
  // acquire-load before any deref (under an epoch pin); relaxed only for
  // pointer-identity checks under resize_mu_, which wrote the pointer.
  std::atomic<ShardGroup*> live_group_{nullptr};
  // mo: acquire, release, relaxed -- tag table: release-publish with the
  // swap, acquire-load before deref on the release path; relaxed for
  // nullptr slot scans under resize_mu_ (use sites carry mo:relaxed-ok —
  // the std::array wrapper hides the element type from the decl index).
  std::array<std::atomic<ShardGroup*>, kMaxGroups> groups_{};

  /// Lock-free mirrors of the live group's geometry so capacity()/holders()
  /// never dereference a pointer that a concurrent resize might retire —
  /// and so the name-cache fast paths can validate a name's tag and range
  /// without pinning the epoch.
  // mo: acquire, release -- geometry mirror: release-published with the
  // group swap, acquire-read by the name-cache range checks.
  std::atomic<std::uint64_t> live_local_capacity_{0};
  // mo: release, relaxed -- release-published with the group swap; relaxed
  // reads feed holders()/maintenance() sizing hints, never a deref.
  std::atomic<std::uint64_t> live_holders_{0};
  // mo: acquire, release -- published with the swap; acquire-read to stamp
  // per-thread stashes with the tag they must match.
  std::atomic<std::uint32_t> live_tag_{0};

  // mo: acquire, release, relaxed -- resize ticket: release-incremented
  // after each swap, acquire-read to detect a missed swap; relaxed inside
  // maintenance(), which holds resize_mu_ and so cannot race a writer.
  std::atomic<std::uint64_t> generation_{0};
  // mo: relaxed -- contended-acquire streak heuristic; a lost update only
  // delays a grow decision, it cannot corrupt state.
  std::atomic<std::uint32_t> miss_streak_{0};
  /// Consecutive low-watermark observations (maintenance() only, under
  /// resize_mu_); plain int would do but keeps the header self-consistent.
  // mo: relaxed -- written only under resize_mu_; atomic for the header's
  // self-consistency, not for cross-thread ordering.
  std::atomic<std::uint32_t> low_streak_{0};

  /// Detailed-mode sampling: one observed op (trace_ticks() pair +
  /// probe stats) per (mask + 1) per thread, same cadence as
  /// RenamingService.
  static constexpr std::uint32_t kLatencySampleMask = 255;

  /// The telemetry surface, resolved once at construction (see
  /// ElasticOptions::telemetry): the registry every event counts into,
  /// the interned `elastic.*` metric ids, and the detailed flag gating
  /// the per-op histograms.
  struct Instruments {
    telemetry::MetricsRegistry* registry = nullptr;
    bool detailed = false;
    telemetry::MetricId grow_events = 0;
    telemetry::MetricId shrink_events = 0;
    telemetry::MetricId reclaimed_groups = 0;
    telemetry::MetricId cache_hits = 0;
    telemetry::MetricId cache_misses = 0;
    telemetry::MetricId sweep_budget_exhausted = 0;
    telemetry::MetricId sweeps = 0;
    telemetry::MetricId stash_spills = 0;
    telemetry::MetricId stash_flushes = 0;
    telemetry::MetricId epoch_advances = 0;
    telemetry::MetricId acquire_ticks = 0;   // histogram
    telemetry::MetricId release_ticks = 0;   // histogram
    telemetry::MetricId probe_len = 0;       // histogram
    telemetry::MetricId lost_races = 0;      // histogram
    telemetry::MetricId ring_walk = 0;       // histogram
    telemetry::MetricId quiesce_ticks = 0;   // histogram
  };
  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;
  Instruments ins_;
  /// The closed control loop (null when options.control.mode == kOff);
  /// constructed over ins_.registry, after it, destroyed before it.
  std::unique_ptr<control::AdaptiveController> controller_;
  /// The grow threshold acquire() compares the miss streak against:
  /// the controller's hysteresis knob when attached, else the option.
  [[nodiscard]] std::uint32_t effective_grow_threshold() const {
    return controller_ != nullptr ? controller_->grow_miss_threshold()
                                  : options_.grow_miss_threshold;
  }
  /// Likewise for the auto-shrink low-watermark streak (maintenance()).
  [[nodiscard]] std::uint32_t effective_shrink_threshold() const {
    return controller_ != nullptr ? controller_->shrink_low_threshold()
                                  : options_.shrink_low_threshold;
  }

  /// Serializes resize + reclamation bookkeeping (cold path only).
  /// SimMutex, not std::mutex: the critical sections contain sim points
  /// (the scenario engine suspends workers *inside* a resize to test the
  /// publication order), and a blocking lock would deadlock the
  /// serialized schedule — see platform/sim_point.h. Identical to
  /// std::mutex in normal builds.
  mutable SimMutex resize_mu_;
  std::vector<std::unique_ptr<ShardGroup>> linked_;  // live + draining
  std::vector<LimboEntry> limbo_;  // unlinked, awaiting final quiescence

  /// The lease table (null when options.lease.ttl_ticks == 0 — the
  /// leasing-off hot path pays one null check per op and nothing else).
  std::unique_ptr<lease::LeaseTable> leases_;
  /// Sampled op-path reap poll cadence (every 64th op per thread).
  static constexpr std::uint32_t kLeasePollMask = 63;
};

}  // namespace loren
