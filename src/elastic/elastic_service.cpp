#include "elastic/elastic_service.h"

#include <algorithm>
#include <stdexcept>

#include "platform/sim_point.h"
#include "renaming/service.h"  // auto_shard_count
#include "renaming/service_directory.h"
#include "renaming/thread_ctx.h"
#include "telemetry/trace.h"

namespace {

/// Per-(thread, service) hot-path state: this thread's epoch slot in the
/// service's domain (registered lazily — the introspection accessors must
/// be able to touch the entry without registering), its sticky shard hint
/// (masked down when the live group has fewer shards — after a resize the
/// hint is merely stale, never wrong), the release-path maintenance sample
/// counter, and the thread-local name stash.
struct PerElastic {
  loren::EpochDomain::Slot* slot = nullptr;
  /// This thread's stripe of the service's metrics registry, resolved
  /// alongside the epoch slot (telemetry/metrics.h).
  loren::telemetry::MetricsRegistry::ThreadStripe* stripe = nullptr;
  std::uint32_t shard = 0;
  std::uint32_t sample = 0;
  /// Detailed-mode sampling phases (every (mask+1)-th op observed);
  /// acquire and release keep separate phases so strict churn
  /// alternation cannot park one side on an unsampled parity.
  std::uint32_t op_tick = 0;
  std::uint32_t rel_tick = 0;
  loren::NameStash stash;
  /// This thread's lease heartbeat cell (null until the first op under a
  /// leasing service; heap-owned by the LeaseTable, outlives the thread).
  loren::lease::Heartbeat* hb = nullptr;
  /// Sampled reap-poll phase (ElasticRenamingService::kLeasePollMask).
  std::uint32_t lease_poll = 0;
};

struct ThreadCtx {
  std::uint64_t tslot;
  loren::Xoshiro256 rng;
  loren::PerServiceTable<PerElastic> services;

  ThreadCtx(std::uint64_t seed, std::uint64_t s)
      : tslot(s), rng(loren::mix_seed(seed, s)) {}

  /// Thread exit: flush every still-registered service's stash so names
  /// aren't stranded (renaming/service_directory.h). Mid-TLS-destruction,
  /// so the callbacks use only the payload's cached pointers.
  ~ThreadCtx() {
    services.for_each([](std::uint64_t id, PerElastic& p) {
      loren::ServiceDirectory::instance().flush(id, &p);
    });
  }
};

ThreadCtx& thread_ctx(std::uint64_t seed) {
  thread_local ThreadCtx ctx(seed, loren::dense_thread_slot());
  return ctx;
}

PerElastic& per_elastic(ThreadCtx& ctx, std::uint64_t service_id,
                        std::uint32_t stash_capacity) {
  return ctx.services.for_service(
      service_id, [&ctx, stash_capacity](PerElastic& p) {
        p.shard = static_cast<std::uint32_t>(ctx.tslot);
        p.stash.configure(stash_capacity);
      });
}

loren::BatchLayoutParams with_epsilon(loren::BatchLayoutParams p, double eps) {
  p.epsilon = eps;
  return p;
}

}  // namespace

namespace loren {

using sim::Name;

namespace {

/// name = (local << kTagBits) | tag, plus the generation stamp when the
/// debug release guard is on (see ElasticOptions::debug_release_guard).
Name encode_name(const ShardGroup& g, std::int64_t local, bool guard) {
  std::uint64_t v = (static_cast<std::uint64_t>(local)
                     << ElasticRenamingService::kTagBits) |
                    g.tag();
  if (guard) {
    v |= (g.generation() & ElasticRenamingService::kGenStampMask)
         << ElasticRenamingService::kGenStampShift;
  }
  return static_cast<Name>(v);
}

/// encode_name's inverse: the release-path decode shared by release()
/// and release_many(), so the stamp geometry lives in exactly two
/// adjacent functions.
struct DecodedName {
  std::uint64_t local;
  std::uint32_t tag;
  std::uint64_t stamp;  // meaningful only when the guard is on
};

DecodedName decode_name(Name name, bool guard) {
  std::uint64_t raw = static_cast<std::uint64_t>(name);
  DecodedName d{};
  if (guard) {
    d.stamp = (raw >> ElasticRenamingService::kGenStampShift) &
              ElasticRenamingService::kGenStampMask;
    raw &= (std::uint64_t{1} << ElasticRenamingService::kGenStampShift) - 1;
  }
  d.tag = static_cast<std::uint32_t>(raw) &
          (ElasticRenamingService::kMaxGroups - 1);
  d.local = raw >> ElasticRenamingService::kTagBits;
  return d;
}

/// The stale double-release ABA guard: with the guard on, the tag has
/// been recycled since the name was issued iff the generation stamp
/// mismatches — freeing the cell would hit a victim in the *new* group.
bool stamp_matches(const loren::ShardGroup& g, const DecodedName& d,
                   bool guard) {
  return !guard ||
         (g.generation() & ElasticRenamingService::kGenStampMask) == d.stamp;
}

}  // namespace

ElasticRenamingService::ElasticRenamingService(std::uint64_t initial_holders,
                                               ElasticOptions options)
    : options_(options),
      min_holders_(options.min_holders != 0 ? options.min_holders
                                            : initial_holders),
      id_(next_service_instance_id()),
      schedules_(with_epsilon(options.layout_extra, options.epsilon)) {
  if (initial_holders == 0) {
    throw std::invalid_argument("ElasticRenamingService: n must be >= 1");
  }
  if (min_holders_ > options_.max_holders) {
    throw std::invalid_argument(
        "ElasticRenamingService: min_holders > max_holders");
  }
  const std::uint64_t initial =
      std::clamp(initial_holders, min_holders_, options_.max_holders);

  // Resolve the telemetry surface once: attached registry = detailed mode
  // (per-op histograms live), internal fallback = event counters only.
  // Metric ids are interned here so the hot paths never touch a name.
  if (options_.telemetry.registry != nullptr) {
    ins_.registry = options_.telemetry.registry;
    ins_.detailed = true;
  } else {
    owned_metrics_ = std::make_unique<telemetry::MetricsRegistry>();
    ins_.registry = owned_metrics_.get();
  }
  telemetry::MetricsRegistry& reg = *ins_.registry;
  ins_.grow_events = reg.counter("elastic.grow.events");
  ins_.shrink_events = reg.counter("elastic.shrink.events");
  ins_.reclaimed_groups = reg.counter("elastic.reclaim.groups");
  ins_.cache_hits = reg.counter("elastic.cache.hits");
  ins_.cache_misses = reg.counter("elastic.cache.misses");
  ins_.sweep_budget_exhausted = reg.counter("elastic.sweep.budget_exhausted");
  ins_.sweeps = reg.counter("elastic.sweep.invocations");
  ins_.stash_spills = reg.counter("elastic.stash.spills");
  ins_.stash_flushes = reg.counter("elastic.stash.flushes");
  ins_.epoch_advances = reg.counter("elastic.epoch.advances");
  ins_.acquire_ticks = reg.histogram("elastic.acquire.ticks");
  ins_.release_ticks = reg.histogram("elastic.release.ticks");
  ins_.probe_len = reg.histogram("elastic.acquire.probe_len");
  ins_.lost_races = reg.histogram("elastic.acquire.lost_races");
  ins_.ring_walk = reg.histogram("elastic.batch.ring_walk");
  ins_.quiesce_ticks = reg.histogram("elastic.reclaim.quiesce_ticks");

  if (options_.control.mode != control::ControlMode::kOff) {
    // The controller reads windowed deltas of the acquire-latency
    // histogram, which only fills in detailed mode — so enabling control
    // forces it even on the internal registry.
    ins_.detailed = true;
    static_assert(control::AdaptiveController::kStashFloor ==
                      NameStash::kMinCapacity,
                  "stash knob floor must match the stash's own minimum");
    control::AdaptiveController::KnobSeeds seeds;
    seeds.stash_cap = NameStash::kMaxCapacity;
    seeds.grow_miss_threshold = options_.grow_miss_threshold;
    seeds.shrink_low_threshold = options_.shrink_low_threshold;
    controller_ = std::make_unique<control::AdaptiveController>(
        options_.control, ins_.registry, ins_.acquire_ticks, seeds);
  }

  if (options_.lease.ttl_ticks != 0) {
    leases_ = std::make_unique<lease::LeaseTable>(options_.lease, ins_.registry);
    leases_->set_reclaimer(&ElasticRenamingService::reclaim_cell, this);
  }

  {
    std::lock_guard<SimMutex> lock(resize_mu_);
    const std::uint64_t shards =
        shard_count_for(initial, options_.shards, schedules_.params());
    const std::uint64_t shard_n = (initial + shards - 1) / shards;
    auto group = std::make_unique<ShardGroup>(
        /*tag=*/0, /*generation=*/1, initial, shards, options_.arena_layout,
        options_.arena_kind, schedules_.get(shard_n));
    ShardGroup* raw = group.get();
    live_local_capacity_.store(raw->local_capacity(),
                               std::memory_order_release);
    live_holders_.store(initial, std::memory_order_release);
    live_tag_.store(0, std::memory_order_release);
    groups_[0].store(raw, std::memory_order_release);
    live_group_.store(raw, std::memory_order_release);
    generation_.store(1, std::memory_order_release);
    linked_.push_back(std::move(group));
  }
  // Last: once registered, exiting threads may flush into us.
  ServiceDirectory::instance().register_service(
      id_, this, &ElasticRenamingService::directory_flush);
}

void ElasticRenamingService::cache_sync_gen(
    NameStash& st, EpochDomain::Slot& slot,
    telemetry::MetricsRegistry::ThreadStripe& stripe,
    const lease::Heartbeat* hb) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (st.gen() == gen) return;
  // A resize was published since the stash was filled: its contents are
  // names still *held* in what is now a retired (or at least older)
  // generation. Flush them through the shared tag-table path so that
  // generation can drain, then re-tag against the live group. (The tag
  // and generation are read separately; a resize racing between the two
  // loads only costs one extra flush on the next call — the stale pairing
  // fails this gen check again and self-heals.)
  if (!st.empty()) {
    Name buf[NameStash::kMaxCapacity];
    const std::uint32_t n = st.take_oldest(buf, st.size());
    release_shared(buf, n, slot, &stripe, hb);
  }
  st.set_gen(gen);
  st.set_expected_tag(live_tag_.load(std::memory_order_acquire));
}

void ElasticRenamingService::cache_note_acquire(
    NameStash& st, bool hit, EpochDomain::Slot& slot,
    telemetry::MetricsRegistry::ThreadStripe& stripe,
    const lease::Heartbeat* hb) {
  const NameStash::WindowStats ws = st.note_acquire(hit);
  if (ws.rolled) {
    stripe.add(ins_.cache_hits, ws.hits);
    stripe.add(ins_.cache_misses, ws.misses);
    if (controller_ != nullptr) st.clamp_capacity(controller_->stash_cap());
    if (st.excess() > 0) cache_spill(st, st.excess(), slot, stripe, hb);
  }
}

void ElasticRenamingService::cache_spill(
    NameStash& st, std::uint32_t k, EpochDomain::Slot& slot,
    telemetry::MetricsRegistry::ThreadStripe& stripe,
    const lease::Heartbeat* hb) {
  Name buf[NameStash::kMaxCapacity];
  const std::uint32_t n = st.take_oldest(buf, k);
  LOREN_SIM_POINT("stash.spill");
  LOREN_TRACE("stash.spill", n);
  stripe.add(ins_.stash_spills, n);
  release_shared(buf, n, slot, &stripe, hb);
}

std::uint64_t ElasticRenamingService::flush_thread_cache() {
  if (!options_.name_cache) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  NameStash& st = per.stash;
  const NameStash::WindowStats ws = st.take_partial_window();
  if (ws.rolled) {
    per.stripe->add(ins_.cache_hits, ws.hits);
    per.stripe->add(ins_.cache_misses, ws.misses);
  }
  std::uint64_t freed = 0;
  if (!st.empty()) {
    Name buf[NameStash::kMaxCapacity];
    const std::uint32_t n = st.take_oldest(buf, st.size());
    LOREN_SIM_POINT("stash.flush");
    LOREN_TRACE("stash.flush", n);
    per.stripe->add(ins_.stash_flushes);
    freed = release_shared(buf, n, *per.slot, per.stripe, per.hb);
  }
  st.set_gen(generation_.load(std::memory_order_acquire));
  st.set_expected_tag(live_tag_.load(std::memory_order_acquire));
  // A flush often precedes a drain check; push reclamation forward now
  // rather than waiting for the sampled release-path cadence.
  if (freed > 0) maintenance();
  return freed;
}

std::uint32_t ElasticRenamingService::thread_cache_size() const {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  return per_elastic(ctx, id_, options_.name_cache_capacity).stash.size();
}

std::uint32_t ElasticRenamingService::thread_cache_capacity() const {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  return per_elastic(ctx, id_, options_.name_cache_capacity).stash.capacity();
}

ElasticRenamingService::~ElasticRenamingService() {
  // Unregister first: the directory holds its lock across in-flight exit
  // flushes, so after this returns no thread can touch the dying service.
  ServiceDirectory::instance().unregister_service(id_);
}

bool ElasticRenamingService::reclaim_cell(void* ctx, Name name) {
  // Caller (the reap driver) holds an epoch pin — the tag-table deref
  // below follows the same rules as release_shared's.
  auto* self = static_cast<ElasticRenamingService*>(ctx);
  if (name < 0) return false;
  const DecodedName d = decode_name(name, self->options_.debug_release_guard);
  ShardGroup* g = self->groups_[d.tag].load(std::memory_order_acquire);
  if (g == nullptr) return false;
  if (!stamp_matches(*g, d, self->options_.debug_release_guard)) return false;
  if (!g->release_local(d.local)) return false;
  g->note_released();
  return true;
}

void ElasticRenamingService::directory_flush(void* service, void* payload) {
  static_cast<ElasticRenamingService*>(service)->flush_thread_state(payload);
}

void ElasticRenamingService::flush_thread_state(void* payload) {
  auto& per = *static_cast<PerElastic*>(payload);
  NameStash& st = per.stash;
  if (st.empty()) return;
  // Mid-TLS-destruction: only cached pointers are legal. The epoch slot
  // registers without TLS (mutex + heap); the stripe does not
  // (MetricsRegistry::stripe() probes a thread_local table), so a thread
  // that never cached one flushes uninstrumented. release_shared routes
  // names from *any* generation through the tag table, so stale-gen
  // stash contents drain correctly here too.
  if (per.slot == nullptr) per.slot = &domain_.register_thread();
  if (per.stripe != nullptr) per.stripe->add(ins_.stash_flushes);
  Name buf[NameStash::kMaxCapacity];
  const std::uint32_t n = st.take_oldest(buf, st.size());
  release_shared(buf, n, *per.slot, per.stripe, per.hb);
}

void ElasticRenamingService::lease_heartbeat(
    lease::Heartbeat*& hb, std::uint32_t& poll, NameStash* st,
    EpochDomain::Slot& slot,
    telemetry::MetricsRegistry::ThreadStripe& stripe) {
  if (hb == nullptr) hb = &leases_->register_thread();
  const std::uint64_t now = leases_->now();
  // mo:relaxed-ok(single-writer heartbeat stamp; the reaper's max() with
  // the lease deadline makes a stale read expiry-delaying, never
  // expiry-causing — see lease/lease_table.h)
  const std::uint64_t prev = hb->last.load(std::memory_order_relaxed);
  // mo:relaxed-ok(same single-writer stamp contract)
  hb->last.store(now, std::memory_order_relaxed);
  if (prev != 0 && now - prev >= leases_->ttl() && st != nullptr &&
      !st->empty()) {
    // This thread went quiet for a full ttl: its stashed names may have
    // been reaped (and their cells reclaimed into their groups), so each
    // one must revalidate before it can be re-issued. Dropped entries
    // were already reclaimed — dropping is the only safe move.
    Name buf[NameStash::kMaxCapacity];
    const std::uint32_t n = st->take_oldest(buf, st->size());
    for (std::uint32_t i = 0; i < n; ++i) {
      if (leases_->validate(buf[i], hb)) st->push(buf[i]);
    }
  }
  if ((poll++ & kLeasePollMask) == 0) {
    std::size_t reclaimed;
    {
      // The reclaim callback dereferences the tag table: pin the epoch
      // around the whole pass, exactly like a release.
      EpochDomain::Guard guard(domain_, slot);
      reclaimed = leases_->try_reap(now, &stripe);
    }
    // Reclaimed cells went back through note_released(), so group live
    // counters are already right; just re-admit shed callers.
    if (reclaimed > 0 && controller_ != nullptr) controller_->note_release();
  }
}

Name ElasticRenamingService::renew_lease(Name name) {
  if (leases_ == nullptr) return name;
  if (name < 0) return kLeaseExpired;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  lease_heartbeat(per.hb, per.lease_poll,
                  options_.name_cache ? &per.stash : nullptr, *per.slot,
                  *per.stripe);
  return leases_->renew(name, leases_->now(), per.hb, per.stripe) ? name
                                                          : kLeaseExpired;
}

std::size_t ElasticRenamingService::reap_expired() {
  if (leases_ == nullptr) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  // Deliberately NO heartbeat stamp here: reap_expired is a maintenance
  // op (a dedicated reaper holds nothing; the post-crash drain must be
  // able to expire the *caller's own* abandoned names). Holders keep
  // their leases alive through regular ops or renew_lease().
  std::size_t reclaimed;
  {
    EpochDomain::Guard guard(domain_, *per.slot);
    reclaimed = leases_->reap(leases_->now(), per.stripe);
  }
  if (reclaimed > 0) {
    if (controller_ != nullptr) controller_->note_release();
    // Reaped names may have emptied a retired generation: push the
    // drain->unlink->free pipeline forward now.
    maintenance();
  }
  return reclaimed;
}

Name ElasticRenamingService::acquire() {
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.slot,
                    *per.stripe);
  }
  // Detailed mode: every (mask+1)-th op is the observed sample — one
  // trace_ticks() pair plus probe/lost-race accumulation into a stack
  // struct, folded into the histograms as single stripe records at the
  // exits. Unobserved ops pay one counter increment and a predictable
  // branch (the <= 5% hot-path contract, docs/observability.md).
  const bool timed =
      ins_.detailed && ((per.op_tick++ & kLatencySampleMask) == 0);
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  ShardGroup::ProbeStats stats;
  ShardGroup::ProbeStats* const pstats = timed ? &stats : nullptr;
  const auto finish = [&](Name name) {
    if (timed) {
      per.stripe->record(ins_.probe_len, stats.probes);
      if (stats.lost_races != 0) {
        per.stripe->record(ins_.lost_races, stats.lost_races);
      }
      per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
    }
    return name;
  };
  if (controller_ != nullptr) {
    controller_->note_ops(*per.stripe, 1, per.op_tick);
  }
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st, *per.slot, *per.stripe, per.hb);
    if (!st.empty()) {
      // The steady-state hot path: a pop from thread-owned memory — no
      // epoch pin, no probes, no counter traffic. The name's cell stayed
      // taken in its (still live: the generation matched) group.
      const Name name = static_cast<Name>(st.pop());
      cache_note_acquire(st, true, *per.slot, *per.stripe, per.hb);
      if (timed) {
        per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
      }
      return name;
    }
    cache_note_acquire(st, false, *per.slot, *per.stripe, per.hb);
  }
  // Admission gate: names already parked in this thread's stash (above)
  // still serve during shed — they are thread-owned — but the shared
  // namespace is closed until a release ends the failure streak.
  if (controller_ != nullptr && !controller_->admit(*per.stripe)) {
    return finish(kShed);
  }

  // Bounded by the doubling ladder: each failed round either resized the
  // service or returns -1, so the loop runs O(log2(max/min)) times worst
  // case; 40 covers the full default range with margin.
  for (int attempt = 0; attempt < 40; ++attempt) {
    std::uint64_t seen_gen;
    {
      EpochDomain::Guard guard(domain_, *per.slot);
      // Generation before group: if a resize lands between the two loads
      // we hold (old gen, new group) and a miss leads grow_from() to a
      // gen mismatch — a harmless retry. The other order would pair a
      // stale full group with the *current* gen and let one pressure
      // event double capacity twice.
      seen_gen = generation_.load(std::memory_order_acquire);
      ShardGroup* g = live_group_.load(std::memory_order_acquire);
      const std::int64_t local = g->try_acquire(ctx.rng, &per.shard, pstats);
      if (local >= 0) {
        g->note_acquired();
        // A schedule win ends any miss streak: pressure must be sustained
        // (uninterrupted misses) to trigger an automatic grow.
        if (miss_streak_.load(std::memory_order_relaxed) != 0) {
          miss_streak_.store(0, std::memory_order_relaxed);
        }
        const Name n = encode_name(*g, local, options_.debug_release_guard);
        if (leases_ != nullptr) {
          leases_->open(n, leases_->now(), per.hb, per.stripe);
        }
        return finish(n);
      }
    }
    // Full schedule miss: record pressure, grow when it is sustained.
    const std::uint32_t streak =
        miss_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.auto_grow && streak >= effective_grow_threshold() &&
        grow_from(seen_gen)) {
      continue;
    }
    // Growth unavailable (or pressure not yet sustained): deterministic
    // sweep so we fail only on true exhaustion of the live group (or, with
    // a sweep budget set, fail fast once the bounded walk is spent).
    std::int64_t swept = -1;
    const std::uint32_t swept_before = stats.sweep_shards;
    {
      EpochDomain::Guard guard(domain_, *per.slot);
      ShardGroup* g = live_group_.load(std::memory_order_acquire);
      LOREN_SIM_POINT("elastic.sweep");
      LOREN_TRACE("elastic.sweep", seen_gen);
      // The sweep is already off the hot path, so its shard count is
      // always collected — `elastic.sweep.invocations` counts shards
      // swept in every mode (matching service.sweep.invocations).
      swept = g->sweep_acquire(&per.shard, options_.sweep_retry_budget,
                               &stats);
      if (swept >= 0) {
        g->note_acquired();
        // A sweep win is still a successful acquisition: it must end the
        // miss streak like a schedule win does. Leaving the streak in
        // place let one later schedule miss cross grow_miss_threshold and
        // double capacity with no sustained pressure at all.
        if (miss_streak_.load(std::memory_order_relaxed) != 0) {
          miss_streak_.store(0, std::memory_order_relaxed);
        }
        per.stripe->add(ins_.sweeps, stats.sweep_shards - swept_before);
        const Name n = encode_name(*g, swept, options_.debug_release_guard);
        if (leases_ != nullptr) {
          leases_->open(n, leases_->now(), per.hb, per.stripe);
        }
        return finish(n);
      }
    }
    per.stripe->add(ins_.sweeps, stats.sweep_shards - swept_before);
    if (swept == ShardGroup::kSweepBudgetTruncated) {
      // Budget-truncated sweep: the walk gave up before covering every
      // shard, so this is *not* evidence the group is full. Report the
      // explicit exhaustion code without forcing a grow — feeding a
      // truncated scan into the grow path would reintroduce the
      // spurious-grow bug the miss-streak discipline exists to prevent.
      per.stripe->add(ins_.sweep_budget_exhausted);
      if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
      return finish(kSweepBudgetExhausted);
    }
    // True exhaustion: force a grow regardless of streak, or give up.
    if (!options_.auto_grow || !grow_from(seen_gen)) {
      if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
      return finish(kExhausted);
    }
  }
  if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
  return finish(kExhausted);
}

bool ElasticRenamingService::release(Name name) {
  if (name < 0) return false;
  const DecodedName d = decode_name(name, options_.debug_release_guard);

  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.slot,
                    *per.stripe);
  }
  const bool timed =
      ins_.detailed && ((per.rel_tick++ & kLatencySampleMask) == 0);
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  const auto finish = [&](bool ok) {
    if (timed) {
      per.stripe->record(ins_.release_ticks, telemetry::trace_ticks() - t0);
    }
    return ok;
  };
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st, *per.slot, *per.stripe, per.hb);
    // Only live-generation names are ever stashed: the 3-bit tag must
    // match the live group's (the stash-invalidation rule) and the local
    // index its bound. A name from a retired-but-draining generation
    // takes the shared path below, so retirees keep draining.
    if (d.tag == st.expected_tag() &&
        d.local < live_local_capacity_.load(std::memory_order_acquire)) {
      if (st.contains(name)) return finish(false);  // same-thread double release
      // Validate under a pin that the cell really is held before touching
      // anything (never-acquired or already-freed values must keep
      // failing, as on the shared path — and a failing release must have
      // no side effects, so the overflow spill waits until the name has
      // validated). No RMW and no counter update — the cell stays taken
      // and the group's live count stays up.
      bool held = false;
      {
        EpochDomain::Guard guard(domain_, *per.slot);
        ShardGroup* g = groups_[d.tag].load(std::memory_order_acquire);
        LOREN_SIM_POINT("elastic.release.stamp");
        held = g != nullptr &&
               stamp_matches(*g, d, options_.debug_release_guard) &&
               g->is_held(d.local);
      }
      if (!held) return finish(false);
      // Stash absorb keeps the lease open (the cell stays taken): rebind
      // it to this thread's heartbeat so the reaper tracks the stash's
      // owner, not the original holder. A rebind miss means the reaper
      // already expired the lease and reclaimed the cell — absorbing now
      // would hand a recycled cell back as a stash hit.
      if (leases_ != nullptr &&
          !leases_->rebind(name, leases_->now(), per.hb) &&
          leases_->release_guard()) {
        return finish(false);
      }
      if (st.full()) {
        cache_spill(st, st.capacity() / 2 + 1, *per.slot, *per.stripe, per.hb);
      }
      st.push(name);
      if ((++per.sample & 63u) == 0) maintenance();
      return finish(true);
    }
  }
  {
    EpochDomain::Guard guard(domain_, *per.slot);
    ShardGroup* g = groups_[d.tag].load(std::memory_order_acquire);
    if (g == nullptr) return finish(false);
    LOREN_SIM_POINT("elastic.release.stamp");
    if (!stamp_matches(*g, d, options_.debug_release_guard)) {
      return finish(false);
    }
    // Close-vs-reap is linearized by the lease shard lock: exactly one
    // side frees the cell. A lost close means the reaper already reclaimed
    // it — with the guard on the late release is rejected (kLeaseExpired
    // semantics), never silently double-freed under a revived holder.
    if (leases_ != nullptr && !leases_->close(name, per.hb, per.stripe) &&
        leases_->release_guard()) {
      return finish(false);
    }
    if (!g->release_local(d.local)) return finish(false);
    g->note_released();
  }
  // A real shared-namespace free (stash absorbs above keep the cell
  // taken): re-admit shed callers.
  if (controller_ != nullptr) controller_->note_release();
  // Sampled maintenance: drive reclamation (and auto-shrink) forward
  // without a background thread and without taxing every release.
  if ((++per.sample & 63u) == 0) maintenance();
  return finish(true);
}

std::uint64_t ElasticRenamingService::acquire_many(std::uint64_t k,
                                                   Name* out) {
  if (k == 0) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.slot,
                    *per.stripe);
  }
  const bool timed =
      ins_.detailed && ((per.op_tick++ & kLatencySampleMask) == 0);
  const std::uint64_t t0 = timed ? telemetry::trace_ticks() : 0;
  ShardGroup::ProbeStats stats;
  const auto finish = [&](std::uint64_t n) {
    if (ins_.detailed) {
      per.stripe->record(ins_.ring_walk, stats.ring_shards);
      if (stats.probes != 0) per.stripe->record(ins_.probe_len, stats.probes);
      if (stats.lost_races != 0) {
        per.stripe->record(ins_.lost_races, stats.lost_races);
      }
    }
    if (stats.sweep_shards != 0) {
      per.stripe->add(ins_.sweeps, stats.sweep_shards);
    }
    if (timed) {
      per.stripe->record(ins_.acquire_ticks, telemetry::trace_ticks() - t0);
    }
    return n;
  };

  std::uint64_t got = 0;
  if (options_.name_cache) {
    NameStash& st = per.stash;
    cache_sync_gen(st, *per.slot, *per.stripe, per.hb);
    while (got < k && !st.empty()) {
      out[got++] = static_cast<Name>(st.pop());
      cache_note_acquire(st, true, *per.slot, *per.stripe, per.hb);
    }
    if (got == k) {
      if (controller_ != nullptr) {
        controller_->note_ops(*per.stripe, got, per.op_tick);
      }
      return finish(got);
    }
  }
  // Admission + batch clamp: the stash served what it could above; the
  // shared portion is gated (shed returns the partial batch) and bounded
  // by the controller's live batch knob — callers see a short fill and
  // come back, which is the whole adaptive-batching mechanism.
  std::uint64_t want = k;
  if (controller_ != nullptr) {
    if (!controller_->admit(*per.stripe)) {
      controller_->note_ops(*per.stripe, got, per.op_tick);
      return finish(got);
    }
    want = std::min<std::uint64_t>(k, got + controller_->batch_limit());
  }
  const std::uint64_t from_cache = got;
  // Each round runs against one generation under one epoch pin; a round
  // that leaves a shortfall grows the namespace and the next round claims
  // the remainder from the new generation, so the loop is bounded by the
  // doubling ladder exactly like acquire()'s.
  for (int attempt = 0; attempt < 40 && got < want; ++attempt) {
    std::uint64_t seen_gen = 0;
    std::uint64_t round = 0;
    bool budget_hit = false;
    {
      EpochDomain::Guard guard(domain_, *per.slot);
      // Generation before group, for the same reason as acquire().
      seen_gen = generation_.load(std::memory_order_acquire);
      ShardGroup* g = live_group_.load(std::memory_order_acquire);
      round = g->try_acquire_many(ctx.rng, &per.shard, want - got, out + got,
                                  options_.sweep_retry_budget, &budget_hit,
                                  &stats);
      if (round > 0) {
        // One live-counter add and one tag/stamp encode pass per
        // sub-batch — the whole point of batching. The lease clock is
        // read once per sub-batch too: every name in the round shares a
        // registration instant.
        g->note_acquired_n(static_cast<std::int64_t>(round));
        const std::uint64_t lnow = leases_ != nullptr ? leases_->now() : 0;
        for (std::uint64_t i = 0; i < round; ++i) {
          out[got + i] = encode_name(*g, out[got + i],
                                     options_.debug_release_guard);
          if (leases_ != nullptr) {
            leases_->open(out[got + i], lnow, per.hb, per.stripe);
          }
        }
        got += round;
      }
    }
    if (got == want) {
      // Any fully served batch ends the miss streak, sweep-served or not:
      // pressure must be *sustained* to trigger an automatic grow.
      if (miss_streak_.load(std::memory_order_relaxed) != 0) {
        miss_streak_.store(0, std::memory_order_relaxed);
      }
      break;
    }
    if (budget_hit) {
      // The shortfall came from a budget-truncated backstop sweep, not
      // from scanning every shard — no exhaustion evidence, so no miss
      // streak and no grow. Hand back the partial batch.
      per.stripe->add(ins_.sweep_budget_exhausted);
      if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
      break;
    }
    // Shortfall past try_acquire_many's sweep backstop: the live group
    // really had fewer than the remaining demand free. That is one
    // pressure event for the whole batch — not one per missing name — and,
    // like acquire()'s true-exhaustion path, grounds for growing now.
    // sim:exempt(streak bookkeeping; the claim RMWs carry the sim points)
    miss_streak_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.auto_grow || !grow_from(seen_gen)) {
      if (controller_ != nullptr) controller_->note_saturation(*per.stripe);
      break;
    }
  }
  if (options_.name_cache) {
    for (std::uint64_t i = from_cache; i < got; ++i) {
      cache_note_acquire(per.stash, false, *per.slot, *per.stripe, per.hb);
    }
  }
  if (controller_ != nullptr) {
    controller_->note_ops(*per.stripe, got, per.op_tick);
  }
  return finish(got);
}

std::uint64_t ElasticRenamingService::release_shared(
    const Name* names, std::uint64_t count, EpochDomain::Slot& slot,
    telemetry::MetricsRegistry::ThreadStripe* stripe,
    const lease::Heartbeat* hb) {
  std::uint64_t freed = 0;
  EpochDomain::Guard guard(domain_, slot);
  // Batches overwhelmingly come from one generation, so coalesce the
  // live-counter updates per group and flush on change.
  ShardGroup* run_group = nullptr;
  std::int64_t run_freed = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Name name = names[i];
    if (name < 0) continue;
    const DecodedName d = decode_name(name, options_.debug_release_guard);
    ShardGroup* g = groups_[d.tag].load(std::memory_order_acquire);
    if (g == nullptr) continue;
    LOREN_SIM_POINT("elastic.release.stamp");
    if (!stamp_matches(*g, d, options_.debug_release_guard)) continue;
    // Same close-vs-reap linearization as release(): a lease the reaper
    // already expired must not free the (since recycled) cell again.
    if (leases_ != nullptr && !leases_->close(name, hb, stripe) &&
        leases_->release_guard()) {
      continue;
    }
    if (!g->release_local(d.local)) continue;
    if (g != run_group) {
      if (run_group != nullptr) run_group->note_released_n(run_freed);
      run_group = g;
      run_freed = 0;
    }
    ++run_freed;
    ++freed;
  }
  if (run_group != nullptr) run_group->note_released_n(run_freed);
  if (freed > 0 && controller_ != nullptr) controller_->note_release();
  return freed;
}

std::uint64_t ElasticRenamingService::release_many(const Name* names,
                                                   std::uint64_t count) {
  if (count == 0) return 0;
  ThreadCtx& ctx = thread_ctx(options_.seed);
  PerElastic& per = per_elastic(ctx, id_, options_.name_cache_capacity);
  if (per.slot == nullptr) {
    per.slot = &domain_.register_thread();
    per.stripe = &ins_.registry->stripe();
  }
  if (leases_ != nullptr) {
    lease_heartbeat(per.hb, per.lease_poll,
                    options_.name_cache ? &per.stash : nullptr, *per.slot,
                    *per.stripe);
  }
  std::uint64_t freed = 0;
  if (!options_.name_cache) {
    freed = release_shared(names, count, *per.slot, per.stripe, per.hb);
    if (freed > 0 && (++per.sample & 63u) == 0) maintenance();
    return freed;
  }
  NameStash& st = per.stash;
  cache_sync_gen(st, *per.slot, *per.stripe, per.hb);
  const std::uint32_t live_tag = st.expected_tag();
  const std::uint64_t local_cap =
      live_local_capacity_.load(std::memory_order_acquire);
  // Classify under one pin per chunk (a Guard must never nest on one
  // slot, so the shared remainder is released between pins): stashable
  // live-generation names are validated and parked, everything else —
  // stale-tag names, out-of-range values, stash overflow — is forwarded
  // to the shared path.
  Name shared_buf[NameStash::kMaxCapacity];
  std::uint64_t i = 0;
  while (i < count) {
    std::uint32_t n_shared = 0;
    {
      EpochDomain::Guard guard(domain_, *per.slot);
      for (; i < count && n_shared < NameStash::kMaxCapacity; ++i) {
        const Name name = names[i];
        if (name < 0) continue;
        const DecodedName d = decode_name(name, options_.debug_release_guard);
        if (st.contains(name)) continue;  // same-thread double release
        if (d.tag == live_tag && d.local < local_cap && !st.full()) {
          ShardGroup* g = groups_[d.tag].load(std::memory_order_acquire);
          if (g == nullptr ||
              !stamp_matches(*g, d, options_.debug_release_guard) ||
              !g->is_held(d.local)) {
            continue;  // not currently held: reject as the shared path would
          }
          // Stash absorb: same rebind-or-reject rule as release().
          if (leases_ != nullptr &&
              !leases_->rebind(name, leases_->now(), per.hb) &&
              leases_->release_guard()) {
            continue;
          }
          st.push(name);
          ++freed;
          continue;
        }
        shared_buf[n_shared++] = name;
      }
    }
    if (n_shared > 0) {
      freed += release_shared(shared_buf, n_shared, *per.slot, per.stripe,
                              per.hb);
    }
  }
  // Same sampled maintenance cadence as release(): one batch counts once.
  if (freed > 0 && (++per.sample & 63u) == 0) maintenance();
  return freed;
}

bool ElasticRenamingService::grow_from(std::uint64_t seen_gen) {
  LOREN_SIM_POINT("elastic.grow");
  std::lock_guard<SimMutex> lock(resize_mu_);
  if (generation_.load(std::memory_order_relaxed) != seen_gen) {
    return true;  // someone already resized since the caller's miss
  }
  const std::uint64_t h = live_holders_.load(std::memory_order_relaxed);
  if (h >= options_.max_holders) return false;
  return resize_locked(std::min(h * 2, options_.max_holders));
}

bool ElasticRenamingService::grow() {
  std::lock_guard<SimMutex> lock(resize_mu_);
  const std::uint64_t h = live_holders_.load(std::memory_order_relaxed);
  if (h >= options_.max_holders) return false;
  return resize_locked(std::min(h * 2, options_.max_holders));
}

bool ElasticRenamingService::shrink() {
  std::lock_guard<SimMutex> lock(resize_mu_);
  const std::uint64_t h = live_holders_.load(std::memory_order_relaxed);
  return resize_locked(std::max(h / 2, min_holders_));
}

bool ElasticRenamingService::resize(std::uint64_t holders) {
  std::lock_guard<SimMutex> lock(resize_mu_);
  return resize_locked(holders);
}

bool ElasticRenamingService::resize_locked(std::uint64_t target) {
  target = std::clamp(target, min_holders_, options_.max_holders);
  ShardGroup* cur = live_group_.load(std::memory_order_relaxed);
  if (target == cur->holders()) return false;
  // Free tag slots before looking for one: a long-drained retiree should
  // never block a resize.
  reclaim_locked();
  const int tag = find_free_tag_locked();
  if (tag < 0) return false;  // kMaxGroups generations still in flight

  const std::uint64_t shards =
      shard_count_for(target, options_.shards, schedules_.params());
  const std::uint64_t shard_n = (target + shards - 1) / shards;
  const std::uint64_t gen =
      generation_.load(std::memory_order_relaxed) + 1;
  auto group = std::make_unique<ShardGroup>(
      static_cast<std::uint32_t>(tag), gen, target, shards,
      options_.arena_layout, options_.arena_kind, schedules_.get(shard_n));
  ShardGroup* raw = group.get();

  // Publication order matters: the tag table entry must be visible before
  // the live pointer (an acquisition from the new group may release
  // immediately), and the retiring advance comes only after the swap so
  // quiesced(retire_epoch) really means "no in-flight acquisition can
  // still insert into the old group".
  LOREN_SIM_POINT("elastic.swap.publish");
  live_local_capacity_.store(raw->local_capacity(), std::memory_order_release);
  live_holders_.store(target, std::memory_order_release);
  live_tag_.store(static_cast<std::uint32_t>(tag), std::memory_order_release);
  groups_[static_cast<std::size_t>(tag)].store(raw, std::memory_order_release);
  live_group_.store(raw, std::memory_order_release);
  generation_.store(gen, std::memory_order_release);
  LOREN_SIM_POINT("elastic.swap.retire");
  cur->retire(domain_.advance(), telemetry::trace_ticks());
  linked_.push_back(std::move(group));

  telemetry::MetricsRegistry::ThreadStripe& stripe = ins_.registry->stripe();
  stripe.add(ins_.epoch_advances);
  if (target > cur->holders()) {
    stripe.add(ins_.grow_events);
    LOREN_TRACE("elastic.grow", gen);
  } else {
    stripe.add(ins_.shrink_events);
    LOREN_TRACE("elastic.shrink", gen);
  }
  miss_streak_.store(0, std::memory_order_relaxed);
  low_streak_.store(0, std::memory_order_relaxed);
  return true;
}

int ElasticRenamingService::find_free_tag_locked() const {
  for (std::uint32_t t = 0; t < kMaxGroups; ++t) {
    // mo:relaxed-ok(nullptr scan under resize_mu_, the only writer; no deref)
    if (groups_[t].load(std::memory_order_relaxed) == nullptr) {
      return static_cast<int>(t);
    }
  }
  return -1;
}

std::size_t ElasticRenamingService::reclaim_locked() {
  // Stage A: a retiree is drained once (a) the retire epoch quiesced (no
  // in-flight acquisition can still insert into it, so its live counter
  // is monotonically non-increasing from here) and (b) the counter hit
  // zero (no held names, so no legitimate release will look it up).
  // Unlink it and give it a fresh epoch to wait out in limbo.
  telemetry::MetricsRegistry::ThreadStripe& stripe = ins_.registry->stripe();
  for (auto it = linked_.begin(); it != linked_.end();) {
    ShardGroup* g = it->get();
    if (g->retired() && domain_.quiesced(g->retire_epoch()) &&
        g->live() <= 0) {
      groups_[g->tag()].store(nullptr, std::memory_order_release);
      const std::uint64_t e = domain_.advance();
      stripe.add(ins_.epoch_advances);
      LOREN_TRACE("elastic.unlink", g->tag());
      limbo_.push_back(LimboEntry{std::move(*it), e});
      it = linked_.erase(it);
    } else {
      ++it;
    }
  }
  // Stage B: limbo groups whose unlink epoch has quiesced — no release()
  // can still hold a pointer read from the tag table — are freed. Runs
  // after stage A so that with no readers in flight (quiescence is
  // immediate) a single pass unlinks *and* frees.
  std::size_t freed = 0;
  for (auto it = limbo_.begin(); it != limbo_.end();) {
    if (domain_.quiesced(it->unlink_epoch)) {
      // Quiescence wait: retirement to reclamation, in trace_ticks()
      // units (engine steps under LOREN_SIM, TSC otherwise).
      const std::uint64_t retired_at = it->group->retire_ticks();
      if (retired_at != 0) {
        stripe.record(ins_.quiesce_ticks,
                      telemetry::trace_ticks() - retired_at);
      }
      LOREN_TRACE("elastic.reclaim", it->group->tag());
      it = limbo_.erase(it);
      ++freed;
      stripe.add(ins_.reclaimed_groups);
    } else {
      ++it;
    }
  }
  return freed;
}

std::size_t ElasticRenamingService::reclaim() {
  std::lock_guard<SimMutex> lock(resize_mu_);
  return reclaim_locked();
}

void ElasticRenamingService::maintenance() {
  std::unique_lock<SimMutex> lock(resize_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // someone else is already on it
  reclaim_locked();
  if (!options_.auto_shrink) return;
  const std::uint64_t h = live_holders_.load(std::memory_order_relaxed);
  if (h / 2 < min_holders_) return;
  std::int64_t live = 0;
  for (const auto& g : linked_) live += g->live();
  if (live >= 0 && static_cast<std::uint64_t>(live) * 4 <= h) {
    // Low watermark — but only shrink once it is *sustained* across
    // consecutive samples, mirroring the grow-side miss streak.
    const std::uint32_t streak =
        // sim:exempt(maintenance-only counter under resize_mu_; no races)
        low_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= effective_shrink_threshold()) resize_locked(h / 2);
  } else {
    low_streak_.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t ElasticRenamingService::names_live() const {
  std::lock_guard<SimMutex> lock(resize_mu_);
  std::int64_t live = 0;
  for (const auto& g : linked_) live += g->live();
  return live > 0 ? static_cast<std::uint64_t>(live) : 0;
}

std::size_t ElasticRenamingService::groups_in_flight() const {
  std::lock_guard<SimMutex> lock(resize_mu_);
  return linked_.size();
}

std::uint64_t ElasticRenamingService::footprint_bytes() const {
  std::lock_guard<SimMutex> lock(resize_mu_);
  std::uint64_t bytes = 0;
  for (const auto& g : linked_) bytes += g->footprint_bytes();
  for (const auto& e : limbo_) bytes += e.group->footprint_bytes();
  return bytes;
}

}  // namespace loren
