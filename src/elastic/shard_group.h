// ShardGroup: one generation of the elastic namespace.
//
// A shard group is the unit the ElasticRenamingService publishes, retires,
// and reclaims: a fixed probe geometry (BatchLayout for n_g/S holders per
// shard, flattened once and shared via ScheduleCache) over a *single*
// arena — a cell-probe TasArena or a word-packed BitmapArena, chosen by
// ArenaKind — carved into S shard segments. One allocation per group —
// not one per shard — so the epoch-based resize protocol frees a retired
// generation with one deallocation, and a group's whole footprint
// appears/disappears atomically from the service's accounting.
//
// Within a group the probing discipline is the RenamingService one
// (service.h): sticky shard, ring migration on late wins, ring stealing
// on schedule misses, deterministic sweep as the exhaustion backstop.
// Names are group-local here — (cell << shard_shift) | shard — and gain
// their group tag only at the service layer (elastic_service.h), which is
// also where uniqueness across generations is argued.
//
// The striped live counter is the group's drain detector: acquisitions
// increment it inside an epoch pin, so once the service has (a) unpublished
// the group from the live pointer and (b) seen the retire epoch quiesce,
// the counter is monotonically non-increasing, and zero means drained —
// no name from this generation is still held, so the group can be
// unlinked and, after a second quiescence, freed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "platform/rng.h"
#include "platform/striped_counter.h"
#include "renaming/schedule_cache.h"
#include "tas/arena_segment.h"
#include "tas/tas_arena.h"

namespace loren {

class ShardGroup {
 public:
  /// `shards` must be a power of two; `schedule` is the plan for this
  /// group's per-shard holder count (schedule->layout.n() == holders/S).
  /// `arena_kind` picks the substrate: one cell-probe TasArena or one
  /// word-packed BitmapArena, either way a single allocation carved into
  /// shard segments (the segments dispatch, so the probing discipline
  /// below is substrate-agnostic except for the word-granular probes).
  ShardGroup(std::uint32_t tag, std::uint64_t generation, std::uint64_t holders,
             std::uint64_t shards, ArenaLayout arena_layout,
             ArenaKind arena_kind,
             std::shared_ptr<const CachedSchedule> schedule);

  /// Optional per-call observability (telemetry detailed mode): probe
  /// counts, observable lost races (load-before-RMW paths only — a lost
  /// single-RMW test_and_set is indistinguishable from "already taken"),
  /// and how far the batched ring walk / backstop sweep went. All fields
  /// accumulate, so one struct can span a multi-round acquisition.
  struct ProbeStats {
    std::uint32_t probes = 0;
    std::uint32_t lost_races = 0;
    std::uint32_t ring_shards = 0;
    std::uint32_t sweep_shards = 0;
  };

  /// Walk the shard ring starting at *sticky (updated in place: migrate on
  /// late wins, move to the winning shard when stealing). Returns the
  /// group-local name, or -1 when every shard's schedule missed.
  std::int64_t try_acquire(Xoshiro256& rng, std::uint32_t* sticky,
                           ProbeStats* stats = nullptr);

  /// Deterministic sweep of every cell (ring order from *sticky): fails
  /// with -1 only when zero cells in the group are free. `sweep_budget`
  /// bounds the walk to that many shards (0 = unbounded): a truncated
  /// sweep that found nothing returns kSweepBudgetTruncated (-2), which
  /// the elastic service must NOT treat as exhaustion pressure (a
  /// bounded scan giving up is not evidence the group is full).
  static constexpr std::int64_t kSweepBudgetTruncated = -2;
  std::int64_t sweep_acquire(std::uint32_t* sticky,
                             std::uint64_t sweep_budget = 0,
                             ProbeStats* stats = nullptr);

  /// Batched acquisition: claims up to `k` group-local names into `out`,
  /// returning the number claimed. One probe-schedule walk finds a seed
  /// cell per visited shard; the rest of that shard's demand is taken by
  /// a linear run-claim around the seed (one cache line at a time — see
  /// TasArena::try_claim_run). Walks the shard ring from *sticky like
  /// try_acquire, then falls back to the deterministic sweep
  /// (renaming/batch_claim.h holds the shared walk), so a shortfall
  /// (return < k) means the group had fewer than k free cells when
  /// scanned — the per-batch exhaustion signal the elastic service's
  /// grow-on-shortfall policy consumes. `sweep_budget` bounds the
  /// backstop sweep (0 = unbounded); a budget-truncated shortfall sets
  /// *sweep_budget_hit so the caller can keep it out of the pressure
  /// signals (see batch_claim.h).
  std::uint64_t try_acquire_many(Xoshiro256& rng, std::uint32_t* sticky,
                                 std::uint64_t k, std::int64_t* out,
                                 std::uint64_t sweep_budget = 0,
                                 bool* sweep_budget_hit = nullptr,
                                 ProbeStats* stats = nullptr);

  /// Frees a group-local name; false when it is not currently taken
  /// (single-RMW validation, concurrent double releases cannot both
  /// succeed).
  bool release_local(std::uint64_t local);

  /// True iff `local` is currently taken (a plain acquire load, no RMW).
  /// The release path of the thread-local name cache uses this to
  /// validate a name before stashing it instead of freeing its cell.
  [[nodiscard]] bool is_held(std::uint64_t local) const {
    if (local >= local_capacity()) return false;
    return segments_[local & shard_mask_].read(local >> shard_shift_) == 1;
  }

  /// Bookkeeping around the arena ops (the service calls these inside the
  /// same epoch pin as the arena op itself — see shard_group.h preamble).
  void note_acquired() { live_.add(1); }
  void note_released() { live_.add(-1); }
  /// Batch variants: one striped add for the whole batch.
  void note_acquired_n(std::int64_t n) { live_.add(n); }
  void note_released_n(std::int64_t n) { live_.add(-n); }
  [[nodiscard]] std::int64_t live() const { return live_.sum(); }

  /// Marks the group retiring; `epoch` is the domain epoch returned by the
  /// advance() that followed the live-pointer swap. `ticks` (optional) is
  /// the retirement timestamp in telemetry::trace_ticks() units — the
  /// service's reclaim pass turns it into the quiescence-wait histogram.
  void retire(std::uint64_t epoch, std::uint64_t ticks = 0) {
    retire_ticks_.store(ticks, std::memory_order_relaxed);
    retire_epoch_.store(epoch, std::memory_order_relaxed);
    retired_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool retired() const {
    return retired_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t retire_epoch() const {
    return retire_epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retire_ticks() const {
    return retire_ticks_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t tag() const { return tag_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  /// Concurrent holders this generation is laid out for.
  [[nodiscard]] std::uint64_t holders() const { return holders_; }
  [[nodiscard]] std::uint64_t shards() const { return shard_mask_ + 1; }
  /// Group-local namespace bound: every local name is < this.
  [[nodiscard]] std::uint64_t local_capacity() const {
    return shard_stride_ << shard_shift_;
  }
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return bitmap_ != nullptr ? bitmap_->footprint_bytes()
                              : arena_->footprint_bytes();
  }
  [[nodiscard]] ArenaKind arena_kind() const {
    return bitmap_ != nullptr ? ArenaKind::kBitmap : ArenaKind::kCellProbe;
  }
  [[nodiscard]] const BatchLayout& shard_layout() const {
    return schedule_->layout;
  }

 private:
  /// Same pressure threshold as RenamingService: wins at or past this
  /// probe position mean the shard is running hot.
  static constexpr std::ptrdiff_t kMigrateThreshold = 8;

  std::int64_t probe_segment(std::uint64_t si, Xoshiro256& rng, bool* late,
                             ProbeStats* stats = nullptr);

  /// Run-claim over shard `si`'s window [from, to), encoding wins as
  /// group-local names directly into `out`. Returns the number claimed.
  std::uint64_t claim_encoded(std::uint64_t si, std::uint64_t from,
                              std::uint64_t to, std::uint64_t k,
                              std::int64_t* out,
                              std::uint32_t* lost_races = nullptr);

  std::uint32_t tag_;
  std::uint64_t generation_;
  std::uint64_t holders_;
  std::uint64_t shard_stride_;  // cells per shard
  std::uint64_t shard_mask_;    // shards - 1 (power of two)
  std::uint32_t shard_shift_;   // log2(shards)
  std::shared_ptr<const CachedSchedule> schedule_;
  /// Exactly one substrate is engaged (by arena_kind at construction);
  /// either way one allocation of shards * stride cells that the
  /// segments window into.
  std::unique_ptr<TasArena> arena_;
  std::unique_ptr<BitmapArena> bitmap_;
  std::vector<ArenaSegment> segments_;
  StripedCounter live_;
  // mo: acquire, release -- retirement flag: retire() release-stores it
  // last so an acquire reader that sees true also sees epoch and ticks.
  std::atomic<bool> retired_{false};
  // mo: relaxed -- payload ordered by the retired_ release/acquire pair;
  // never read before retired() observes true.
  std::atomic<std::uint64_t> retire_epoch_{0};
  // mo: relaxed -- payload ordered by the retired_ release/acquire pair;
  // feeds the quiescence-wait histogram only.
  std::atomic<std::uint64_t> retire_ticks_{0};
};

}  // namespace loren
