// LOREN_TRACE: the event-level companion of the metrics registry — a
// per-thread binary event ring with a chrome://tracing drain.
//
// Where MetricsRegistry answers "how often / how long on aggregate",
// LOREN_TRACE answers "in what order": each macro hit appends one 16-byte
// event {timestamp, tag, arg} to the calling thread's bounded ring
// (overwrite-oldest, so a long run keeps the most recent window). Like
// LOREN_SIM_POINT the macro compiles to ((void)0) unless the build opts
// in (-DLOREN_TELEMETRY=ON): production binaries carry zero code and zero
// data for it.
//
// Timestamps are raw TSC ticks (rdtsc / cntvct; steady_clock fallback).
// Under -DLOREN_SIM, a thread bound to a running ScenarioEngine stamps
// events with the engine's deterministic step counter instead, so the
// drained trace of a pinned schedule is byte-identical across runs of the
// same seed — scenario tests assert on exact event sequences
// (tests/scenario_trace_test.cpp).
//
// The emit path is wait-free and allocation-free after a thread's first
// event (one thread-local load, two relaxed stores, one release store of
// the head); slots are atomic words so a concurrent drain is a benign
// race on values, never UB. The drain itself is exact only at quiescence
// — merge after joining (or parking) the traced threads, the same
// contract as MetricsRegistry::snapshot().
//
// Tag strings are interned by content into small ids; each macro site
// pays the intern once (function-local static). See docs/observability.md
// for the format and placement guidance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace loren::telemetry {

/// Ring capacity in events (power of two). 4096 events * 16 B = 64 KiB
/// per thread that ever traced.
inline constexpr std::uint64_t kTraceRingEvents = 4096;

/// Content-compared interning of a tag literal (cold; each LOREN_TRACE
/// site calls it once via a function-local static). The pointee must
/// outlive the process (string literals do).
std::uint16_t intern_tag(const char* tag);

/// Append one event to the calling thread's ring (registering the ring on
/// the thread's first event). Wait-free after registration. `arg` is
/// truncated to 32 bits — events are 16 bytes, by design.
void trace_emit(std::uint16_t tag_id, std::uint64_t arg);

/// The timestamp trace_emit stamps: engine step count when the calling
/// thread is bound to a running ScenarioEngine (LOREN_SIM builds), raw
/// TSC ticks otherwise.
std::uint64_t trace_ticks() noexcept;

/// One drained event, resolved and mergeable.
struct TraceEvent {
  std::uint64_t ts = 0;      // trace_ticks() at emit
  std::uint64_t thread = 0;  // dense thread slot (worker id under the engine)
  std::uint64_t seq = 0;     // per-thread emission index
  std::uint32_t arg = 0;
  const char* tag = "";      // interned string, process lifetime
};

/// Merge every ring into one list sorted by (ts, thread, seq). Exact at
/// quiescence (see file comment); events overwritten by ring wraparound
/// are gone (count them via trace_dropped()).
std::vector<TraceEvent> trace_snapshot();

/// Total events lost to overwrite-oldest across all rings.
std::uint64_t trace_dropped();

/// trace_snapshot() rendered as chrome://tracing "trace event" JSON
/// (instant events; ts = raw ticks). Open in chrome://tracing or Perfetto.
void trace_write_chrome_json(std::ostream& os);
std::string trace_chrome_json();

/// Empty every ring (head reset; interned tags keep their ids). Same
/// quiescence contract as the drain. Lets one process compare traces of
/// two runs byte-for-byte.
void trace_reset();

}  // namespace loren::telemetry

// The instrumentation macro. `tag` must be a string literal with a stable
// dotted name ("subsystem.step" — same convention as LOREN_SIM_POINT);
// `arg` any integer-ish payload (truncated to 32 bits). Placement rule of
// thumb: trace the *decision*, not the loop body — events are cheap but
// rings are bounded.
#ifdef LOREN_TELEMETRY
#define LOREN_TRACE(tag, arg)                                         \
  do {                                                                \
    static const std::uint16_t loren_trace_id_ =                      \
        ::loren::telemetry::intern_tag(tag);                          \
    ::loren::telemetry::trace_emit(                                   \
        loren_trace_id_, static_cast<std::uint64_t>(arg));            \
  } while (0)
#else
#define LOREN_TRACE(tag, arg) ((void)0)
#endif
