// MetricsRegistry cold paths: metric interning, per-thread stripe
// registration, snapshot summation, exposition.
#include "telemetry/metrics.h"

#include <ostream>

// PerServiceTable / next_service_instance_id are the generic
// per-(thread, instance) plumbing the services already use; the registry
// keys its thread-local stripe cache the same way — by process-unique
// instance id, never `this`, so a registry constructed at a dead
// registry's recycled address can never inherit stale stripe pointers.
#include "renaming/thread_ctx.h"

namespace loren::telemetry {

namespace {

std::uint64_t pct_index(std::uint64_t count, double q) {
  // Index (1-based rank) of the q-quantile sample; clamped to [1, count].
  const double r = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(r);
  if (static_cast<double>(rank) < r) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  return rank;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  const std::uint64_t rank = pct_index(count, q);
  std::uint64_t seen = 0;
  for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(kHistogramBuckets - 1);
}

const CounterSnapshot* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry() : id_(next_service_instance_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricId MetricsRegistry::intern(std::vector<std::string>& names,
                                 std::uint32_t cap, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<MetricId>(i);
  }
  if (names.size() >= cap) {
    // Overflow sink: the cap'th-and-later distinct names share the last
    // slot. Observability must degrade, not abort.
    return static_cast<MetricId>(cap - 1);
  }
  names.emplace_back(name);
  return static_cast<MetricId>(names.size() - 1);
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return intern(counter_names_, kMaxCounters, name);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  return intern(hist_names_, kMaxHistograms, name);
}

MetricsRegistry::ThreadStripe& MetricsRegistry::stripe() {
  thread_local PerServiceTable<ThreadStripe*> tls_stripes;
  ThreadStripe*& cached =
      tls_stripes.for_service(id_, [](ThreadStripe*&) {});
  if (cached == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    stripes_.push_back(std::make_unique<ThreadStripe>());
    cached = stripes_.back().get();
  }
  return *cached;
}

std::uint64_t MetricsRegistry::counter_value(MetricId c) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    total += s->counters_[c].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramSnapshot MetricsRegistry::histogram_value(MetricId h) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot out;
  if (h < hist_names_.size()) out.name = hist_names_[h];
  for (const auto& s : stripes_) {
    const ThreadStripe::Hist& hs = s->hists_[h];
    out.count += hs.count.load(std::memory_order_relaxed);
    out.sum += hs.sum.load(std::memory_order_relaxed);
    for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
  }
  snap.histograms.resize(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    snap.histograms[i].name = hist_names_[i];
  }
  for (const auto& s : stripes_) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          s->counters_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const ThreadStripe::Hist& hs = s->hists_[i];
      HistogramSnapshot& out = snap.histograms[i];
      out.count += hs.count.load(std::memory_order_relaxed);
      out.sum += hs.sum.load(std::memory_order_relaxed);
      for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& c : snap.counters) {
    os << c.name << ' ' << c.value << '\n';
  }
  for (const auto& h : snap.histograms) {
    os << h.name << "_count " << h.count << '\n';
    os << h.name << "_sum " << h.sum << '\n';
    os << h.name << "_p50 " << h.p50() << '\n';
    os << h.name << "_p99 " << h.p99() << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(os, c.name);
    os << "\":" << c.value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(os, h.name);
    os << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"mean\":" << h.mean() << ",\"p50\":" << h.p50()
       << ",\"p99\":" << h.p99() << ",\"buckets\":[";
    bool bfirst = true;
    for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '[' << b << ',' << h.buckets[b] << ']';
    }
    os << "]}";
  }
  os << "}}";
}

std::size_t MetricsRegistry::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stripes_.size();
}

}  // namespace loren::telemetry
