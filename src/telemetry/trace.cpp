// Trace-ring internals: tag interning, per-thread ring registration, the
// merge/drain, and the chrome://tracing writer.
#include "telemetry/trace.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "renaming/thread_ctx.h"  // dense_thread_slot: stable tid under the engine

#ifdef LOREN_SIM
#include "platform/sim_point.h"
#include "sim/scenario/engine.h"
#endif

#if !defined(__x86_64__) && !defined(__aarch64__)
#include <chrono>
#endif

namespace loren::telemetry {

namespace {

struct Ring {
  // Two atomic words per event (ts; tag<<32|arg): relaxed stores by the
  // owner, so a racing drain reads torn *pairs* at worst, never UB. The
  // release store of head orders the slot writes before publication.
  struct Slot {
    // mo: relaxed -- owner-only store; a racing drain may read a torn
    // pair (ts from one event, packed from another), never garbage.
    std::atomic<std::uint64_t> ts{0};
    // mo: relaxed -- owner-only store; same torn-pair tolerance as ts.
    std::atomic<std::uint64_t> packed{0};
  };
  // mo: release, acquire, relaxed -- publication cursor: the owner's
  // release store orders the slot writes before the new head; drains
  // acquire-read it. Relaxed is the owner re-reading its own cursor.
  std::atomic<std::uint64_t> head{0};  // total events ever emitted
  std::uint64_t thread = 0;            // dense slot of the owning thread
  Slot slots[kTraceRingEvents];
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  // live for process lifetime
  std::vector<std::string> tags;
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local Ring* tls_ring = nullptr;

Ring* register_ring() {
  Registry& reg = registry();
  auto ring = std::make_unique<Ring>();
  ring->thread = dense_thread_slot();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.rings.push_back(std::move(ring));
  return reg.rings.back().get();
}

}  // namespace

std::uint16_t intern_tag(const char* tag) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (std::size_t i = 0; i < reg.tags.size(); ++i) {
    if (reg.tags[i] == tag) return static_cast<std::uint16_t>(i);
  }
  reg.tags.emplace_back(tag);
  return static_cast<std::uint16_t>(reg.tags.size() - 1);
}

void trace_emit(std::uint16_t tag_id, std::uint64_t arg) {
  Ring* r = tls_ring;
  if (r == nullptr) r = tls_ring = register_ring();
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Ring::Slot& s = r->slots[h & (kTraceRingEvents - 1)];
  s.ts.store(trace_ticks(), std::memory_order_relaxed);
  s.packed.store((std::uint64_t{tag_id} << 32) |
                     static_cast<std::uint32_t>(arg),
                 std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);
}

std::uint64_t trace_ticks() noexcept {
#ifdef LOREN_SIM
  if (scenario::detail::engine_active()) {
    return scenario::detail::engine_step();
  }
#endif
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::vector<TraceEvent> trace_snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<TraceEvent> out;
  for (const auto& r : reg.rings) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t n = h < kTraceRingEvents ? h : kTraceRingEvents;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Ring::Slot& s = r->slots[i & (kTraceRingEvents - 1)];
      TraceEvent ev;
      ev.ts = s.ts.load(std::memory_order_relaxed);
      const std::uint64_t packed = s.packed.load(std::memory_order_relaxed);
      const std::size_t tag_id = packed >> 32;
      ev.tag = tag_id < reg.tags.size() ? reg.tags[tag_id].c_str() : "";
      ev.arg = static_cast<std::uint32_t>(packed);
      ev.thread = r->thread;
      ev.seq = i;
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t trace_dropped() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& r : reg.rings) {
    const std::uint64_t h = r->head.load(std::memory_order_relaxed);
    if (h > kTraceRingEvents) dropped += h - kTraceRingEvents;
  }
  return dropped;
}

void trace_write_chrome_json(std::ostream& os) {
  const std::vector<TraceEvent> events = trace_snapshot();
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << ev.tag << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0"
       << ",\"tid\":" << ev.thread << ",\"ts\":" << ev.ts
       << ",\"args\":{\"arg\":" << ev.arg << "}}";
  }
  os << "]}";
}

std::string trace_chrome_json() {
  std::ostringstream os;
  trace_write_chrome_json(os);
  return os.str();
}

void trace_reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& r : reg.rings) {
    r->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace loren::telemetry
