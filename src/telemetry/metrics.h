// MetricsRegistry: named, cacheline-striped per-thread counters and
// fixed-bucket log2 histograms for the whole service stack.
//
// The stack's protocols (word claims, run claims, epoch quiescence,
// elastic group swaps, stash invalidation) were observable only through a
// handful of ad-hoc atomics and end-of-run bench aggregates. The registry
// makes their behavior — probe lengths, sweep frequency, grow/shrink
// cadence, per-op latency — a first-class output, cheap enough to leave
// on in production runs.
//
// The record path follows the RegisteredCounter recipe
// (platform/registered_counter.h) generalized to many named metrics: each
// thread registers once per registry and receives a ThreadStripe — a
// cache-line-aligned block of per-metric words that no other thread ever
// writes. Single-writer means add()/record() are load-relaxed +
// store-relaxed — ordinary increments of memory words, wait-free and
// allocation-free, no shared RMW. Callers on hot paths cache the
// ThreadStripe* (the services keep it in their per-(thread, service)
// context), so a record is one pointer deref plus a relaxed add.
//
// snapshot() walks the stripe list under a mutex (cold path) and sums the
// per-thread words. Like RegisteredCounter::sum() it is epoch-consistent:
// approximate while writers are in flight, exact once they have quiesced
// and synchronized with the reader (thread join, or an epoch advance the
// writers have observed). Stripes live as long as the registry, so a
// thread that exits leaves its contribution behind.
//
// Histograms are fixed-bucket log2: value v lands in bucket bit_width(v)
// (0 for v == 0, else 1 + floor(log2 v)), 65 buckets covering the full
// u64 range. Three relaxed adds per record (bucket, count, sum); quantiles
// are reconstructed from the buckets at snapshot time and reported as the
// bucket's inclusive upper edge (2^b - 1), i.e. "p99 <= this".
//
// See docs/observability.md for the metric name table and the overhead
// contract; LOREN_TRACE (telemetry/trace.h) is the companion event-level
// instrument.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "platform/cacheline.h"

namespace loren::telemetry {

/// Dense per-registry metric index. Counters and histograms live in
/// separate id spaces; a MetricId is meaningful only with the
/// add()/record() family it was minted by (counter() vs histogram()).
using MetricId = std::uint32_t;

/// Log2 bucket count: bucket 0 holds value 0, bucket b in [1, 64] holds
/// values [2^(b-1), 2^b - 1].
inline constexpr std::uint32_t kHistogramBuckets = 65;

/// The bucket for `v` under the log2 scheme (== std::bit_width).
constexpr std::uint32_t bucket_of(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(std::bit_width(v));
}

/// Inclusive upper edge of bucket `b` — the value snapshot quantiles
/// report (saturates at the top bucket).
constexpr std::uint64_t bucket_upper_edge(std::uint32_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  /// Smallest bucket upper edge v such that >= q of recorded values are
  /// <= v (q in [0, 1]; returns 0 on an empty histogram).
  [[nodiscard]] std::uint64_t quantile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// The plain struct snapshot() sums stripes into.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup by name; nullptr when absent (cold, linear scan).
  [[nodiscard]] const CounterSnapshot* counter(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Fixed stripe geometry: metric creation past these caps fails (the
  /// registry returns the overflow sink id, see counter()). Fixed caps
  /// are what keep the record path allocation-free — a stripe allocated
  /// when a thread first touches the registry never needs to grow when
  /// someone mints a metric later.
  static constexpr std::uint32_t kMaxCounters = 128;
  static constexpr std::uint32_t kMaxHistograms = 32;

  /// Per-thread single-writer block. Obtain via stripe(), cache the
  /// pointer; only the owning thread may call add()/record().
  class ThreadStripe {
   public:
    void add(MetricId c, std::uint64_t delta = 1) noexcept {
      bump(counters_[c], delta);
    }
    void record(MetricId h, std::uint64_t value) noexcept {
      Hist& hs = hists_[h];
      bump(hs.buckets[bucket_of(value)], 1);
      bump(hs.count, 1);
      bump(hs.sum, value);
    }

   private:
    friend class MetricsRegistry;
    struct Hist {
      // mo: relaxed -- single-writer stripe statistic (bump());
      // snapshot() tolerates stale values by design.
      std::atomic<std::uint64_t> count{0};
      // mo: relaxed -- single-writer stripe statistic (bump());
      // snapshot() tolerates stale values by design.
      std::atomic<std::uint64_t> sum{0};
      // mo: relaxed -- single-writer stripe statistic (bump());
      // snapshot() tolerates stale values by design.
      std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
    };
    // Single-writer: an ordinary increment of an atomic word, never an
    // RMW (the RegisteredCounter idiom).
    static void bump(std::atomic<std::uint64_t>& w, std::uint64_t d) noexcept {
      w.store(w.load(std::memory_order_relaxed) + d,
              std::memory_order_relaxed);
    }
    // mo: relaxed -- single-writer stripe statistic (bump()); snapshot()
    // tolerates stale values by design.
    alignas(kCacheLine) std::atomic<std::uint64_t> counters_[kMaxCounters] = {};
    Hist hists_[kMaxHistograms] = {};
  };

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get the counter named `name` (cold, mutex). Idempotent:
  /// the same name always yields the same id, so two services sharing a
  /// registry aggregate into one counter. Past kMaxCounters every new
  /// name maps to the last id (an overflow sink) rather than failing —
  /// instrumentation must never take the service down.
  MetricId counter(std::string_view name);

  /// Histogram twin of counter().
  MetricId histogram(std::string_view name);

  /// The calling thread's stripe, registering it on first touch (cold:
  /// mutex + allocation once per thread per registry; then a thread-local
  /// table probe). Hot paths should cache the returned pointer.
  ThreadStripe& stripe();

  /// Cold reads: sum of a single metric across stripes.
  [[nodiscard]] std::uint64_t counter_value(MetricId c) const;
  [[nodiscard]] HistogramSnapshot histogram_value(MetricId h) const;

  /// Epoch-consistent whole-registry snapshot (see file comment).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus-style `name value` lines (histograms as name_count /
  /// name_sum / name_p50 / name_p99).
  void write_text(std::ostream& os) const;

  /// One JSON object: {"counters":{...},"histograms":{name:{count,sum,
  /// mean,p50,p99,buckets:[[b,n],...]}}} — the shape bench embeds as the
  /// per-scenario `metrics` block.
  void write_json(std::ostream& os) const;

  [[nodiscard]] std::size_t thread_count() const;

 private:
  MetricId intern(std::vector<std::string>& names, std::uint32_t cap,
                  std::string_view name);

  const std::uint64_t id_;  // process-unique; keys the thread-local table
  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::unique_ptr<ThreadStripe>> stripes_;
};

/// Telemetry surface of the service options structs. The registry is
/// non-owning and must outlive the service. Leaving it null keeps the
/// service on its internal registry: the legacy counters (cache hits,
/// sweep budget, grow/shrink events) still count — one idiom everywhere —
/// but the per-op hot-path histograms (acquire/release latency, probe
/// lengths, lost races, ring-walk lengths) stay off, so the default
/// configuration pays nothing per operation.
struct TelemetryOptions {
  MetricsRegistry* registry = nullptr;
};

}  // namespace loren::telemetry
