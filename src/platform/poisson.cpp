#include "platform/poisson.h"

#include <array>
#include <cmath>

namespace loren {

double log_factorial(std::uint64_t k) noexcept {
  // Exact table for the common small cases, lgamma beyond.
  static constexpr int kTableSize = 32;
  static const auto table = [] {
    std::array<double, kTableSize> t{};
    double acc = 0.0;
    t[0] = 0.0;
    for (int i = 1; i < kTableSize; ++i) {
      acc += std::log(static_cast<double>(i));
      t[i] = acc;
    }
    return t;
  }();
  if (k < kTableSize) return table[k];
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double poisson_pmf(double lambda, std::uint64_t k) noexcept {
  if (lambda <= 0.0) return k == 0 ? 1.0 : 0.0;
  const double logp = -lambda + static_cast<double>(k) * std::log(lambda) -
                      log_factorial(k);
  return std::exp(logp);
}

double poisson_cdf(double lambda, std::uint64_t n) noexcept {
  if (lambda <= 0.0) return 1.0;
  // Stable forward recurrence: term_{k+1} = term_k * lambda / (k+1).
  // For the rates used in the lower-bound experiments (lambda <= ~2^24 is
  // never needed; layers shrink rates) this is accurate and fast. For very
  // large lambda with n far below the mean the result underflows to 0,
  // which is the correct rounding.
  double term = std::exp(-lambda);
  double sum = term;
  for (std::uint64_t k = 0; k < n; ++k) {
    term *= lambda / static_cast<double>(k + 1);
    sum += term;
    if (term < 1e-300 && static_cast<double>(k) > lambda) break;
  }
  return sum > 1.0 ? 1.0 : sum;
}

std::uint64_t poisson_icdf(double lambda, double u) noexcept {
  if (lambda <= 0.0) return 0;
  double term = std::exp(-lambda);
  double sum = term;
  std::uint64_t k = 0;
  // Guard: for u extremely close to 1 the loop terminates once term
  // underflows past the mean; cap the search generously.
  const std::uint64_t cap =
      static_cast<std::uint64_t>(lambda + 64.0 * std::sqrt(lambda + 1.0) + 64.0);
  while (sum < u && k < cap) {
    ++k;
    term *= lambda / static_cast<double>(k);
    sum += term;
  }
  return k;
}

std::uint64_t poisson_sample(double lambda, Xoshiro256& rng) noexcept {
  std::uint64_t total = 0;
  // Halve until the sequential inversion is cheap and exp(-lambda) is
  // comfortably inside double range.
  while (lambda > 30.0) {
    const double half = lambda / 2.0;
    total += poisson_icdf(half, rng.uniform01());
    lambda -= half;
  }
  if (lambda > 0.0) total += poisson_icdf(lambda, rng.uniform01());
  return total;
}

}  // namespace loren
