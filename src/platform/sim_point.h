// LOREN_SIM_POINT: the instrumentation hook of the deterministic
// scenario engine (src/sim/scenario/).
//
// The concurrent protocols — epoch pin/unpin, elastic group-swap publish,
// bitmap word claims, stash spills, release stamp checks, the sweep
// backstops — are correct only across specific interleavings, and
// nondeterministic stress tests visit those interleavings by luck. A sim
// point marks a linearization-critical step so the scenario engine can
// schedule *around* it deterministically: under a normal build the macro
// compiles to nothing (zero code, zero data); under -DLOREN_SIM it
// becomes one thread-local load and a predictable branch, and when the
// calling thread belongs to a running ScenarioEngine it yields to the
// engine's seeded cooperative scheduler, which may switch threads, stall
// this one for a configured number of steps, or park it (crash model) at
// exactly this point.
//
// Adding a point is one line; see docs/testing.md ("Adding a
// LOREN_SIM_POINT") for the placement rules. The short version: put it
// immediately before the shared-memory step whose interleavings matter,
// give it a stable dotted tag ("subsystem.step"), and never put one
// inside a critical section guarded by a plain std::mutex — use SimMutex
// (below) for any mutex whose critical sections contain sim points, or
// the engine can suspend the holder while another worker blocks on the
// lock for real, deadlocking the serialized schedule.
#pragma once

#include <cstdint>
#include <mutex>

namespace loren::scenario {

class ScenarioEngine;

namespace detail {

/// True iff the calling thread is a worker of a running ScenarioEngine.
bool engine_active() noexcept;

/// The instrumentation entry point: a no-op off-engine, a scheduler
/// yield/fault site on an engine worker thread. `tag` must be a string
/// literal (the engine stores the pointer for the trace and compares by
/// content; lifetime must cover the run).
void sim_point_hit(const char* tag) noexcept;

/// Engine-internal: bind/unbind the calling thread to a worker of a
/// running engine (engine.cpp calls this at worker start/exit).
void bind_worker(ScenarioEngine* engine, unsigned worker_id) noexcept;
ScenarioEngine* current_engine() noexcept;
unsigned current_worker() noexcept;

/// The bound engine's scheduler step count, 0 off-engine. This is the
/// deterministic "clock" telemetry/trace.h stamps events with under
/// LOREN_SIM: workers run serialized (one token holder at a time), so the
/// plain read is race-free, and two runs of the same Scenario see the
/// same step at every trace point — which is what makes drained traces
/// byte-identical across runs of one seed.
std::uint64_t engine_step() noexcept;

}  // namespace detail

}  // namespace loren::scenario

#ifdef LOREN_SIM
#define LOREN_SIM_POINT(tag) ::loren::scenario::detail::sim_point_hit(tag)
#else
#define LOREN_SIM_POINT(tag) ((void)0)
#endif

namespace loren {

#ifdef LOREN_SIM
/// A mutex the scenario engine can schedule across. Identical to
/// std::mutex off-engine; on an engine worker thread lock() spins on
/// try_lock with a sim-point yield per failure, so a worker suspended
/// *inside* the critical section (at some sim point) never deadlocks a
/// worker waiting for the lock — the waiter keeps yielding until the
/// scheduler resumes the holder. Use it for any mutex whose critical
/// sections contain sim points (the elastic resize mutex); leave plain
/// std::mutex for sections that never yield (counter registries).
class SimMutex {
 public:
  void lock() {
    if (!scenario::detail::engine_active()) {
      mu_.lock();
      return;
    }
    while (!mu_.try_lock()) {
      scenario::detail::sim_point_hit("mutex.wait");
    }
  }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};
#else
/// Without -DLOREN_SIM there is no engine to schedule across and no sim
/// point inside any critical section, so the plain mutex is exactly right.
using SimMutex = std::mutex;
#endif

}  // namespace loren
