// Poisson distribution machinery for the Section 6 lower-bound construction.
//
// The lower bound of Alistarh et al. builds layered executions in which the
// number of marked process instances of each type is Poisson; the coupling
// gadget (Lemmas 6.4/6.5) needs exact CDF evaluation ("P_lambda(n)" in the
// paper) and exact-ish sampling, so we provide both with care about
// numerical range (log-space pmf, stable recurrences).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/rng.h"

namespace loren {

/// Natural log of k! computed via lgamma-style series; exact for small k.
double log_factorial(std::uint64_t k) noexcept;

/// Poisson pmf  Pr[X = k]  for X ~ Pois(lambda). Computed in log space.
double poisson_pmf(double lambda, std::uint64_t k) noexcept;

/// Poisson CDF  P_lambda(n) = Pr[X <= n]  for X ~ Pois(lambda).
/// This is the quantity the paper calls P_lambda(n) in Lemma 6.5.
double poisson_cdf(double lambda, std::uint64_t n) noexcept;

/// Smallest k with CDF(k) >= u (the generalized inverse CDF). Used to build
/// monotone couplings between Poisson variables of different rates.
std::uint64_t poisson_icdf(double lambda, double u) noexcept;

/// Draws X ~ Pois(lambda). Inversion by sequential search for small lambda,
/// split into halves for large lambda (Pois(a+b) = Pois(a) + Pois(b)), which
/// keeps the sequential search short without resorting to approximate
/// rejection samplers — determinism and exactness matter more than speed.
std::uint64_t poisson_sample(double lambda, Xoshiro256& rng) noexcept;

}  // namespace loren
