// RegisteredCounter: an exact-at-quiescence statistic counter whose hot
// path is two plain moves, not a locked RMW.
//
// StripedCounter (striped_counter.h) removes cross-thread cache-line
// bouncing, but each add is still an atomic fetch_add — a full locked RMW
// even uncontended, because two threads can hash to one stripe. A
// RegisteredCounter goes one step further: each thread registers once and
// receives its own cache-line-padded node that no other thread ever
// writes. Single-writer means add() can be load-relaxed + store-relaxed —
// an ordinary increment of a memory word — while readers still see a
// consistent per-node value because the word itself is atomic.
//
// sum() walks the registry under a mutex (cold path) and is approximate
// while writers are in flight, exact once they have quiesced *and*
// synchronized with the reader (e.g. via thread join) — the same contract
// as StripedCounter. Nodes live as long as the counter, so a thread that
// exits leaves its net contribution behind, which is exactly right for
// "how many names are live" (names outlive threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cacheline.h"

namespace loren {

class RegisteredCounter {
 public:
  struct alignas(kCacheLine) Node {
    // mo: relaxed -- single-writer statistic: only the owning thread
    // writes; readers tolerate a stale snapshot (sum() is advisory).
    std::atomic<std::int64_t> v{0};
  };

  /// One-time per thread (callers cache the returned node, e.g. in a
  /// thread_local). Safe to call concurrently.
  Node& register_thread() {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.push_back(std::make_unique<Node>());
    return *nodes_.back();
  }

  /// Single-writer add: only the owning thread may pass its node.
  static void add(Node& node, std::int64_t delta) {
    node.v.store(node.v.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::int64_t total = 0;
    for (const auto& n : nodes_) total += n->v.load(std::memory_order_relaxed);
    return total;
  }

  /// Not thread-safe with concurrent add() (same contract as the arenas'
  /// reset()).
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& n : nodes_) n->v.store(0, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace loren
