// StripedCounter: a sharded statistic counter for contended hot paths.
//
// A single std::atomic counter serializes every increment on one cache
// line; under multithreaded churn the line bounces between cores and the
// counter becomes the bottleneck even when the guarded work is contention-
// free. A StripedCounter spreads increments over kStripes cache-line-
// padded cells indexed by a per-thread slot, so writers on different
// threads (almost) never touch the same line. Reads sum the stripes —
// O(kStripes), approximate while writers are in flight (each stripe is
// read atomically but not the set as a whole), exact at quiescence. That
// is the right trade for statistics like "names currently assigned".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "platform/cacheline.h"

namespace loren {

class StripedCounter {
 public:
  static constexpr unsigned kStripes = 16;  // power of two

  void add(std::int64_t delta) {
    stripes_[thread_stripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Hot-path variant for callers that already hold their stripe index
  /// (see stripe_of): skips the thread-local lookup.
  void add_at(unsigned stripe, std::int64_t delta) {
    stripes_[stripe & (kStripes - 1)].v.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  /// Maps any dense per-thread slot to its stripe.
  static constexpr unsigned stripe_of(std::uint64_t slot) {
    return static_cast<unsigned>(slot) & (kStripes - 1);
  }

  [[nodiscard]] std::int64_t sum() const {
    std::int64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Not thread-safe (same contract as the arenas' reset()).
  void reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

  /// The stripe this thread writes to. (RenamingService keeps its own
  /// dense thread slot in its thread-local context — see service.cpp —
  /// because it needs the raw slot, not one folded to kStripes.)
  static unsigned thread_stripe() {
    // mo: relaxed -- one-time stripe ticket; uniqueness is all that
    // matters, no ordering with any other location.
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot & (kStripes - 1);
  }

 private:
  struct alignas(kCacheLine) Stripe {
    // mo: relaxed -- striped statistic: per-stripe adds race benignly;
    // sum() is an advisory snapshot, never a synchronization point.
    std::atomic<std::int64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

}  // namespace loren
