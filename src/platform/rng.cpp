#include "platform/rng.h"

namespace loren {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire (2019): multiply-shift with rejection in the biased zone only.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace loren
