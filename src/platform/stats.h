// Descriptive statistics and fitting helpers used by the benchmark harness
// and the property tests (e.g. "max steps grows like log log n" checks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace loren {

/// Summary of a sample: the quantities the experiment tables report.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);
Summary summarize_u64(std::span<const std::uint64_t> xs);

/// Quantile by linear interpolation on the sorted sample; q in [0, 1].
double quantile(std::vector<double> xs, double q);

/// Least-squares fit y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// log2 and iterated log2 on doubles, guarded for arguments <= 1 where the
/// paper's asymptotic expressions (log log n) would be degenerate.
double safe_log2(double x);
double log_log2(double x);

/// Pearson chi-square statistic for observed vs expected counts.
/// Bins with expected < min_expected are merged into their neighbor.
double chi_square(std::span<const double> observed, std::span<const double> expected,
                  double min_expected = 5.0);

/// Sample Pearson correlation of two equal-length samples (independence
/// sanity checks for the coupling gadget).
double correlation(std::span<const double> x, std::span<const double> y);

/// Renders one row of a Markdown table; used by the bench harness so every
/// experiment prints uniformly formatted output.
std::string markdown_row(const std::vector<std::string>& cells);

}  // namespace loren
