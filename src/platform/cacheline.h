// The one cache-line constant.
//
// Before this header, the destructive-interference size was declared three
// times (TasArena::kCacheLine, and bare alignas(64) in the two counter
// headers); a port to a 128-byte-line machine (Apple M-series big cores,
// POWER9) would have had to find them all. Everything that pads for false
// sharing includes this instead.
//
// std::hardware_destructive_interference_size exists but is deliberately
// not used: GCC warns on it in headers (its value is ABI — a library built
// with one value linked against another is silently wrong), and 64 is
// correct for every x86-64 and the vast majority of arm64 parts this
// library targets. Override at configure time if needed.
#pragma once

#include <cstddef>

namespace loren {

#ifndef LOREN_CACHE_LINE_SIZE
inline constexpr std::size_t kCacheLine = 64;
#else
inline constexpr std::size_t kCacheLine = LOREN_CACHE_LINE_SIZE;
#endif

}  // namespace loren
