#include "platform/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace loren {

namespace {

Summary summarize_sorted(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  const double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  s.min = xs.front();
  s.max = xs.back();
  auto interp = [&](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.p50 = interp(0.50);
  s.p99 = interp(0.99);
  return s;
}

}  // namespace

Summary summarize(std::span<const double> xs) {
  return summarize_sorted(std::vector<double>(xs.begin(), xs.end()));
}

Summary summarize_u64(std::span<const std::uint64_t> xs) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (auto x : xs) v.push_back(static_cast<double>(x));
  return summarize_sorted(std::move(v));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile of empty sample");
  std::sort(xs.begin(), xs.end());
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_linear needs two equal-length samples, size >= 2");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += r * r;
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double safe_log2(double x) { return x > 1.0 ? std::log2(x) : 0.0; }

double log_log2(double x) { return safe_log2(safe_log2(x)); }

double chi_square(std::span<const double> observed, std::span<const double> expected,
                  double min_expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_square: size mismatch");
  }
  double stat = 0.0;
  double obs_acc = 0.0, exp_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    obs_acc += observed[i];
    exp_acc += expected[i];
    if (exp_acc >= min_expected || i + 1 == observed.size()) {
      if (exp_acc > 0.0) {
        stat += (obs_acc - exp_acc) * (obs_acc - exp_acc) / exp_acc;
      }
      obs_acc = exp_acc = 0.0;
    }
  }
  return stat;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("correlation needs two equal-length samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

std::string markdown_row(const std::vector<std::string>& cells) {
  std::string row = "|";
  for (const auto& c : cells) {
    row += ' ';
    row += c;
    row += " |";
  }
  return row;
}

}  // namespace loren
