// Deterministic pseudo-random number generation for simulations.
//
// The renaming algorithms in this library are randomized; reproducing the
// paper's with-high-probability bounds requires (a) per-process independent
// random streams and (b) bit-for-bit reproducible executions given a seed.
// We use SplitMix64 for seeding/stream-splitting and xoshiro256** as the
// per-stream generator (fast, 256-bit state, passes BigCrush).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace loren {

/// SplitMix64: used to expand a single 64-bit seed into independent
/// sub-seeds. Also a decent standalone generator for one-shot mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes two 64-bit values into one (for deriving per-process seeds from a
/// master seed and a process id without correlation between streams).
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  std::uint64_t a = sm.next();
  std::uint64_t b = sm.next();
  return a ^ (b >> 1);
}

/// xoshiro256**: the per-process generator. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform draw from {0, ..., bound-1}. bound must be >= 1.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace loren
