// EpochDomain: epoch-based quiescence tracking for online reclamation.
//
// The elastic renaming service (src/elastic/) retires whole shard groups at
// runtime: a resize publishes a new group via pointer swap, and the old
// group's memory must not be freed while some thread still holds a raw
// pointer into it. Hazard pointers or reference counts would put an RMW on
// the acquire/release hot path; epoch-based reclamation (Fraser 2004, and
// the RCU family) keeps the reader side down to two plain atomic accesses.
//
// The registry reuses the RegisteredCounter recipe (registered_counter.h):
// each thread registers once per domain and receives its own cache-line-
// padded slot that only it ever writes on the hot path. A reader *pins*
// the domain for the duration of a critical section by publishing the
// global epoch into its slot; a writer *advances* the global epoch and can
// later ask whether every reader observed the advance.
//
// Protocol (the classic two-step):
//   reader:  e = global; slot = e (seq_cst); re-check global == e, retry
//            with the new value otherwise; ... dereference ...; slot = idle
//   writer:  unpublish the pointer; E = advance(); when quiesced(E), no
//            reader pinned before the advance is still inside its critical
//            section, so nobody can still hold the unpublished pointer.
//
// Why the re-check: between the reader's load of `global` and the store to
// its slot, a writer may advance and scan the slots without seeing the
// pin. Re-reading `global` after the store (both seq_cst, so neither can
// be reordered past the other) closes the window: either the reader sees
// the advance and re-pins at the new epoch, or the writer's later
// quiesced() scan sees the reader's published (old) epoch and waits.
//
// quiesced(E) is a cold-path scan under the registry mutex; it never
// blocks readers. Slots live as long as the domain (threads never
// deregister), matching the RegisteredCounter contract: a dead thread's
// slot stays idle forever and costs one cache line.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cacheline.h"
#include "platform/sim_point.h"
#include "telemetry/trace.h"

namespace loren {

class EpochDomain {
 public:
  /// Epochs start at 1, so 0 can mean "not pinned" forever.
  static constexpr std::uint64_t kIdle = 0;

  struct alignas(kCacheLine) Slot {
    // mo: seq_cst, release, relaxed -- pin publication: the seq_cst
    // store/scan pair closes the publish-vs-advance race; the release
    // unpin pairs with quiesced()'s read; relaxed only re-reads the
    // guard's own last store for the trace.
    std::atomic<std::uint64_t> pinned{kIdle};
  };

  /// One-time per (thread, domain); callers cache the returned slot in a
  /// thread-local. Safe to call concurrently.
  Slot& register_thread() {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(std::make_unique<Slot>());
    return *slots_.back();
  }

  /// RAII pin: the domain's current epoch is published in `slot` for the
  /// guard's lifetime. Pointers loaded from epoch-protected structures
  /// while a guard is live stay valid until the guard is destroyed.
  class Guard {
   public:
    Guard(const EpochDomain& domain, Slot& slot) : slot_(&slot) {
      std::uint64_t e = domain.global_.load(std::memory_order_acquire);
      for (;;) {
        // The publish/re-check race window the protocol exists to close:
        // an adversarial schedule advances the epoch right here.
        LOREN_SIM_POINT("epoch.pin.publish");
        slot_->pinned.store(e, std::memory_order_seq_cst);
        const std::uint64_t g = domain.global_.load(std::memory_order_seq_cst);
        if (g == e) break;  // pin published before any later advance's scan
        e = g;
      }
      // Pinned and inside the critical section — the park site for the
      // crash-mid-pin fault model (a reader that dies while pinned must
      // block reclamation forever, never unblock it).
      LOREN_SIM_POINT("epoch.pin");
      LOREN_TRACE("epoch.pin", e);
    }
    ~Guard() {
      LOREN_SIM_POINT("epoch.unpin");
      LOREN_TRACE("epoch.unpin",
                  slot_->pinned.load(std::memory_order_relaxed));
      slot_->pinned.store(kIdle, std::memory_order_release);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Slot* slot_;
  };

  [[nodiscard]] std::uint64_t current() const {
    return global_.load(std::memory_order_acquire);
  }

  /// Bumps the global epoch; returns the *new* epoch E. Every reader
  /// pinned strictly before the advance holds an epoch < E.
  std::uint64_t advance() {
    LOREN_SIM_POINT("epoch.advance");
    const std::uint64_t e = global_.fetch_add(1, std::memory_order_seq_cst) + 1;
    LOREN_TRACE("epoch.advance", e);
    return e;
  }

  /// True iff no reader is still pinned at an epoch < `epoch`: every
  /// critical section that began before advance() returned `epoch` has
  /// ended (and, via the release/acquire pair on the slot, everything it
  /// wrote is visible to the caller). New pins at >= `epoch` don't block.
  [[nodiscard]] bool quiesced(std::uint64_t epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) {
      const std::uint64_t p = slot->pinned.load(std::memory_order_seq_cst);
      if (p != kIdle && p < epoch) return false;
    }
    return true;
  }

  /// Registered slot count (diagnostics).
  [[nodiscard]] std::size_t slots() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

 private:
  // mo: seq_cst, acquire -- advance()'s seq_cst RMW orders against pin
  // publication; acquire loads just snapshot the current epoch.
  alignas(kCacheLine) std::atomic<std::uint64_t> global_{1};
  // sim:lock-ok(cold slot registry; its critical sections -- vector
  // push_back and the quiesced() scan -- never hit a sim point)
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace loren
