// Bit-scan primitives for the word-packed substrates.
//
// The bitmap arena's hot path is find-first-zero over a 64-bit free mask
// (countr_zero) plus occupancy counts (popcount). C++20's <bit> provides
// both, and on -march=native builds (the LOREN_NATIVE cmake option) they
// compile to single tzcnt/popcnt instructions — but older standard
// libraries ship C++20 mode without the <bit> ops, so this header keeps
// the scan code standard: std::countr_zero/std::popcount when the
// feature-test macro says they exist, compiler builtins otherwise, and a
// portable loop as the last resort. Everything here is constexpr and
// branch-predictable; no caller pays for the fallback ladder at runtime.
#pragma once

#include <cstdint>

#if defined(__has_include)
#if __has_include(<bit>)
#include <bit>
#endif
#endif

namespace loren {

#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L

/// Index of the lowest set bit; 64 when v == 0.
constexpr int countr_zero_u64(std::uint64_t v) { return std::countr_zero(v); }
/// Number of set bits.
constexpr int popcount_u64(std::uint64_t v) { return std::popcount(v); }

#elif defined(__GNUC__) || defined(__clang__)

constexpr int countr_zero_u64(std::uint64_t v) {
  return v == 0 ? 64 : __builtin_ctzll(v);
}
constexpr int popcount_u64(std::uint64_t v) { return __builtin_popcountll(v); }

#else

constexpr int countr_zero_u64(std::uint64_t v) {
  if (v == 0) return 64;
  int n = 0;
  while ((v & 1u) == 0) {
    v >>= 1;
    ++n;
  }
  return n;
}

constexpr int popcount_u64(std::uint64_t v) {
  int n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

#endif

/// The mask with bits [lo, hi) set (0 <= lo <= hi <= 64). hi == 64 must
/// not shift by 64 (UB), hence the split.
constexpr std::uint64_t bit_range_mask(unsigned lo, unsigned hi) {
  const std::uint64_t upto_hi =
      hi >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << hi) - 1);
  const std::uint64_t below_lo =
      lo >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lo) - 1);
  return upto_hi & ~below_lo;
}

/// The lowest `k` set bits of `mask` (k >= popcount keeps them all).
/// The run-claim path uses this to assemble a single fetch_or operand
/// that claims a whole sub-batch of cells in one RMW.
constexpr std::uint64_t lowest_n_bits(std::uint64_t mask, unsigned k) {
  std::uint64_t keep = 0;
  for (unsigned i = 0; i < k && mask != 0; ++i) {
    const std::uint64_t low = mask & (~mask + 1);  // lowest set bit
    keep |= low;
    mask ^= low;
  }
  return keep;
}

}  // namespace loren
