// The rate recurrence of the lower bound (paper Lemma 6.6 and the "Final
// Argument" of Theorem 6.1), as checkable arithmetic.
//
// With s TAS objects per layer and total marked rate lambda^l, Lemma 6.6
// gives lambda^{l+1} >= (lambda^l)^2 / 4s when lambda^l <= s/2 (and
// >= lambda^l / 4 otherwise). Normalizing r^l = lambda^l / s yields
// r^{l+1} >= (r^l)^2 / 4, whose solution stays >= 4/s for
// l = floor(lg lg s + lg lg(4/r^0)) = Omega(log log n) layers.
#pragma once

#include <cstdint>
#include <vector>

namespace loren::lb {

/// One step of Lemma 6.6: the guaranteed lower bound on lambda^{l+1}.
double rate_step(double lambda, double s) noexcept;

/// The guaranteed trajectory lambda^0..lambda^layers under Lemma 6.6.
std::vector<double> rate_trajectory(double lambda0, double s, int layers);

/// Number of layers the closed form keeps the expected marked count >= 4:
/// floor(lg lg(s) + lg lg(4/r0)) with r0 = lambda0/s (paper's choice of l).
std::uint64_t guaranteed_layers(double lambda0, double s);

/// The paper's final success-probability bound: 1 - 1/2 - 1/4 - e^{-4}.
double theorem61_success_bound() noexcept;

}  // namespace loren::lb
