// The layered adversarial execution of the lower bound (paper Section 6).
//
// Construction, following Lemmas 6.2-6.4 and Section 6.2:
//  * Reduce the algorithm to "types": per initial name, the deterministic
//    sequence of locations it would probe assuming it loses every TAS
//    (Lemma 6.3's per-layer arrays make the sequence schedule-independent).
//    extract_types() obtains this sequence by running the real algorithm
//    coroutine against an everything-loses environment.
//  * Include X^0_i ~ Pois(n/2M) instances of each of the M types.
//  * Layer l: every instance that has not yet won applies its l-th probe to
//    a fresh array T_l, in uniformly random order. The first process on a
//    location wins it and leaves.
//  * Marking: per location, with Z_j marked arrivals and analytic rate
//    lambda_j, keep the marks of the *last* Y_j arrivals where
//    Y_j ~ Pois(gamma(lambda_j)) is coupled below max(0, Z_j - 1)
//    (Lemmas 6.4/6.5) — the marked counts then remain independent Poisson
//    with rates lambda^{l+1}_i = lambda^l_i * gamma_j / lambda_j.
//
// The experiment records, per layer, the realized marked/alive counts and
// the analytic rate, to compare against Lemma 6.6's guaranteed decay.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/env.h"
#include "sim/runner.h"
#include "sim/task.h"

namespace loren::lb {

/// The probe sequences ("types") of an algorithm, one per initial name.
struct TypeSet {
  std::vector<std::vector<sim::Location>> sequences;
  std::uint64_t num_locations = 0;  // s+m in the paper's reduction
};

/// Runs `factory(env, type_index)` against an everything-loses environment
/// and records the first `max_layers` probe locations of each of the
/// `num_types` types. Randomized algorithms draw their coins from streams
/// seeded by (seed, type_index), matching the "behavior fully determined by
/// the initial name" reduction (Yao's principle direction).
TypeSet extract_types(
    const std::function<sim::Task<sim::Name>(sim::Env&, sim::ProcessId)>& factory,
    std::uint64_t num_types, std::uint64_t max_layers, std::uint64_t seed);

struct LayerRecord {
  std::uint64_t layer = 0;
  std::uint64_t alive_before = 0;   // instances that had not won yet
  std::uint64_t wins = 0;           // fresh locations claimed this layer
  std::uint64_t marked_after = 0;   // realized marked count (the paper's X)
  double rate_after = 0.0;          // analytic total rate lambda^{l+1}
  double rate_bound = 0.0;          // Lemma 6.6 lower bound from lambda^l
};

struct LayeredResult {
  std::vector<LayerRecord> layers;
  std::uint64_t initial_instances = 0;
  bool bad_initial = false;  // > n instances or a duplicated type (the union
                             // bound's 1/2 + 1/4 failure events)
  /// Marked processes still present after the final layer (Theorem 6.1
  /// wants this > 0 after Omega(log log n) layers, with const probability).
  [[nodiscard]] std::uint64_t final_marked() const {
    return layers.empty() ? initial_instances : layers.back().marked_after;
  }
};

struct LayeredConfig {
  std::uint64_t n = 0;           // process budget (theorem's n)
  std::uint64_t max_layers = 0;  // how many layers to run
  std::uint64_t seed = 1;
};

/// Executes the layered construction for `types` under `config`.
LayeredResult run_layered_execution(const TypeSet& types,
                                    const LayeredConfig& config);

}  // namespace loren::lb
