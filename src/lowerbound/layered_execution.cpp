#include "lowerbound/layered_execution.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "lowerbound/poisson_coupling.h"
#include "lowerbound/recurrence.h"
#include "platform/poisson.h"
#include "platform/rng.h"

namespace loren::lb {

namespace {

/// Terminates the probe-recording run once enough layers are captured.
struct ExtractionDone {};

/// Everything-loses environment: records each probed location, returns
/// "lost" for every TAS, 0 for reads, and executes immediately.
class AllLoseEnv final : public sim::Env {
 public:
  AllLoseEnv(std::uint64_t max_ops, std::uint64_t seed, sim::ProcessId pid)
      : max_ops_(max_ops), rng_(loren::mix_seed(seed, pid)), pid_(pid) {}

  [[nodiscard]] bool immediate() const override { return true; }

  std::uint64_t execute_now(sim::OpKind kind, sim::Location loc,
                            std::uint64_t) override {
    if (kind == sim::OpKind::kTas) {
      probes_.push_back(loc);
      if (probes_.size() >= max_ops_) throw ExtractionDone{};
      return 0;  // lose
    }
    // The hardware-TAS renaming algorithms only issue TAS; reads/writes
    // would come from register substrates, which the Section 6 reduction
    // does not model. Treat them as no-ops reading zero.
    return 0;
  }

  void post(sim::PendingOp) override {
    throw std::logic_error("AllLoseEnv is immediate");
  }
  std::uint64_t random_below(std::uint64_t bound) override {
    return rng_.below(bound);
  }
  void ensure_locations(std::uint64_t count) override {
    num_locations_ = std::max(num_locations_, count);
  }
  [[nodiscard]] sim::ProcessId current_pid() const override { return pid_; }

  [[nodiscard]] std::vector<sim::Location> take_probes() {
    return std::move(probes_);
  }
  [[nodiscard]] std::uint64_t num_locations() const { return num_locations_; }

 private:
  std::uint64_t max_ops_;
  loren::Xoshiro256 rng_;
  sim::ProcessId pid_;
  std::vector<sim::Location> probes_;
  std::uint64_t num_locations_ = 0;
};

}  // namespace

TypeSet extract_types(
    const std::function<sim::Task<sim::Name>(sim::Env&, sim::ProcessId)>& factory,
    std::uint64_t num_types, std::uint64_t max_layers, std::uint64_t seed) {
  TypeSet set;
  set.sequences.reserve(num_types);
  for (std::uint64_t i = 0; i < num_types; ++i) {
    AllLoseEnv env(max_layers, seed, static_cast<sim::ProcessId>(i));
    auto task = factory(env, static_cast<sim::ProcessId>(i));
    try {
      task.resume();
      if (task.done()) task.result();  // surface unexpected exceptions
    } catch (const ExtractionDone&) {
      // expected: the type produced max_layers probes
    }
    auto probes = env.take_probes();
    for (sim::Location loc : probes) {
      set.num_locations = std::max(set.num_locations, loc + 1);
    }
    set.sequences.push_back(std::move(probes));
  }
  return set;
}

LayeredResult run_layered_execution(const TypeSet& types,
                                    const LayeredConfig& config) {
  LayeredResult result;
  const std::uint64_t M = types.sequences.size();
  const double n = static_cast<double>(config.n);
  const double lambda0_each = n / (2.0 * static_cast<double>(M));

  loren::Xoshiro256 rng(loren::mix_seed(config.seed, 0x1b));

  // Instance = one Poisson copy of a type; `alive` = has not won a TAS.
  struct Instance {
    std::uint32_t type;
    bool marked;
  };
  std::vector<Instance> alive;
  std::vector<double> rate(M, lambda0_each);  // analytic lambda^l_i

  std::unordered_set<std::uint32_t> seen_types;
  for (std::uint32_t i = 0; i < M; ++i) {
    const std::uint64_t copies = loren::poisson_sample(lambda0_each, rng);
    if (copies >= 2) result.bad_initial = true;
    for (std::uint64_t c = 0; c < copies; ++c) {
      alive.push_back(Instance{i, true});
    }
  }
  result.initial_instances = alive.size();
  if (alive.size() > config.n) result.bad_initial = true;

  double total_rate = lambda0_each * static_cast<double>(M);

  for (std::uint64_t layer = 0; layer < config.max_layers; ++layer) {
    LayerRecord rec;
    rec.layer = layer;
    rec.alive_before = alive.size();
    rec.rate_bound = rate_step(total_rate, static_cast<double>(
                                               std::max<std::uint64_t>(
                                                   types.num_locations, 1)));
    if (alive.empty()) {
      rec.marked_after = 0;
      rec.rate_after = 0.0;
      result.layers.push_back(rec);
      continue;
    }

    // Uniform scheduling order within the layer (the oblivious adversary's
    // random permutation).
    for (std::size_t i = alive.size(); i > 1; --i) {
      std::swap(alive[i - 1], alive[rng.below(i)]);
    }

    // Analytic per-location rates lambda_j = sum of rates of types probing
    // location j in this layer (over *all* M types, per the analysis).
    std::unordered_map<sim::Location, double> loc_rate;
    for (std::uint32_t i = 0; i < M; ++i) {
      const auto& seq = types.sequences[i];
      if (layer < seq.size()) loc_rate[seq[layer]] += rate[i];
    }

    // Group alive instances by probed location, preserving schedule order.
    std::unordered_map<sim::Location, std::vector<std::size_t>> groups;
    for (std::size_t idx = 0; idx < alive.size(); ++idx) {
      const auto& seq = types.sequences[alive[idx].type];
      if (layer >= seq.size()) continue;  // type exhausted: takes no step
      groups[seq[layer]].push_back(idx);
    }

    std::vector<bool> wins(alive.size(), false);
    std::vector<bool> keep_mark(alive.size(), false);
    for (auto& [loc, members] : groups) {
      // Fresh array every layer (Lemma 6.3): the first scheduled process on
      // a location wins it and leaves the execution.
      wins[members.front()] = true;
      ++rec.wins;

      // Marking: the last Y of the Z marked arrivals keep their marks.
      std::vector<std::size_t> marked_members;
      for (std::size_t idx : members) {
        if (alive[idx].marked) marked_members.push_back(idx);
      }
      const std::uint64_t z = marked_members.size();
      const double lambda_j = loc_rate[loc];
      if (z > 0 && lambda_j > 0.0) {
        const std::uint64_t y = sample_y_given_z(lambda_j, z, rng);
        for (std::uint64_t t = 0; t < y && t < z; ++t) {
          keep_mark[marked_members[z - 1 - t]] = true;
        }
      }
      // Rate evolution lambda^{l+1}_i = lambda^l_i * gamma_j / lambda_j for
      // every type i probing loc this layer, realized or not.
      // (Applied below, once per type, to avoid double updates.)
    }

    // Apply the analytic rate update to every type with a probe this layer.
    for (std::uint32_t i = 0; i < M; ++i) {
      const auto& seq = types.sequences[i];
      if (layer >= seq.size()) {
        rate[i] = 0.0;
        continue;
      }
      const double lambda_j = loc_rate[seq[layer]];
      rate[i] = lambda_j > 0.0 ? rate[i] * coupled_rate(lambda_j) / lambda_j
                               : 0.0;
    }
    total_rate = 0.0;
    for (double r : rate) total_rate += r;

    // Survivors: alive and not a winner; marks per the coupling.
    std::vector<Instance> next;
    next.reserve(alive.size());
    std::uint64_t marked_after = 0;
    for (std::size_t idx = 0; idx < alive.size(); ++idx) {
      const auto& seq = types.sequences[alive[idx].type];
      if (layer >= seq.size()) {
        // Exhausted types idle forever; they can no longer win, so they
        // stay alive but lose their mark (the analysis only follows types
        // that keep probing).
        next.push_back(Instance{alive[idx].type, false});
        continue;
      }
      if (wins[idx]) continue;
      next.push_back(Instance{alive[idx].type, keep_mark[idx]});
      if (keep_mark[idx]) ++marked_after;
    }
    alive = std::move(next);

    rec.marked_after = marked_after;
    rec.rate_after = total_rate;
    result.layers.push_back(rec);
  }
  return result;
}

}  // namespace loren::lb
