// The coupling gadget of the lower bound (paper Lemmas 6.4 / 6.5).
//
// Lemma 6.5 states the CDF dominance P_lambda(n+1) <= P_gamma(n) for all n,
// where gamma = min(lambda^2/4, lambda/4). Dominance yields a *monotone
// coupling*: draw one uniform u and invert both CDFs — then
// Y = F_gamma^{-1}(u) <= max(0, Z - 1) pointwise, which is exactly the
// property the marking procedure needs (the first process to access a TAS,
// i.e. its winner, never keeps its mark). We expose the dominance check as
// a numeric verifier (tested over a grid, experiment E7) and the coupling
// as a sampler used by the layered execution.
#pragma once

#include <cstdint>

#include "platform/rng.h"

namespace loren::lb {

/// gamma(lambda) = min(lambda^2/4, lambda/4), the coupled rate of Lemma 6.5.
double coupled_rate(double lambda) noexcept;

/// Verifies P_lambda(n+1) <= P_gamma(n) + tolerance for n = 0..n_max.
/// Returns the first violating n, or -1 when dominance holds everywhere.
std::int64_t first_dominance_violation(double lambda, std::uint64_t n_max,
                                       double tolerance = 1e-12);

struct CoupledSample {
  std::uint64_t z = 0;  // Z ~ Pois(lambda)
  std::uint64_t y = 0;  // Y ~ Pois(gamma(lambda)), Y <= max(0, Z-1)
};

/// Draws (Z, Y) from the monotone coupling.
CoupledSample sample_coupled(double lambda, Xoshiro256& rng);

/// Draws Y conditioned on an externally realized Z = z: u is uniform on
/// (P_lambda(z-1), P_lambda(z)], then Y = F_gamma^{-1}(u). This keeps the
/// joint law identical to sample_coupled while letting the layered
/// execution plug in the Z it actually observed.
std::uint64_t sample_y_given_z(double lambda, std::uint64_t z, Xoshiro256& rng);

}  // namespace loren::lb
