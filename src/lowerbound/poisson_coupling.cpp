#include "lowerbound/poisson_coupling.h"

#include <algorithm>
#include <cmath>

#include "platform/poisson.h"

namespace loren::lb {

double coupled_rate(double lambda) noexcept {
  return std::min(lambda * lambda / 4.0, lambda / 4.0);
}

std::int64_t first_dominance_violation(double lambda, std::uint64_t n_max,
                                       double tolerance) {
  const double gamma = coupled_rate(lambda);
  for (std::uint64_t n = 0; n <= n_max; ++n) {
    if (poisson_cdf(lambda, n + 1) > poisson_cdf(gamma, n) + tolerance) {
      return static_cast<std::int64_t>(n);
    }
  }
  return -1;
}

CoupledSample sample_coupled(double lambda, Xoshiro256& rng) {
  const double u = rng.uniform01();
  CoupledSample s;
  s.z = poisson_icdf(lambda, u);
  s.y = poisson_icdf(coupled_rate(lambda), u);
  return s;
}

std::uint64_t sample_y_given_z(double lambda, std::uint64_t z, Xoshiro256& rng) {
  const double lo = z == 0 ? 0.0 : poisson_cdf(lambda, z - 1);
  const double hi = poisson_cdf(lambda, z);
  const double u = lo + (hi - lo) * rng.uniform01();
  return poisson_icdf(coupled_rate(lambda), u);
}

}  // namespace loren::lb
