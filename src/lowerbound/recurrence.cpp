#include "lowerbound/recurrence.h"

#include <cmath>
#include <stdexcept>

namespace loren::lb {

double rate_step(double lambda, double s) noexcept {
  if (lambda <= s / 2.0) return lambda * lambda / (4.0 * s);
  return lambda / 4.0;
}

std::vector<double> rate_trajectory(double lambda0, double s, int layers) {
  if (layers < 0) throw std::invalid_argument("layers must be >= 0");
  std::vector<double> traj;
  traj.reserve(static_cast<std::size_t>(layers) + 1);
  traj.push_back(lambda0);
  for (int l = 0; l < layers; ++l) traj.push_back(rate_step(traj.back(), s));
  return traj;
}

std::uint64_t guaranteed_layers(double lambda0, double s) {
  if (lambda0 <= 0.0 || s <= 0.0 || lambda0 > s / 4.0) {
    throw std::invalid_argument(
        "guaranteed_layers expects 0 < lambda0 <= s/4 (the paper's r0 <= 1/4)");
  }
  const double r0 = lambda0 / s;
  // Solving r^l = 4 (r0/4)^(2^l) >= 4/s exactly requires
  // 2^l <= lg(s) / lg(4/r0), i.e. l = lg lg s - lg lg(4/r0). (The paper's
  // extended abstract prints "lg lg(s+m) + lg lg(4/r0)"; with a plus the
  // exponent acquires an extra lg(4/r0) factor and the closed form does
  // not meet 4/s. Both choices are lg lg s - O(1) for constant r0, so the
  // Omega(log log n) statement is unaffected; we use the form that makes
  // the guarantee checkable, see Recurrence.TrajectoryStaysAboveFour*.)
  const auto lg = [](double x) { return std::log2(x); };
  const double value = lg(lg(s)) - lg(lg(4.0 / r0));
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(std::floor(value));
}

double theorem61_success_bound() noexcept {
  return 1.0 - 0.5 - 0.25 - std::exp(-4.0);
}

}  // namespace loren::lb
