// Hardware-backed shared memory: std::atomic cells plus the DirectEnv that
// lets the coroutine algorithms run unchanged on real threads.
//
// TAS is exchange(1) on a 64-bit cell ("win" iff the previous value was 0,
// exactly the paper's semantics). The exchange is acq_rel, not seq_cst:
// a TAS object is linearizable as long as all operations on the *same*
// cell are totally ordered, which every atomic RMW already guarantees via
// the cell's modification order; acq_rel additionally makes the winning
// exchange a synchronizes-with edge so data published before a win is
// visible to any process that later observes the cell taken. seq_cst
// would only add a single total order *across different cells*, which no
// algorithm in this library relies on — each probe's control flow depends
// only on that one cell's outcome. (See DESIGN.md, "Memory-order
// weakening".) Plain read/write stay seq_cst: they also serve the
// read-write-register TAS protocols (rw_tas.*), whose proofs assume
// sequentially consistent registers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "tas/direct_env.h"

namespace loren {

class AtomicTasArray {
 public:
  explicit AtomicTasArray(std::uint64_t size)
      : size_(size), cells_(std::make_unique<std::atomic<std::uint64_t>[]>(size)) {
    reset();
  }

  /// Returns true iff this call won the TAS (flipped the cell from 0).
  bool test_and_set(std::uint64_t i) {
    // sim:exempt(seed substrate: the coroutine simulator schedules it at
    // Env-op granularity, so a yield inside the RMW adds nothing)
    return cells_[i].exchange(1, std::memory_order_acq_rel) == 0;
  }
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    return cells_[i].load(std::memory_order_seq_cst);
  }
  void write(std::uint64_t i, std::uint64_t v) {
    cells_[i].store(v, std::memory_order_seq_cst);
  }

  /// Atomically clears cell `i` and returns its previous value (the
  /// race-free primitive for long-lived release: the caller can validate
  /// that the cell really was held without a check-then-act window).
  std::uint64_t exchange_clear(std::uint64_t i) {
    // sim:exempt(seed substrate: the coroutine simulator schedules it at
    // Env-op granularity, so a yield inside the RMW adds nothing)
    return cells_[i].exchange(0, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Not thread-safe; for reuse between single-threaded experiment rounds.
  /// O(size) — TasArena (tas_arena.h) resets in O(1) via an epoch bump.
  void reset() {
    for (std::uint64_t i = 0; i < size_; ++i) {
      // mo:relaxed-ok(reset() requires external quiescence; the trailing
      // seq_cst fence publishes the cleared cells)
      cells_[i].store(0, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  std::uint64_t size_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// An Env whose shared-memory operations execute immediately on an
/// AtomicTasArray (see BasicDirectEnv in direct_env.h).
using DirectEnv = BasicDirectEnv<AtomicTasArray>;

}  // namespace loren
