// Hardware-backed shared memory: std::atomic cells plus the DirectEnv that
// lets the coroutine algorithms run unchanged on real threads.
//
// TAS is exchange(1) on a 64-bit cell ("win" iff the previous value was 0,
// exactly the paper's semantics); reads/writes are seq_cst so the
// read-write TAS substrates are linearizable on hardware too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "platform/rng.h"
#include "sim/env.h"

namespace loren {

class AtomicTasArray {
 public:
  explicit AtomicTasArray(std::uint64_t size)
      : size_(size), cells_(std::make_unique<std::atomic<std::uint64_t>[]>(size)) {
    reset();
  }

  /// Returns true iff this call won the TAS (flipped the cell from 0).
  bool test_and_set(std::uint64_t i) {
    return cells_[i].exchange(1, std::memory_order_seq_cst) == 0;
  }
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    return cells_[i].load(std::memory_order_seq_cst);
  }
  void write(std::uint64_t i, std::uint64_t v) {
    cells_[i].store(v, std::memory_order_seq_cst);
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }

  /// Not thread-safe; for reuse between single-threaded experiment rounds.
  void reset() {
    for (std::uint64_t i = 0; i < size_; ++i) {
      cells_[i].store(0, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  std::uint64_t size_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

/// An Env whose shared-memory operations execute immediately on an
/// AtomicTasArray. One DirectEnv per thread (it owns that thread's random
/// stream and step counter); the array is the shared substrate.
class DirectEnv final : public sim::Env {
 public:
  DirectEnv(AtomicTasArray& memory, std::uint64_t seed, sim::ProcessId pid)
      : memory_(&memory), rng_(mix_seed(seed, pid)), pid_(pid) {}

  [[nodiscard]] bool immediate() const override { return true; }

  std::uint64_t execute_now(sim::OpKind kind, sim::Location loc,
                            std::uint64_t write_value) override {
    ++steps_;
    switch (kind) {
      case sim::OpKind::kTas:
        return memory_->test_and_set(loc) ? 1 : 0;
      case sim::OpKind::kRead:
        return memory_->read(loc);
      case sim::OpKind::kWrite:
        memory_->write(loc, write_value);
        return 0;
    }
    return 0;  // unreachable
  }

  void post(sim::PendingOp) override {
    throw std::logic_error("DirectEnv never parks operations");
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    return rng_.below(bound);
  }

  void ensure_locations(std::uint64_t count) override {
    if (count > memory_->size()) {
      throw std::length_error(
          "DirectEnv: algorithm needs more locations than were preallocated");
    }
  }

  [[nodiscard]] sim::ProcessId current_pid() const override { return pid_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  AtomicTasArray* memory_;
  Xoshiro256 rng_;
  sim::ProcessId pid_;
  std::uint64_t steps_ = 0;
};

}  // namespace loren
