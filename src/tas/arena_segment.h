// ArenaSegment: a relocatable window into a TasArena.
//
// The sharded services used to give every shard its own TasArena — S
// independent allocations per service, each with its own epoch word and
// alignment slack. A segment is instead a non-owning [base, base+size)
// view of one arena: the elastic service's shard groups allocate a single
// arena per group and carve it into shard segments, so a whole group is
// one allocation that can be published, retired, and reclaimed as a unit
// (the property the epoch-based resize protocol needs), and creating or
// destroying a group is one malloc/free regardless of shard count.
//
// A segment exposes the same memory concept as the arena itself
// (test_and_set / read / write / try_release / size), so BasicDirectEnv
// and the probe loops run over a window unchanged — "relocating" a shard
// is rebinding a view, never copying cells.
#pragma once

#include <cstdint>

#include "tas/direct_env.h"
#include "tas/tas_arena.h"

namespace loren {

class ArenaSegment {
 public:
  ArenaSegment() = default;
  ArenaSegment(TasArena& arena, std::uint64_t base, std::uint64_t size)
      : arena_(&arena), base_(base), size_(size) {}

  bool test_and_set(std::uint64_t i) { return arena_->test_and_set(base_ + i); }
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    return arena_->read(base_ + i);
  }
  void write(std::uint64_t i, std::uint64_t v) { arena_->write(base_ + i, v); }
  bool try_release(std::uint64_t i) { return arena_->try_release(base_ + i); }

  /// Batched claim over the window [begin, end) (segment-relative): up to
  /// `k` free cells are claimed in one linear scan and their *segment-
  /// relative* indices appended to `out`. Returns the number claimed.
  std::uint64_t try_claim_run(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t k, std::uint64_t* out) {
    const std::uint64_t got =
        arena_->try_claim_run(base_ + begin, base_ + end, k, out);
    for (std::uint64_t i = 0; i < got; ++i) out[i] -= base_;
    return got;
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] TasArena* arena() const { return arena_; }

 private:
  TasArena* arena_ = nullptr;
  std::uint64_t base_ = 0;
  std::uint64_t size_ = 0;
};

/// Run the coroutine algorithms over one shard window of a shared arena.
using SegmentEnv = BasicDirectEnv<ArenaSegment>;

}  // namespace loren
