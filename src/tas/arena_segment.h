// ArenaSegment: a relocatable window into a TAS substrate.
//
// The sharded services used to give every shard its own TasArena — S
// independent allocations per service, each with its own epoch word and
// alignment slack. A segment is instead a non-owning [base, base+size)
// view of one arena: the elastic service's shard groups allocate a single
// arena per group and carve it into shard segments, so a whole group is
// one allocation that can be published, retired, and reclaimed as a unit
// (the property the epoch-based resize protocol needs), and creating or
// destroying a group is one malloc/free regardless of shard count.
//
// A segment exposes the same memory concept as the arena itself
// (test_and_set / read / write / try_release / size), so BasicDirectEnv
// and the probe loops run over a window unchanged — "relocating" a shard
// is rebinding a view, never copying cells.
//
// Since the word-scan substrate (tas/bitmap_arena.h) a segment views
// either arena kind: it holds one of a TasArena* or a BitmapArena* plus
// the ArenaKind discriminator, and every operation dispatches on one
// predictable branch. The shard layers (renaming/service.cpp,
// elastic/shard_group.cpp) stay substrate-agnostic: they ask the segment
// for its kind once per probe loop and use the word-granular surface
// (try_claim_word, word-at-a-time try_claim_run) when it is a bitmap.
#pragma once

#include <cassert>
#include <cstdint>

#include "tas/bitmap_arena.h"
#include "tas/direct_env.h"
#include "tas/tas_arena.h"

namespace loren {

class ArenaSegment {
 public:
  ArenaSegment() = default;
  ArenaSegment(TasArena& arena, std::uint64_t base, std::uint64_t size)
      : arena_(&arena), base_(base), size_(size) {}
  ArenaSegment(BitmapArena& arena, std::uint64_t base, std::uint64_t size)
      : bitmap_(&arena), base_(base), size_(size) {}

  [[nodiscard]] ArenaKind kind() const {
    return bitmap_ != nullptr ? ArenaKind::kBitmap : ArenaKind::kCellProbe;
  }

  bool test_and_set(std::uint64_t i) {
    // sim:exempt(forwards to the arena RMW, which carries the sim point)
    return bitmap_ != nullptr ? bitmap_->test_and_set(base_ + i)
                              : arena_->test_and_set(base_ + i);
  }
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    return bitmap_ != nullptr ? bitmap_->read(base_ + i)
                              : arena_->read(base_ + i);
  }
  void write(std::uint64_t i, std::uint64_t v) {
    if (bitmap_ != nullptr) {
      bitmap_->write(base_ + i, v);
    } else {
      arena_->write(base_ + i, v);
    }
  }
  bool try_release(std::uint64_t i) {
    return bitmap_ != nullptr ? bitmap_->try_release(base_ + i)
                              : arena_->try_release(base_ + i);
  }

  /// The word-scan probe (bitmap segments only — callers guard on
  /// kind()): claims any free cell of the word containing
  /// segment-relative `hint`, clamped to this segment's window so a word
  /// straddling the segment edge never claims a neighbouring shard's
  /// cell (which would corrupt the name encoding). Returns the
  /// segment-relative index, or -1 when the word is full. `lost_races`
  /// (optional) forwards BitmapArena's observable-loss count (telemetry).
  std::int64_t try_claim_word(std::uint64_t hint,
                              std::uint32_t* lost_races = nullptr) {
    assert(bitmap_ != nullptr && "try_claim_word on a cell-probe segment");
    const std::int64_t got = bitmap_->try_claim_in_word(
        base_ + hint, base_, base_ + size_, lost_races);
    return got < 0 ? got : got - static_cast<std::int64_t>(base_);
  }

  /// Batched claim over the window [begin, end) (segment-relative): up to
  /// `k` free cells are claimed in one linear scan — word-at-a-time mask
  /// claims on a bitmap, line-at-a-time load-before-RMW on a cell arena —
  /// and their *segment-relative* indices appended to `out`. Returns the
  /// number claimed.
  std::uint64_t try_claim_run(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t k, std::uint64_t* out,
                              std::uint32_t* lost_races = nullptr) {
    const std::uint64_t got =
        bitmap_ != nullptr
            ? bitmap_->try_claim_run(base_ + begin, base_ + end, k, out,
                                     lost_races)
            : arena_->try_claim_run(base_ + begin, base_ + end, k, out,
                                    lost_races);
    for (std::uint64_t i = 0; i < got; ++i) out[i] -= base_;
    return got;
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] TasArena* arena() const { return arena_; }
  [[nodiscard]] BitmapArena* bitmap() const { return bitmap_; }

 private:
  TasArena* arena_ = nullptr;
  BitmapArena* bitmap_ = nullptr;
  std::uint64_t base_ = 0;
  std::uint64_t size_ = 0;
};

/// Run the coroutine algorithms over one shard window of a shared arena.
using SegmentEnv = BasicDirectEnv<ArenaSegment>;

}  // namespace loren
