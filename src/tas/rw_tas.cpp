#include "tas/rw_tas.h"

#include <bit>

namespace loren {

using sim::Env;
using sim::Location;
using sim::ProcessId;
using sim::Task;

namespace {

constexpr std::uint64_t encode(std::uint64_t round, int value) {
  return (round << 2) | (static_cast<std::uint64_t>(value) << 1) | 1ULL;
}
constexpr bool written(std::uint64_t reg) { return (reg & 1ULL) != 0; }
constexpr int reg_value(std::uint64_t reg) {
  return static_cast<int>((reg >> 1) & 1ULL);
}
constexpr std::uint64_t reg_round(std::uint64_t reg) { return reg >> 2; }

}  // namespace

Task<bool> two_process_rw_tas(Env& env, Location base, int role) {
  // Chor-Israeli-Li-style race. Decide value v once two rounds ahead of the
  // opponent's last observed position; safety argument in rw_tas.h.
  std::uint64_t k = 1;
  int v = role;
  for (;;) {
    co_await sim::write(env, base + static_cast<Location>(role), encode(k, v));
    const std::uint64_t other =
        co_await sim::read(env, base + static_cast<Location>(1 - role));
    if (!written(other)) {
      if (k >= 2) co_return v == role;  // two ahead of an absent opponent
      ++k;
      continue;
    }
    const std::uint64_t r = reg_round(other);
    const int w = reg_value(other);
    if (r > k) {
      k = r;  // adopt the leader's position and value
      v = w;
    } else if (r == k) {
      // Same-round agreement is stable: the opponent's value can only
      // change by adopting a *different* leader value or by a coin on a
      // *differing* tie, and neither can occur once both registers show
      // (k, v). Deciding here is safe and breaks lockstep livelock.
      if (w == v) co_return v == role;
      if (env.random_below(2) == 0) v = w;  // fair tie-break coin
      ++k;
    } else {
      if (k - r >= 2) co_return v == role;  // two ahead: decide
      ++k;
    }
  }
}

TournamentTasService::TournamentTasService(Location base,
                                           std::uint64_t num_logical,
                                           ProcessId num_processes)
    : base_(base), num_logical_(num_logical) {
  leaves_ = std::bit_ceil(std::max<std::uint64_t>(num_processes, 2));
  depth_ = static_cast<std::uint64_t>(std::countr_zero(leaves_));
  // Implicit heap: internal nodes 0 .. leaves_-2, two registers each.
  cells_per_logical_ = 2 * (leaves_ - 1);
}

Task<bool> TournamentTasService::run_tournament(Env& env, std::uint64_t logical,
                                                Location region_base) {
  (void)logical;
  // Leaf slots are leaves_-1 .. 2*leaves_-2 in the implicit heap; the
  // process climbs toward the root, playing role 0 when arriving from a
  // left child and role 1 from a right child. At most one process can
  // arrive at any node from a given side (by induction: two-process TAS
  // objects admit one winner per side), so roles are never reused.
  std::uint64_t node = (leaves_ - 1) + env.current_pid();
  while (node != 0) {
    const std::uint64_t parent = (node - 1) / 2;
    const int role = node == 2 * parent + 1 ? 0 : 1;
    const Location obj = region_base + 2 * parent;
    if (!co_await two_process_rw_tas(env, obj, role)) co_return false;
    node = parent;
  }
  co_return true;
}

Task<bool> TournamentTasService::acquire(Env& env, std::uint64_t logical) {
  const Location region = base_ + logical * cells_per_logical_;
  env.ensure_locations(region + cells_per_logical_);
  co_return co_await run_tournament(env, logical, region);
}

SifterTasService::SifterTasService(Location base, std::uint64_t num_logical,
                                   ProcessId num_processes)
    : TournamentTasService(base, num_logical, num_processes) {
  // Levels beyond log2(processes)+3 are hit with negligible probability;
  // the top cell acts as a catch-all (a max-level process never loses the
  // sift because nothing can occupy a *strictly* higher level).
  levels_ = depth_ + 4;
  cells_per_logical_ += levels_ + 1;
}

Task<bool> SifterTasService::acquire(Env& env, std::uint64_t logical) {
  const Location region = base_ + logical * cells_per_logical_;
  env.ensure_locations(region + cells_per_logical_);
  const Location board = region + 2 * (leaves_ - 1);  // after tournament regs

  // Geometric level: X = number of heads before the first tail, capped.
  std::uint64_t level = 0;
  while (level + 1 < levels_ && env.random_below(2) == 0) ++level;

  co_await sim::write(env, board + level, 1);
  if (level + 1 < levels_) {
    // Occupied higher level => at least one survivor above us keeps going;
    // we can lose immediately having spent only two register steps.
    if (co_await sim::read(env, board + level + 1) != 0) co_return false;
  }
  co_return co_await run_tournament(env, logical, region);
}

}  // namespace loren
