// BasicDirectEnv: run the coroutine algorithms directly over any hardware
// shared-memory substrate (AtomicTasArray, TasArena, ...).
//
// The substrate must expose test_and_set(i) -> bool, read(i) -> u64,
// write(i, v), and size(). Operations execute immediately inside
// await_ready, so the same algorithm code measured under the simulated
// adversaries runs unchanged on real threads.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "platform/rng.h"
#include "sim/env.h"

namespace loren {

/// One BasicDirectEnv per thread (it owns that thread's random stream and
/// step counter); the substrate is the shared memory.
template <class Memory>
class BasicDirectEnv final : public sim::Env {
 public:
  BasicDirectEnv(Memory& memory, std::uint64_t seed, sim::ProcessId pid)
      : memory_(&memory), rng_(mix_seed(seed, pid)), pid_(pid) {}

  [[nodiscard]] bool immediate() const override { return true; }

  std::uint64_t execute_now(sim::OpKind kind, sim::Location loc,
                            std::uint64_t write_value) override {
    ++steps_;
    switch (kind) {
      case sim::OpKind::kTas:
        // sim:exempt(forwards to the substrate RMW; scheduling already
        // happened when the Env op was issued)
        return memory_->test_and_set(loc) ? 1 : 0;
      case sim::OpKind::kRead:
        return memory_->read(loc);
      case sim::OpKind::kWrite:
        memory_->write(loc, write_value);
        return 0;
    }
    return 0;  // unreachable
  }

  void post(sim::PendingOp) override {
    throw std::logic_error("BasicDirectEnv never parks operations");
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    return rng_.below(bound);
  }

  void ensure_locations(std::uint64_t count) override {
    if (count > memory_->size()) {
      throw std::length_error(
          "BasicDirectEnv: algorithm needs more locations than were "
          "preallocated");
    }
  }

  [[nodiscard]] sim::ProcessId current_pid() const override { return pid_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  Memory* memory_;
  Xoshiro256 rng_;
  sim::ProcessId pid_;
  std::uint64_t steps_ = 0;
};

}  // namespace loren
