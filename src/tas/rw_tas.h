// Test-and-set built from read/write registers (paper Section 2 discussion).
//
// The paper assumes hardware TAS but notes that in the pure read-write
// model one would plug in randomized TAS implementations at a
// multiplicative cost. We provide two substrates so that cost is
// measurable (experiment E9):
//
// * TournamentTasService — a binary tournament tree with one randomized
//   two-process TAS object per internal node. The two-process object is a
//   Chor-Israeli-Li-style racing consensus: each side advances through
//   rounds, adopts the value of a strictly-ahead opponent, breaks round
//   ties with fair coins, and decides its current value once it is two
//   rounds ahead; TAS(i) then returns "won" iff the decided value is i.
//   Agreement is deterministic (safety never depends on coins); expected
//   O(1) rounds per node even against the adaptive adversary; O(log n)
//   register steps per logical TAS acquire.
//
// * SifterTasService — the tournament preceded by a geometric-level sifter
//   (in the spirit of the sub-logarithmic TAS constructions [3, 22] the
//   paper cites): a process draws a geometric level X, writes board[X],
//   reads board[X+1] and immediately loses if a higher level is occupied.
//   This filters the crowd down to the handful of max-level processes in
//   two register steps, so the tournament above runs nearly uncontended.
//
// Both substrates guarantee the only property renaming needs: at most one
// winner per logical location, and a process running solo (or any process
// that survives to the tournament root) always learns an outcome.
#pragma once

#include <cstdint>

#include "sim/env.h"
#include "sim/task.h"
#include "tas/tas_service.h"

namespace loren {

/// One-shot randomized two-process TAS from two shared registers at
/// cells [base, base+2). `role` must be 0 or 1 and unique per caller.
/// Returns true iff this role won. Register encoding: bit 0 = written flag,
/// bit 1 = proposed winner role, bits 2.. = round number.
sim::Task<bool> two_process_rw_tas(sim::Env& env, sim::Location base, int role);

class TournamentTasService : public TasService {
 public:
  /// Serves `num_logical` logical TAS objects for up to `num_processes`
  /// processes, using cells [base, base + footprint()).
  TournamentTasService(sim::Location base, std::uint64_t num_logical,
                       sim::ProcessId num_processes);

  sim::Task<bool> acquire(sim::Env& env, std::uint64_t logical) override;
  [[nodiscard]] std::uint64_t footprint() const override {
    return num_logical_ * cells_per_logical_;
  }
  [[nodiscard]] const char* name() const override { return "rw-tournament"; }

  [[nodiscard]] std::uint64_t tree_depth() const { return depth_; }

 protected:
  /// Runs the tournament part for `logical` starting from this process's
  /// leaf; shared by the sifter subclass.
  sim::Task<bool> run_tournament(sim::Env& env, std::uint64_t logical,
                                 sim::Location region_base);

  sim::Location base_;
  std::uint64_t num_logical_;
  std::uint64_t leaves_;             // processes rounded up to a power of two
  std::uint64_t depth_ = 0;          // log2(leaves_)
  std::uint64_t cells_per_logical_;  // 2 registers per internal node (+ sifter)
};

class SifterTasService final : public TournamentTasService {
 public:
  SifterTasService(sim::Location base, std::uint64_t num_logical,
                   sim::ProcessId num_processes);

  sim::Task<bool> acquire(sim::Env& env, std::uint64_t logical) override;
  [[nodiscard]] const char* name() const override { return "rw-sifter"; }

  [[nodiscard]] std::uint64_t sifter_levels() const { return levels_; }

 private:
  std::uint64_t levels_;
};

}  // namespace loren
