// TasService: how a logical test-and-set object is realized.
//
// The paper assumes hardware TAS (Section 2) but discusses the read-write
// register model, where TAS itself must be implemented from reads and
// writes at an O(log log k)-or-worse multiplicative cost. A TasService maps
// a *logical* TAS location (a name slot of the renaming algorithms) onto
// either a single hardware TAS cell or a read/write protocol occupying a
// region of cells. Experiment E9 swaps services under the same algorithm to
// measure that cost.
#pragma once

#include <cstdint>

#include "sim/env.h"
#include "sim/task.h"

namespace loren {

/// Acquiring a logical TAS returns true iff this process *won* it (was the
/// first; the paper's convention). At most one process ever wins a given
/// logical location, regardless of schedule or crashes.
class TasService {
 public:
  virtual ~TasService() = default;
  virtual sim::Task<bool> acquire(sim::Env& env, std::uint64_t logical) = 0;
  /// Number of environment cells this service occupies.
  [[nodiscard]] virtual std::uint64_t footprint() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The paper's default: one hardware TAS cell per logical location.
class HardwareTasService final : public TasService {
 public:
  HardwareTasService(sim::Location base, std::uint64_t num_logical)
      : base_(base), num_logical_(num_logical) {}

  sim::Task<bool> acquire(sim::Env& env, std::uint64_t logical) override {
    co_return co_await sim::tas(env, base_ + logical);
  }
  [[nodiscard]] std::uint64_t footprint() const override { return num_logical_; }
  [[nodiscard]] const char* name() const override { return "hardware"; }

 private:
  sim::Location base_;
  std::uint64_t num_logical_;
};

}  // namespace loren
