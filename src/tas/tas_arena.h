// TasArena: the cache-conscious hardware TAS substrate.
//
// AtomicTasArray packs eight TAS cells into every 64-byte cache line, so
// under real concurrency every win ping-pongs the line under seven
// innocent neighbours (false sharing), and reusing a namespace means
// zeroing (or reallocating) all m cells. TasArena fixes both:
//
//  * Two layouts. kPadded places one cell per cache line (alignas(64)
//    stride) so concurrent probes on distinct names never share a line —
//    the right choice for contended hot paths. kPacked keeps the 8-per-
//    line density of the old array — 8x smaller, the right choice for
//    huge namespaces or read-mostly workloads. The throughput harness
//    (bench/bench_throughput.cpp) measures the tradeoff.
//
//  * Generation-stamped cells. A cell stores the epoch in which it was
//    won (0 = never). A cell is "taken" iff its stamp equals the arena's
//    current epoch, so reset() is a single epoch increment — O(1) instead
//    of the O(m) store loop / reallocation the seed needed between
//    rounds. Stale stamps from earlier epochs are indistinguishable from
//    free cells to the probing logic.
//
//  * Minimal memory orders. test_and_set is exchange(epoch, acq_rel):
//    -- Linearizability of a TAS object only requires a total order over
//       the operations on that one cell, and C++ guarantees a per-object
//       modification order for atomic RMWs at *any* ordering; exactly one
//       exchange per epoch can observe a non-current stamp, so "at most
//       one winner" holds even under memory_order_relaxed.
//    -- acq_rel (rather than relaxed) is kept so a win synchronizes-with
//       every later operation that sees the cell taken: data a process
//       publishes before acquiring a name is visible to whoever observes
//       the name in use. This is the release/acquire handoff long-lived
//       renaming needs when names guard resources (connection slots etc.).
//    -- seq_cst would add only a global order across *different* cells.
//       No algorithm here branches on the relative order of two distinct
//       cells' values, so that fence is pure cost (a full barrier per
//       probe on arm64/power; stronger xchg semantics already paid on
//       x86). See DESIGN.md, "Memory-order weakening", for the argument.
//    Reads are acquire (pair with the release half of the winning RMW);
//    the epoch counter is read relaxed on the hot path — it only changes
//    in reset(), which requires external quiescence anyway (same contract
//    as the seed's reset()).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "platform/cacheline.h"
#include "platform/sim_point.h"
#include "tas/direct_env.h"
#include "telemetry/trace.h"

namespace loren {

enum class ArenaLayout : std::uint8_t {
  kPadded,  // one cell per 64-byte cache line (no false sharing)
  kPacked,  // eight cells per line (8x denser; the seed's layout)
};

class TasArena {
 public:
  static constexpr std::size_t kCacheLine = loren::kCacheLine;

  /// One allocation of `size` cells, all free, epoch 1. The constructed
  /// arena is immediately usable from any thread; construction itself is
  /// not concurrent with anything (standard object lifetime rules).
  explicit TasArena(std::uint64_t size, ArenaLayout layout = ArenaLayout::kPadded)
      : size_(size),
        layout_(layout),
        stride_(layout == ArenaLayout::kPadded ? kCacheLine : sizeof(std::uint64_t)) {
    storage_ = std::make_unique<std::byte[]>(size_ * stride_ + kCacheLine);
    auto base = reinterpret_cast<std::uintptr_t>(storage_.get());
    data_ = reinterpret_cast<std::byte*>((base + kCacheLine - 1) & ~std::uintptr_t(kCacheLine - 1));
    for (std::uint64_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(data_ + i * stride_)) std::atomic<std::uint64_t>(0);
    }
  }

  /// Returns true iff this call won the TAS: flipped the cell from free
  /// (never won, won in a stale epoch, or released) to taken-in-this-epoch.
  /// Safe from any thread, wait-free (one RMW), never blocks; at most one
  /// caller per (cell, epoch) ever wins. Bounds-unchecked: i < size().
  bool test_and_set(std::uint64_t i) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    LOREN_SIM_POINT("tas.claim");
    return cell(i).exchange(e, std::memory_order_acq_rel) != e;
  }

  /// 1 iff the cell is taken in the current epoch (the seed's 0/1 view).
  /// Safe from any thread; a plain acquire load (pairs with the release
  /// half of the winning RMW, so a winner's prior writes are visible).
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    return cell(i).load(std::memory_order_acquire) ==
                   epoch_.load(std::memory_order_relaxed)
               ? 1
               : 0;
  }

  /// Seed-compatible write of the 0/1 view: nonzero marks the cell taken
  /// in the current epoch, zero frees it. Unconditional (no validation) —
  /// the simulator/baseline surface; concurrent production code wants
  /// test_and_set/try_release, whose outcomes are race-decided.
  void write(std::uint64_t i, std::uint64_t v) {
    // mo:relaxed-ok(the epoch read inside the store's value operand: the
    // stamp only has to be epoch-current, the release store publishes it)
    cell(i).store(v != 0 ? epoch_.load(std::memory_order_relaxed) : 0,
                  std::memory_order_release);
  }

  /// Atomically frees cell `i`; returns true iff it was taken in the
  /// current epoch (i.e. the release was legitimate). Single RMW — no
  /// check-then-act window, so concurrent double releases cannot both
  /// succeed. Safe from any thread, wait-free, never blocks.
  bool try_release(std::uint64_t i) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    LOREN_SIM_POINT("tas.release");
    return cell(i).exchange(0, std::memory_order_acq_rel) == e;
  }

  /// Batched claim: scans [begin, end) linearly and TASes free-looking
  /// cells until `k` wins are collected, appending the won indices to
  /// `out`. Returns the number claimed (<= k). Each cell is checked with
  /// a cheap acquire load first, so already-taken cells cost a load, not
  /// a locked RMW — in the packed layout the scan reads the eight stamps
  /// of a cache line before touching the next line, so a mostly-full
  /// region is skipped at one line-fill per eight cells. Losing the race
  /// on a free-looking cell (the exchange observes the current epoch)
  /// just moves the scan on; uniqueness is still the per-cell TAS.
  /// `lost_races` (optional) accumulates the observable losses — cells
  /// whose check saw free but whose exchange found the current epoch
  /// (telemetry; single-RMW test_and_set losses are not observable).
  std::uint64_t try_claim_run(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t k, std::uint64_t* out,
                              std::uint32_t* lost_races = nullptr) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    std::uint64_t got = 0;
    for (std::uint64_t i = begin; i < end && got < k; ++i) {
      std::atomic<std::uint64_t>& c = cell(i);
      if (c.load(std::memory_order_acquire) == e) continue;  // taken
      // The load-before-RMW window: a rival can win the free-looking
      // cell between the check and the exchange.
      LOREN_SIM_POINT("tas.run.claim");
      if (c.exchange(e, std::memory_order_acq_rel) != e) {
        out[got++] = i;
      } else if (lost_races != nullptr) {
        ++*lost_races;
      }
    }
    return got;
  }

  /// O(1) full-namespace reset: bump the epoch so every stamp goes stale.
  /// Same contract as AtomicTasArray::reset(): not safe concurrently with
  /// in-flight test_and_set/release (an in-flight op may land in either
  /// epoch); callers quiesce first.
  void reset() {
    // sim:exempt(reset() requires external quiescence; nothing races it)
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    LOREN_TRACE("tas.reset", epoch_.load(std::memory_order_relaxed));
  }

  /// Current epoch (diagnostics; exact only at quiescence, like reset()).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// Geometry accessors: fixed at construction, safe from any thread.
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] ArenaLayout layout() const { return layout_; }
  /// Bytes of cell storage (excludes the alignment slack).
  [[nodiscard]] std::uint64_t footprint_bytes() const { return size_ * stride_; }

  /// Raw generation stamp of a cell — test/diagnostic use only.
  [[nodiscard]] std::uint64_t raw_stamp(std::uint64_t i) const {
    return cell(i).load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] std::atomic<std::uint64_t>& cell(std::uint64_t i) const {
    return *std::launder(
        reinterpret_cast<std::atomic<std::uint64_t>*>(data_ + i * stride_));
  }

  std::uint64_t size_;
  ArenaLayout layout_;
  std::size_t stride_;
  std::unique_ptr<std::byte[]> storage_;
  std::byte* data_ = nullptr;
  /// Epochs start at 1 so stamp 0 can mean "never won / released" forever.
  /// Own cache line: the hot path reads it on every probe and reset()
  /// writes it; sharing a line with `size_`/`data_` would be harmless
  /// (they are never written after construction) but padding makes the
  /// read-mostly intent explicit.
  // mo: relaxed, acq_rel -- epoch stamp: relaxed reads suffice because
  // reset() requires external quiescence (no racing bump to order with);
  // the acq_rel bump is belt-and-braces for the quiesce boundary itself.
  alignas(kCacheLine) std::atomic<std::uint64_t> epoch_{1};
};

/// An Env whose shared-memory operations execute immediately on a TasArena
/// (see BasicDirectEnv in direct_env.h); lets the coroutine algorithms run
/// on the cache-conscious substrate unchanged.
using ArenaEnv = BasicDirectEnv<TasArena>;

}  // namespace loren
