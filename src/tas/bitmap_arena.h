// BitmapArena: the word-packed TAS substrate — 64 cells per probe.
//
// TasArena spends one cache-line atomic RMW per *cell* probed, and its
// exhaustion backstop sweeps cell by cell. At a bit per cell the same
// namespace packs 64 cells into every std::uint64_t word, and the probing
// primitives change shape:
//
//  * try_claim_in_word — one word load snapshots 64 cells, countr_zero
//    over the free mask picks a candidate, and a single one-bit fetch_or
//    claims it (retrying on a lost race, which can only happen at most 63
//    times per word because every loss permanently shrinks the free mask).
//    A probe that would have cost up to 64 cell RMWs is a load + one RMW.
//  * try_claim_run — batch claims assemble a multi-bit mask from the
//    loaded free mask (load-before-RMW, as in TasArena::try_claim_run)
//    and claim a whole sub-batch with ONE fetch_or per word; the bits
//    that were already set in the returned old value are the lost races.
//  * sweep_word — a whole word's occupancy in one snapshot instead of
//    64 per-cell loads (the claiming backstops get the same word-at-a-
//    time shape through try_claim_run; sweep_word is the read-only
//    surface).
//
// Epoch-stamped O(1) reset is preserved via a per-word generation
// sidecar: each word carries the epoch its bits were last valid in, and a
// word whose stamp is stale is logically all-free. reset() is still one
// epoch increment; the first toucher of a stale word re-zeroes it lazily
// under a tiny CAS-guarded protocol (see ensure_fresh below).
//
// Memory orders mirror the TasArena argument (DESIGN.md, "Memory-order
// weakening"): the claiming fetch_or is acq_rel — per-word modification
// order makes "at most one winner per (cell, epoch)" structural at any
// ordering, and the release half publishes a winner's prior writes to
// whoever later observes the bit set; loads are acquire; the arena epoch
// is read relaxed on the hot path because reset() requires external
// quiescence (the same contract as TasArena::reset()).
//
// The tradeoff vs TasArena is false sharing by construction: 64 (padded)
// or 256 (packed) cells share a line, so concurrent wins on neighbouring
// names contend. The word-scan makes each touch *count* for 64 cells,
// which is the bet — measured as cell-probe vs word-scan in
// bench/bench_throughput.cpp, selectable per service via ArenaKind.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

#include "platform/bit.h"
#include "platform/cacheline.h"
#include "platform/sim_point.h"
#include "tas/direct_env.h"
#include "tas/tas_arena.h"
#include "telemetry/trace.h"

namespace loren {

/// Which substrate a service builds its shards on. kCellProbe is the
/// cache-line-per-cell TasArena family (one RMW per cell probed);
/// kBitmap is the word-packed BitmapArena (64 cells per probe).
enum class ArenaKind : std::uint8_t {
  kCellProbe,
  kBitmap,
};

class BitmapArena {
 public:
  static constexpr std::uint64_t kBitsPerWord = 64;
  static constexpr std::size_t kCacheLine = loren::kCacheLine;

  /// One allocation of ceil(size/64) word slots, all free, epoch 2. The
  /// kPadded layout gives every word slot its own cache line (64 cells
  /// per line — concurrent scans of distinct words never share a line);
  /// kPacked packs slots densely (256 cells per 64-byte line, the
  /// smallest footprint). Immediately usable from any thread.
  explicit BitmapArena(std::uint64_t size,
                       ArenaLayout layout = ArenaLayout::kPadded)
      : size_(size),
        words_((size + kBitsPerWord - 1) / kBitsPerWord),
        layout_(layout),
        stride_(layout == ArenaLayout::kPadded ? kCacheLine
                                               : sizeof(WordSlot)) {
    storage_ = std::make_unique<std::byte[]>(words_ * stride_ + kCacheLine);
    auto base = reinterpret_cast<std::uintptr_t>(storage_.get());
    data_ = reinterpret_cast<std::byte*>((base + kCacheLine - 1) &
                                         ~std::uintptr_t(kCacheLine - 1));
    for (std::uint64_t w = 0; w < words_; ++w) {
      ::new (static_cast<void*>(data_ + w * stride_)) WordSlot{};
      // Stamp every word with the starting epoch so the first epoch needs
      // no lazy refresh at all.
      slot(w).gen.store(kFirstEpoch, std::memory_order_relaxed);
    }
  }

  /// Returns true iff this call won the TAS on cell `i`: flipped it from
  /// free (never won, stale epoch, or released) to taken-in-this-epoch.
  /// Safe from any thread; one word load (+ the rare stale-word refresh)
  /// and one single-bit fetch_or. Bounds-unchecked: i < size().
  bool test_and_set(std::uint64_t i) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    WordSlot& s = slot(i / kBitsPerWord);
    ensure_fresh(s, e);
    const std::uint64_t bit = std::uint64_t{1} << (i % kBitsPerWord);
    LOREN_SIM_POINT("bitmap.tas");
    return (s.bits.fetch_or(bit, std::memory_order_acq_rel) & bit) == 0;
  }

  /// 1 iff cell `i` is taken in the current epoch. A stale word is
  /// logically all-free, so no refresh is needed (or performed) to read.
  [[nodiscard]] std::uint64_t read(std::uint64_t i) const {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    const WordSlot& s = slot(i / kBitsPerWord);
    if (s.gen.load(std::memory_order_acquire) != e) return 0;
    return (s.bits.load(std::memory_order_acquire) >>
            (i % kBitsPerWord)) &
           1u;
  }

  /// Seed-compatible unconditional 0/1 write (simulator/baseline surface;
  /// concurrent production code wants test_and_set/try_release).
  void write(std::uint64_t i, std::uint64_t v) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    WordSlot& s = slot(i / kBitsPerWord);
    ensure_fresh(s, e);
    const std::uint64_t bit = std::uint64_t{1} << (i % kBitsPerWord);
    if (v != 0) {
      // sim:exempt(seed-compat baseline surface; the concurrent paths go
      // through test_and_set/try_release, which carry the sim points)
      s.bits.fetch_or(bit, std::memory_order_acq_rel);
    } else {
      // sim:exempt(seed-compat baseline surface; the concurrent paths go
      // through test_and_set/try_release, which carry the sim points)
      s.bits.fetch_and(~bit, std::memory_order_acq_rel);
    }
  }

  /// Atomically frees cell `i`; true iff it was taken in the current
  /// epoch. A stale word holds no current-epoch names, so the release
  /// fails without touching it; a fresh word cannot go stale mid-call
  /// (reset() requires external quiescence), so the single-RMW validation
  /// argument carries over from TasArena: concurrent double releases
  /// cannot both observe the bit set.
  bool try_release(std::uint64_t i) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    WordSlot& s = slot(i / kBitsPerWord);
    if (s.gen.load(std::memory_order_acquire) != e) return false;
    const std::uint64_t bit = std::uint64_t{1} << (i % kBitsPerWord);
    LOREN_SIM_POINT("bitmap.release");
    return (s.bits.fetch_and(~bit, std::memory_order_acq_rel) & bit) != 0;
  }

  /// The word-scan probe: claims any free cell of the word containing
  /// `hint`, restricted to indices in [lo, hi) (the caller's shard/segment
  /// window). Returns the claimed cell index, or -1 when the word has no
  /// free cell in range. The protocol is mask snapshot -> countr_zero ->
  /// one-bit fetch_or -> verify: losing the race on the chosen bit just
  /// reloads the (shrunken) free mask from the fetch_or's return value,
  /// so the retry loop runs at most 64 times and performs no extra loads.
  /// `lost_races` (optional) accumulates the fetch_or retries — each one
  /// is a rival observed winning the chosen bit (telemetry).
  std::int64_t try_claim_in_word(std::uint64_t hint, std::uint64_t lo,
                                 std::uint64_t hi,
                                 std::uint32_t* lost_races = nullptr) {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    const std::uint64_t w = hint / kBitsPerWord;
    WordSlot& s = slot(w);
    ensure_fresh(s, e);
    const std::uint64_t allowed = word_window_mask(w, lo, hi);
    std::uint64_t taken = s.bits.load(std::memory_order_acquire);
    while (true) {
      const std::uint64_t free = ~taken & allowed;
      if (free == 0) return -1;
      const int b = countr_zero_u64(free);
      const std::uint64_t bit = std::uint64_t{1} << b;
      // The snapshot->fetch_or race window: a rival claims the chosen
      // bit between the mask read and the RMW (the word-claim storm
      // scenario schedules exactly this).
      LOREN_SIM_POINT("bitmap.word.claim");
      const std::uint64_t old = s.bits.fetch_or(bit, std::memory_order_acq_rel);
      if ((old & bit) == 0) {
        return static_cast<std::int64_t>(w * kBitsPerWord +
                                         static_cast<std::uint64_t>(b));
      }
      if (lost_races != nullptr) ++*lost_races;
      taken = old | bit;  // lost the race: that bit (at least) is now taken
    }
  }

  /// Batched claim over [begin, end): up to `k` free cells claimed
  /// word-at-a-time, indices appended to `out`, count returned. Per word
  /// the free mask is loaded once, the lowest (k - got) free bits are
  /// assembled into a single claim mask, and one fetch_or claims them
  /// all; bits already set in the returned old value were lost races and
  /// the residue is retried from the updated mask. Claiming a k-cell run
  /// that spans a word boundary is just two word iterations — no cell is
  /// ever claimed twice because every claim is a bit that this fetch_or
  /// flipped 0 -> 1. `lost_races` (optional) accumulates popcount(want &
  /// old) across the fetch_ors — the bits rivals won first (telemetry).
  std::uint64_t try_claim_run(std::uint64_t begin, std::uint64_t end,
                              std::uint64_t k, std::uint64_t* out,
                              std::uint32_t* lost_races = nullptr) {
    if (begin >= end || k == 0) return 0;
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    std::uint64_t got = 0;
    const std::uint64_t first_word = begin / kBitsPerWord;
    const std::uint64_t last_word = (end - 1) / kBitsPerWord;
    for (std::uint64_t w = first_word; w <= last_word && got < k; ++w) {
      WordSlot& s = slot(w);
      ensure_fresh(s, e);
      const std::uint64_t allowed = word_window_mask(w, begin, end);
      std::uint64_t taken = s.bits.load(std::memory_order_acquire);
      while (got < k) {
        const std::uint64_t free = ~taken & allowed;
        if (free == 0) break;
        const std::uint64_t want =
            lowest_n_bits(free, static_cast<unsigned>(
                                    k - got < kBitsPerWord ? k - got
                                                           : kBitsPerWord));
        LOREN_SIM_POINT("bitmap.run.word");
        const std::uint64_t old =
            s.bits.fetch_or(want, std::memory_order_acq_rel);
        std::uint64_t won = want & ~old;  // bits this RMW flipped 0 -> 1
        while (won != 0) {
          const int b = countr_zero_u64(won);
          won &= won - 1;
          out[got++] = w * kBitsPerWord + static_cast<std::uint64_t>(b);
        }
        if ((want & old) == 0) break;  // no lost races: mask is exhausted
        if (lost_races != nullptr) {
          *lost_races += static_cast<std::uint32_t>(popcount_u64(want & old));
        }
        taken = old | want;
      }
    }
    return got;
  }

  /// Whole-word snapshot: the free mask of word `w` (bit b set = cell
  /// w*64+b is free), clamped to the arena size. One load replaces 64
  /// per-cell reads; a stale word is all-free without refreshing. The
  /// production backstops reach the same word-at-a-time scan through
  /// try_claim_run (which snapshots AND claims); this is the standalone
  /// read-only surface for occupancy probes, diagnostics, and tests.
  [[nodiscard]] std::uint64_t sweep_word(std::uint64_t w) const {
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    const WordSlot& s = slot(w);
    const std::uint64_t valid = word_window_mask(w, 0, size_);
    if (s.gen.load(std::memory_order_acquire) != e) return valid;
    return ~s.bits.load(std::memory_order_acquire) & valid;
  }

  /// O(1) full-namespace reset: bump the epoch so every word's stamp goes
  /// stale (words re-zero lazily on first touch). Same contract as
  /// TasArena::reset(): requires external quiescence.
  void reset() {
    // sim:exempt(reset() requires external quiescence; nothing races it)
    epoch_.fetch_add(kEpochStep, std::memory_order_acq_rel);
    LOREN_TRACE("bitmap.reset", epoch_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] std::uint64_t words() const { return words_; }
  [[nodiscard]] ArenaLayout layout() const { return layout_; }
  /// Bytes of word storage (excludes the alignment slack). The packed
  /// layout is size/4 bytes — 8x denser than packed TasArena cells, 256x
  /// denser than padded ones.
  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return words_ * stride_;
  }

  /// Raw word stamp/bits — test/diagnostic use only.
  [[nodiscard]] std::uint64_t raw_gen(std::uint64_t w) const {
    return slot(w).gen.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t raw_bits(std::uint64_t w) const {
    return slot(w).bits.load(std::memory_order_acquire);
  }

 private:
  /// Epochs advance by 2 and stay even; the odd value (epoch | 1) is the
  /// in-progress marker of the lazy refresh protocol below.
  static constexpr std::uint64_t kFirstEpoch = 2;
  static constexpr std::uint64_t kEpochStep = 2;

  struct WordSlot {
    // mo: acquire, acq_rel, relaxed -- occupancy mask: acq_rel RMWs
    // decide claims, acquire snapshots pair with them; the one relaxed
    // store (refresh zero) is published by gen's release store.
    std::atomic<std::uint64_t> bits{0};
    // mo: acquire, release, acq_rel, relaxed -- refresh protocol stamp:
    // CAS to the odd marker, release-publish of the fresh epoch pairing
    // with acquire readers; relaxed only for the construction-time stamp.
    std::atomic<std::uint64_t> gen{0};
  };

  /// Lazy re-zero of a word whose stamp predates the current epoch.
  /// Exactly one thread wins the CAS from the stale stamp to the odd
  /// in-progress marker (epoch | 1); the winner zeroes the bits and then
  /// publishes the fresh stamp with a release store, so any thread that
  /// observes gen == epoch (acquire) also observes the zeroed bits — no
  /// claim can land on pre-zero garbage and no zero can wipe a landed
  /// claim. Concurrent first-touchers of the same word spin across the
  /// winner's two plain stores; the window is two instructions wide and
  /// only ever open on the first touch of a word after a reset().
  void ensure_fresh(WordSlot& s, std::uint64_t e) {
    std::uint64_t g = s.gen.load(std::memory_order_acquire);
    while (g != e) {
      if (g == (e | 1)) {  // another thread is mid-refresh: wait it out
        // Under a serialized schedule the refresher may be suspended
        // exactly between its two stores; yielding here lets the
        // scheduler run it instead of spinning forever.
        LOREN_SIM_POINT("bitmap.refresh.wait");
        g = s.gen.load(std::memory_order_acquire);
        continue;
      }
      if (s.gen.compare_exchange_weak(g, e | 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        // CAS won, marker published, zero + fresh stamp still pending —
        // the widest the refresh race ever opens; stalling here makes
        // every concurrent toucher sit in the wait loop above.
        LOREN_SIM_POINT("bitmap.refresh.zero");
        s.bits.store(0, std::memory_order_relaxed);
        s.gen.store(e, std::memory_order_release);
        return;
      }
    }
  }

  /// Bits of word `w` whose cell indices fall in [lo, hi).
  [[nodiscard]] std::uint64_t word_window_mask(std::uint64_t w,
                                               std::uint64_t lo,
                                               std::uint64_t hi) const {
    const std::uint64_t word_base = w * kBitsPerWord;
    if (hi <= word_base || lo >= word_base + kBitsPerWord) return 0;
    const std::uint64_t from = lo > word_base ? lo - word_base : 0;
    const std::uint64_t to =
        hi < word_base + kBitsPerWord ? hi - word_base : kBitsPerWord;
    return bit_range_mask(static_cast<unsigned>(from),
                          static_cast<unsigned>(to));
  }

  [[nodiscard]] WordSlot& slot(std::uint64_t w) const {
    return *std::launder(reinterpret_cast<WordSlot*>(data_ + w * stride_));
  }

  std::uint64_t size_;
  std::uint64_t words_;
  ArenaLayout layout_;
  std::size_t stride_;
  std::unique_ptr<std::byte[]> storage_;
  std::byte* data_ = nullptr;
  /// Own cache line for the same reason as TasArena::epoch_.
  // mo: relaxed, acq_rel -- epoch stamp: same contract as
  // TasArena::epoch_ (reset() requires external quiescence; relaxed
  // reads are current by that contract).
  alignas(kCacheLine) std::atomic<std::uint64_t> epoch_{kFirstEpoch};
};

/// Run the coroutine algorithms directly over the bitmap substrate.
using BitmapEnv = BasicDirectEnv<BitmapArena>;

}  // namespace loren
