#include "lease/lease_table.h"

#include <algorithm>

namespace loren::lease {
namespace {

/// splitmix64-style finalizer: shard selection takes the high bits, the
/// per-shard map takes the low bits, so the two indices decorrelate even
/// for the services' structured (shard-interleaved / tag-packed) names.
std::uint64_t mix_name(sim::Name name) {
  auto x = static_cast<std::uint64_t>(name);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t pow2_at_least(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr std::size_t kInitialBuckets = 64;

}  // namespace

LeaseTable::LeaseTable(const LeaseOptions& opts,
                       telemetry::MetricsRegistry* registry)
    : ttl_(opts.ttl_ticks),
      grace_(opts.grace),
      clock_(opts.clock != nullptr ? opts.clock : &telemetry::trace_ticks),
      release_guard_(opts.release_guard),
      registry_(registry) {
  const std::uint64_t n =
      pow2_at_least(opts.table_shards == 0 ? 1 : opts.table_shards);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->buckets.assign(kInitialBuckets, kNil);
    for (auto& level : s->wheel) {
      for (auto& slot : level) slot = kNil;
    }
    for (auto& c : s->cursor) c = 0;
    shards_.push_back(std::move(s));
  }
  if (registry_ != nullptr) {
    ctr_opened_ = registry_->counter("lease.opened");
    ctr_closed_ = registry_->counter("lease.closed");
    ctr_expired_ = registry_->counter("lease.expired");
    ctr_renewals_ = registry_->counter("lease.renewals");
    ctr_guard_trips_ = registry_->counter("lease.guard_trips");
    hist_reap_late_ = registry_->histogram("lease.reap_late_ticks");
  }
}

Heartbeat& LeaseTable::register_thread() {
  std::lock_guard<SimMutex> lock(hb_mu_);
  heartbeats_.push_back(std::make_unique<Heartbeat>());
  return *heartbeats_.back();
}

LeaseTable::Shard& LeaseTable::shard_for(sim::Name name) {
  return *shards_[(mix_name(name) >> 48) & shard_mask_];
}

const LeaseTable::Shard& LeaseTable::shard_for(sim::Name name) const {
  return *shards_[(mix_name(name) >> 48) & shard_mask_];
}

std::uint32_t LeaseTable::find_locked(Shard& s, sim::Name name) const {
  const std::uint64_t b = mix_name(name) & (s.buckets.size() - 1);
  for (std::uint32_t i = s.buckets[b]; i != kNil; i = s.records[i].hnext) {
    if (s.records[i].name == name) return i;
  }
  return kNil;
}

void LeaseTable::unlink_locked(Shard& s, std::uint32_t idx) {
  const std::uint64_t b =
      mix_name(s.records[idx].name) & (s.buckets.size() - 1);
  std::uint32_t* p = &s.buckets[b];
  while (*p != idx) p = &s.records[*p].hnext;
  *p = s.records[idx].hnext;
  s.records[idx].hnext = kNil;
}

std::uint32_t LeaseTable::alloc_record_locked(Shard& s) {
  if (s.live_count >= s.buckets.size()) {
    // Rehash to double. Only map-linked records (live == true) move; dead
    // records waiting for their lazy wheel sweep are not in any chain.
    std::vector<std::uint32_t> nb(s.buckets.size() * 2, kNil);
    for (std::uint32_t i = 0; i < s.records.size(); ++i) {
      Record& r = s.records[i];
      if (!r.live) continue;
      const std::uint64_t b = mix_name(r.name) & (nb.size() - 1);
      r.hnext = nb[b];
      nb[b] = i;
    }
    s.buckets.swap(nb);
  }
  std::uint32_t idx;
  if (s.free_head != kNil) {
    idx = s.free_head;
    s.free_head = s.records[idx].wnext;
    s.records[idx].wnext = kNil;
  } else {
    idx = static_cast<std::uint32_t>(s.records.size());
    s.records.emplace_back();
  }
  return idx;
}

void LeaseTable::wheel_insert_locked(Shard& s, std::uint32_t idx,
                                     std::uint64_t due,
                                     std::uint64_t now_ticks) {
  if (due <= now_ticks) due = now_ticks + 1;
  const std::uint64_t delta = due - now_ticks;
  // Smallest level whose span (64^(level+1) ticks) covers the delta; far
  // deadlines saturate at the top level and cascade as they approach.
  // delta >= 64^level at the chosen level, which guarantees the bucket is
  // strictly ahead of that level's cursor — an armed entry can never be
  // inserted behind the sweep.
  unsigned level = 0;
  while (level + 1 < kWheelLevels &&
         (delta >> (kWheelBits * (level + 1))) != 0) {
    ++level;
  }
  const std::uint64_t bucket = due >> (kWheelBits * level);
  const auto slot = static_cast<std::uint32_t>(bucket & (kWheelSlots - 1));
  s.records[idx].wnext = s.wheel[level][slot];
  s.wheel[level][slot] = idx;
}

std::uint64_t LeaseTable::effective_deadline_locked(const Record& rec) const {
  std::uint64_t hb_deadline = 0;
  if (rec.hb != nullptr) {
    // mo:relaxed-ok(single-writer heartbeat stamp; a stale read only
    // delays expiry by one reap pass, the max() below can't go early)
    const std::uint64_t beat = rec.hb->last.load(std::memory_order_relaxed);
    if (beat != 0) hb_deadline = beat + ttl_;
  }
  return std::max(rec.deadline, hb_deadline) + grace_;
}

void LeaseTable::advance_locked(Shard& s, std::uint64_t now_ticks,
                                std::vector<sim::Name>& out,
                                std::vector<std::uint64_t>& late) {
  for (unsigned level = 0; level < kWheelLevels; ++level) {
    const unsigned shift = kWheelBits * level;
    const std::uint64_t now_b = now_ticks >> shift;
    const std::uint64_t cur = s.cursor[level];
    if (now_b <= cur) continue;
    const std::uint64_t steps = now_b - cur;
    // A jump past a whole revolution visits each slot exactly once; the
    // modular indices would only repeat. Bounds a pass at
    // kWheelLevels * kWheelSlots slot drains regardless of clock jumps.
    const std::uint64_t nslots = steps >= kWheelSlots ? kWheelSlots : steps;
    for (std::uint64_t k = 1; k <= nslots; ++k) {
      const auto slot =
          static_cast<std::uint32_t>((cur + k) & (kWheelSlots - 1));
      std::uint32_t i = s.wheel[level][slot];
      s.wheel[level][slot] = kNil;
      while (i != kNil) {
        const std::uint32_t next = s.records[i].wnext;
        Record& r = s.records[i];
        r.wnext = kNil;
        if (!r.live) {
          // Lazily deleted (closed): the wheel entry was its last ref.
          r.wnext = s.free_head;
          s.free_head = i;
        } else if (const std::uint64_t eff = effective_deadline_locked(r);
                   eff > now_ticks) {
          // Renewed (explicitly or via heartbeat): re-arm at the fresher
          // deadline. This exactness check is what makes early expiry
          // impossible — the wheel position is only a visit time.
          wheel_insert_locked(s, i, eff, now_ticks);
        } else {
          unlink_locked(s, i);
          r.live = false;
          --s.live_count;
          ++s.expired;
          out.push_back(r.name);
          late.push_back(now_ticks - eff);
          r.wnext = s.free_head;
          s.free_head = i;
        }
        i = next;
      }
    }
    s.cursor[level] = now_b;
  }
}

std::size_t LeaseTable::finish_reap(const std::vector<sim::Name>& names,
                                    const std::vector<std::uint64_t>& late,
                                    telemetry::MetricsRegistry::ThreadStripe* stripe) {
  std::size_t reclaimed = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (stripe != nullptr) {
      stripe->add(ctr_expired_);
      stripe->record(hist_reap_late_, late[i]);
    }
    LOREN_SIM_POINT("lease.expire");
    if (reclaim_ != nullptr && reclaim_(reclaim_ctx_, names[i])) ++reclaimed;
  }
  return reclaimed;
}

void LeaseTable::open(sim::Name name, std::uint64_t now_ticks,
                      const Heartbeat* hb, telemetry::MetricsRegistry::ThreadStripe* stripe) {
  LOREN_SIM_POINT("lease.open");
  Shard& s = shard_for(name);
  {
    std::lock_guard<SimMutex> lock(s.mu);
    const std::uint32_t idx = alloc_record_locked(s);
    Record& r = s.records[idx];
    r.name = name;
    r.deadline = now_ticks + ttl_;
    r.hb = hb;
    r.live = true;
    const std::uint64_t b = mix_name(name) & (s.buckets.size() - 1);
    r.hnext = s.buckets[b];
    s.buckets[b] = idx;
    ++s.live_count;
    ++s.opened;
    wheel_insert_locked(s, idx, r.deadline + grace_, now_ticks);
  }
  if (stripe != nullptr) stripe->add(ctr_opened_);
}

bool LeaseTable::close(sim::Name name, const Heartbeat* hb,
                       telemetry::MetricsRegistry::ThreadStripe* stripe) {
  LOREN_SIM_POINT("lease.close");
  Shard& s = shard_for(name);
  bool ok;
  {
    std::lock_guard<SimMutex> lock(s.mu);
    const std::uint32_t idx = find_locked(s, name);
    if (idx == kNil ||
        (s.records[idx].hb != nullptr && s.records[idx].hb != hb)) {
      // The reaper won — the cell was reclaimed, and if the name bits
      // were already reissued the lease we found belongs to a *different*
      // holder (the hb mismatch). Either way this close must not free
      // the cell.
      ++s.guard_trips;
      ok = false;
    } else {
      unlink_locked(s, idx);
      s.records[idx].live = false;  // the wheel recycles it lazily
      --s.live_count;
      ++s.closed;
      ok = true;
    }
  }
  if (stripe != nullptr) stripe->add(ok ? ctr_closed_ : ctr_guard_trips_);
  return ok;
}

bool LeaseTable::renew(sim::Name name, std::uint64_t now_ticks,
                       const Heartbeat* hb,
                       telemetry::MetricsRegistry::ThreadStripe* stripe) {
  LOREN_SIM_POINT("lease.renew");
  Shard& s = shard_for(name);
  bool ok;
  {
    std::lock_guard<SimMutex> lock(s.mu);
    const std::uint32_t idx = find_locked(s, name);
    if (idx == kNil ||
        (s.records[idx].hb != nullptr && s.records[idx].hb != hb)) {
      ++s.guard_trips;
      ok = false;
    } else {
      // Lazy re-arm: only the deadline moves; the wheel entry re-checks
      // the effective deadline when its old visit time comes up.
      s.records[idx].deadline = now_ticks + ttl_;
      ok = true;
    }
  }
  if (stripe != nullptr) stripe->add(ok ? ctr_renewals_ : ctr_guard_trips_);
  return ok;
}

bool LeaseTable::rebind(sim::Name name, std::uint64_t now_ticks,
                        const Heartbeat* hb) {
  Shard& s = shard_for(name);
  std::lock_guard<SimMutex> lock(s.mu);
  const std::uint32_t idx = find_locked(s, name);
  if (idx == kNil ||
      (s.records[idx].hb != nullptr && s.records[idx].hb != hb)) {
    // Gone (reaped) or bound to a different live holder: not stealable.
    ++s.guard_trips;
    return false;
  }
  s.records[idx].hb = hb;
  s.records[idx].deadline = now_ticks + ttl_;
  return true;
}

bool LeaseTable::validate(sim::Name name, const Heartbeat* hb) {
  Shard& s = shard_for(name);
  std::lock_guard<SimMutex> lock(s.mu);
  const std::uint32_t idx = find_locked(s, name);
  if (idx != kNil && s.records[idx].hb == hb) return true;
  ++s.guard_trips;
  return false;
}

std::size_t LeaseTable::reap(std::uint64_t now_ticks,
                             telemetry::MetricsRegistry::ThreadStripe* stripe) {
  LOREN_SIM_POINT("lease.reap");
  std::size_t reclaimed = 0;
  std::vector<sim::Name> names;
  std::vector<std::uint64_t> late;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    names.clear();
    late.clear();
    {
      std::lock_guard<SimMutex> lock(s.mu);
      advance_locked(s, now_ticks, names, late);
    }
    reclaimed += finish_reap(names, late, stripe);
  }
  return reclaimed;
}

std::size_t LeaseTable::try_reap(std::uint64_t now_ticks,
                                 telemetry::MetricsRegistry::ThreadStripe* stripe) {
  LOREN_SIM_POINT("lease.reap");
  std::size_t reclaimed = 0;
  std::vector<sim::Name> names;
  std::vector<std::uint64_t> late;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    if (!s.mu.try_lock()) continue;  // someone else is reaping this shard
    names.clear();
    late.clear();
    advance_locked(s, now_ticks, names, late);
    s.mu.unlock();
    reclaimed += finish_reap(names, late, stripe);
  }
  return reclaimed;
}

void LeaseTable::clear() {
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<SimMutex> lock(s.mu);
    std::fill(s.buckets.begin(), s.buckets.end(), kNil);
    s.records.clear();
    s.free_head = kNil;
    s.live_count = 0;
    for (auto& level : s.wheel) {
      for (auto& slot : level) slot = kNil;
    }
    for (auto& c : s.cursor) c = 0;
  }
}

std::uint64_t LeaseTable::leases_live() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<SimMutex> lock(sp->mu);
    total += sp->live_count;
  }
  return total;
}

std::uint64_t LeaseTable::opened() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<SimMutex> lock(sp->mu);
    total += sp->opened;
  }
  return total;
}

std::uint64_t LeaseTable::expired() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<SimMutex> lock(sp->mu);
    total += sp->expired;
  }
  return total;
}

std::uint64_t LeaseTable::guard_trips() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<SimMutex> lock(sp->mu);
    total += sp->guard_trips;
  }
  return total;
}

}  // namespace loren::lease
