// LeaseTable: revocable, crash-safe name ownership.
//
// Every name a service hands out under leasing is registered here as a
// lease: (name, holder heartbeat, deadline). A holder that keeps
// operating keeps its leases alive for free — each service op stamps the
// thread's heartbeat cell, and the reaper treats a lease as fresh while
//   max(lease deadline, heartbeat + ttl) + grace > now.
// A holder that crashes, parks, or exits stops stamping; once its leases
// go stale the reaper expires them and hands the names back to the arena
// (via the service's reclaim callback), so the namespace no longer leaks
// under holder death — the liveness gap the renaming papers leave to the
// deployment (see docs/leases.md for the state machine and invariants).
//
// Structure: the table is sharded by name hash; each shard is one
// cacheline-aligned unit of {SimMutex, intrusive hash map name -> record,
// hierarchical timer wheel, counters}. All record state is mutated under
// the shard lock, so records need no atomics; the only lock-free word in
// the subsystem is the per-thread Heartbeat stamp. The timer wheel is the
// classic hashed hierarchical design (4 levels x 64 slots): insertion
// O(1) into the level whose span covers the remaining delta, advancement
// bounded at 64 slots per level per pass, entries cascading toward level
// 0 as their deadline approaches. Expiry checks are exact at the moment
// of expiry — the wheel only schedules *examination* times, and a lease
// whose effective deadline moved (renew or heartbeat) is re-armed, never
// expired early. A lease can therefore expire late (by up to one reap
// poll interval), but never early: "zero false expiries of live renewing
// holders" is structural, not probabilistic.
//
// Close vs reap linearization: the shard lock is the arbiter. Exactly one
// of {holder's close(), reaper's expiry} removes the lease from the map;
// whoever loses finds it absent. The services free an arena cell only
// after winning the close, and the reaper frees it only after winning the
// expiry — so a revived holder's late release is *detected* (close fails,
// the service reports kLeaseExpired / a guard trip), never applied to a
// cell that may already be someone else's. The cell itself stays taken
// from expiry until the reclaim callback runs, so there is no window in
// which a third party could double-grant it.
//
// Clock domains: ticks come from an injectable clock (LeaseOptions::clock),
// defaulting to telemetry::trace_ticks() — the TSC in production and the
// ScenarioEngine's deterministic step counter under -DLOREN_SIM with an
// engine bound (the same pattern as the adaptive controller). ttl and
// grace are in whatever unit the clock counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/cacheline.h"
#include "platform/sim_point.h"
#include "sim/env.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace loren::lease {

/// One thread's freshness stamp for one service: every op the thread
/// performs against the service relaxed-stores the current tick here,
/// which renews *all* of that thread's leases at once (the reaper max()es
/// the stamp into every effective deadline). Nodes are owned by the
/// LeaseTable and live as long as it does, so a lease may safely point at
/// its holder's cell even after the holder thread exits.
struct alignas(kCacheLine) Heartbeat {
  // mo: relaxed -- single-writer freshness stamp: only the owning thread
  // stores; the reaper reads under the shard lock and tolerates a stale
  // value (staleness can only delay an expiry by one reap pass, never
  // cause a false one, because the effective deadline is the max of the
  // stamp-derived deadline and the lease's own).
  std::atomic<std::uint64_t> last{0};
};

struct LeaseOptions {
  /// Lease lifetime in clock ticks; 0 disables leasing entirely (the
  /// services skip every lease hook — the pre-lease behavior).
  std::uint64_t ttl_ticks = 0;
  /// Extra ticks past the deadline before the reaper may expire: slack
  /// for holders whose heartbeat is coarse (one stamp per op).
  std::uint64_t grace = 0;
  /// Tick source; nullptr selects telemetry::trace_ticks (TSC in
  /// production, the engine step counter under -DLOREN_SIM when bound).
  std::uint64_t (*clock)() = nullptr;
  /// Lock shards (rounded up to a power of two).
  std::uint64_t table_shards = 8;
  /// Test knob (default on): when off, the services *ignore* a failed
  /// lease close and release the arena cell anyway — the unguarded
  /// behavior whose ABA corruption scenario_lease_test pins as a real,
  /// reproducible double-grant. Never disable outside tests.
  bool release_guard = true;
};

class LeaseTable {
 public:
  /// Frees the reclaimed cell back into the owning service's arena.
  /// Called *outside* any shard lock; returns true iff the cell was
  /// actually freed (false indicates the name no longer decodes to a
  /// live cell, e.g. an elastic generation stamp mismatch).
  using ReclaimFn = bool (*)(void* ctx, sim::Name name);

  LeaseTable(const LeaseOptions& opts, telemetry::MetricsRegistry* registry);
  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// One-time wiring by the owning service (before any open()).
  void set_reclaimer(ReclaimFn fn, void* ctx) {
    reclaim_ = fn;
    reclaim_ctx_ = ctx;
  }

  /// One-time per thread; callers cache the node. Nodes are never
  /// deregistered (same contract as RegisteredCounter).
  Heartbeat& register_thread();

  [[nodiscard]] std::uint64_t now() const { return clock_(); }
  [[nodiscard]] std::uint64_t ttl() const { return ttl_; }
  [[nodiscard]] std::uint64_t grace_ticks() const { return grace_; }
  [[nodiscard]] bool release_guard() const { return release_guard_; }

  /// Registers a lease on `name` held by `hb` (nullable: a lease with no
  /// heartbeat relies on its deadline alone). Caller has just won the
  /// arena cell, so `name` is not in the table.
  void open(sim::Name name, std::uint64_t now_ticks, const Heartbeat* hb,
            telemetry::MetricsRegistry::ThreadStripe* stripe);

  /// The holder relinquishes the lease (it is about to free the cell).
  /// True iff the lease was live *and bound to `hb`* — false means the
  /// reaper got there first and the caller must NOT free the cell (a
  /// guard trip, counted). The identity check is what defeats same-bits
  /// ABA: a reaped name re-issued to another thread produces a lease
  /// with identical name bits but a different holder, so the revived
  /// original holder's close is rejected instead of silently closing the
  /// new holder's lease. A lease whose hb is null (opened holderless)
  /// may be closed by anyone.
  [[nodiscard]] bool close(sim::Name name, const Heartbeat* hb,
                           telemetry::MetricsRegistry::ThreadStripe* stripe);

  /// Explicit renewal: pushes the lease's own deadline to now + ttl.
  /// False (a guard trip) if the lease no longer exists or is bound to a
  /// different holder (same ABA rule as close()).
  [[nodiscard]] bool renew(sim::Name name, std::uint64_t now_ticks,
                           const Heartbeat* hb,
                           telemetry::MetricsRegistry::ThreadStripe* stripe);

  /// Refreshes the deadline of a lease this holder owns (or re-homes a
  /// holderless one onto `hb`) — the stash-absorb hook. Same identity
  /// rule as close(): a lease bound to a *different* live holder is not
  /// stealable; false is a counted guard trip and the caller must not
  /// absorb the name.
  [[nodiscard]] bool rebind(sim::Name name, std::uint64_t now_ticks,
                            const Heartbeat* hb);

  /// True iff a lease on `name` exists and is held by `hb` — the stash
  /// revalidation probe a thread runs after noticing its own heartbeat
  /// went stale (its stashed names may have been reaped and reissued).
  /// A mismatch is counted as a guard trip.
  [[nodiscard]] bool validate(sim::Name name, const Heartbeat* hb);

  /// Expires every stale lease and reclaims its cell via the callback.
  /// Returns the number of cells reclaimed. reap() takes every shard
  /// lock in turn; try_reap() skips shards whose lock is busy (the
  /// sampled op-path poll — another thread is already reaping there).
  std::size_t reap(std::uint64_t now_ticks, telemetry::MetricsRegistry::ThreadStripe* stripe);
  std::size_t try_reap(std::uint64_t now_ticks,
                       telemetry::MetricsRegistry::ThreadStripe* stripe);

  /// Drops every lease without reclaiming (the service reset path: the
  /// arena epoch bump already freed every cell).
  void clear();

  // Exact under quiescence (each addend is read under its shard lock).
  [[nodiscard]] std::uint64_t leases_live() const;
  [[nodiscard]] std::uint64_t opened() const;
  [[nodiscard]] std::uint64_t expired() const;
  [[nodiscard]] std::uint64_t guard_trips() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr unsigned kWheelBits = 6;
  static constexpr std::uint32_t kWheelSlots = 1u << kWheelBits;
  static constexpr unsigned kWheelLevels = 4;

  /// All fields mutated under the owning shard's lock — plain words.
  struct Record {
    sim::Name name = 0;
    std::uint64_t deadline = 0;  // open/renew tick + ttl (grace excluded)
    const Heartbeat* hb = nullptr;
    std::uint32_t hnext = kNil;  // hash-chain link
    std::uint32_t wnext = kNil;  // wheel-slot chain link
    bool live = false;           // false = closed, awaiting lazy wheel sweep
  };

  struct alignas(kCacheLine) Shard {
    mutable SimMutex mu;
    std::vector<std::uint32_t> buckets;  // hash heads (power-of-two size)
    std::vector<Record> records;
    std::uint32_t free_head = kNil;  // freelist through Record::wnext
    std::uint32_t live_count = 0;
    // Timer wheel: slot chains per level + per-level cursor (the last
    // fully processed absolute bucket index at that level's granularity).
    std::uint32_t wheel[kWheelLevels][kWheelSlots];
    std::uint64_t cursor[kWheelLevels];
    // Monotonic tallies (exact: every transition happens under mu).
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t expired = 0;
    std::uint64_t guard_trips = 0;
  };

  Shard& shard_for(sim::Name name);
  const Shard& shard_for(sim::Name name) const;
  // All of the below require the shard's lock held.
  std::uint32_t find_locked(Shard& s, sim::Name name) const;
  void unlink_locked(Shard& s, std::uint32_t idx);
  std::uint32_t alloc_record_locked(Shard& s);
  void wheel_insert_locked(Shard& s, std::uint32_t idx, std::uint64_t due,
                           std::uint64_t now_ticks);
  [[nodiscard]] std::uint64_t effective_deadline_locked(
      const Record& rec) const;
  /// Advances the shard's wheel to now, expiring stale leases; appends
  /// the reclaimable names to `out` and their lateness to `late`.
  void advance_locked(Shard& s, std::uint64_t now_ticks,
                      std::vector<sim::Name>& out,
                      std::vector<std::uint64_t>& late);
  /// Post-lock half of a reap pass: telemetry + reclaim callbacks for
  /// the names advance_locked() expired. Runs outside every shard lock.
  std::size_t finish_reap(const std::vector<sim::Name>& names,
                          const std::vector<std::uint64_t>& late,
                          telemetry::MetricsRegistry::ThreadStripe* stripe);

  std::uint64_t ttl_;
  std::uint64_t grace_;
  std::uint64_t (*clock_)();
  bool release_guard_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  ReclaimFn reclaim_ = nullptr;
  void* reclaim_ctx_ = nullptr;

  // Heartbeat registry (cold: one registration per thread per service).
  SimMutex hb_mu_;  // sim:lock-ok(registration only; no sim points inside)
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;

  // Telemetry ids (sink-mapped when no registry is attached).
  telemetry::MetricsRegistry* registry_;
  telemetry::MetricId ctr_opened_{0};
  telemetry::MetricId ctr_closed_{0};
  telemetry::MetricId ctr_expired_{0};
  telemetry::MetricId ctr_renewals_{0};
  telemetry::MetricId ctr_guard_trips_{0};
  telemetry::MetricId hist_reap_late_{0};
};

}  // namespace loren::lease
