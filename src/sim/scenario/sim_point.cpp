// The thread-local dispatch behind LOREN_SIM_POINT.
//
// Instrumentation in the hot paths must cost nothing when no engine is
// driving the thread — including in -DLOREN_SIM builds, where the whole
// test suite runs instrumented but only the scenario tests actually
// spawn an engine. So the hook is two thread-local loads and a branch:
// engine bound → forward to its scheduler; otherwise return.
#include "platform/sim_point.h"

#include "sim/scenario/engine.h"

namespace loren::scenario::detail {

namespace {
thread_local ScenarioEngine* tls_engine = nullptr;
thread_local unsigned tls_worker = 0xFFFFFFFFu;
}  // namespace

bool engine_active() noexcept { return tls_engine != nullptr; }

void sim_point_hit(const char* tag) noexcept {
  if (ScenarioEngine* e = tls_engine) e->sim_point(tag);
}

void bind_worker(ScenarioEngine* engine, unsigned worker_id) noexcept {
  tls_engine = engine;
  tls_worker = worker_id;
}

ScenarioEngine* current_engine() noexcept { return tls_engine; }

unsigned current_worker() noexcept { return tls_worker; }

std::uint64_t engine_step() noexcept {
  const ScenarioEngine* e = tls_engine;
  return e != nullptr ? e->steps() : 0;
}

}  // namespace loren::scenario::detail
