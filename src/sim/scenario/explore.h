// Schedule exploration: sweep seeds × preemption bounds over a scenario.
//
// One deterministic run checks one interleaving; the explorer's job is
// coverage — run the same workload under many seeds and several
// preemption bounds (CHESS observed that schedules with *few* preemptions
// find most bugs, so small bounds are first-class, not just bound 1) and
// collect every invariant violation together with its exact replay
// coordinates. The explorer knows nothing about services or invariants:
// the caller supplies a RunFn that builds the stack, runs one engine and
// returns a failure report (empty string = green), so the same sweep
// harness serves elastic churn, bitmap storms, or any future workload.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/scenario/scenario.h"

namespace loren::scenario {

/// One invariant violation: everything needed to replay it exactly.
struct ExploreFailure {
  std::uint64_t seed = 0;
  std::uint32_t preempt_every = 0;
  std::string message;  // what failed
  std::string trace;    // the schedule that produced it
};

struct ExploreConfig {
  /// Scenario template: each run copies it and overrides seed +
  /// preempt_every with the swept values.
  Scenario base;
  /// Seeds swept: first_seed, first_seed+1, ..., first_seed+seeds-1.
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 16;
  /// Preemption bounds swept per seed (empty = just base.preempt_every).
  std::vector<std::uint32_t> preempt_intervals = {1, 2, 7};
  /// Stop early after this many failures (0 = collect all).
  std::uint64_t max_failures = 8;
};

/// Runs one scenario instance: build the stack, drive an engine, check
/// invariants. Returns "" when green; otherwise a failure message. The
/// second output parameter receives the engine's schedule trace (the
/// explorer stores it only for failing runs).
using RunFn =
    std::function<std::string(const Scenario& scenario, std::string* trace)>;

/// Sweeps the grid and returns every failure found (empty = all green).
/// Deterministic: the grid order is seeds-major, bounds-minor, and each
/// cell is an independent deterministic run.
std::vector<ExploreFailure> explore(const ExploreConfig& config,
                                    const RunFn& run);

/// Formats failures for a test assertion message: one block per failure
/// with seed, preemption bound, message, and the trace (trimmed to
/// `max_trace_lines` lines). Empty string when `failures` is empty.
std::string describe(const std::vector<ExploreFailure>& failures,
                     std::size_t max_trace_lines = 40);

}  // namespace loren::scenario
