// ScenarioEngine implementation: a token-passing cooperative scheduler.
//
// Exactly one worker holds the token (current_) and executes; everyone
// else blocks on cv_. A scheduling point hands the token through
// reschedule_locked, whose choice is a pure function of the scenario
// seed and the sequence of prior choices — which is why identical
// (bodies, Scenario) pairs produce byte-identical traces. Workers are
// real std::threads so the code under test runs its real atomics; the
// serialization only ever *narrows* the set of behaviours to the chosen
// interleaving.
#include "sim/scenario/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "platform/sim_point.h"
#include "renaming/thread_ctx.h"

namespace loren::scenario {

ScenarioEngine::ScenarioEngine(Scenario scenario)
    : scenario_(scenario), sched_rng_(scenario.seed) {}

ScenarioEngine::~ScenarioEngine() { finish(); }

void ScenarioEngine::Worker::yield(const char* tag) { engine_->sim_point(tag); }

bool ScenarioEngine::Worker::drop_release() {
  ScenarioEngine& e = *engine_;
  std::lock_guard<std::mutex> lk(e.mu_);
  ++e.release_calls_;
  if (e.scenario_.drop_release_every == 0) return false;
  if (e.scenario_.drop_release_limit != 0 &&
      e.drops_ >= e.scenario_.drop_release_limit) {
    return false;
  }
  if (e.release_calls_ % e.scenario_.drop_release_every != 0) return false;
  ++e.drops_;
  e.record_locked(id_, "release", "DROP");
  return true;
}

bool ScenarioEngine::run(std::vector<Body> bodies) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (started_ || bodies.empty()) return false;  // one run() per engine
    started_ = true;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(bodies.size());
  workers_ = std::vector<WorkerSlot>(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Worker RNG streams are decorrelated from the scheduler stream and
    // from each other; stream 0 is reserved for the scheduler itself.
    workers_[i].handle.reset(
        new Worker(this, i, mix_seed(scenario_.seed, i + 1)));
    workers_[i].rule_hits.assign(scenario_.stalls.size(), 0);
    workers_[i].rule_fired.assign(scenario_.stalls.size(), 0);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    Body body = std::move(bodies[i]);
    workers_[i].thread = std::thread(
        [this, i, body = std::move(body)] { worker_main(i, body); });
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    if (livelock_) return true;
    for (const WorkerSlot& w : workers_) {
      if (!w.done && !w.parked) return false;
    }
    return true;
  });
  return !livelock_;
}

void ScenarioEngine::worker_main(std::uint32_t id, const Body& body) {
  detail::bind_worker(this, id);
  // Pin the dense thread slot: per-thread probe schedules, home shards
  // and stash identity then depend only on the worker id, never on how
  // many threads this *process* created before this run.
  force_thread_slot(id);
  {
    std::unique_lock<std::mutex> lk(mu_);
    workers_[id].ready = true;
    if (++ready_count_ == workers_.size()) {
      // Last arrival grants the first token; nobody ran before this, so
      // the start order of the underlying threads cannot leak into the
      // schedule.
      current_ = pick_next(kNone, false);
      cv_.notify_all();
    }
    cv_.wait(lk, [&] { return current_ == id || free_run_; });
  }
  try {
    body(*workers_[id].handle);
  } catch (...) {
    std::lock_guard<std::mutex> g(mu_);
    record_locked(id, "body", "EXCEPTION");
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    workers_[id].done = true;
    if (!free_run_ && current_ == id) {
      reschedule_locked(id, lk);
    }
    cv_.notify_all();  // wake run()'s completion wait
  }
  detail::bind_worker(nullptr, kNone);
}

void ScenarioEngine::sim_point(const char* tag) {
  const std::uint32_t me = detail::current_worker();
  std::unique_lock<std::mutex> lk(mu_);
  if (free_run_ || !started_) return;
  if (current_ != me) {
    // Defensive: only the token holder executes, but if a wakeup raced
    // with finish() we might get here — wait for our turn or the end.
    cv_.wait(lk, [&] { return current_ == me || free_run_; });
    if (free_run_) return;
  }
  ++step_;
  if (step_ > scenario_.max_steps) {
    livelock_ = true;
    free_run_ = true;
    if (scenario_.record_trace) trace_.append("LIVELOCK\n");
    cv_.notify_all();
    return;
  }
  if (!apply_stalls_locked(me, tag)) record_locked(me, tag, nullptr);
  reschedule_locked(me, lk);
}

bool ScenarioEngine::runnable_locked(const WorkerSlot& w) const {
  return w.ready && !w.done && !w.parked && w.stall_until <= step_;
}

std::uint32_t ScenarioEngine::pick_next(std::uint32_t me, bool me_runnable) {
  std::uint32_t runnable[64];
  std::uint32_t cnt = 0;
  for (std::uint32_t i = 0; i < workers_.size() && cnt < 64; ++i) {
    if (runnable_locked(workers_[i])) runnable[cnt++] = i;
  }
  if (cnt == 0) return kNone;
  ++decisions_;
  // Preemption bound: between considered switch points the current
  // worker keeps running (if it still can).
  if (me != kNone && me_runnable && scenario_.preempt_every > 1 &&
      decisions_ % scenario_.preempt_every != 0) {
    return me;
  }
  return runnable[sched_rng_.below(cnt)];
}

void ScenarioEngine::fast_forward_locked() {
  // Nobody is runnable but some workers are in finite stalls: jump the
  // step clock to the earliest expiry instead of spinning.
  std::uint64_t target = std::numeric_limits<std::uint64_t>::max();
  for (const WorkerSlot& w : workers_) {
    if (w.ready && !w.done && !w.parked && w.stall_until > step_) {
      target = std::min(target, w.stall_until);
    }
  }
  if (target == std::numeric_limits<std::uint64_t>::max()) return;
  if (scenario_.record_trace) {
    char buf[64];
    const int len = std::snprintf(buf, sizeof buf, "ff %llu\n",
                                  static_cast<unsigned long long>(target));
    if (len > 0) trace_.append(buf, static_cast<std::size_t>(len));
  }
  step_ = target;
}

void ScenarioEngine::reschedule_locked(std::uint32_t me,
                                       std::unique_lock<std::mutex>& lk) {
  WorkerSlot& w = workers_[me];
  std::uint32_t next = pick_next(me, runnable_locked(w));
  if (next == kNone) {
    fast_forward_locked();
    next = pick_next(me, runnable_locked(w));
  }
  current_ = next;  // may be kNone: everyone done or parked — run() ends
  cv_.notify_all();
  if (next == me || w.done) return;
  cv_.wait(lk, [&] { return current_ == me || free_run_; });
}

bool ScenarioEngine::apply_stalls_locked(std::uint32_t me, const char* tag) {
  WorkerSlot& w = workers_[me];
  for (std::size_t r = 0; r < scenario_.stalls.size(); ++r) {
    const StallRule& rule = scenario_.stalls[r];
    if (rule.worker != kAnyWorker && rule.worker != me) continue;
    if (std::strcmp(rule.tag, tag) != 0) continue;
    const std::uint64_t hit = w.rule_hits[r]++;
    if (hit < rule.after_hits) continue;
    if (rule.times != 0 && w.rule_fired[r] >= rule.times) continue;
    ++w.rule_fired[r];
    ++stalls_fired_;
    if (rule.stall_steps == 0) {
      w.parked = true;
      record_locked(me, tag, "PARK");
    } else {
      w.stall_until = step_ + rule.stall_steps;
      char marker[48];
      std::snprintf(marker, sizeof marker, "STALL(%llu)",
                    static_cast<unsigned long long>(rule.stall_steps));
      record_locked(me, tag, marker);
    }
    return true;  // at most one rule fires per point
  }
  return false;
}

void ScenarioEngine::record_locked(std::uint32_t me, const char* tag,
                                   const char* marker) {
  if (!scenario_.record_trace) return;
  char buf[160];
  const int len =
      std::snprintf(buf, sizeof buf, "%llu w%u %s%s%s\n",
                    static_cast<unsigned long long>(step_), me, tag,
                    marker != nullptr ? " " : "", marker != nullptr ? marker : "");
  if (len > 0) trace_.append(buf, static_cast<std::size_t>(len));
}

std::uint64_t ScenarioEngine::parked() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const WorkerSlot& w : workers_) n += w.parked ? 1 : 0;
  return n;
}

void ScenarioEngine::finish() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    free_run_ = true;
    for (WorkerSlot& w : workers_) {
      w.parked = false;
      w.stall_until = 0;
    }
    cv_.notify_all();
  }
  for (WorkerSlot& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
}

}  // namespace loren::scenario
