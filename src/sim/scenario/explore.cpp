#include "sim/scenario/explore.h"

#include <cstdio>
#include <sstream>

namespace loren::scenario {

std::vector<ExploreFailure> explore(const ExploreConfig& config,
                                    const RunFn& run) {
  std::vector<std::uint32_t> bounds = config.preempt_intervals;
  if (bounds.empty()) bounds.push_back(config.base.preempt_every);

  std::vector<ExploreFailure> failures;
  for (std::uint64_t s = 0; s < config.seeds; ++s) {
    for (const std::uint32_t bound : bounds) {
      Scenario sc = config.base;
      sc.seed = config.first_seed + s;
      sc.preempt_every = bound;
      std::string trace;
      std::string message = run(sc, &trace);
      if (message.empty()) continue;
      ExploreFailure f;
      f.seed = sc.seed;
      f.preempt_every = bound;
      f.message = std::move(message);
      f.trace = std::move(trace);
      failures.push_back(std::move(f));
      if (config.max_failures != 0 && failures.size() >= config.max_failures) {
        return failures;
      }
    }
  }
  return failures;
}

std::string describe(const std::vector<ExploreFailure>& failures,
                     std::size_t max_trace_lines) {
  std::ostringstream out;
  for (const ExploreFailure& f : failures) {
    out << "--- violation at seed=" << f.seed
        << " preempt_every=" << f.preempt_every << " ---\n"
        << f.message << "\nschedule trace (replay with this seed):\n";
    std::size_t lines = 0;
    std::size_t pos = 0;
    while (pos < f.trace.size() && lines < max_trace_lines) {
      const std::size_t nl = f.trace.find('\n', pos);
      const std::size_t end = nl == std::string::npos ? f.trace.size() : nl;
      out << "  " << f.trace.substr(pos, end - pos) << "\n";
      pos = end + 1;
      ++lines;
    }
    if (pos < f.trace.size()) out << "  ... (trace truncated)\n";
  }
  return out.str();
}

}  // namespace loren::scenario
