// Scenario: the declarative config of the deterministic fault engine.
//
// A Scenario is everything that determines a run besides the workload
// bodies themselves: the scheduler seed, the preemption bound, the step
// ceiling, and the fault knobs (stalls/parks at chosen sim points,
// dropped releases). Two runs of the same bodies under the same Scenario
// produce byte-identical schedule traces — that is the engine's core
// contract (tested by ScenarioEngineTest.TraceIsByteIdenticalAcrossRuns),
// and it is what makes a trace printed by a failing CI run replayable
// locally by pasting the seed back in.
//
// See engine.h for the execution model and docs/testing.md for the
// knob-by-knob walkthrough.
#pragma once

#include <cstdint>
#include <vector>

namespace loren::scenario {

/// Matches every worker (StallRule::worker wildcard).
inline constexpr std::uint32_t kAnyWorker = 0xFFFFFFFFu;

/// A declarative stall/crash injection: when worker `worker` (or any
/// worker) reaches sim point `tag` for the (`after_hits`+1)-th matching
/// time, it is held there for `stall_steps` scheduler steps while the
/// other workers keep running — or parked indefinitely when
/// `stall_steps == 0`, which models a thread that crashed (or was
/// descheduled forever) at exactly that protocol step. Parked workers
/// resume only in ScenarioEngine::finish().
struct StallRule {
  const char* tag = "";                  // exact sim-point tag to match
  std::uint32_t worker = kAnyWorker;     // worker id, or kAnyWorker
  std::uint64_t after_hits = 0;          // matching hits to let pass first
  std::uint64_t stall_steps = 0;         // 0 = park forever (crash model)
  std::uint64_t times = 1;               // firings before spent; 0 = every hit
};

/// One deterministic run: seed + scheduling bounds + fault knobs.
struct Scenario {
  /// Seeds the scheduler's interleaving choices and, via mix_seed, each
  /// Worker's private workload RNG. The one number to vary when
  /// exploring and to pin when replaying.
  std::uint64_t seed = 1;

  /// Livelock guard: a run exceeding this many scheduler steps is cut
  /// off (run() returns false and reports livelock()). Generous default;
  /// the churn scenarios use a few thousand steps.
  std::uint64_t max_steps = 1u << 20;

  /// Preemption bound: the scheduler considers switching workers only at
  /// every `preempt_every`-th sim point (1 = every point — maximally
  /// adversarial; larger values yield longer uninterrupted runs, the
  /// "few preemptions find most bugs" regime of CHESS-style search).
  std::uint32_t preempt_every = 1;

  /// Stall/park injections, checked in order at every sim point.
  std::vector<StallRule> stalls;

  /// Dropped-release fault: every `drop_release_every`-th call a worker
  /// makes to Worker::drop_release() answers "drop it" (0 = never), up
  /// to `drop_release_limit` total drops (0 = unlimited). Workload
  /// bodies consult drop_release() before releasing and leak the name
  /// when told to — modeling a holder that dies without releasing.
  std::uint64_t drop_release_every = 0;
  std::uint64_t drop_release_limit = 0;

  /// Record the schedule trace (step / worker / tag lines plus fault
  /// markers). On by default: traces are the replay artifact. Turn off
  /// only for very long exploration sweeps where memory matters.
  bool record_trace = true;
};

}  // namespace loren::scenario
