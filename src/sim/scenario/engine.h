// ScenarioEngine: deterministic cooperative execution of the real stack.
//
// The engine runs workload bodies on real std::threads against the real
// production objects (TasArena, BitmapArena, ShardGroup, RenamingService,
// ElasticRenamingService — unmodified, same atomics, same memory orders),
// but serializes them: exactly one worker thread executes at any moment,
// and control switches only at *scheduling points* — the explicit
// Worker::yield() op boundaries every build has, plus every
// LOREN_SIM_POINT inside the stack when compiled with -DLOREN_SIM. At
// each point a seeded RNG picks the next runnable worker (subject to the
// Scenario's preemption bound and stall rules), so an interleaving is a
// pure function of (bodies, Scenario) and any failure replays exactly
// from its seed. This is the CHESS/adversary-scheduler discipline from
// the systematic concurrency-testing literature, applied to the renaming
// stack: the code under test is the shipped code, only the schedule is
// synthetic.
//
// Execution model
//   * run(bodies) spawns one thread per body. All threads start, register,
//     and block; when the last is ready the scheduler grants the first
//     token. A worker runs until its next scheduling point, where the
//     engine may hand the token elsewhere. run() returns when every
//     worker is done or parked, or cuts the run off at max_steps
//     (livelock guard, returns false).
//   * Stall rules (scenario.h) hold a worker at a sim point for N steps —
//     or park it forever (crash model). A run can *end* with workers
//     parked: run() returns, the test asserts mid-crash invariants
//     (e.g. "reclaim cannot complete while a crashed thread is pinned"),
//     then finish() lifts the serialization, lets parked workers run to
//     completion, and joins everything.
//   * Determinism requires the workload itself be schedule-deterministic:
//     bodies must draw randomness only from Worker::rng() and the engine
//     pins each worker's dense thread slot (thread_ctx.h) so per-thread
//     probe schedules and home shards are identical across runs. One
//     run() per engine; build a fresh engine (fresh threads, fresh TLS)
//     for each run.
//
// The trace is a newline-separated text log: one "step worker tag" line
// per scheduling point plus STALL/PARK/RESUME/DROP/FF markers. Identical
// (seed, Scenario, bodies) ⇒ byte-identical trace; tests print it with
// the seed on any violation so the schedule replays exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "platform/rng.h"
#include "sim/scenario/scenario.h"

namespace loren::scenario {

class ScenarioEngine {
 public:
  /// Handle passed to each workload body: its identity, its private
  /// deterministic RNG, and its access to the engine's fault knobs.
  /// Valid only inside the body and only on the body's own thread.
  class Worker {
   public:
    [[nodiscard]] std::uint32_t id() const { return id_; }

    /// The body's only legitimate randomness source: seeded from
    /// (scenario.seed, worker id), so op mixes replay with the schedule.
    [[nodiscard]] Xoshiro256& rng() { return rng_; }

    /// Explicit op-boundary scheduling point. Works in every build (no
    /// -DLOREN_SIM needed), so scenario tests interleave at op
    /// granularity even when the stack itself is uninstrumented.
    void yield(const char* tag = "op");

    /// Consults the scenario's dropped-release knob: true means "model a
    /// crashed holder — leak this name instead of releasing it".
    [[nodiscard]] bool drop_release();

   private:
    friend class ScenarioEngine;
    Worker(ScenarioEngine* engine, std::uint32_t id, std::uint64_t seed)
        : engine_(engine), id_(id), rng_(seed) {}
    ScenarioEngine* engine_;
    std::uint32_t id_;
    Xoshiro256 rng_;
  };

  using Body = std::function<void(Worker&)>;

  explicit ScenarioEngine(Scenario scenario);
  ~ScenarioEngine();
  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Runs the bodies to completion (or park) under the scenario's
  /// schedule. Returns true iff the run completed without hitting the
  /// max_steps livelock guard. After run() returns, parked workers (if
  /// any) are still suspended at their sim points — assert mid-crash
  /// invariants, then call finish().
  bool run(std::vector<Body> bodies);

  /// Ends the serialized phase: unparks every parked worker, lets all
  /// threads free-run concurrently to completion, and joins them.
  /// Idempotent; also called by the destructor.
  void finish();

  /// The schedule trace (empty if record_trace was off). Stable after
  /// run() returns; fault markers are embedded in-line.
  [[nodiscard]] const std::string& trace() const { return trace_; }

  /// Scheduler steps consumed (== scheduling points reached).
  [[nodiscard]] std::uint64_t steps() const { return step_; }

  /// Stall/park rule firings, releases dropped, workers still parked.
  [[nodiscard]] std::uint64_t stalls_fired() const { return stalls_fired_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t parked() const;

  /// True iff the last run() was cut off by the max_steps guard.
  [[nodiscard]] bool livelock() const { return livelock_; }

  /// Called from instrumentation (LOREN_SIM_POINT via sim_point_hit) and
  /// from Worker::yield on a worker thread: the scheduling point itself.
  void sim_point(const char* tag);

 private:
  struct WorkerSlot {
    std::thread thread;
    std::unique_ptr<Worker> handle;
    bool ready = false;        // thread started and waiting for the token
    bool done = false;         // body returned (or threw)
    bool parked = false;       // crash-parked at a sim point
    std::uint64_t stall_until = 0;  // > step_ means stalled until then
    std::vector<std::uint64_t> rule_hits;   // per-rule matching-hit counters
    std::vector<std::uint64_t> rule_fired;  // per-rule firing counters
  };

  void worker_main(std::uint32_t id, const Body& body);
  // All of the below require mu_ held.
  std::uint32_t pick_next(std::uint32_t me, bool me_runnable);
  bool runnable_locked(const WorkerSlot& w) const;
  void fast_forward_locked();
  void reschedule_locked(std::uint32_t me, std::unique_lock<std::mutex>& lk);
  bool apply_stalls_locked(std::uint32_t me, const char* tag);
  void record_locked(std::uint32_t me, const char* tag, const char* marker);

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  Scenario scenario_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WorkerSlot> workers_;
  Xoshiro256 sched_rng_;
  std::uint32_t current_ = kNone;   // token holder
  std::uint32_t ready_count_ = 0;
  std::uint64_t step_ = 0;
  std::uint64_t decisions_ = 0;     // preemption-bound counter
  std::uint64_t stalls_fired_ = 0;
  std::uint64_t release_calls_ = 0;
  std::uint64_t drops_ = 0;
  bool started_ = false;
  bool free_run_ = false;           // finish(): serialization lifted
  bool livelock_ = false;
  std::string trace_;
};

}  // namespace loren::scenario
