// Adversarial schedulers for the simulated shared-memory model.
//
// The paper proves its upper bounds against the *strong adaptive* adversary
// (sees all process state, including past coin flips, before every
// scheduling decision) and its lower bound against the *oblivious* adversary
// (fixes the schedule in advance). A Strategy here is handed a full view of
// the execution before each step, so adaptive adversaries are expressible;
// oblivious ones simply ignore the view.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "platform/rng.h"
#include "sim/sim_env.h"

namespace loren::sim {

enum class ProcState : std::uint8_t { kRunnable, kDone, kCrashed };

/// Read-only view of the execution offered to adversaries before each step.
class ExecView {
 public:
  ExecView(const SimEnv& env, const std::vector<ProcState>& states,
           const std::vector<ProcessId>& runnable)
      : env_(&env), states_(&states), runnable_(&runnable) {}

  [[nodiscard]] const SimEnv& env() const { return *env_; }
  [[nodiscard]] ProcState state(ProcessId pid) const { return (*states_)[pid]; }
  /// Compact list of processes that can be scheduled right now.
  [[nodiscard]] const std::vector<ProcessId>& runnable() const {
    return *runnable_;
  }
  /// The shared-memory op `pid` is about to perform (pid must be runnable).
  [[nodiscard]] const PendingOp& pending(ProcessId pid) const {
    return env_->pending(pid);
  }
  /// True iff the pending op of `pid` is a TAS that would *lose* right now.
  [[nodiscard]] bool would_lose_tas(ProcessId pid) const {
    const PendingOp& op = env_->pending(pid);
    return op.kind == OpKind::kTas && env_->cell(op.loc) != 0;
  }

 private:
  const SimEnv* env_;
  const std::vector<ProcState>* states_;
  const std::vector<ProcessId>* runnable_;
};

struct Decision {
  ProcessId pid = 0;
  bool crash = false;  // crash `pid` instead of executing its step
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// Called once per run before any step; lets stateful strategies reset.
  virtual void reset(ProcessId num_processes, std::uint64_t seed) = 0;
  /// Picks the next process to schedule (must be runnable).
  virtual Decision pick(const ExecView& view) = 0;
  /// Human-readable name for experiment tables.
  [[nodiscard]] virtual const char* name() const = 0;
};

// --- concrete adversaries ---------------------------------------------------

/// Oblivious: cycles through live processes in id order.
class RoundRobinStrategy final : public Strategy {
 public:
  void reset(ProcessId, std::uint64_t) override { cursor_ = 0; }
  Decision pick(const ExecView& view) override;
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 private:
  std::size_t cursor_ = 0;
};

/// Oblivious: uniformly random runnable process each step.
class RandomStrategy final : public Strategy {
 public:
  void reset(ProcessId, std::uint64_t seed) override { rng_.reseed(seed ^ 0xabcdef); }
  Decision pick(const ExecView& view) override;
  [[nodiscard]] const char* name() const override { return "random"; }

 private:
  Xoshiro256 rng_{0};
};

/// Oblivious: the Section 6 lower-bound schedule. Steps proceed in layers;
/// within a layer every live process takes exactly one step, in an order
/// given by a fresh uniformly random permutation.
class LayeredStrategy final : public Strategy {
 public:
  void reset(ProcessId, std::uint64_t seed) override {
    rng_.reseed(seed ^ 0x1a7e5ed);
    queue_.clear();
    layers_completed_ = 0;
  }
  Decision pick(const ExecView& view) override;
  [[nodiscard]] std::uint64_t layers_completed() const { return layers_completed_; }
  [[nodiscard]] const char* name() const override { return "layered"; }

 private:
  Xoshiro256 rng_{0};
  std::vector<ProcessId> queue_;  // remaining pids of the current layer
  std::uint64_t layers_completed_ = 0;
};

/// Strong adaptive adversary that maximizes wasted probes: schedules first
/// any process whose pending TAS is already doomed to lose; otherwise picks
/// a process probing the location with the most contenders (so every
/// contender but one wastes its step); falls back to round-robin. O(n) per
/// decision — use at moderate n.
class CollisionAdversary final : public Strategy {
 public:
  void reset(ProcessId, std::uint64_t) override {
    cursor_ = 0;
    counts_.clear();
  }
  Decision pick(const ExecView& view) override;
  [[nodiscard]] const char* name() const override { return "collision-adaptive"; }

 private:
  std::size_t cursor_ = 0;
  std::unordered_map<Location, std::size_t> counts_;
};

/// Decorator injecting crashes into any base strategy.
class CrashDecorator final : public Strategy {
 public:
  enum class Mode {
    kBeforeWin,  // crash a process the moment it is about to win a TAS
    kRandom,     // crash a random runnable process at regular intervals
  };

  CrashDecorator(std::unique_ptr<Strategy> base, ProcessId max_crashes,
                 Mode mode, std::uint64_t interval = 16)
      : base_(std::move(base)),
        max_crashes_(max_crashes),
        mode_(mode),
        interval_(interval) {}

  void reset(ProcessId n, std::uint64_t seed) override {
    base_->reset(n, seed);
    rng_.reseed(seed ^ 0xc4a5);
    crashes_ = 0;
    ticks_ = 0;
  }
  Decision pick(const ExecView& view) override;
  [[nodiscard]] ProcessId crashes_injected() const { return crashes_; }
  [[nodiscard]] const char* name() const override { return "crash-decorator"; }

 private:
  std::unique_ptr<Strategy> base_;
  ProcessId max_crashes_;
  Mode mode_;
  std::uint64_t interval_;
  Xoshiro256 rng_{0};
  ProcessId crashes_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace loren::sim
