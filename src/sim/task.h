// A minimal lazily-started coroutine task with symmetric transfer.
//
// Every renaming algorithm in this library is written once, as a coroutine
// over an abstract shared-memory environment (see sim/env.h). Under the
// simulator the coroutine suspends at every shared-memory operation so an
// adversarial scheduler can interleave processes at step granularity (the
// model of the paper). Under the direct environment the awaiters never
// block on the scheduler and the same coroutine runs to completion
// synchronously on a real thread.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace loren::sim {

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation{};
    std::optional<T> value{};
    std::exception_ptr exception{};

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        // Hand control back to whoever co_awaited us; if nobody did (a
        // top-level process task), return to the resumer (the scheduler).
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True once the coroutine ran to completion (result available).
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }
  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

  /// Kicks off (or continues) a *top-level* task. Runs until the coroutine
  /// either completes or suspends waiting for the scheduler.
  void resume() { handle_.resume(); }

  /// Result of a completed task. Rethrows an exception escaping the body.
  T result() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return std::move(*handle_.promise().value);
  }

  /// Awaiting a Task starts the child coroutine via symmetric transfer and
  /// resumes the parent when the child completes.
  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace loren::sim
