#include "sim/explorer.h"

#include <optional>
#include <stdexcept>

namespace loren::sim {

namespace {

/// Thrown out of random_below when the replay reaches an unscripted coin;
/// it unwinds the coroutine stack (ending up stored in the top task, which
/// is discarded with the whole path) and the driver reads `needed_arity`.
struct NeedCoin {};

/// Non-immediate Env whose coins come from the decision script.
class ExplorerEnv final : public Env {
 public:
  explicit ExplorerEnv(ProcessId n) : pending_(n) {}

  [[nodiscard]] bool immediate() const override { return false; }

  std::uint64_t execute_now(OpKind, Location, std::uint64_t) override {
    throw std::logic_error("ExplorerEnv does not execute immediately");
  }

  void post(PendingOp op) override {
    if (pending_[current_].has_value()) {
      throw std::logic_error("double post in explorer");
    }
    pending_[current_] = op;
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    if (bound <= 1) return 0;
    if (bound > 16) {
      throw std::invalid_argument(
          "explorer: coin arity > 16 is not exhaustively explorable");
    }
    if (cursor_ < script_->size()) {
      const std::uint64_t c = (*script_)[cursor_++];
      return c < bound ? c : bound - 1;
    }
    needed_arity_ = static_cast<std::uint32_t>(bound);
    throw NeedCoin{};
  }

  void ensure_locations(std::uint64_t count) override {
    if (cells_.size() < count) cells_.resize(count, 0);
  }

  [[nodiscard]] ProcessId current_pid() const override { return current_; }

  // --- driver interface ---------------------------------------------------
  void bind_script(const std::vector<std::uint32_t>* script) {
    script_ = script;
    cursor_ = 0;
    needed_arity_ = 0;
  }
  /// Consumes a scheduling decision; returns nullopt when unscripted.
  std::optional<std::uint32_t> take_schedule_decision(std::uint32_t arity) {
    if (cursor_ < script_->size()) {
      const std::uint32_t c = (*script_)[cursor_++];
      return c < arity ? c : arity - 1;
    }
    needed_arity_ = arity;
    return std::nullopt;
  }

  void set_current(ProcessId pid) { current_ = pid; }
  [[nodiscard]] bool has_pending(ProcessId pid) const {
    return pending_[pid].has_value();
  }
  PendingOp take_pending(ProcessId pid) {
    PendingOp op = *pending_[pid];
    pending_[pid].reset();
    return op;
  }
  std::uint64_t execute(const PendingOp& op) {
    if (op.loc >= cells_.size()) cells_.resize(op.loc + 1, 0);
    std::uint64_t outcome = 0;
    switch (op.kind) {
      case OpKind::kTas:
        outcome = cells_[op.loc] == 0 ? 1 : 0;
        cells_[op.loc] = 1;
        break;
      case OpKind::kRead:
        outcome = cells_[op.loc];
        break;
      case OpKind::kWrite:
        cells_[op.loc] = op.write_value;
        break;
    }
    if (op.result != nullptr) *op.result = outcome;
    return outcome;
  }

  [[nodiscard]] std::uint32_t needed_arity() const { return needed_arity_; }
  [[nodiscard]] std::uint64_t decisions_used() const { return cursor_; }
  [[nodiscard]] const std::vector<std::uint64_t>& cells() const {
    return cells_;
  }

 private:
  std::vector<std::optional<PendingOp>> pending_;
  std::vector<std::uint64_t> cells_;
  const std::vector<std::uint32_t>* script_ = nullptr;
  std::uint64_t cursor_ = 0;
  std::uint32_t needed_arity_ = 0;
  ProcessId current_ = 0;
};

struct ReplayResult {
  enum class Kind { kCompleted, kNeedDecision, kOutOfSteps } kind =
      Kind::kCompleted;
  std::uint32_t arity = 0;  // for kNeedDecision
  PathOutcome outcome;      // for kCompleted
};

ReplayResult replay(const std::function<Task<Name>(Env&, ProcessId)>& factory,
                    ProcessId n, const std::vector<std::uint32_t>& script,
                    std::uint64_t max_steps) {
  ExplorerEnv env(n);
  env.bind_script(&script);
  std::vector<Task<Name>> tasks;
  tasks.reserve(n);
  std::vector<bool> finished(n, false);
  std::vector<Name> names(n, -1);

  auto need = [&]() {
    ReplayResult r;
    r.kind = ReplayResult::Kind::kNeedDecision;
    r.arity = env.needed_arity();
    return r;
  };

  // Start phase: run each process to its first shared-memory op. Coins
  // consumed here are decision points like any other.
  for (ProcessId pid = 0; pid < n; ++pid) {
    env.set_current(pid);
    try {
      tasks.push_back(factory(env, pid));
      tasks.back().resume();
    } catch (const NeedCoin&) {
      return need();
    }
    if (tasks[pid].done()) {
      try {
        names[pid] = tasks[pid].result();
      } catch (const NeedCoin&) {
        return need();
      }
      finished[pid] = true;
    }
  }

  std::uint64_t steps = 0;
  for (;;) {
    if (++steps > max_steps) {
      ReplayResult r;
      r.kind = ReplayResult::Kind::kOutOfSteps;
      return r;
    }
    std::vector<ProcessId> runnable;
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (env.has_pending(pid)) runnable.push_back(pid);
    }
    if (runnable.empty()) break;

    ProcessId pick = runnable.front();
    if (runnable.size() > 1) {
      const auto decision =
          env.take_schedule_decision(static_cast<std::uint32_t>(runnable.size()));
      if (!decision.has_value()) return need();
      pick = runnable[*decision];
    }
    const PendingOp op = env.take_pending(pick);
    env.set_current(pick);
    env.execute(op);
    op.resume.resume();
    if (tasks[pick].done()) {
      try {
        names[pick] = tasks[pick].result();
        finished[pick] = true;
      } catch (const NeedCoin&) {
        return need();
      }
    }
  }

  ReplayResult r;
  r.kind = ReplayResult::Kind::kCompleted;
  r.outcome.names = std::move(names);
  r.outcome.finished = std::move(finished);
  r.outcome.memory = env.cells();
  r.outcome.decisions_used = env.decisions_used();
  return r;
}

}  // namespace

ExploreResult explore(
    const std::function<Task<Name>(Env&, ProcessId)>& factory,
    const ExploreConfig& config,
    const std::function<bool(const PathOutcome&)>& check) {
  ExploreResult result;
  std::vector<std::uint32_t> script;
  const std::uint64_t max_steps =
      config.max_steps_per_path != 0
          ? config.max_steps_per_path
          : 64 + 8ULL * config.max_decisions;

  const std::function<void()> dfs = [&] {
    if (result.paths_completed + result.paths_truncated >= config.max_paths) {
      result.hit_path_cap = true;
      return;
    }
    const ReplayResult r =
        replay(factory, config.num_processes, script, max_steps);
    if (r.kind == ReplayResult::Kind::kOutOfSteps) {
      ++result.paths_truncated;
      return;
    }
    if (r.kind == ReplayResult::Kind::kCompleted) {
      ++result.paths_completed;
      if (!check(r.outcome)) ++result.violations;
      return;
    }
    if (script.size() >= config.max_decisions) {
      ++result.paths_truncated;
      return;
    }
    for (std::uint32_t c = 0; c < r.arity; ++c) {
      script.push_back(c);
      dfs();
      script.pop_back();
      if (result.hit_path_cap) return;
    }
  };
  dfs();
  return result;
}

}  // namespace loren::sim
