// SimEnv: the simulated asynchronous shared memory of the paper's model.
//
// Holds the flat array of cells, per-process deterministic random streams,
// the parked operation of each suspended process, and step-count metrics.
// The scheduler (sim/runner.h) executes parked operations one at a time in
// an order chosen by an adversary Strategy, which makes executions exactly
// reproducible and lets us count shared-memory steps precisely.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/rng.h"
#include "sim/env.h"

namespace loren::sim {

class SimEnv final : public Env {
 public:
  /// `seed` drives all process-local coins; two runs with equal seeds and
  /// equal schedules are bit-for-bit identical.
  SimEnv(ProcessId num_processes, std::uint64_t seed);

  [[nodiscard]] bool immediate() const override { return false; }
  std::uint64_t execute_now(OpKind kind, Location loc,
                            std::uint64_t write_value) override;
  void post(PendingOp op) override;
  std::uint64_t random_below(std::uint64_t bound) override;
  void ensure_locations(std::uint64_t count) override;
  [[nodiscard]] ProcessId current_pid() const override { return current_; }

  // --- scheduler-facing interface -----------------------------------------

  /// Set before resuming a process so that posted ops and coin flips are
  /// attributed to it.
  void set_current(ProcessId pid) { current_ = pid; }

  [[nodiscard]] bool has_pending(ProcessId pid) const {
    return pending_[pid].has_value();
  }
  [[nodiscard]] const PendingOp& pending(ProcessId pid) const {
    return *pending_[pid];
  }
  /// Removes and returns the parked op of `pid` (scheduler is about to
  /// execute it).
  PendingOp take_pending(ProcessId pid);
  /// Drops the parked op without executing it (process crash). The
  /// suspended coroutine itself is destroyed by its owning Task.
  void drop_pending(ProcessId pid) { pending_[pid].reset(); }

  /// Executes `op` against shared memory and records metrics for `pid`.
  /// Returns the op outcome (for TAS: 1 iff won).
  std::uint64_t execute(ProcessId pid, const PendingOp& op);

  // --- inspection (adversaries, tests, metrics) ---------------------------

  [[nodiscard]] std::uint64_t cell(Location loc) const {
    return loc < cells_.size() ? cells_[loc] : 0;
  }
  [[nodiscard]] std::uint64_t num_locations() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t steps(ProcessId pid) const { return steps_[pid]; }
  [[nodiscard]] std::uint64_t total_steps() const { return total_steps_; }
  [[nodiscard]] std::uint64_t tas_count() const { return tas_count_; }
  [[nodiscard]] std::uint64_t rw_count() const { return rw_count_; }
  [[nodiscard]] ProcessId num_processes() const {
    return static_cast<ProcessId>(steps_.size());
  }

  /// Direct access for experiment setup (e.g. pre-marking locations taken).
  void poke(Location loc, std::uint64_t value);

 private:
  std::vector<std::uint64_t> cells_;
  std::vector<std::optional<PendingOp>> pending_;
  std::vector<Xoshiro256> rngs_;
  std::vector<std::uint64_t> steps_;
  std::uint64_t total_steps_ = 0;
  std::uint64_t tas_count_ = 0;
  std::uint64_t rw_count_ = 0;
  ProcessId current_ = 0;
};

}  // namespace loren::sim
