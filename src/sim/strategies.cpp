#include <algorithm>
#include <stdexcept>

#include "sim/scheduler.h"

namespace loren::sim {

Decision RoundRobinStrategy::pick(const ExecView& view) {
  const auto& runnable = view.runnable();
  if (runnable.empty()) throw std::logic_error("pick with no runnable process");
  if (cursor_ >= runnable.size()) cursor_ = 0;
  return Decision{runnable[cursor_++]};
}

Decision RandomStrategy::pick(const ExecView& view) {
  const auto& runnable = view.runnable();
  if (runnable.empty()) throw std::logic_error("pick with no runnable process");
  return Decision{runnable[rng_.below(runnable.size())]};
}

Decision LayeredStrategy::pick(const ExecView& view) {
  const auto& runnable = view.runnable();
  if (runnable.empty()) throw std::logic_error("pick with no runnable process");
  // Drop processes that finished or crashed since the layer was formed.
  while (!queue_.empty() && view.state(queue_.back()) != ProcState::kRunnable) {
    queue_.pop_back();
  }
  if (queue_.empty()) {
    queue_ = runnable;
    // Fisher-Yates; we consume from the back, so this is a uniform order.
    for (std::size_t i = queue_.size(); i > 1; --i) {
      std::swap(queue_[i - 1], queue_[rng_.below(i)]);
    }
    ++layers_completed_;
  }
  const ProcessId pid = queue_.back();
  queue_.pop_back();
  return Decision{pid};
}

Decision CollisionAdversary::pick(const ExecView& view) {
  const auto& runnable = view.runnable();
  if (runnable.empty()) throw std::logic_error("pick with no runnable process");

  // 1. A guaranteed loser wastes a step at zero cost to the adversary.
  for (ProcessId pid : runnable) {
    if (view.would_lose_tas(pid)) return Decision{pid};
  }
  // 2. Otherwise create collisions: find the pending-TAS location with the
  //    most contenders and schedule one of them (the rest become losers).
  counts_.clear();
  Location best_loc = 0;
  std::size_t best_count = 0;
  for (ProcessId pid : runnable) {
    const PendingOp& op = view.pending(pid);
    if (op.kind != OpKind::kTas) continue;
    const std::size_t c = ++counts_[op.loc];
    if (c > best_count) {
      best_count = c;
      best_loc = op.loc;
    }
  }
  if (best_count >= 2) {
    for (ProcessId pid : runnable) {
      const PendingOp& op = view.pending(pid);
      if (op.kind == OpKind::kTas && op.loc == best_loc) return Decision{pid};
    }
  }
  // 3. No collisions available: round-robin.
  if (cursor_ >= runnable.size()) cursor_ = 0;
  return Decision{runnable[cursor_++]};
}

Decision CrashDecorator::pick(const ExecView& view) {
  ++ticks_;
  if (crashes_ < max_crashes_) {
    if (mode_ == Mode::kBeforeWin) {
      for (ProcessId pid : view.runnable()) {
        const PendingOp& op = view.pending(pid);
        if (op.kind == OpKind::kTas && view.env().cell(op.loc) == 0) {
          ++crashes_;
          return Decision{pid, /*crash=*/true};
        }
      }
    } else if (ticks_ % interval_ == 0) {
      const auto& runnable = view.runnable();
      ++crashes_;
      return Decision{runnable[rng_.below(runnable.size())], /*crash=*/true};
    }
  }
  return base_->pick(view);
}

}  // namespace loren::sim
