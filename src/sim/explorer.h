// Exhaustive schedule/coin exploration: a bounded model checker for the
// shared-memory protocols in this library.
//
// Randomized w.h.p. testing can miss adversarial corner cases; safety
// properties ("at most one process wins a TAS object", "names are unique")
// must hold on *every* schedule and *every* coin outcome. The explorer
// enumerates exactly that: it replays a protocol from scratch along every
// branch of the decision tree whose nodes are
//   * scheduling points — which runnable process executes its pending
//     shared-memory operation next (arity = #runnable), and
//   * coin flips — each Env::random_below(b) outcome (arity = b),
// up to a configurable depth, invoking a user check on every terminal
// state. This is the systematic-testing idea of CHESS/dBug applied to the
// paper's model; it is what lets us claim the two-process racing-consensus
// TAS (tas/rw_tas.h) is safe on all interleavings, not just sampled ones.
//
// Exploration is stateless: each path is re-executed from the initial
// state (coroutines cannot be forked), so cost ~ paths x depth. Keep the
// process count at 2-3 and the depth <= ~20.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/env.h"
#include "sim/task.h"

namespace loren::sim {

struct ExploreConfig {
  ProcessId num_processes = 2;
  /// Maximum decision-tree depth; paths still undecided here are counted
  /// as `truncated` (liveness is probabilistic, safety must not be).
  std::uint32_t max_decisions = 24;
  /// Hard cap on explored paths (safety net against explosion).
  std::uint64_t max_paths = 50'000'000;
  /// Shared-memory steps allowed per path; 0 derives a default from
  /// max_decisions. Needed because a solo runnable process creates no
  /// decision points (arity-1 choices are forced), so a spinning protocol
  /// would otherwise replay forever without ever touching the depth bound.
  std::uint64_t max_steps_per_path = 0;
};

/// Terminal state of one fully explored execution path.
struct PathOutcome {
  std::vector<Name> names;          // per process; -1 if it never returned
  std::vector<bool> finished;       // per process
  std::vector<std::uint64_t> memory;  // final shared-memory contents
  std::uint64_t decisions_used = 0;
};

struct ExploreResult {
  std::uint64_t paths_completed = 0;  // all processes returned
  std::uint64_t paths_truncated = 0;  // hit max_decisions first
  std::uint64_t violations = 0;       // check() returned false
  bool hit_path_cap = false;
};

/// check(outcome) -> true if the safety property holds on this terminal
/// path; called for completed paths only (truncated paths have undecided
/// processes and are merely counted).
ExploreResult explore(
    const std::function<Task<Name>(Env&, ProcessId)>& factory,
    const ExploreConfig& config,
    const std::function<bool(const PathOutcome&)>& check);

}  // namespace loren::sim
