// The abstract shared-memory environment the renaming algorithms run on.
//
// An Env exposes three shared-memory operations (TAS, read, write over a
// flat array of 64-bit cells) plus process-local randomness. Algorithms
// perform shared-memory operations by co_awaiting the awaitables returned
// here; whether the operation executes immediately (real atomics, real
// threads) or suspends until an adversarial scheduler picks this process
// (simulation) is the environment's choice. This is what lets us write each
// algorithm exactly once and both (a) measure step complexity against the
// paper's adversaries and (b) run the same code on hardware.
#pragma once

#include <coroutine>
#include <cstdint>
#include <stdexcept>

#include "sim/task.h"

namespace loren::sim {

using Location = std::uint64_t;
using ProcessId = std::uint32_t;

/// A name returned by a renaming algorithm; -1 means "no name acquired".
using Name = std::int64_t;

enum class OpKind : std::uint8_t { kTas, kRead, kWrite };

/// A shared-memory operation parked with the environment, waiting for the
/// scheduler to execute it on behalf of the suspended process.
struct PendingOp {
  OpKind kind = OpKind::kTas;
  Location loc = 0;
  std::uint64_t write_value = 0;        // kWrite only
  std::uint64_t* result = nullptr;      // where to deposit the outcome
  std::coroutine_handle<> resume{};     // innermost suspended coroutine
};

class Env {
 public:
  virtual ~Env() = default;

  /// True if shared-memory operations execute inside await_ready (real
  /// concurrency); false if they suspend for the simulator's scheduler.
  [[nodiscard]] virtual bool immediate() const = 0;

  // Immediate execution path (used when immediate() is true).
  virtual std::uint64_t execute_now(OpKind kind, Location loc,
                                    std::uint64_t write_value) = 0;

  // Simulated path: park the op; the scheduler will execute it later.
  virtual void post(PendingOp op) = 0;

  /// Process-local uniform draw from {0..bound-1}; a local computation, not
  /// a shared-memory step (matches the paper's step accounting).
  virtual std::uint64_t random_below(std::uint64_t bound) = 0;

  /// Guarantees locations [0, count) exist. The adaptive algorithms use a
  /// conceptually unbounded sequence of ReBatching objects; environments
  /// either grow (simulator) or preallocate and verify (real atomics).
  virtual void ensure_locations(std::uint64_t count) = 0;

  /// Identity of the process currently executing (the paper's p_i). Used by
  /// substrates that need per-process slots, e.g. tournament-tree TAS.
  [[nodiscard]] virtual ProcessId current_pid() const = 0;
};

namespace detail {

struct OpAwaiter {
  Env* env;
  OpKind kind;
  Location loc;
  std::uint64_t write_value = 0;
  std::uint64_t outcome = 0;

  bool await_ready() {
    if (env->immediate()) {
      outcome = env->execute_now(kind, loc, write_value);
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    env->post(PendingOp{kind, loc, write_value, &outcome, h});
  }
  [[nodiscard]] std::uint64_t await_resume() const { return outcome; }
};

}  // namespace detail

/// co_await tas(env, loc) -> true iff this process *won* the TAS (changed
/// the location's value from 0 to 1; the paper's "wins" convention).
inline auto tas(Env& env, Location loc) {
  struct Awaiter : detail::OpAwaiter {
    bool await_resume() const { return outcome != 0; }
  };
  return Awaiter{{&env, OpKind::kTas, loc}};
}

/// co_await read(env, loc) -> current 64-bit value of the cell.
inline detail::OpAwaiter read(Env& env, Location loc) {
  return detail::OpAwaiter{&env, OpKind::kRead, loc};
}

/// co_await write(env, loc, v). Result value is meaningless.
inline detail::OpAwaiter write(Env& env, Location loc, std::uint64_t v) {
  return detail::OpAwaiter{&env, OpKind::kWrite, loc, v};
}

/// Runs a coroutine to completion over an immediate environment. With a
/// suspending (simulated) environment this is a bug; the helper checks.
template <class T>
T run_sync(Task<T> task) {
  task.resume();
  if (!task.done()) {
    throw std::logic_error(
        "run_sync: task suspended; did you pass a simulated Env?");
  }
  return task.result();
}

}  // namespace loren::sim
