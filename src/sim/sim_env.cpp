#include "sim/sim_env.h"

#include <stdexcept>

namespace loren::sim {

SimEnv::SimEnv(ProcessId num_processes, std::uint64_t seed)
    : pending_(num_processes), steps_(num_processes, 0) {
  rngs_.reserve(num_processes);
  for (ProcessId p = 0; p < num_processes; ++p) {
    rngs_.emplace_back(mix_seed(seed, p));
  }
}

std::uint64_t SimEnv::execute_now(OpKind, Location, std::uint64_t) {
  throw std::logic_error("SimEnv does not execute operations immediately");
}

void SimEnv::post(PendingOp op) {
  if (pending_[current_].has_value()) {
    throw std::logic_error("process posted a second op while one is parked");
  }
  pending_[current_] = op;
}

std::uint64_t SimEnv::random_below(std::uint64_t bound) {
  return rngs_[current_].below(bound);
}

void SimEnv::ensure_locations(std::uint64_t count) {
  if (cells_.size() < count) cells_.resize(count, 0);
}

PendingOp SimEnv::take_pending(ProcessId pid) {
  if (!pending_[pid].has_value()) {
    throw std::logic_error("take_pending: process has no parked op");
  }
  PendingOp op = *pending_[pid];
  pending_[pid].reset();
  return op;
}

std::uint64_t SimEnv::execute(ProcessId pid, const PendingOp& op) {
  if (op.loc >= cells_.size()) {
    // Algorithms are expected to ensure_locations() before probing; growing
    // on demand keeps truly unbounded adaptive runs simple.
    cells_.resize(op.loc + 1, 0);
  }
  ++steps_[pid];
  ++total_steps_;
  std::uint64_t outcome = 0;
  switch (op.kind) {
    case OpKind::kTas: {
      ++tas_count_;
      outcome = cells_[op.loc] == 0 ? 1 : 0;
      cells_[op.loc] = 1;
      break;
    }
    case OpKind::kRead:
      ++rw_count_;
      outcome = cells_[op.loc];
      break;
    case OpKind::kWrite:
      ++rw_count_;
      cells_[op.loc] = op.write_value;
      break;
  }
  if (op.result != nullptr) *op.result = outcome;
  return outcome;
}

void SimEnv::poke(Location loc, std::uint64_t value) {
  if (loc >= cells_.size()) cells_.resize(loc + 1, 0);
  cells_[loc] = value;
}

}  // namespace loren::sim
