// The execution runner: drives process coroutines under a Strategy.
//
// Together with SimEnv and Strategy this is the complete instantiation of
// the paper's model: n asynchronous processes, an adversary deciding which
// process takes the next shared-memory step, and crash failures. The runner
// additionally validates the renaming correctness conditions (uniqueness,
// termination of non-crashed processes) on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.h"
#include "sim/sim_env.h"
#include "sim/task.h"

namespace loren::sim {

/// Builds the top-level coroutine of one process. Called once per process
/// before the execution starts.
using AlgoFactory = std::function<Task<Name>(Env&, ProcessId)>;

struct RunConfig {
  ProcessId num_processes = 1;
  std::uint64_t seed = 1;
  Strategy* strategy = nullptr;
  /// Abort (throw) if the execution exceeds this many shared-memory steps;
  /// 0 derives a generous default from num_processes. Guards against
  /// non-terminating protocols in tests.
  std::uint64_t max_total_steps = 0;
};

struct ProcessOutcome {
  Name name = -1;
  std::uint64_t steps = 0;
  bool finished = false;
  bool crashed = false;
};

struct RunResult {
  std::vector<ProcessOutcome> processes;
  std::uint64_t total_steps = 0;
  std::uint64_t max_steps = 0;       // max over finished processes
  Name max_name = -1;                // max over finished processes
  bool names_unique = true;          // over all processes holding a name
  ProcessId finished = 0;
  ProcessId crashed = 0;

  [[nodiscard]] bool renaming_correct() const {
    return names_unique && finished + crashed == processes.size();
  }
};

/// Runs `factory`-built processes on `env` until every process finished or
/// crashed. The strategy is reset with (num_processes, seed) first.
RunResult run_execution(SimEnv& env, const AlgoFactory& factory,
                        const RunConfig& config);

/// Convenience: fresh SimEnv + run, for the common benchmark pattern.
RunResult simulate(const AlgoFactory& factory, const RunConfig& config);

}  // namespace loren::sim
