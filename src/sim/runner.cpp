#include "sim/runner.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace loren::sim {

namespace {

/// Compact runnable list with O(1) removal via a pid -> position index.
class RunnableSet {
 public:
  explicit RunnableSet(ProcessId n) : pos_(n, kAbsent) {}

  void add(ProcessId pid) {
    pos_[pid] = list_.size();
    list_.push_back(pid);
  }
  void remove(ProcessId pid) {
    const std::size_t at = pos_[pid];
    if (at == kAbsent) throw std::logic_error("process not runnable");
    list_[at] = list_.back();
    pos_[list_[at]] = at;
    list_.pop_back();
    pos_[pid] = kAbsent;
  }
  [[nodiscard]] const std::vector<ProcessId>& list() const { return list_; }
  [[nodiscard]] bool empty() const { return list_.empty(); }

 private:
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  std::vector<ProcessId> list_;
  std::vector<std::size_t> pos_;
};

}  // namespace

RunResult run_execution(SimEnv& env, const AlgoFactory& factory,
                        const RunConfig& config) {
  const ProcessId n = config.num_processes;
  if (config.strategy == nullptr) {
    throw std::invalid_argument("RunConfig.strategy must be set");
  }
  if (env.num_processes() != n) {
    throw std::invalid_argument("SimEnv process count mismatch");
  }
  config.strategy->reset(n, config.seed);

  const std::uint64_t step_guard =
      config.max_total_steps != 0
          ? config.max_total_steps
          : 50'000ULL * n + 10'000'000ULL;

  std::vector<Task<Name>> tasks;
  tasks.reserve(n);
  std::vector<ProcState> states(n, ProcState::kRunnable);
  RunnableSet runnable(n);

  RunResult result;
  result.processes.resize(n);

  // Start every process: runs local code up to its first shared-memory op.
  for (ProcessId pid = 0; pid < n; ++pid) {
    env.set_current(pid);
    tasks.push_back(factory(env, pid));
    tasks.back().resume();
    if (tasks.back().done()) {
      states[pid] = ProcState::kDone;
      result.processes[pid].name = tasks[pid].result();
      result.processes[pid].finished = true;
    } else {
      if (!env.has_pending(pid)) {
        throw std::logic_error("process suspended without posting an op");
      }
      runnable.add(pid);
    }
  }

  ExecView view(env, states, runnable.list());
  while (!runnable.empty()) {
    if (env.total_steps() > step_guard) {
      throw std::runtime_error("execution exceeded the step guard");
    }
    const Decision d = config.strategy->pick(view);
    if (states[d.pid] != ProcState::kRunnable) {
      throw std::logic_error("strategy picked a non-runnable process");
    }
    if (d.crash) {
      env.drop_pending(d.pid);
      states[d.pid] = ProcState::kCrashed;
      result.processes[d.pid].crashed = true;
      tasks[d.pid] = Task<Name>();  // destroys the whole coroutine chain
      runnable.remove(d.pid);
      continue;
    }
    const PendingOp op = env.take_pending(d.pid);
    env.set_current(d.pid);
    env.execute(d.pid, op);
    op.resume.resume();
    if (tasks[d.pid].done()) {
      states[d.pid] = ProcState::kDone;
      result.processes[d.pid].name = tasks[d.pid].result();
      result.processes[d.pid].finished = true;
      runnable.remove(d.pid);
    } else if (!env.has_pending(d.pid)) {
      throw std::logic_error("process suspended without posting an op");
    }
  }

  // Collect metrics and validate the renaming conditions.
  std::unordered_set<Name> seen;
  for (ProcessId pid = 0; pid < n; ++pid) {
    auto& p = result.processes[pid];
    p.steps = env.steps(pid);
    if (p.finished) {
      ++result.finished;
      result.max_steps = std::max(result.max_steps, p.steps);
      result.max_name = std::max(result.max_name, p.name);
      if (p.name >= 0 && !seen.insert(p.name).second) {
        result.names_unique = false;
      }
    } else if (p.crashed) {
      ++result.crashed;
    }
  }
  result.total_steps = env.total_steps();
  return result;
}

RunResult simulate(const AlgoFactory& factory, const RunConfig& config) {
  SimEnv env(config.num_processes, config.seed);
  return run_execution(env, factory, config);
}

}  // namespace loren::sim
