// Lower-bound demo: watch the Section 6 construction defeat an algorithm.
//
//   build/examples/lowerbound_demo [n] [layers] [seed]
//
// Builds the oblivious layered execution against uniform probing: types are
// the probe sequences each initial name would follow if it lost every TAS,
// X^0 ~ Pois(n/2M) instances per type enter, each layer applies one probe
// per surviving instance to a fresh TAS array in random order, and the
// marking procedure (the Poisson coupling of Lemmas 6.4/6.5) tracks a
// provably-independent subset of survivors. The printout shows the marked
// population shrinking only quadratically-per-layer (Lemma 6.6) — which is
// why Omega(lg lg n) layers are unavoidable — next to the analytic rate
// and the guaranteed bound.
#include <cstdio>
#include <cstdlib>

#include "lowerbound/layered_execution.h"
#include "lowerbound/recurrence.h"
#include "renaming/batch_layout.h"
#include "renaming/baselines.h"

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  const std::uint64_t layers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  if (n < 16) {
    std::fprintf(stderr, "usage: %s [n>=16] [layers] [seed]\n", argv[0]);
    return 1;
  }

  const std::uint64_t m = loren::BatchLayout(n, 0.5).total();
  const auto types = loren::lb::extract_types(
      [m](loren::sim::Env& env, loren::sim::ProcessId)
          -> loren::sim::Task<loren::sim::Name> {
        co_return co_await loren::uniform_probing(env, m);
      },
      /*num_types=*/n * 8, layers, seed);

  const auto res = loren::lb::run_layered_execution(
      types, {.n = n, .max_layers = layers, .seed = seed});

  std::printf("n = %llu, s = %llu TAS objects per layer, M = %llu types, "
              "initial instances = %llu%s\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(types.num_locations),
              static_cast<unsigned long long>(types.sequences.size()),
              static_cast<unsigned long long>(res.initial_instances),
              res.bad_initial ? " (bad draw: union-bound failure event)" : "");
  std::printf("%-6s %12s %8s %14s %14s %14s\n", "layer", "alive-before",
              "wins", "marked-after", "analytic rate", "Lemma 6.6 bound");
  for (const auto& layer : res.layers) {
    std::printf("%-6llu %12llu %8llu %14llu %14.3f %14.3f\n",
                static_cast<unsigned long long>(layer.layer),
                static_cast<unsigned long long>(layer.alive_before),
                static_cast<unsigned long long>(layer.wins),
                static_cast<unsigned long long>(layer.marked_after),
                layer.rate_after, layer.rate_bound);
  }

  const double s = std::max(static_cast<double>(types.num_locations),
                            2.0 * static_cast<double>(n));
  std::printf("\nguaranteed survival layers for this n (closed form): %llu; "
              "paper's success probability bound: %.4f\n",
              static_cast<unsigned long long>(
                  loren::lb::guaranteed_layers(n / 2.0, s)),
              loren::lb::theorem61_success_bound());
  std::printf("every marked process still present after a layer is a process "
              "the adversary\nkept unnamed — some survive Omega(lg lg n) "
              "layers with constant probability.\n");
  return 0;
}
