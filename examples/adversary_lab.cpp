// Adversary lab: watch the renaming algorithms run against the paper's
// adversarial schedulers, step by step, in the deterministic simulator.
//
//   build/examples/adversary_lab [n] [seed]
//
// For each (algorithm x adversary) pair the lab prints the step-complexity
// profile of one full execution: max and p99 steps per process, total
// steps, the largest name assigned, and — the paper's headline — how close
// the max stays to the log2 log2 n + O(1) budget even when the adversary
// is allowed to inspect every coin flip before scheduling (the strong
// adaptive "collision" adversary).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "platform/stats.h"
#include "renaming/adaptive.h"
#include "renaming/baselines.h"
#include "renaming/fast_adaptive.h"
#include "renaming/rebatching.h"
#include "sim/runner.h"
#include "sim/scheduler.h"

namespace {

using loren::sim::AlgoFactory;
using loren::sim::Env;
using loren::sim::Name;
using loren::sim::ProcessId;
using loren::sim::RunConfig;
using loren::sim::RunResult;
using loren::sim::Task;

struct NamedStrategy {
  const char* label;
  std::unique_ptr<loren::sim::Strategy> strategy;
};

std::vector<NamedStrategy> make_adversaries() {
  std::vector<NamedStrategy> out;
  out.push_back({"round-robin (oblivious)",
                 std::make_unique<loren::sim::RoundRobinStrategy>()});
  out.push_back({"uniform random (oblivious)",
                 std::make_unique<loren::sim::RandomStrategy>()});
  out.push_back({"layered permutations (Sec. 6)",
                 std::make_unique<loren::sim::LayeredStrategy>()});
  out.push_back({"collision adversary (adaptive)",
                 std::make_unique<loren::sim::CollisionAdversary>()});
  return out;
}

void report(const char* algo, const char* adversary, const RunResult& r) {
  std::vector<std::uint64_t> steps;
  steps.reserve(r.processes.size());
  for (const auto& p : r.processes) steps.push_back(p.steps);
  const loren::Summary s = loren::summarize_u64(steps);
  std::printf("  %-34s max=%4.0f p99=%4.0f mean=%5.2f total=%7llu "
              "max-name=%5lld %s\n",
              adversary, s.max, s.p99, s.mean,
              static_cast<unsigned long long>(r.total_steps),
              static_cast<long long>(r.max_name),
              r.renaming_correct() ? "[names unique]" : "[VIOLATION!]");
  (void)algo;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  if (n < 1) {
    std::fprintf(stderr, "usage: %s [n>=1] [seed]\n", argv[0]);
    return 1;
  }
  const auto procs = static_cast<ProcessId>(n);

  std::printf("n = %llu processes, seed = %llu\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(seed));
  std::printf("ReBatching main-phase budget: %d probes "
              "(t0 + (kappa-1) + beta, kappa = ceil(lg lg n))\n\n",
              loren::BatchLayout(n, 0.5).max_probes_main_phase());

  std::printf("ReBatching (eps = 0.5), full contention:\n");
  for (auto& adv : make_adversaries()) {
    loren::ReBatching algo(n, 0.5);
    AlgoFactory factory = [&algo](Env& env, ProcessId) -> Task<Name> {
      co_return co_await algo.get_name(env);
    };
    RunConfig cfg{.num_processes = procs, .seed = seed,
                  .strategy = adv.strategy.get()};
    report("rebatching", adv.label, loren::sim::simulate(factory, cfg));
  }

  std::printf("\nuniform probing baseline (m = 1.5n):\n");
  for (auto& adv : make_adversaries()) {
    AlgoFactory factory = [n](Env& env, ProcessId) -> Task<Name> {
      co_return co_await loren::uniform_probing(env, n + n / 2);
    };
    RunConfig cfg{.num_processes = procs, .seed = seed,
                  .strategy = adv.strategy.get()};
    report("uniform", adv.label, loren::sim::simulate(factory, cfg));
  }

  const auto k = static_cast<ProcessId>(std::max<std::uint64_t>(n / 16, 1));
  std::printf("\nAdaptiveReBatching, contention k = %u (n unknown to it):\n",
              k);
  for (auto& adv : make_adversaries()) {
    loren::AdaptiveReBatching algo;
    AlgoFactory factory = [&algo](Env& env, ProcessId) -> Task<Name> {
      co_return co_await algo.get_name(env);
    };
    RunConfig cfg{.num_processes = k, .seed = seed,
                  .strategy = adv.strategy.get()};
    report("adaptive", adv.label, loren::sim::simulate(factory, cfg));
  }

  std::printf("\nFastAdaptiveReBatching, contention k = %u:\n", k);
  for (auto& adv : make_adversaries()) {
    loren::FastAdaptiveReBatching algo;
    AlgoFactory factory = [&algo](Env& env, ProcessId) -> Task<Name> {
      co_return co_await algo.get_name(env);
    };
    RunConfig cfg{.num_processes = k, .seed = seed,
                  .strategy = adv.strategy.get()};
    report("fast-adaptive", adv.label, loren::sim::simulate(factory, cfg));
  }

  std::printf("\nNote how ReBatching's max steps barely move across "
              "adversaries while the\nuniform baseline's tail stretches — "
              "the separation Theorem 4.1 formalizes.\n");
  return 0;
}
