// Thread registry: the concurrent-memory-management use case from the
// paper's introduction (cf. the "repeat offender problem" [27]).
//
// Epoch-based memory reclamation, hazard pointers, and per-thread
// statistics all need each thread to own a *small dense slot index* so
// per-thread state can live in a flat array. Threads come and go, and the
// population is unknown in advance — exactly adaptive loose renaming:
// slot values stay O(k) for k concurrently registered threads.
//
//   build/examples/thread_registry [rounds] [threads]
//
// The demo runs several waves of worker threads. Each worker registers
// (acquires a slot), bumps its per-slot counters in the flat array, and
// deregisters. Slots are recycled across waves via a free list, so the
// slot namespace stays small even as thread ids keep growing.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "renaming/concurrent.h"

namespace {

/// A registry mapping live threads to dense slots. Slot acquisition uses
/// adaptive renaming (first registration) plus a lock-free recycle stack,
/// so the slot range adapts to the *high-water* concurrency, not to the
/// total number of threads ever created.
class ThreadRegistry {
 public:
  explicit ThreadRegistry(std::uint64_t max_threads)
      : renamer_(max_threads), reusable_(max_threads + 64) {
    for (auto& cell : reusable_) cell.store(-1, std::memory_order_relaxed);
  }

  std::int64_t register_thread() {
    // Fast path: pop a recycled slot.
    for (std::size_t i = 0; i < reusable_.size(); ++i) {
      std::int64_t slot = reusable_[i].load(std::memory_order_acquire);
      if (slot >= 0 && reusable_[i].compare_exchange_strong(
                           slot, -1, std::memory_order_acq_rel)) {
        return slot;
      }
    }
    // Slow path: mint a fresh slot with adaptive renaming.
    return renamer_.get_name();
  }

  void deregister_thread(std::int64_t slot) {
    for (std::size_t i = 0; i < reusable_.size(); ++i) {
      std::int64_t expected = -1;
      if (reusable_[i].compare_exchange_strong(expected, slot,
                                               std::memory_order_acq_rel)) {
        return;
      }
    }
    // Recycle pool full: the slot is simply retired (still unique).
  }

 private:
  loren::AdaptiveConcurrentRenamer renamer_;
  std::vector<std::atomic<std::int64_t>> reusable_;
};

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 6;
  if (rounds < 1 || threads < 1) {
    std::fprintf(stderr, "usage: %s [rounds>=1] [threads>=1]\n", argv[0]);
    return 1;
  }

  ThreadRegistry registry(1024);
  constexpr int kCounterSlots = 4096;
  std::vector<std::atomic<std::uint64_t>> per_slot_ops(kCounterSlots);

  std::int64_t high_water_slot = -1;
  std::mutex io;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, round, t] {
        const std::int64_t slot = registry.register_thread();
        // Dense slot => direct index into flat per-thread state.
        for (int op = 0; op < 1000; ++op) {
          per_slot_ops[static_cast<std::size_t>(slot) % kCounterSlots]
              .fetch_add(1, std::memory_order_relaxed);
        }
        {
          std::scoped_lock lock(io);
          std::printf("round %d worker %d -> slot %lld\n", round, t,
                      static_cast<long long>(slot));
          if (slot > high_water_slot) high_water_slot = slot;
        }
        registry.deregister_thread(slot);
      });
    }
    for (auto& w : workers) w.join();
  }

  std::printf(
      "high-water slot index: %lld (threads launched in total: %d)\n",
      static_cast<long long>(high_water_slot), rounds * threads);
  std::printf("adaptive renaming kept slots O(max concurrency), so the\n"
              "per-slot state array stays small regardless of thread churn\n");
  return 0;
}
