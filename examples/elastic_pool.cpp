// Elastic namespace under a traffic burst: start a connection-slot pool
// at 64 holders, ramp worker threads up and back down, and watch the
// service grow under sustained probe misses, then shrink and reclaim the
// retired generations once the burst drains. Workers claim their slots
// in *blocks* via acquire_many — one epoch pin and one counter update
// per block, and a block that overruns the live generation grows it and
// spans generations transparently.
//
//   $ ./build/examples/elastic_pool
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"

int main() {
  loren::ElasticOptions opts;
  opts.min_holders = 64;
  opts.max_holders = 1 << 16;
  opts.auto_grow = true;
  opts.auto_shrink = true;
  loren::ElasticRenamingService pool(64, opts);

  constexpr unsigned kMaxThreads = 4;
  constexpr int kHold = 96;  // per-thread demand: 4 * 96 >> 64 initial
  std::atomic<unsigned> active{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kMaxThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<loren::sim::Name> held;
      held.reserve(kHold);
      while (!stop.load(std::memory_order_relaxed)) {
        if (t >= active.load(std::memory_order_relaxed)) {
          for (const auto n : held) pool.release(n);
          held.clear();
          // Parked workers flush their name stash too: stranded stashed
          // names would hold a retired generation against reclamation.
          pool.flush_thread_cache();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        if (static_cast<int>(held.size()) < kHold) {
          // Claim the missing demand as one block (capped at 16 per call,
          // a typical connection-slot block size).
          loren::sim::Name block[16];
          const std::uint64_t want = std::min<std::uint64_t>(
              16, static_cast<std::uint64_t>(kHold - held.size()));
          const std::uint64_t got = pool.acquire_many(want, block);
          held.insert(held.end(), block, block + got);
          served.fetch_add(got, std::memory_order_relaxed);
        } else {
          pool.release(held.back());
          held.pop_back();
        }
      }
      for (const auto n : held) pool.release(n);
      // The worker-exit contract: flush before the thread dies, or the
      // dead thread's stash pins its names for the pool's lifetime.
      pool.flush_thread_cache();
    });
  }

  auto report = [&](const char* phase) {
    std::printf(
        "%-12s holders=%-6llu capacity=%-7llu live=%-5llu generations=%zu "
        "grows=%llu shrinks=%llu reclaimed=%llu\n",
        phase, static_cast<unsigned long long>(pool.holders()),
        static_cast<unsigned long long>(pool.capacity()),
        static_cast<unsigned long long>(pool.names_live()),
        pool.groups_in_flight(),
        static_cast<unsigned long long>(pool.grow_events()),
        static_cast<unsigned long long>(pool.shrink_events()),
        static_cast<unsigned long long>(pool.reclaimed_groups()));
  };

  report("start");
  for (unsigned a : {1u, 2u, kMaxThreads}) {  // ramp up: the burst
    active.store(a);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    report("burst");
  }
  for (unsigned a : {2u, 1u, 0u}) {  // ramp down: the drain
    active.store(a);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    // Between traffic phases is the natural moment to hand back memory:
    // shrink toward the floor (no-op while live demand still needs the
    // headroom — a held name is never invalidated) and reclaim drained
    // generations. The auto_shrink watermark would get here on its own;
    // doing it explicitly makes the trajectory deterministic.
    while (pool.holders() > 64 && pool.shrink()) {
    }
    pool.reclaim();
    report("drain");
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  while (pool.reclaim() > 0) {
  }
  report("quiesced");

  std::printf("served %llu acquisitions; final footprint %llu bytes\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(pool.footprint_bytes()));
  return pool.names_live() == 0 ? 0 : 1;
}
