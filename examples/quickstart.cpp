// Quickstart: T threads rename themselves into a namespace of size
// ~(1+eps)*T using the ReBatching algorithm over hardware atomics.
//
//   build/examples/quickstart [threads]
//
// Each thread performs log log T + O(1) shared-memory steps w.h.p. — the
// headline result of Alistarh, Aspnes, Giakkoupis & Woelfel (PODC 2013).
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "renaming/concurrent.h"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 8;
  if (threads < 1) {
    std::fprintf(stderr, "usage: %s [threads>=1]\n", argv[0]);
    return 1;
  }

  loren::ConcurrentRenamer renamer(static_cast<std::uint64_t>(threads),
                                   /*epsilon=*/0.5);
  std::printf("namespace capacity: %llu names for %d threads (eps = 0.5)\n",
              static_cast<unsigned long long>(renamer.capacity()), threads);

  std::mutex io;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const loren::sim::Name name = renamer.get_name();
      std::scoped_lock lock(io);
      std::printf("thread %2d acquired name %3lld\n", t,
                  static_cast<long long>(name));
    });
  }
  for (auto& w : workers) w.join();

  std::printf("assigned %llu unique names\n",
              static_cast<unsigned long long>(renamer.names_assigned()));
  return 0;
}
