// Connection pool: non-adaptive loose renaming as a lock-free resource
// allocator.
//
// A pool holds m = (1+eps)n connection slots for at most n concurrent
// clients. A client claims a slot with ReBatching's batched random probing
// (log log n + O(1) TAS operations w.h.p., even if a scheduling adversary
// stalls and resumes clients arbitrarily), uses it, and releases it. This
// is the classic "renaming ~ resource allocation" correspondence: a name
// is a lease on slot #name.
//
//   build/examples/connection_pool [clients] [requests-per-client]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "renaming/concurrent.h"

namespace {

class ConnectionPool {
 public:
  explicit ConnectionPool(std::uint64_t max_clients)
      : renamer_(max_clients, /*epsilon=*/0.5),
        in_use_(renamer_.capacity()) {
    for (auto& f : in_use_) f.store(0, std::memory_order_relaxed);
  }

  /// Claims a slot; -1 when the pool is exhausted (more than max_clients
  /// concurrent claimants).
  std::int64_t acquire() {
    const std::int64_t slot = renamer_.get_name_direct();
    if (slot >= 0) in_use_[static_cast<std::size_t>(slot)].store(1);
    return slot;
  }

  /// Returns a slot to the pool: clears the TAS cell the name corresponds
  /// to, so later ReBatching probes rediscover it (long-lived renaming).
  void release(std::int64_t slot) {
    in_use_[static_cast<std::size_t>(slot)].store(0);
    renamer_.release(slot);
  }

  [[nodiscard]] std::uint64_t capacity() const { return renamer_.capacity(); }
  [[nodiscard]] std::uint64_t busy() const {
    std::uint64_t count = 0;
    for (const auto& f : in_use_) count += f.load(std::memory_order_relaxed);
    return count;
  }

 private:
  loren::ConcurrentRenamer renamer_;
  std::vector<std::atomic<int>> in_use_;
};

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 16;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 50;
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr, "usage: %s [clients>=1] [requests>=1]\n", argv[0]);
    return 1;
  }

  ConnectionPool pool(static_cast<std::uint64_t>(clients));
  std::printf("pool: %llu slots for %d clients\n",
              static_cast<unsigned long long>(pool.capacity()), clients);

  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> peak_slot{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (int r = 0; r < requests; ++r) {
        const std::int64_t slot = pool.acquire();
        if (slot < 0) continue;  // exhausted: drop the request in this demo
        // ... issue the query over connection #slot ...
        std::uint64_t prev = peak_slot.load(std::memory_order_relaxed);
        while (static_cast<std::uint64_t>(slot) > prev &&
               !peak_slot.compare_exchange_weak(
                   prev, static_cast<std::uint64_t>(slot))) {
        }
        served.fetch_add(1, std::memory_order_relaxed);
        pool.release(slot);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::printf("served %llu requests; highest slot ever used: %llu; "
              "slots still busy: %llu\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(peak_slot.load()),
              static_cast<unsigned long long>(pool.busy()));
  return 0;
}
