// Schedule exploration over the elastic stack: many seeds × several
// preemption bounds, each cell one deterministic engine run asserting
// the standing invariants. This is the CTest target CI's sim-explore
// job runs with a larger seed budget (LOREN_EXPLORE_SEEDS); any
// violation prints its (seed, preemption bound) and full schedule trace
// via scenario::describe, so the failing interleaving replays exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "elastic/elastic_service.h"
#include "sim/scenario/engine.h"
#include "sim/scenario/explore.h"
#include "sim/scenario/scenario.h"

namespace loren {
namespace {

using scenario::ExploreConfig;
using scenario::ExploreFailure;
using scenario::kAnyWorker;
using scenario::Scenario;
using scenario::ScenarioEngine;
using scenario::StallRule;
using Worker = ScenarioEngine::Worker;
using sim::Name;

std::uint64_t explore_seeds() {
  // Default sized for the developer loop; CI's sim-explore job raises it
  // (bounded wall-clock: each seed is 3 bounds × one short run).
  if (const char* env = std::getenv("LOREN_EXPLORE_SEEDS")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 0);
    if (v > 0) return v;
  }
  return 12;
}

// One scenario instance: fresh service, three churners and a resize
// stormer under the swept (seed, preempt_every), stall faults at the
// swap-publication and word-claim points. Returns "" when every standing
// invariant held, else the violation report.
std::string run_churn_scenario(const Scenario& scenario, std::string* trace) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.auto_grow = false;  // the stormer drives every resize explicitly
  opts.name_cache = false;
  opts.arena_kind = ArenaKind::kBitmap;  // word-claim paths included
  ElasticRenamingService svc(64, opts);

  std::ostringstream violations;
  std::mutex held_mu;
  std::set<Name> held;

  auto churner = [&](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < 25; ++i) {
      w.yield("churn.op");
      if (mine.size() < 6 && (mine.empty() || w.rng().below(2) == 0)) {
        const Name n = svc.acquire();
        if (n < 0) continue;  // transient exhaustion mid-resize
        {
          std::lock_guard<std::mutex> lock(held_mu);
          if (!held.insert(n).second) {
            violations << "duplicate live name " << n << " on w" << w.id()
                       << "\n";
          }
        }
        mine.push_back(n);
      } else {
        const Name n = mine.back();
        mine.pop_back();
        {
          std::lock_guard<std::mutex> lock(held_mu);
          held.erase(n);
        }
        if (!svc.release(n)) {
          violations << "release of held name " << n << " failed\n";
        }
      }
    }
    for (const Name n : mine) {
      {
        std::lock_guard<std::mutex> lock(held_mu);
        held.erase(n);
      }
      if (!svc.release(n)) violations << "final release of " << n << " failed\n";
    }
  };

  ScenarioEngine eng(scenario);
  const bool done = eng.run({churner, churner, churner, [&svc](Worker& w) {
                               for (int i = 0; i < 4; ++i) {
                                 w.yield("storm.resize");
                                 svc.resize(i % 2 == 0 ? 128 : 64);
                                 w.yield("storm.reclaim");
                                 svc.reclaim();
                               }
                             }});
  eng.finish();
  *trace = eng.trace();

  if (!done) violations << "livelock guard tripped\n";
  // Standing invariants after quiesce: nothing leaked, capacity back at
  // the shrink floor, every retired generation reclaimable.
  if (const std::uint64_t live = svc.names_live(); live != 0) {
    violations << live << " names leaked past quiesce\n";
  }
  if (svc.holders() != 64) {
    violations << "capacity bound violated after shrink: holders = "
               << svc.holders() << "\n";
  }
  svc.reclaim();
  svc.reclaim();
  if (const std::size_t g = svc.groups_in_flight(); g != 1) {
    violations << g << " groups in flight after quiesce (want 1)\n";
  }
  return violations.str();
}

TEST(ScenarioExplore, ChurnAndResizeStormAcrossSeedsAndBounds) {
  ExploreConfig config;
  config.base.max_steps = std::uint64_t{1} << 20;
  config.base.stalls.push_back(
      StallRule{"elastic.swap.publish", kAnyWorker, 0, 60, 1});
  config.base.stalls.push_back(
      StallRule{"bitmap.word.claim", kAnyWorker, 3, 5, 2});
  config.first_seed = 1;
  config.seeds = explore_seeds();
  config.preempt_intervals = {1, 2, 7};

  const std::vector<ExploreFailure> failures =
      scenario::explore(config, run_churn_scenario);
  EXPECT_TRUE(failures.empty()) << scenario::describe(failures);
}

}  // namespace
}  // namespace loren
