// Tests for the thread-facing API: ConcurrentRenamer and
// AdaptiveConcurrentRenamer over real std::atomic cells and std::thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "renaming/concurrent.h"

namespace loren {
namespace {

using sim::Name;

TEST(ConcurrentRenamer, SingleThreadAllUnique) {
  constexpr std::uint64_t kN = 512;
  ConcurrentRenamer renamer(kN, 0.5);
  std::set<Name> names;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const Name name = renamer.get_name();
    ASSERT_GE(name, 0);
    ASSERT_LT(name, static_cast<Name>(renamer.capacity()));
    ASSERT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
  EXPECT_EQ(renamer.names_assigned(), kN);
}

TEST(ConcurrentRenamer, DirectPathAllUnique) {
  constexpr std::uint64_t kN = 512;
  ConcurrentRenamer renamer(kN, 0.5);
  std::set<Name> names;
  for (std::uint64_t i = 0; i < kN; ++i) {
    const Name name = renamer.get_name_direct();
    ASSERT_GE(name, 0);
    ASSERT_TRUE(names.insert(name).second);
  }
}

TEST(ConcurrentRenamer, MixedPathsShareTheNamespace) {
  ConcurrentRenamer renamer(64, 0.5);
  std::set<Name> names;
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(names.insert(renamer.get_name()).second);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(names.insert(renamer.get_name_direct()).second);
  }
  EXPECT_EQ(names.size(), 64u);
}

TEST(ConcurrentRenamer, MultiThreadedUniqueness) {
  constexpr std::uint64_t kN = 1024;
  constexpr int kThreads = 8;
  ConcurrentRenamer renamer(kN, 0.5);
  std::vector<std::vector<Name>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kN / kThreads; ++i) {
        got[t].push_back(renamer.get_name());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<Name> all;
  for (const auto& v : got) {
    for (Name n : v) {
      ASSERT_GE(n, 0);
      ASSERT_TRUE(all.insert(n).second) << "duplicate name " << n;
    }
  }
  EXPECT_EQ(all.size(), kN);
}

TEST(ConcurrentRenamer, OversubscriptionFallsBackToBackup) {
  // Request every name in the namespace: the tail must come from the
  // backup sweep, and requests beyond capacity must return -1.
  ConcurrentRenamer renamer(32, 0.25);
  const std::uint64_t cap = renamer.capacity();
  std::set<Name> names;
  for (std::uint64_t i = 0; i < cap; ++i) {
    const Name n = renamer.get_name();
    ASSERT_GE(n, 0);
    ASSERT_TRUE(names.insert(n).second);
  }
  EXPECT_EQ(renamer.get_name(), -1);
  EXPECT_EQ(renamer.get_name_direct(), -1);
}

TEST(ConcurrentRenamer, CapacityMatchesLayout) {
  ConcurrentRenamer renamer(100, 0.5);
  EXPECT_EQ(renamer.capacity(), BatchLayout(100, 0.5).total());
}

TEST(AdaptiveConcurrentRenamer, LowContentionSmallNames) {
  AdaptiveConcurrentRenamer renamer(1024);
  for (int i = 0; i < 4; ++i) {
    const Name n = renamer.get_name();
    ASSERT_GE(n, 0);
    EXPECT_LT(n, 64);  // k=4: names stay near the bottom of the stack
  }
}

TEST(AdaptiveConcurrentRenamer, NamesScaleWithContention) {
  AdaptiveConcurrentRenamer renamer(4096);
  std::set<Name> names;
  constexpr int k = 256;
  Name max_name = -1;
  for (int i = 0; i < k; ++i) {
    const Name n = renamer.get_name();
    ASSERT_GE(n, 0);
    ASSERT_TRUE(names.insert(n).second);
    max_name = std::max(max_name, n);
  }
  EXPECT_LT(max_name, 10 * k + 64);  // O(k) with the eps=1 constants
}

TEST(AdaptiveConcurrentRenamer, MultiThreaded) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  AdaptiveConcurrentRenamer renamer(4096);
  std::vector<std::vector<Name>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(renamer.get_name());
    });
  }
  for (auto& th : threads) th.join();
  std::set<Name> all;
  for (const auto& v : got) {
    for (Name n : v) {
      ASSERT_GE(n, 0);
      ASSERT_TRUE(all.insert(n).second);
    }
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(AdaptiveConcurrentRenamer, RejectsZeroCapacity) {
  EXPECT_THROW(AdaptiveConcurrentRenamer(0), std::invalid_argument);
}

}  // namespace
}  // namespace loren
