// Seed logging + env override for the randomized stress tests.
//
// Every stress test derives its RNG streams from one base seed obtained
// here: by default the test's hard-coded value, overridable with
// LOREN_TEST_SEED (any strtoull form — decimal or 0x-hex). The chosen
// seed is printed on stdout at test start, so a CI failure is replayed
// locally with
//
//   LOREN_TEST_SEED=0x<printed value> ctest -R <test> ...
//
// and the failing stream layout reproduces exactly. (The deterministic
// scenario tests under -DLOREN_SIM don't use this: their seeds are part
// of the Scenario and replay through the engine — see docs/testing.md.)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace loren::test {

/// Resolves the base seed for `test_name`: LOREN_TEST_SEED if set and
/// parseable, else `fallback`. Prints the replay line either way.
inline std::uint64_t stress_seed(const char* test_name,
                                 std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  if (const char* env = std::getenv("LOREN_TEST_SEED")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 0);
    if (end != env) seed = v;
  }
  std::printf("[ SEED     ] %s: 0x%llx (replay: LOREN_TEST_SEED=0x%llx)\n",
              test_name, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  return seed;
}

}  // namespace loren::test
