// CL01 negative: the sanctioned alignment shapes — the project constant
// (spelled bare and qualified) and a justified literal (an ABI contract,
// not false-sharing padding).
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cacheline.h"

namespace lint_fixture {

struct alignas(loren::kCacheLine) Cl01PaddedOk {
  // mo: relaxed -- single-writer statistic.
  std::atomic<std::uint64_t> cl01_ok_ops{0};
};

class Cl01Negative {
 private:
  alignas(kCacheLine) std::uint64_t cl01_ok_word_ = 0;
  // cl:raw-ok(16-byte ABI requirement of the cmpxchg16b pair, not
  // cache-line padding)
  alignas(16) std::uint64_t cl01_dword_pair_[2] = {0, 0};
};

}  // namespace lint_fixture
