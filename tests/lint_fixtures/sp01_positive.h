// SP01 positive: atomic RMWs in (nominally) sim-visible code with no
// LOREN_SIM_POINT anywhere in their enclosing statement list and no
// sim:exempt justification — a fetch_add and a CAS loop.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

class Sp01Positive {
 public:
  std::uint64_t take_ticket() {
    return sp01_ticket_.fetch_add(1, std::memory_order_acq_rel);  // lint-expect: SP01
  }

  bool claim() {
    std::uint64_t cur = sp01_owner_.load(std::memory_order_acquire);
    while (cur == 0) {
      if (sp01_owner_.compare_exchange_weak(cur, 1, std::memory_order_acq_rel,  // lint-expect: SP01
                                            std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

 private:
  // mo: acq_rel -- ticket dispenser; the RMW is the whole protocol.
  std::atomic<std::uint64_t> sp01_ticket_{0};
  // mo: acquire, acq_rel -- ownership word claimed by CAS.
  std::atomic<std::uint64_t> sp01_owner_{0};
};

}  // namespace lint_fixture
