// MO02 positive: relaxed operations that break their declared contract —
// one against a declaration whose contract has no 'relaxed', one on a
// receiver with no declaration anywhere in the corpus.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

class Mo02Positive {
 public:
  bool peek() const {
    return mo02_flag_.load(std::memory_order_relaxed);  // lint-expect: MO02
  }

  std::uint64_t poke(std::atomic<std::uint64_t>& mo02_external) {
    return mo02_external.load(std::memory_order_relaxed);  // lint-expect: MO02
  }

 private:
  // mo: acquire, release -- publication flag; relaxed reads would miss
  // the payload the release store publishes.
  std::atomic<bool> mo02_flag_{false};
};

}  // namespace lint_fixture
