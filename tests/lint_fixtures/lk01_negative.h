// LK01 negative: the sanctioned locking shapes — a SimMutex with guards
// over it, and a std::mutex whose declaration carries the sim:lock-ok
// justification (guards over it inherit the declaration's pass).
#pragma once

#include <mutex>
#include <vector>

#include "platform/sim_point.h"

namespace lint_fixture {

class Lk01Negative {
 public:
  void yield_safe(int v) {
    std::lock_guard<loren::SimMutex> lock(lk01_sim_mu_);
    hot_.push_back(v);
  }

  void cold_path(int v) {
    std::lock_guard<std::mutex> lock(lk01_registry_mu_);
    cold_.push_back(v);
  }

 private:
  mutable loren::SimMutex lk01_sim_mu_;
  // sim:lock-ok(cold registry; push_back never hits a sim point)
  mutable std::mutex lk01_registry_mu_;
  std::vector<int> hot_;
  std::vector<int> cold_;
};

}  // namespace lint_fixture
