// MO02 negative: relaxed operations that are fine — one whose
// declaration's contract includes 'relaxed', one carrying a site
// mo:relaxed-ok justification on an otherwise non-relaxed contract.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

class Mo02Negative {
 public:
  void count() {
    mo02_stat_.store(mo02_stat_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  bool sniff() const {
    // mo:relaxed-ok(advisory pre-check; the caller re-reads with acquire
    // before acting on the value)
    return mo02_gate_.load(std::memory_order_relaxed);
  }

 private:
  // mo: relaxed -- single-writer statistic; readers tolerate staleness.
  std::atomic<std::uint64_t> mo02_stat_{0};
  // mo: acquire, release -- gate flag published with its payload.
  std::atomic<bool> mo02_gate_{false};
};

}  // namespace lint_fixture
