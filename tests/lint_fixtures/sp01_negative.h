// SP01 negative: covered RMWs — one preceded by a LOREN_SIM_POINT in the
// same statement list, one inside a loop whose body carries the sim
// point, and one justified with sim:exempt.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/sim_point.h"

namespace lint_fixture {

class Sp01Negative {
 public:
  bool win() {
    LOREN_SIM_POINT("fixture.win");
    return sp01_cell_.exchange(1, std::memory_order_acq_rel) == 0;
  }

  std::uint64_t drain() {
    std::uint64_t total = 0;
    for (int i = 0; i < 4; ++i) {
      LOREN_SIM_POINT("fixture.drain");
      total += sp01_pool_.fetch_sub(1, std::memory_order_acq_rel);
    }
    return total;
  }

  void rewind() {
    // sim:exempt(reset-path bookkeeping; callers quiesce first)
    sp01_pool_.fetch_add(4, std::memory_order_acq_rel);
  }

 private:
  // mo: acq_rel -- one-shot cell decided by the exchange.
  std::atomic<std::uint64_t> sp01_cell_{0};
  // mo: acq_rel -- work pool counter stepped by RMWs.
  std::atomic<std::uint64_t> sp01_pool_{4};
};

}  // namespace lint_fixture
