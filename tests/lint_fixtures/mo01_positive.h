// MO01 positive: atomic declarations that fail the memory-order-contract
// rule — one with no annotation at all, one whose annotation is malformed
// (unknown order name), one whose annotation lacks the <why> clause.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

class Mo01Positive {
 private:
  std::atomic<std::uint64_t> mo01_bare_{0};  // lint-expect: MO01

  // mo: acquire_maybe -- not a real memory order, so the contract is
  // malformed and the rule must still fire.
  std::atomic<std::uint64_t> mo01_bad_order_{0};  // lint-expect: MO01

  // mo: acquire, release
  std::atomic<std::uint64_t> mo01_no_why_{0};  // lint-expect: MO01
};

}  // namespace lint_fixture
