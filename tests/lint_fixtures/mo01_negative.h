// MO01 negative: well-formed contracts in every accepted shape — single
// order, multi-order with comma, em-dash and double-dash separators, a
// wrapped <why> clause, and a same-line annotation.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

class Mo01Negative {
 private:
  // mo: seq_cst — total order demo; the em-dash separator form.
  std::atomic<std::uint64_t> mo01_ok_seqcst_{0};

  // mo: acquire, release -- publication pair: release on write,
  // acquire on read, with the why clause wrapping onto a second line.
  std::atomic<bool> mo01_ok_pair_{false};

  std::atomic<int> mo01_ok_inline_{0};  // mo: relaxed -- statistic only

  // mo: relaxed/acq_rel -- slash-separated order list form.
  std::atomic<std::uint32_t> mo01_ok_slash_{0};
};

}  // namespace lint_fixture
