// LK01 positive: raw standard mutexes in (nominally) sim-visible code —
// an unannotated std::mutex declaration, and a guard constructed over an
// explicit std::mutex that no annotated declaration backs.
#pragma once

#include <mutex>
#include <vector>

namespace lint_fixture {

class Lk01Positive {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lock(lk01_raw_mu_);
    items_.push_back(v);
  }

 private:
  mutable std::mutex lk01_raw_mu_;  // lint-expect: LK01
  std::vector<int> items_;
};

inline int lk01_loose_guard(std::mutex& lk01_orphan_mu) {  // lint-expect: LK01
  std::lock_guard<std::mutex> lock(lk01_orphan_mu);  // lint-expect: LK01
  return 1;
}

}  // namespace lint_fixture
