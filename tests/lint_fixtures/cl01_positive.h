// CL01 positive: raw integer-literal alignas — the classic hard-coded 64
// on a struct, and a hard-coded 128 on a member.
#pragma once

#include <atomic>
#include <cstdint>

namespace lint_fixture {

struct alignas(64) Cl01PaddedCounter {  // lint-expect: CL01
  // mo: relaxed -- single-writer statistic.
  std::atomic<std::uint64_t> cl01_ops{0};
};

class Cl01Positive {
 private:
  alignas(128) std::uint64_t cl01_hot_word_ = 0;  // lint-expect: CL01
};

}  // namespace lint_fixture
