// Tests for the baseline renaming algorithms (uniform probing, linear
// scan, doubling-uniform) used as comparison points in experiments E4/E5.
#include <gtest/gtest.h>

#include "renaming/baselines.h"
#include "sim/runner.h"
#include "sim/scheduler.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

TEST(UniformProbing, CorrectUnderFullContention) {
  constexpr std::uint64_t kN = 256;
  const std::uint64_t m = kN * 3 / 2;
  AlgoFactory algo = [m](Env& env, ProcessId) -> Task<Name> {
    co_return co_await uniform_probing(env, m);
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = kN, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(algo, cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_LT(r.max_name, static_cast<Name>(m));
  }
}

TEST(UniformProbing, SoloWinsInOneStep) {
  AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await uniform_probing(env, 64);
  };
  sim::RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 1, .seed = 1, .strategy = &strat};
  const RunResult r = sim::simulate(algo, cfg);
  EXPECT_EQ(r.max_steps, 1u);
}

TEST(UniformProbing, TailIsHeavierThanReBatchingBudget) {
  // The Section 4 strawman: at m = 2n some process needs many probes. We
  // check the *max* probes exceeds a small constant at moderate n (the
  // qualitative Omega(log n) tail; E4 quantifies it).
  constexpr std::uint64_t kN = 4096;
  AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await uniform_probing(env, 2 * kN);
  };
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kN, .seed = 11, .strategy = &strat};
  const RunResult r = sim::simulate(algo, cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_GE(r.max_steps, 5u);
}

TEST(LinearScan, AlwaysTerminatesWithinM) {
  constexpr std::uint64_t kN = 128;
  AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await linear_scan(env, kN);  // m == n: zero slack
  };
  sim::CollisionAdversary strat;
  RunConfig cfg{.num_processes = kN, .seed = 5, .strategy = &strat};
  const RunResult r = sim::simulate(algo, cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, kN);
  EXPECT_LE(r.max_steps, kN);
}

TEST(LinearScan, MoreProcessesThanNamesFailsGracefully) {
  AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await linear_scan(env, 4);
  };
  sim::RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 8, .seed = 2, .strategy = &strat};
  const RunResult r = sim::simulate(algo, cfg);
  EXPECT_TRUE(r.names_unique);
  std::uint64_t got = 0, failed = 0;
  for (const auto& p : r.processes) (p.name >= 0 ? got : failed) += 1;
  EXPECT_EQ(got, 4u);
  EXPECT_EQ(failed, 4u);
}

TEST(DoublingUniform, AdaptiveNamespaceShape) {
  for (const ProcessId k : {1u, 8u, 64u, 512u}) {
    AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
      co_return co_await doubling_uniform(env, 1.0, 4);
    };
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = k, .seed = 3u + k, .strategy = &strat};
    const RunResult r = sim::simulate(algo, cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_EQ(r.finished, k);
    // Names O(k), though with worse constants than AdaptiveReBatching.
    EXPECT_LT(r.max_name, static_cast<Name>(64 * std::uint64_t{k} + 64));
  }
}

TEST(DoublingUniform, RespectsLevelCap) {
  AlgoFactory algo = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await doubling_uniform(env, 1.0, 1, /*max_levels=*/1);
  };
  sim::RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 8, .seed = 1, .strategy = &strat};
  const RunResult r = sim::simulate(algo, cfg);
  // Level 0 has 2 slots and each process takes 1 probe: at most 2 names.
  std::uint64_t got = 0;
  for (const auto& p : r.processes) got += p.name >= 0 ? 1 : 0;
  EXPECT_LE(got, 2u);
}

}  // namespace
}  // namespace loren
