// Deterministic-clock tests for the AdaptiveController (src/control/):
// window accounting against an injected fake clock, convergence to a
// fixed point on a steady trace, hysteresis (a flickering signal never
// drives opposing knob moves without a quiet window between them), and
// the exact shed bound — the retry budget exhausts to kShed at precisely
// the configured failure count, and one release re-admits.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "control/adaptive_controller.h"
#include "renaming/service.h"
#include "telemetry/metrics.h"

namespace loren {
namespace {

using control::AdaptiveController;
using control::ControlMode;
using control::ControlOptions;

// ControlOptions::clock is a plain function pointer (deliberately: the
// hot path must not pay a std::function), so the fake clock is a file-
// scope cell each test resets.
std::uint64_t g_now = 0;
std::uint64_t fake_clock() { return g_now; }

AdaptiveController::KnobSeeds default_seeds() {
  AdaptiveController::KnobSeeds seeds;
  seeds.stash_cap = 64;
  return seeds;
}

TEST(Controller, WindowMathAgainstFakeClock) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kObserve;
  co.window = 100;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  // Inside the window: ops accumulate, no rollover.
  ctl.note_ops(stripe, 5);
  EXPECT_EQ(ctl.windows(), 0u);

  // Advancing the clock alone does nothing — rollover is checked on the
  // op path, so an idle service never steps.
  g_now = 99;
  EXPECT_EQ(ctl.windows(), 0u);
  ctl.note_ops(stripe, 2);
  EXPECT_EQ(ctl.windows(), 0u);  // 99 < deadline 100

  // Crossing the deadline rolls the window over; the op carried by the
  // rolling call itself still lands in the closed window (counted before
  // the poll).
  g_now = 100;
  ctl.note_ops(stripe, 3);
  EXPECT_EQ(ctl.windows(), 1u);
  std::vector<AdaptiveController::WindowRecord> h = ctl.history();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].index, 0u);
  EXPECT_EQ(h[0].ticks, 100u);
  EXPECT_EQ(h[0].ops, 10u);
  EXPECT_EQ(h[0].saturations, 0u);
  EXPECT_EQ(h[0].sheds, 0u);
  EXPECT_EQ(h[0].samples, 0u);
  EXPECT_DOUBLE_EQ(ctl.arrival_rate(), 0.1);

  // A long gap shows up as the closed window's actual tick length, and
  // the windowed histogram delta carries only this window's samples.
  stripe.record(hist, 700);
  stripe.record(hist, 700);
  g_now = 450;
  ctl.note_ops(stripe, 7);
  EXPECT_EQ(ctl.windows(), 2u);
  h = ctl.history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[1].ticks, 350u);
  EXPECT_EQ(h[1].ops, 7u);
  EXPECT_EQ(h[1].samples, 2u);
  EXPECT_GE(h[1].p99, 700u);  // log2-bucket upper edge at or above the value
}

TEST(Controller, ObserveModeMovesNothingAndNeverSheds) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kObserve;
  co.window = 10;
  co.retry_budget = 1;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  const std::uint32_t batch0 = ctl.batch_limit();
  const std::uint32_t stash0 = ctl.stash_cap();
  for (int w = 0; w < 8; ++w) {
    ctl.note_saturation(stripe);  // heavy pressure every window
    stripe.record(hist, 1u << 20);
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }
  EXPECT_GE(ctl.windows(), 8u);
  EXPECT_EQ(ctl.batch_limit(), batch0);
  EXPECT_EQ(ctl.stash_cap(), stash0);
  EXPECT_TRUE(ctl.admit(stripe));  // observe mode never sheds
  EXPECT_EQ(ctl.shed_events(), 0u);
  EXPECT_GT(ctl.saturation_events(), 0u);
}

TEST(Controller, ConvergesToFixedPointOnSteadyTrace) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kAdapt;
  co.window = 10;
  co.batch_min = 1;
  co.batch_max = 16;
  co.target_p99 = 1u << 12;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  // Phase 1: sustained saturation drives the batch and stash knobs to
  // their floors (one halving per window).
  for (int w = 0; w < 8; ++w) {
    ctl.note_saturation(stripe);
    ctl.note_release();  // keep the streak from tripping shed; pressure only
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }
  EXPECT_EQ(ctl.batch_limit(), co.batch_min);
  EXPECT_EQ(ctl.stash_cap(), AdaptiveController::kStashFloor);

  // Phase 2: a steady calm trace (latency far under target, zero
  // saturation) re-opens both knobs and then reaches a fixed point:
  // once at the rails, further identical windows move nothing.
  for (int w = 0; w < 12; ++w) {
    stripe.record(hist, 16);  // p99 well under target/2
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }
  EXPECT_EQ(ctl.batch_limit(), co.batch_max);
  EXPECT_EQ(ctl.stash_cap(), 64u);

  const std::vector<AdaptiveController::WindowRecord> before = ctl.history();
  for (int w = 0; w < 4; ++w) {
    stripe.record(hist, 16);
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }
  const std::vector<AdaptiveController::WindowRecord> after = ctl.history();
  ASSERT_GT(after.size(), before.size());
  for (std::size_t i = before.size(); i < after.size(); ++i) {
    EXPECT_EQ(after[i].batch, co.batch_max) << "knob moved off fixed point";
    EXPECT_EQ(after[i].stash, 64u) << "knob moved off fixed point";
  }
}

TEST(Controller, DeadbandIsAFixedPoint) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kAdapt;
  co.window = 10;
  co.batch_min = 1;
  co.batch_max = 16;
  // Deadband is (target/2, target]: a recorded value of 700 lands in a
  // log2 bucket whose upper edge is ~1023, so any target in [1023, 2045]
  // puts that p99 inside the deadband. 2000 keeps margin on both sides.
  co.target_p99 = 2000;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  const std::uint32_t batch0 = ctl.batch_limit();
  for (int w = 0; w < 6; ++w) {
    stripe.record(hist, 700);
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }
  const std::vector<AdaptiveController::WindowRecord> h = ctl.history();
  ASSERT_GE(h.size(), 6u);
  EXPECT_GT(h.back().p99, co.target_p99 / 2);
  EXPECT_LE(h.back().p99, co.target_p99);
  EXPECT_EQ(ctl.batch_limit(), batch0) << "deadband p99 must not move batch";
}

TEST(Controller, HysteresisNeverOscillatesOnFlickeringSignal) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kAdapt;
  co.window = 10;
  co.batch_min = 1;
  co.batch_max = 64;
  co.target_p99 = 1u << 12;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController::KnobSeeds seeds = default_seeds();
  seeds.grow_miss_threshold = 8;   // arm the elastic knob too
  seeds.shrink_low_threshold = 4;
  AdaptiveController ctl(co, &reg, hist, seeds);
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  // The adversarial signal: strict alternation between a saturated
  // window and a calm far-under-target window, for many windows.
  for (int w = 0; w < 32; ++w) {
    if (w % 2 == 0) {
      ctl.note_saturation(stripe);
      ctl.note_release();
      stripe.record(hist, 1u << 20);
    } else {
      stripe.record(hist, 16);
    }
    g_now += 10;
    ctl.note_ops(stripe, 1);
  }

  // Replay each knob's move sequence from the per-window records: a
  // direction reversal with no full quiet window between the opposing
  // moves is an oscillation and must never appear.
  const std::vector<AdaptiveController::WindowRecord> h = ctl.history();
  ASSERT_GE(h.size(), 16u);
  const auto knob = [&](const AdaptiveController::WindowRecord& r,
                        int which) -> std::uint64_t {
    switch (which) {
      case 0: return r.batch;
      case 1: return r.stash;
      default: return r.grow;
    }
  };
  for (int which = 0; which < 3; ++which) {
    int last_dir = 0;
    std::uint64_t last_move = 0;
    for (std::size_t i = 1; i < h.size(); ++i) {
      const std::uint64_t prev = knob(h[i - 1], which);
      const std::uint64_t cur = knob(h[i], which);
      if (cur == prev) continue;
      const int dir = cur > prev ? +1 : -1;
      if (last_dir != 0 && dir != last_dir) {
        EXPECT_GE(h[i].index, last_move + 2)
            << "knob " << which << " reversed at window " << h[i].index
            << " with no quiet window after its window-" << last_move
            << " move";
      }
      last_dir = dir;
      last_move = h[i].index;
    }
  }
}

TEST(Controller, RetryBudgetExhaustsToShedExactlyAtTheBound) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kAdapt;
  co.retry_budget = 3;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();

  // Failures 1 and 2: still admitting. Failure 3 (== retry_budget) trips
  // the gate, so the *next* call is the first rejected.
  ctl.note_saturation(stripe);
  EXPECT_TRUE(ctl.admit(stripe));
  ctl.note_saturation(stripe);
  EXPECT_TRUE(ctl.admit(stripe));
  EXPECT_FALSE(ctl.shedding());
  ctl.note_saturation(stripe);
  EXPECT_TRUE(ctl.shedding());
  EXPECT_FALSE(ctl.admit(stripe));
  EXPECT_FALSE(ctl.admit(stripe));
  EXPECT_EQ(ctl.shed_events(), 2u);  // exact: one count per rejection

  // One release ends the episode — and resets the streak, so tripping
  // again costs the full budget, not the remainder.
  ctl.note_release();
  EXPECT_TRUE(ctl.admit(stripe));
  ctl.note_saturation(stripe);
  ctl.note_saturation(stripe);
  EXPECT_TRUE(ctl.admit(stripe));
  ctl.note_saturation(stripe);
  EXPECT_FALSE(ctl.admit(stripe));
  EXPECT_EQ(ctl.shed_events(), 3u);
}

TEST(Controller, ZeroRetryBudgetDisablesShedding) {
  telemetry::MetricsRegistry reg;
  const telemetry::MetricId hist = reg.histogram("test.acquire.ticks");
  ControlOptions co;
  co.mode = ControlMode::kAdapt;
  co.retry_budget = 0;
  co.clock = &fake_clock;
  g_now = 0;
  AdaptiveController ctl(co, &reg, hist, default_seeds());
  telemetry::MetricsRegistry::ThreadStripe& stripe = reg.stripe();
  for (int i = 0; i < 100; ++i) ctl.note_saturation(stripe);
  EXPECT_TRUE(ctl.admit(stripe));
  EXPECT_EQ(ctl.shed_events(), 0u);
}

// End-to-end through the fixed service: a saturated namespace fails with
// explicit codes exactly retry_budget times, then sheds, and a single
// release re-admits.
TEST(Controller, ServiceShedsAtTheBoundAndReleaseReadmits) {
  RenamingServiceOptions opts;
  opts.shards = 2;
  opts.name_cache = false;
  opts.control.mode = ControlMode::kAdapt;
  opts.control.retry_budget = 4;
  opts.control.window = std::uint64_t{1} << 40;  // never roll over here
  RenamingService svc(64, opts);

  std::vector<sim::Name> held;
  for (;;) {
    const sim::Name n = svc.acquire();
    if (n < 0) break;  // the first failure already advanced the streak
    held.push_back(n);
  }
  ASSERT_GE(held.size(), 64u);

  // Failure 1 happened in the fill loop; failures 2..4 exhaust the
  // budget with real (swept) error codes, then the gate is closed.
  for (int i = 1; i < 4; ++i) {
    const sim::Name n = svc.acquire();
    EXPECT_TRUE(n == RenamingService::kExhausted ||
                n == RenamingService::kSweepBudgetExhausted)
        << "failure " << i + 1 << " inside the budget must really probe";
    EXPECT_NE(n, RenamingService::kShed);
  }
  EXPECT_EQ(svc.acquire(), RenamingService::kShed);
  EXPECT_EQ(svc.acquire(), RenamingService::kShed);
  EXPECT_EQ(svc.shed_events(), 2u);

  // Capacity provably exists again -> re-admitted and served.
  EXPECT_TRUE(svc.release(held.back()));
  held.pop_back();
  const sim::Name again = svc.acquire();
  EXPECT_GE(again, 0);
  held.push_back(again);

  for (const sim::Name n : held) EXPECT_TRUE(svc.release(n));
  EXPECT_EQ(svc.names_live(), 0u);
}

}  // namespace
}  // namespace loren
