// Thread-exit stash flush (renaming/service_directory.h): a thread that
// dies holding a populated NameStash must hand the parked names back
// through the owning service's shared release path, for both services.
//
// Before the fix, each short-lived worker thread stranded up to a stash's
// worth of names forever — `names_live()` ratcheted up with every thread
// generation until the namespace exhausted. The churn tests here are the
// regression: hundreds of short-lived threads acquire into and release
// through their stashes, and after every join `names_live()` must return
// to exactly zero.
//
// The destructor-ordering half of the contract is covered too: the flush
// runs from the thread context's TLS destructor, so it must not touch any
// other thread_local (the metrics stripe is skipped when uncached, the
// epoch slot registers TLS-free), and a service destroyed *while* threads
// are exiting must block their in-flight flushes out via the directory
// (services unregister before dying, and the directory holds its lock
// across each flush).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"

namespace loren {
namespace {

using sim::Name;

TEST(ThreadExit, FixedServiceStashFlushesWhenTheThreadDies) {
  RenamingServiceOptions opts;
  opts.name_cache = true;
  opts.name_cache_capacity = 16;
  RenamingService svc(256, opts);

  // 200 short-lived threads, each parking names in its stash and dying.
  // The old leak was ~8 names per thread: 200 generations would strand
  // 1600 names in a 256+ namespace — impossible to miss.
  for (int gen = 0; gen < 200; ++gen) {
    std::thread worker([&] {
      Name names[8];
      const std::uint64_t got = svc.acquire_many(8, names);
      ASSERT_EQ(got, 8u);
      ASSERT_EQ(svc.release_many(names, 8), 8u);
      // The releases were absorbed by this thread's stash: the cells are
      // still taken. Exiting now is the leak scenario.
      ASSERT_GT(svc.thread_cache_size(), 0u);
    });
    worker.join();
    ASSERT_EQ(svc.names_live(), 0u)
        << "names stranded in a dead thread's stash after generation " << gen;
  }
}

TEST(ThreadExit, ElasticServiceStashFlushesWhenTheThreadDies) {
  ElasticOptions opts;
  opts.name_cache = true;
  opts.name_cache_capacity = 16;
  opts.min_holders = 64;
  opts.max_holders = 1024;
  opts.auto_grow = false;
  opts.auto_shrink = false;
  ElasticRenamingService svc(256, opts);

  for (int gen = 0; gen < 200; ++gen) {
    std::thread worker([&] {
      Name names[8];
      const std::uint64_t got = svc.acquire_many(8, names);
      ASSERT_EQ(got, 8u);
      ASSERT_EQ(svc.release_many(names, 8), 8u);
      ASSERT_GT(svc.thread_cache_size(), 0u);
    });
    worker.join();
    ASSERT_EQ(svc.names_live(), 0u)
        << "names stranded in a dead thread's stash after generation " << gen;
  }
}

TEST(ThreadExit, ExitFlushSurvivesAResizeBetweenStashAndDeath) {
  // The stash's generation goes stale between parking and dying: the
  // exit flush must still drain the names through the tag table (the
  // elastic flush path routes any generation), letting the retired
  // group reach zero and reclaim.
  ElasticOptions opts;
  opts.name_cache = true;
  opts.name_cache_capacity = 16;
  opts.min_holders = 64;
  opts.max_holders = 1024;
  opts.auto_grow = false;
  opts.auto_shrink = false;
  ElasticRenamingService svc(64, opts);

  std::thread worker([&] {
    Name names[8];
    ASSERT_EQ(svc.acquire_many(8, names), 8u);
    ASSERT_EQ(svc.release_many(names, 8), 8u);
    ASSERT_GT(svc.thread_cache_size(), 0u);
    // Retire the generation the stashed names belong to, then die
    // without ever touching the service again (no op runs the usual
    // stale-gen stash flush — only the exit flush can save these names).
    ASSERT_TRUE(svc.resize(128));
  });
  worker.join();
  EXPECT_EQ(svc.names_live(), 0u) << "stale-generation stash leaked at exit";
  svc.reclaim();
  svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u)
      << "the retired group never drained: its names died with the thread";
}

TEST(ThreadExit, ConcurrentThreadChurnNeverStrandsNames) {
  // Many generations of threads exiting *concurrently* while others are
  // mid-operation: the directory's lock discipline (held across each
  // flush) must keep every flush atomic with respect to service
  // registration. Runs under TSan in CI.
  RenamingServiceOptions opts;
  opts.name_cache = true;
  opts.name_cache_capacity = 16;
  RenamingService svc(1024, opts);

  for (int round = 0; round < 20; ++round) {
    std::vector<std::thread> workers;
    workers.reserve(8);
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          Name names[4];
          const std::uint64_t got = svc.acquire_many(4, names);
          svc.release_many(names, got);
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(svc.names_live(), 0u) << "round " << round << " stranded names";
  }
}

TEST(ThreadExit, ServiceDestructionRacingThreadExitIsSafe) {
  // Services die while worker threads are still being torn down: the
  // destructor unregisters from the directory first, so any flush that
  // arrives later is a silent no-op instead of a use-after-free. (The
  // assertion here is simply "no crash / no sanitizer report".)
  for (int round = 0; round < 50; ++round) {
    RenamingServiceOptions opts;
    opts.name_cache = true;
    auto svc = std::make_unique<RenamingService>(128, opts);
    std::thread worker([&] {
      Name names[4];
      const std::uint64_t got = svc->acquire_many(4, names);
      svc->release_many(names, got);
    });
    worker.join();
    svc.reset();  // service dies after the worker's exit flush completed
  }
  // And the other order: the worker's thread context outlives the
  // service because the thread itself outlives it — its exit flush must
  // find the service gone and do nothing.
  std::thread lingering([] {
    RenamingServiceOptions opts;
    opts.name_cache = true;
    RenamingService svc(128, opts);
    Name names[4];
    const std::uint64_t got = svc.acquire_many(4, names);
    svc.release_many(names, got);
    // svc dies here, at lambda scope exit; the thread's TLS destructor
    // (and its flush attempt) runs after, against an empty directory.
  });
  lingering.join();
}

}  // namespace
}  // namespace loren
