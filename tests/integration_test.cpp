// Cross-module integration tests: every renaming algorithm under every
// adversary (with and without crashes), renaming over read/write TAS
// substrates, and simulation-vs-hardware agreement of the public API.
#include <gtest/gtest.h>

#include <memory>

#include "renaming/adaptive.h"
#include "renaming/baselines.h"
#include "renaming/fast_adaptive.h"
#include "renaming/rebatching.h"
#include "sim/runner.h"
#include "sim/scheduler.h"
#include "tas/rw_tas.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

struct Combo {
  int algo;      // 0 rebatching, 1 adaptive, 2 fast-adaptive, 3 uniform
  int strategy;  // 0 rr, 1 random, 2 layered, 3 collision
  int crashes;   // number of crash injections
};

class EndToEnd : public ::testing::TestWithParam<Combo> {
 protected:
  static constexpr ProcessId kProcs = 128;

  struct Fixture {
    std::unique_ptr<ReBatching> rebatching;
    std::unique_ptr<AdaptiveReBatching> adaptive;
    std::unique_ptr<FastAdaptiveReBatching> fast;
    AlgoFactory factory;
  };

  static Fixture make_algo(int kind) {
    Fixture f;
    switch (kind) {
      case 0:
        f.rebatching = std::make_unique<ReBatching>(kProcs, 0.5);
        f.factory = [algo = f.rebatching.get()](Env& env, ProcessId) -> Task<Name> {
          co_return co_await algo->get_name(env);
        };
        break;
      case 1:
        f.adaptive = std::make_unique<AdaptiveReBatching>();
        f.factory = [algo = f.adaptive.get()](Env& env, ProcessId) -> Task<Name> {
          co_return co_await algo->get_name(env);
        };
        break;
      case 2:
        f.fast = std::make_unique<FastAdaptiveReBatching>();
        f.factory = [algo = f.fast.get()](Env& env, ProcessId) -> Task<Name> {
          co_return co_await algo->get_name(env);
        };
        break;
      default:
        f.factory = [](Env& env, ProcessId) -> Task<Name> {
          co_return co_await uniform_probing(env, 2 * kProcs);
        };
    }
    return f;
  }

  static std::unique_ptr<sim::Strategy> make_strategy(int kind, int crashes) {
    std::unique_ptr<sim::Strategy> base;
    switch (kind) {
      case 0: base = std::make_unique<sim::RoundRobinStrategy>(); break;
      case 1: base = std::make_unique<sim::RandomStrategy>(); break;
      case 2: base = std::make_unique<sim::LayeredStrategy>(); break;
      default: base = std::make_unique<sim::CollisionAdversary>(); break;
    }
    if (crashes > 0) {
      return std::make_unique<sim::CrashDecorator>(
          std::move(base), static_cast<ProcessId>(crashes),
          sim::CrashDecorator::Mode::kRandom, 9);
    }
    return base;
  }
};

TEST_P(EndToEnd, RenamingHolds) {
  const Combo combo = GetParam();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    auto fixture = make_algo(combo.algo);
    auto strat = make_strategy(combo.strategy, combo.crashes);
    RunConfig cfg{.num_processes = kProcs, .seed = seed,
                  .strategy = strat.get()};
    const RunResult r = sim::simulate(fixture.factory, cfg);
    EXPECT_TRUE(r.renaming_correct())
        << "algo=" << combo.algo << " strat=" << combo.strategy
        << " crashes=" << combo.crashes << " seed=" << seed;
    EXPECT_EQ(r.crashed, static_cast<ProcessId>(combo.crashes));
    EXPECT_EQ(r.finished, kProcs - static_cast<ProcessId>(combo.crashes));
  }
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (int algo = 0; algo < 4; ++algo) {
    for (int strat = 0; strat < 4; ++strat) {
      for (int crashes : {0, 16}) {
        combos.push_back(Combo{algo, strat, crashes});
      }
    }
  }
  return combos;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  static const char* algos[] = {"ReBatching", "Adaptive", "FastAdaptive",
                                "Uniform"};
  static const char* strats[] = {"RR", "Rand", "Layered", "Collision"};
  return std::string(algos[info.param.algo]) + "_" +
         strats[info.param.strategy] + (info.param.crashes ? "_crash" : "");
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEnd, ::testing::ValuesIn(all_combos()),
                         combo_name);

// ------------------------------------------ renaming over RW-TAS (E9) ----

class RenamingOverRwTas : public ::testing::TestWithParam<int> {};

TEST_P(RenamingOverRwTas, ReBatchingStaysCorrect) {
  constexpr ProcessId kProcs = 48;
  const BatchLayout layout(kProcs, 0.5);
  std::unique_ptr<TasService> service;
  if (GetParam() == 0) {
    service = std::make_unique<TournamentTasService>(0, layout.total(), kProcs);
  } else {
    service = std::make_unique<SifterTasService>(0, layout.total(), kProcs);
  }
  ReBatching algo(kProcs, ReBatching::Options{.layout = {.epsilon = 0.5},
                                              .service = service.get()});
  AlgoFactory factory = [&algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo.get_name(env);
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = kProcs, .seed = seed,
                  .strategy = &strat, .max_total_steps = 5'000'000};
    const RunResult r = sim::simulate(factory, cfg);
    EXPECT_TRUE(r.renaming_correct()) << service->name() << " seed " << seed;
    EXPECT_EQ(r.finished, kProcs);
    // Names still come from the logical namespace, not the register space.
    EXPECT_LT(r.max_name, static_cast<Name>(layout.total()));
  }
}

INSTANTIATE_TEST_SUITE_P(Services, RenamingOverRwTas, ::testing::Values(0, 1),
                         [](const auto& param_info) {
                           return param_info.param == 0
                                      ? std::string("Tournament")
                                      : std::string("Sifter");
                         });

TEST(RenamingOverRwTas, RegisterStepsCostMoreThanHardware) {
  constexpr ProcessId kProcs = 32;
  const BatchLayout layout(kProcs, 0.5);

  ReBatching hw(kProcs, 0.5);
  AlgoFactory hw_factory = [&hw](Env& env, ProcessId) -> Task<Name> {
    co_return co_await hw.get_name(env);
  };
  sim::RandomStrategy s1;
  RunConfig c1{.num_processes = kProcs, .seed = 5, .strategy = &s1};
  const RunResult r_hw = sim::simulate(hw_factory, c1);

  TournamentTasService service(0, layout.total(), kProcs);
  ReBatching rw(kProcs, ReBatching::Options{.layout = {.epsilon = 0.5},
                                            .service = &service});
  AlgoFactory rw_factory = [&rw](Env& env, ProcessId) -> Task<Name> {
    co_return co_await rw.get_name(env);
  };
  sim::RandomStrategy s2;
  RunConfig c2{.num_processes = kProcs, .seed = 5, .strategy = &s2,
               .max_total_steps = 5'000'000};
  const RunResult r_rw = sim::simulate(rw_factory, c2);

  EXPECT_TRUE(r_hw.renaming_correct());
  EXPECT_TRUE(r_rw.renaming_correct());
  // The Section 2 remark: a multiplicative blow-up, at least the tree depth.
  EXPECT_GE(r_rw.total_steps, r_hw.total_steps * service.tree_depth());
}

// ------------------------------------- adaptive namespaces stay disjoint ----

TEST(Integration, TwoAlgorithmsSideBySideInOneAddressSpace) {
  // A ReBatching object and an adaptive stack at a disjoint base must not
  // interfere: run both populations in one simulated memory.
  constexpr ProcessId kProcs = 64;  // 32 on each algorithm
  ReBatching fixed(32, ReBatching::Options{.layout = {.epsilon = 0.5}});
  AdaptiveReBatching adaptive(
      AdaptiveReBatching::Options{.base = fixed.end()});
  AlgoFactory factory = [&](Env& env, ProcessId pid) -> Task<Name> {
    if (pid < 32) co_return co_await fixed.get_name(env);
    co_return co_await adaptive.get_name(env);
  };
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kProcs, .seed = 12, .strategy = &strat};
  const RunResult r = sim::simulate(factory, cfg);
  EXPECT_TRUE(r.renaming_correct());
  for (ProcessId pid = 0; pid < kProcs; ++pid) {
    const Name name = r.processes[pid].name;
    ASSERT_GE(name, 0);
    if (pid < 32) {
      EXPECT_TRUE(fixed.owns(name));
    } else {
      EXPECT_GE(adaptive.stack().object_index_of(name), 1u);
    }
  }
}

}  // namespace
}  // namespace loren
