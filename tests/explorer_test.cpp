// Exhaustive bounded model checking of the shared-memory protocols:
// safety must hold on EVERY schedule and EVERY coin outcome, not just the
// sampled ones the randomized suites cover.
#include <gtest/gtest.h>

#include "renaming/rebatching.h"
#include "sim/explorer.h"
#include "tas/rw_tas.h"

namespace loren {
namespace {

using sim::Env;
using sim::ExploreConfig;
using sim::ExploreResult;
using sim::explore;
using sim::Name;
using sim::PathOutcome;
using sim::ProcessId;
using sim::Task;

TEST(Explorer, EnumeratesBothOrdersOfATrivialRace) {
  // Two processes race for one TAS: exactly one wins on every path, and
  // both schedule orders are explored.
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(1);
    co_return (co_await sim::tas(env, 0)) ? 1 : 0;
  };
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 2, .max_decisions = 8},
      [](const PathOutcome& o) { return o.names[0] + o.names[1] == 1; });
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
  // One scheduling decision with arity 2 => exactly 2 complete paths.
  EXPECT_EQ(r.paths_completed, 2u);
}

TEST(Explorer, CoinsAreBranchedExhaustively) {
  // A solo process flips two coins; all 4 outcomes appear.
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(1);
    const auto a = env.random_below(2);
    const auto b = env.random_below(2);
    co_await sim::write(env, 0, a * 2 + b);
    co_return static_cast<Name>(a * 2 + b);
  };
  std::array<int, 4> seen{};
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 1, .max_decisions = 8},
      [&](const PathOutcome& o) {
        seen[static_cast<std::size_t>(o.names[0])] += 1;
        return true;
      });
  EXPECT_EQ(r.paths_completed, 4u);
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(Explorer, DetectsASeededViolation) {
  // Deliberately broken "renaming": both processes return name 7.
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(1);
    co_await sim::tas(env, 0);
    co_return 7;
  };
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 2, .max_decisions = 8},
      [](const PathOutcome& o) { return o.names[0] != o.names[1]; });
  EXPECT_GT(r.violations, 0u);
  EXPECT_EQ(r.violations, r.paths_completed);
}

TEST(Explorer, TruncatesUnboundedProtocols) {
  // A process that spins forever on a lost TAS can never complete once the
  // location is taken: the explorer must truncate, not hang.
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(1);
    for (;;) {
      if (co_await sim::tas(env, 0)) co_return 0;
    }
  };
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 2, .max_decisions = 6},
      [](const PathOutcome&) { return true; });
  EXPECT_GT(r.paths_truncated, 0u);
  EXPECT_EQ(r.violations, 0u);
}

// ------------------------- the real subject: 2-process RW TAS -----------

/// Safety for the racing-consensus TAS: never two winners, on any path.
bool at_most_one_winner(const PathOutcome& o) {
  int winners = 0;
  for (std::size_t i = 0; i < o.names.size(); ++i) {
    if (o.finished[i] && o.names[i] == 1) ++winners;
  }
  return winners <= 1;
}

TEST(ExplorerRwTas, TwoProcessTasSafeOnAllSchedulesAndCoins) {
  auto factory = [](Env& env, ProcessId pid) -> Task<Name> {
    env.ensure_locations(2);
    const bool won = co_await two_process_rw_tas(env, 0, static_cast<int>(pid));
    co_return won ? 1 : 0;
  };
  const ExploreResult r = explore(
      factory,
      ExploreConfig{.num_processes = 2, .max_decisions = 13,
                    .max_paths = 3'000'000},
      at_most_one_winner);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_FALSE(r.hit_path_cap);
  // The protocol must actually terminate on plenty of paths within the
  // bound, and the state space must be non-trivial.
  EXPECT_GT(r.paths_completed, 1000u);
}

TEST(ExplorerRwTas, CompletedPathsAlwaysHaveAWinnerWhenBothFinish) {
  // Liveness-ish corollary: when both processes run to completion, the
  // decided value names exactly one winner (consensus agreement).
  auto factory = [](Env& env, ProcessId pid) -> Task<Name> {
    env.ensure_locations(2);
    const bool won = co_await two_process_rw_tas(env, 0, static_cast<int>(pid));
    co_return won ? 1 : 0;
  };
  const ExploreResult r = explore(
      factory,
      ExploreConfig{.num_processes = 2, .max_decisions = 12,
                    .max_paths = 3'000'000},
      [](const PathOutcome& o) {
        if (!o.finished[0] || !o.finished[1]) return true;
        return o.names[0] + o.names[1] == 1;  // exactly one winner
      });
  EXPECT_EQ(r.violations, 0u);
}

TEST(ExplorerRwTas, SoloProcessAlwaysWins) {
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(2);
    co_return (co_await two_process_rw_tas(env, 0, 0)) ? 1 : 0;
  };
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 1, .max_decisions = 12},
      [](const PathOutcome& o) { return o.names[0] == 1; });
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.paths_completed, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);  // solo termination is deterministic
}

// ------------------------- ReBatching at explorer scale ------------------

TEST(ExplorerReBatching, MinimalInstanceHasExactlyTwelvePaths) {
  // n = 2, eps = 0.5, t0 = 2: the namespace is exactly {0, 1} (kappa = 0),
  // so the full decision tree is tiny and enumerable by hand:
  //   * coins differ (2 combos) x 2 schedule orders            =  4 paths
  //   * coins collide (2 combos) x 2 winners x 2 retry coins   =  8 paths
  // All 12 complete (the backup sweep is deterministic), all unique.
  auto algo = std::make_shared<ReBatching>(
      2, ReBatching::Options{
             .layout = {.epsilon = 0.5, .beta = 1, .t0_override = 2}});
  auto factory = [algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo->get_name(env);
  };
  const ExploreResult r = explore(
      factory, ExploreConfig{.num_processes = 2, .max_decisions = 16},
      [](const PathOutcome& o) {
        if (!o.finished[0] || !o.finished[1]) return true;
        return o.names[0] >= 0 && o.names[1] >= 0 &&
               o.names[0] != o.names[1];
      });
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.paths_completed, 12u);
  EXPECT_EQ(r.paths_truncated, 0u);  // the tree is fully explored
}

TEST(ExplorerReBatching, TwoBatchInstanceUniqueOnAllPaths) {
  // n = 3 gives kappa = 1 (two batches, coin arities 3 and 2): a richer
  // decision tree that still explores completely within the depth bound,
  // exercising the batch-escalation path exhaustively.
  auto algo = std::make_shared<ReBatching>(
      3, ReBatching::Options{
             .layout = {.epsilon = 1.0, .beta = 1, .t0_override = 2}});
  auto factory = [algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo->get_name(env);
  };
  const ExploreResult r = explore(
      factory,
      ExploreConfig{.num_processes = 2, .max_decisions = 18,
                    .max_paths = 3'000'000},
      [](const PathOutcome& o) {
        if (!o.finished[0] || !o.finished[1]) return true;
        return o.names[0] >= 0 && o.names[1] >= 0 &&
               o.names[0] != o.names[1];
      });
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
  // The complete tree for this instance has exactly 36 terminal paths
  // (verified by full exploration; pinned as a regression anchor).
  EXPECT_EQ(r.paths_completed, 36u);
  EXPECT_FALSE(r.hit_path_cap);
}

}  // namespace
}  // namespace loren
