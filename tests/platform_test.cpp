// Unit tests for the platform substrate: RNG, Poisson machinery, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "platform/poisson.h"
#include "platform/rng.h"
#include "platform/stats.h"

namespace loren {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LE(equal, 1);
}

TEST(MixSeed, StreamsAreDistinct) {
  EXPECT_NE(mix_seed(7, 0), mix_seed(7, 1));
  EXPECT_NE(mix_seed(7, 0), mix_seed(8, 0));
}

TEST(Xoshiro256, DeterministicAndReseedable) {
  Xoshiro256 a(99);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Xoshiro256, BelowIsInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(77);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 64000;
  std::vector<double> observed(kBuckets, 0.0);
  for (int i = 0; i < kDraws; ++i) ++observed[rng.below(kBuckets)];
  std::vector<double> expected(kBuckets, kDraws / double(kBuckets));
  // chi-square with 15 dof: 99.9th percentile ~ 37.7
  EXPECT_LT(chi_square(observed, expected), 37.7);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ------------------------------------------------------------- Poisson ----

TEST(Poisson, LogFactorialMatchesExactValues) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(20), 42.3356164607535, 1e-9);
  EXPECT_NEAR(log_factorial(100), std::lgamma(101.0), 1e-9);
}

TEST(Poisson, PmfSumsToOne) {
  for (double lambda : {0.1, 1.0, 4.0, 10.0, 25.0}) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k < 400; ++k) sum += poisson_pmf(lambda, k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "lambda=" << lambda;
  }
}

TEST(Poisson, PmfZeroLambda) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(0.0, 3), 0.0);
}

TEST(Poisson, CdfMatchesPmfPrefixSums) {
  for (double lambda : {0.5, 2.0, 8.0}) {
    double prefix = 0.0;
    for (std::uint64_t n = 0; n < 40; ++n) {
      prefix += poisson_pmf(lambda, n);
      EXPECT_NEAR(poisson_cdf(lambda, n), prefix, 1e-9);
    }
  }
}

TEST(Poisson, CdfIsMonotoneInN) {
  for (std::uint64_t n = 0; n < 30; ++n) {
    EXPECT_LE(poisson_cdf(3.5, n), poisson_cdf(3.5, n + 1) + 1e-15);
  }
}

TEST(Poisson, IcdfInvertsCdf) {
  const double lambda = 4.2;
  for (std::uint64_t k : {0ULL, 1ULL, 3ULL, 7ULL, 12ULL}) {
    // u strictly inside the step of k.
    const double lo = k == 0 ? 0.0 : poisson_cdf(lambda, k - 1);
    const double hi = poisson_cdf(lambda, k);
    const double u = (lo + hi) / 2.0;
    EXPECT_EQ(poisson_icdf(lambda, u), k);
  }
}

TEST(Poisson, SampleMomentsMatch) {
  Xoshiro256 rng(2024);
  for (double lambda : {0.5, 3.0, 17.0, 120.0}) {
    const int kSamples = 20000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const double x = static_cast<double>(poisson_sample(lambda, rng));
      sum += x;
      sumsq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sumsq / kSamples - mean * mean;
    EXPECT_NEAR(mean, lambda, 5.0 * std::sqrt(lambda / kSamples) + 0.01)
        << "lambda=" << lambda;
    EXPECT_NEAR(var, lambda, 0.15 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(Poisson, SampleZeroLambda) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(poisson_sample(0.0, rng), 0u);
}

// --------------------------------------------------------------- Stats ----

TEST(Stats, SummarizeBasics) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingleton) {
  EXPECT_EQ(summarize(std::vector<double>{}).count, 0u);
  const Summary s = summarize(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Stats, QuantileThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitRejectsBadInput) {
  EXPECT_THROW(fit_linear(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Stats, LogHelpers) {
  EXPECT_DOUBLE_EQ(safe_log2(8.0), 3.0);
  EXPECT_DOUBLE_EQ(safe_log2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_log2(0.5), 0.0);
  EXPECT_DOUBLE_EQ(log_log2(65536.0), 4.0);
  EXPECT_DOUBLE_EQ(log_log2(2.0), 0.0);
}

TEST(Stats, CorrelationSigns) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y_pos{2, 4, 6, 8, 10};
  std::vector<double> y_neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, y_neg), -1.0, 1e-12);
}

TEST(Stats, ChiSquareZeroWhenEqual) {
  std::vector<double> o{10, 20, 30};
  EXPECT_DOUBLE_EQ(chi_square(o, o), 0.0);
}

TEST(Stats, MarkdownRowFormat) {
  EXPECT_EQ(markdown_row({"a", "b"}), "| a | b |");
}

}  // namespace
}  // namespace loren
