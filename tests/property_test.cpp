// Cross-cutting randomized property sweeps over awkward sizes and loads:
// odd process counts, oversubscription beyond the namespace, crash storms,
// and determinism — for every algorithm x adversary combination.
#include <gtest/gtest.h>

#include <memory>

#include "renaming/adaptive.h"
#include "renaming/fast_adaptive.h"
#include "renaming/rebatching.h"
#include "sim/runner.h"
#include "sim/scheduler.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

std::unique_ptr<sim::Strategy> make_strategy(int kind) {
  switch (kind) {
    case 0: return std::make_unique<sim::RoundRobinStrategy>();
    case 1: return std::make_unique<sim::RandomStrategy>();
    case 2: return std::make_unique<sim::LayeredStrategy>();
    default: return std::make_unique<sim::CollisionAdversary>();
  }
}

// ------------------------------------------- awkward-size sweep ----------

class AwkwardSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AwkwardSizes, ReBatchingCorrectAtNonPowersOfTwo) {
  const auto [size_idx, strat_kind] = GetParam();
  static constexpr std::uint64_t kSizes[] = {1, 2, 3, 5, 7, 13, 33, 100, 257};
  const std::uint64_t n = kSizes[size_idx];
  ReBatching algo(n, 0.5);
  auto strat = make_strategy(strat_kind);
  RunConfig cfg{.num_processes = static_cast<ProcessId>(n),
                .seed = 17 * n + static_cast<std::uint64_t>(strat_kind),
                .strategy = strat.get()};
  const RunResult r = sim::simulate(
      [&algo](Env& env, ProcessId) -> Task<Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  EXPECT_TRUE(r.renaming_correct()) << "n=" << n;
  EXPECT_EQ(r.finished, n);
  EXPECT_LT(r.max_name, static_cast<Name>(algo.layout().total()));
}

INSTANTIATE_TEST_SUITE_P(Grid, AwkwardSizes,
                         ::testing::Combine(::testing::Range(0, 9),
                                            ::testing::Range(0, 4)));

// --------------------------------------- oversubscription ----------------

TEST(Oversubscription, ExactCapacityAllServed) {
  // Exactly capacity() processes: everyone must get a name (the backup
  // sweep guarantees it) and the namespace must be perfectly packed.
  ReBatching algo(32, 0.25);
  const auto cap = static_cast<ProcessId>(algo.layout().total());
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = cap, .seed = 5, .strategy = &strat};
  const RunResult r = sim::simulate(
      [&algo](Env& env, ProcessId) -> Task<Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, cap);
  for (const auto& p : r.processes) EXPECT_GE(p.name, 0);
}

TEST(Oversubscription, BeyondCapacityFailsCleanly) {
  // More processes than names: the surplus returns -1, names stay unique,
  // and exactly capacity() names are handed out.
  ReBatching algo(32, 0.25);
  const auto cap = algo.layout().total();
  const auto procs = static_cast<ProcessId>(cap + 10);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = procs, .seed = 6, .strategy = &strat};
  const RunResult r = sim::simulate(
      [&algo](Env& env, ProcessId) -> Task<Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  EXPECT_TRUE(r.names_unique);
  std::uint64_t named = 0;
  for (const auto& p : r.processes) named += p.name >= 0 ? 1 : 0;
  EXPECT_EQ(named, cap);
}

// --------------------------------------------- crash storms --------------

class CrashStorm : public ::testing::TestWithParam<int> {};

TEST_P(CrashStorm, NinetyPercentCrashesStillUnique) {
  const int algo_kind = GetParam();
  constexpr ProcessId kProcs = 64;
  ReBatching rebatching(kProcs, 0.5);
  AdaptiveReBatching adaptive;
  FastAdaptiveReBatching fast;
  AlgoFactory factory;
  switch (algo_kind) {
    case 0:
      factory = [&rebatching](Env& env, ProcessId) -> Task<Name> {
        co_return co_await rebatching.get_name(env);
      };
      break;
    case 1:
      factory = [&adaptive](Env& env, ProcessId) -> Task<Name> {
        co_return co_await adaptive.get_name(env);
      };
      break;
    default:
      factory = [&fast](Env& env, ProcessId) -> Task<Name> {
        co_return co_await fast.get_name(env);
      };
  }
  auto base = std::make_unique<sim::RandomStrategy>();
  sim::CrashDecorator strat(std::move(base), kProcs - 6,
                            sim::CrashDecorator::Mode::kRandom,
                            /*interval=*/2);
  RunConfig cfg{.num_processes = kProcs, .seed = 23, .strategy = &strat};
  const RunResult r = sim::simulate(factory, cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished + r.crashed, kProcs);
  EXPECT_GE(r.finished, 6u);  // the survivors all finished
}

INSTANTIATE_TEST_SUITE_P(Algos, CrashStorm, ::testing::Values(0, 1, 2));

// ------------------------------------------------ determinism ------------

class Determinism : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Determinism, IdenticalSeedsIdenticalOutcomes) {
  const auto [algo_kind, strat_kind] = GetParam();
  constexpr ProcessId kProcs = 48;
  auto build = [&](int kind) -> std::pair<AlgoFactory, std::shared_ptr<void>> {
    switch (kind) {
      case 0: {
        auto algo = std::make_shared<ReBatching>(kProcs, 0.5);
        return {[algo](Env& env, ProcessId) -> Task<Name> {
                  co_return co_await algo->get_name(env);
                },
                algo};
      }
      case 1: {
        auto algo = std::make_shared<AdaptiveReBatching>();
        return {[algo](Env& env, ProcessId) -> Task<Name> {
                  co_return co_await algo->get_name(env);
                },
                algo};
      }
      default: {
        auto algo = std::make_shared<FastAdaptiveReBatching>();
        return {[algo](Env& env, ProcessId) -> Task<Name> {
                  co_return co_await algo->get_name(env);
                },
                algo};
      }
    }
  };
  auto [f1, keep1] = build(algo_kind);
  auto [f2, keep2] = build(algo_kind);
  auto s1 = make_strategy(strat_kind);
  auto s2 = make_strategy(strat_kind);
  RunConfig c1{.num_processes = kProcs, .seed = 99, .strategy = s1.get()};
  RunConfig c2{.num_processes = kProcs, .seed = 99, .strategy = s2.get()};
  const RunResult r1 = sim::simulate(f1, c1);
  const RunResult r2 = sim::simulate(f2, c2);
  ASSERT_EQ(r1.processes.size(), r2.processes.size());
  for (std::size_t i = 0; i < r1.processes.size(); ++i) {
    EXPECT_EQ(r1.processes[i].name, r2.processes[i].name);
    EXPECT_EQ(r1.processes[i].steps, r2.processes[i].steps);
  }
  EXPECT_EQ(r1.total_steps, r2.total_steps);
}

INSTANTIATE_TEST_SUITE_P(Grid, Determinism,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 4)));

// ----------------------------- epsilon sweep: namespace/step trade-off ---

class EpsilonSweep : public ::testing::TestWithParam<int> {};

TEST_P(EpsilonSweep, CorrectAcrossSlackFactors) {
  static constexpr double kEps[] = {0.05, 0.25, 0.5, 1.0, 2.0, 4.0};
  const double eps = kEps[GetParam()];
  constexpr std::uint64_t kN = 128;
  ReBatching algo(kN, eps);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kN,
                .seed = 31 + static_cast<std::uint64_t>(GetParam()),
                .strategy = &strat};
  const RunResult r = sim::simulate(
      [&algo](Env& env, ProcessId) -> Task<Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  EXPECT_TRUE(r.renaming_correct());
  // Namespace bound: total() ~ (1+eps)n + kappa.
  EXPECT_LE(algo.layout().total(),
            static_cast<std::uint64_t>((1.0 + eps) * kN) +
                algo.layout().kappa() + 1);
}

INSTANTIATE_TEST_SUITE_P(Eps, EpsilonSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace loren
