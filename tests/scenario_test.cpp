// Deterministic fault-injection scenarios over the live service stack.
//
// Every test here drives the *real* production objects (BitmapArena,
// ShardGroup, ElasticRenamingService — same code, same atomics) under
// the ScenarioEngine's seeded cooperative scheduler, with fault knobs
// (stalls, parks, dropped releases) aimed at specific LOREN_SIM_POINT
// tags. A failing test prints its seed and the full schedule trace, so
// the exact interleaving replays by re-running with that seed. These
// tests only build under -DLOREN_SIM (CMakeLists excludes them
// otherwise): without the instrumentation the tags they stall on never
// fire.
//
// The last section pins the three historical regression repros
// (spurious grow from sweep wins, hw-detection faults, stale
// double-release ABA) onto fixed (seed, preemption-bound) schedules:
// revert the corresponding fix and the pinned schedule fails.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"
#include "sim/scenario/engine.h"
#include "sim/scenario/scenario.h"
#include "tas/bitmap_arena.h"

namespace loren {
namespace {

using scenario::kAnyWorker;
using scenario::Scenario;
using scenario::ScenarioEngine;
using scenario::StallRule;
using Worker = ScenarioEngine::Worker;
using sim::Name;

// Failure recorder shared by the workload bodies. gtest assertions must
// not run on worker threads (ASSERT_* would longjmp out of the engine's
// scheduling protocol), so bodies record violations here and the main
// thread asserts once, printing the seed and schedule trace for replay.
// The mutex is never contended during the serialized phase (one worker
// runs at a time and no sim point sits inside these critical sections),
// so recording does not perturb the schedule.
struct Checks {
  std::mutex mu;
  std::vector<std::string> failures;

  void fail(std::string msg) {
    std::lock_guard<std::mutex> lock(mu);
    failures.push_back(std::move(msg));
  }
  [[nodiscard]] bool ok() {
    std::lock_guard<std::mutex> lock(mu);
    return failures.empty();
  }
  [[nodiscard]] std::string summary() {
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    for (const std::string& f : failures) os << "  " << f << "\n";
    return os.str();
  }
};

// The standing cross-worker invariant: no two live names are ever equal.
// Workers insert on acquire and erase *before* release (the engine may
// switch mid-release, and the freed cell may be re-acquired before the
// releasing worker runs again — erasing late would report that legal
// recycling as a duplicate).
struct HeldSet {
  std::mutex mu;
  std::set<Name> names;

  bool add(Name n) {
    std::lock_guard<std::mutex> lock(mu);
    return names.insert(n).second;
  }
  void remove(Name n) {
    std::lock_guard<std::mutex> lock(mu);
    names.erase(n);
  }
};

ElasticOptions base_options() {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  // Cache off by default: scenario bodies want every acquisition to walk
  // the instrumented shared paths, and thread-local stashes would leak
  // their contents when the worker threads exit.
  opts.name_cache = false;
  return opts;
}

// Acquire/release churn against the elastic service: the workhorse body.
// All randomness comes from Worker::rng(), so the op mix replays with
// the schedule. Releases everything it still holds before returning.
ScenarioEngine::Body churner(ElasticRenamingService* svc, Checks* checks,
                             HeldSet* held, int ops, std::size_t hold_max) {
  return [=](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < ops; ++i) {
      w.yield("churn.op");
      if (mine.size() < hold_max && (mine.empty() || w.rng().below(2) == 0)) {
        const Name n = svc->acquire();
        if (n < 0) continue;  // transient exhaustion while resizing
        if (!held->add(n)) {
          checks->fail("duplicate live name " + std::to_string(n) +
                       " acquired by w" + std::to_string(w.id()));
        }
        mine.push_back(n);
      } else {
        const Name n = mine.back();
        mine.pop_back();
        held->remove(n);
        if (!svc->release(n)) {
          checks->fail("release of held name " + std::to_string(n) +
                       " failed on w" + std::to_string(w.id()));
        }
      }
    }
    for (const Name n : mine) {
      held->remove(n);
      if (!svc->release(n)) {
        checks->fail("final release of " + std::to_string(n) + " failed on w" +
                     std::to_string(w.id()));
      }
    }
  };
}

// Post-run quiesce: with every name released and every worker joined,
// the service must drain to exactly the live group and zero live names.
void expect_quiesced(ElasticRenamingService& svc) {
  EXPECT_EQ(svc.names_live(), 0u) << "names leaked past quiesce";
  svc.reclaim();  // stage A unlinks, stage B frees (quiescence immediate)
  svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u)
      << "retired generations survived quiesce";
}

// ------------------------------------------------------- determinism ----

std::string churn_trace(std::uint64_t seed) {
  ElasticRenamingService svc(64, base_options());
  Checks checks;
  HeldSet held;
  Scenario scn;
  scn.seed = seed;
  scn.preempt_every = 1;
  ScenarioEngine eng(scn);
  const bool done = eng.run({churner(&svc, &checks, &held, 30, 6),
                             churner(&svc, &checks, &held, 30, 6),
                             churner(&svc, &checks, &held, 30, 6)});
  eng.finish();
  EXPECT_TRUE(done) << "livelock guard tripped, seed " << seed;
  EXPECT_TRUE(checks.ok()) << checks.summary() << "seed " << seed << "\n"
                           << eng.trace();
  expect_quiesced(svc);
  return eng.trace();
}

TEST(ScenarioDeterminism, SameSeedSameSchedule) {
  const std::string first = churn_trace(0xD5EEDu);
  const std::string second = churn_trace(0xD5EEDu);
  ASSERT_FALSE(first.empty());
  // The whole engine contract: identical (bodies, scenario) means a
  // byte-identical schedule trace, which is what makes seed replay exact.
  EXPECT_EQ(first, second) << "same seed produced different schedules";
  EXPECT_NE(first, churn_trace(0xD5EEEu))
      << "distinct seeds explored the same schedule";
}

// --------------------------------------------------- stall at the swap ----

TEST(ScenarioFault, StallAtGroupSwapPublish) {
  ElasticOptions opts = base_options();
  opts.auto_grow = false;  // the resizer worker drives growth explicitly
  ElasticRenamingService svc(64, opts);
  Checks checks;
  HeldSet held;

  Scenario scn;
  scn.seed = 0x5774A11u;
  scn.preempt_every = 1;
  // Freeze the resizer mid-publication: the new group's mirrors are about
  // to be stored while churners keep acquiring from (and releasing into)
  // whatever side of the swap their loads observe.
  scn.stalls.push_back(StallRule{"elastic.swap.publish", 2, 0, 300, 1});

  ScenarioEngine eng(scn);
  const bool done = eng.run(
      {churner(&svc, &checks, &held, 40, 8),
       churner(&svc, &checks, &held, 40, 8), [&svc](Worker& w) {
         w.yield("resize.grow");
         svc.resize(128);
         w.yield("resize.reclaim");
         svc.reclaim();
       }});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_GE(eng.stalls_fired(), 1u) << "the swap-publish stall never fired";
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  EXPECT_EQ(svc.holders(), 128u);
  expect_quiesced(svc);
}

// --------------------------------------------------- grow/shrink storm ----

TEST(ScenarioFault, GrowShrinkStorm) {
  ElasticOptions opts = base_options();
  opts.auto_grow = false;
  ElasticRenamingService svc(64, opts);
  Checks checks;
  HeldSet held;

  Scenario scn;
  scn.seed = 0x570A4u;
  scn.preempt_every = 2;
  // Hold each generation swap open for a while, every other time: churn
  // keeps running against half-published resizes in both directions.
  scn.stalls.push_back(StallRule{"elastic.swap.retire", kAnyWorker, 1, 80, 2});

  ScenarioEngine eng(scn);
  const bool done = eng.run(
      {churner(&svc, &checks, &held, 50, 8),
       churner(&svc, &checks, &held, 50, 8), [&svc](Worker& w) {
         for (int i = 0; i < 6; ++i) {
           w.yield("storm.resize");
           svc.resize(i % 2 == 0 ? 256 : 64);
           w.yield("storm.reclaim");
           svc.reclaim();
         }
       }});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  // Capacity bound after the storm's final shrink: back at the floor.
  EXPECT_EQ(svc.holders(), 64u);
  EXPECT_GE(svc.shrink_events() + svc.grow_events(), 6u);
  expect_quiesced(svc);
}

// ----------------------------------------------------- dropped release ----

TEST(ScenarioFault, DroppedReleasesLeakExactlyAndDrainAfterRepair) {
  ElasticRenamingService svc(64, base_options());
  Checks checks;
  HeldSet held;
  std::mutex leaked_mu;
  std::vector<Name> leaked;

  Scenario scn;
  scn.seed = 0xD40Bu;
  scn.preempt_every = 1;
  scn.drop_release_every = 3;  // every third release call leaks instead
  scn.drop_release_limit = 5;

  auto leaky = [&](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < 30; ++i) {
      w.yield("leaky.op");
      if (mine.size() < 6 && (mine.empty() || w.rng().below(2) == 0)) {
        const Name n = svc.acquire();
        if (n < 0) continue;
        if (!held.add(n)) {
          checks.fail("duplicate live name " + std::to_string(n));
        }
        mine.push_back(n);
      } else {
        const Name n = mine.back();
        mine.pop_back();
        held.remove(n);
        if (w.drop_release()) {
          // Crashed-holder model: the name is simply never released.
          std::lock_guard<std::mutex> lock(leaked_mu);
          leaked.push_back(n);
        } else if (!svc.release(n)) {
          checks.fail("release of held name " + std::to_string(n) + " failed");
        }
      }
    }
    for (const Name n : mine) {
      held.remove(n);
      if (!svc.release(n)) checks.fail("final release failed");
    }
  };

  ScenarioEngine eng(scn);
  const bool done = eng.run({leaky, leaky});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  EXPECT_EQ(eng.drops(), leaked.size());
  EXPECT_GE(eng.drops(), 1u) << "the drop knob never fired";
  // Leak accounting is exact: precisely the dropped names are still live.
  EXPECT_EQ(svc.names_live(), leaked.size());
  // The leaked names are still valid (their cells stayed taken): a repair
  // pass releases them and the service drains completely.
  for (const Name n : leaked) {
    EXPECT_TRUE(svc.release(n)) << "leaked name " << n << " went invalid";
  }
  expect_quiesced(svc);
}

// ------------------------------------------------------- crash mid-pin ----

TEST(ScenarioFault, CrashWhilePinnedBlocksReclamation) {
  ElasticOptions opts = base_options();
  opts.auto_grow = false;
  ElasticRenamingService svc(64, opts);
  Checks checks;

  Scenario scn;
  scn.seed = 0xC4A54u;
  // Park worker 0 at its very first epoch pin: a thread that crashed (or
  // was descheduled indefinitely) inside the read-side critical section.
  scn.stalls.push_back(StallRule{"epoch.pin", 0, 0, 0, 1});

  ScenarioEngine eng(scn);
  const bool done = eng.run({[&](Worker& w) {
    w.yield("victim.acquire");
    const Name n = svc.acquire();  // parks inside, pinned
    if (n < 0) {
      checks.fail("victim acquire failed after resume");
      return;
    }
    if (!svc.release(n)) checks.fail("victim release failed after resume");
  }});

  // run() returned with the victim still parked inside its pin.
  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  ASSERT_EQ(eng.parked(), 1u) << "the crash-park never fired\n" << eng.trace();

  // Retire the boot generation while the crashed thread stays pinned: the
  // epoch protocol must refuse to reclaim it — the parked thread's pin
  // predates the retire advance, so quiescence cannot be reached.
  EXPECT_TRUE(svc.resize(128));
  svc.reclaim();
  svc.reclaim();
  EXPECT_EQ(svc.reclaimed_groups(), 0u)
      << "a group was reclaimed while a crashed thread was pinned in it";
  EXPECT_EQ(svc.groups_in_flight(), 2u);

  // "Reboot" the crashed thread: it resumes, finishes its acquire/release
  // against whichever group it pinned, and exits; reclamation then works.
  eng.finish();
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  EXPECT_EQ(svc.names_live(), 0u);
  svc.reclaim();
  svc.reclaim();
  EXPECT_GE(svc.reclaimed_groups(), 1u)
      << "reclamation still stuck after the pinned thread resumed";
  EXPECT_EQ(svc.groups_in_flight(), 1u);
}

// ------------------------------------------------ word-claim race storm ----

TEST(ScenarioFault, BitmapWordClaimRaceStorm) {
  // One 64-cell word: every claim fights over the same free mask, and the
  // stall rule suspends claimers exactly between their mask snapshot and
  // their fetch_or — the lost-race retry path runs constantly.
  BitmapArena arena(64);
  Checks checks;
  // Serialized-phase-only state: owner[c] is the worker currently holding
  // cell c, -1 when free. The engine's one-runner-at-a-time discipline is
  // what makes plain (unsynchronized) access to it sound.
  std::vector<int> owner(64, -1);

  Scenario scn;
  scn.seed = 0xB17Bu;
  scn.preempt_every = 1;
  scn.stalls.push_back(StallRule{"bitmap.word.claim", kAnyWorker, 2, 4, 0});

  auto body = [&](Worker& w) {
    std::vector<std::int64_t> mine;
    for (int i = 0; i < 40; ++i) {
      w.yield("bitmap.op");
      if (mine.size() < 12 && (mine.empty() || w.rng().below(3) != 0)) {
        const std::uint64_t hint = w.rng().below(64);
        const std::int64_t c = arena.try_claim_in_word(hint, 0, 64);
        if (c < 0) continue;
        if (owner[static_cast<std::size_t>(c)] != -1) {
          checks.fail("cell " + std::to_string(c) + " double-claimed by w" +
                      std::to_string(w.id()) + " and w" +
                      std::to_string(owner[static_cast<std::size_t>(c)]));
        }
        owner[static_cast<std::size_t>(c)] = static_cast<int>(w.id());
        mine.push_back(c);
      } else {
        const std::int64_t c = mine.back();
        mine.pop_back();
        owner[static_cast<std::size_t>(c)] = -1;
        if (!arena.try_release(static_cast<std::uint64_t>(c))) {
          checks.fail("release of held cell " + std::to_string(c) + " failed");
        }
      }
    }
    for (const std::int64_t c : mine) {
      owner[static_cast<std::size_t>(c)] = -1;
      if (!arena.try_release(static_cast<std::uint64_t>(c))) {
        checks.fail("final release of cell " + std::to_string(c) + " failed");
      }
    }
  };

  ScenarioEngine eng(scn);
  const bool done = eng.run({body, body, body});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_GE(eng.stalls_fired(), 1u);
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  // Everything was released: the word must read entirely free again.
  for (std::uint64_t c = 0; c < 64; ++c) {
    EXPECT_EQ(arena.read(c), 0u) << "cell " << c << " leaked";
  }
}

// --------------------------------------------- lazy-refresh race storm ----

TEST(ScenarioFault, BitmapRefreshStormKeepsGenerationsConsistent) {
  // Dirty two words, then reset(): every word goes stale and the first
  // toucher of each must win the refresh CAS, zero the bits, and publish
  // the fresh stamp. The stall rule suspends a refresh winner *between*
  // the CAS and the zeroing stores — the widest window of the protocol —
  // while rivals spin on the in-progress marker.
  BitmapArena arena(128);
  for (std::uint64_t i = 0; i < 128; i += 3) arena.test_and_set(i);
  arena.reset();  // quiescent: no engine running yet

  Checks checks;
  std::vector<int> owner(128, -1);

  Scenario scn;
  scn.seed = 0x4EF4E54u;
  scn.preempt_every = 1;
  scn.stalls.push_back(StallRule{"bitmap.refresh.zero", kAnyWorker, 0, 60, 1});

  auto body = [&](Worker& w) {
    for (int i = 0; i < 30; ++i) {
      w.yield("refresh.op");
      const std::uint64_t x = w.rng().below(128);
      if (arena.test_and_set(x)) {
        // Post-reset the namespace started all-free: a win must never
        // land on a cell someone else claimed since the reset (the
        // pre-reset bits were logically discarded).
        if (owner[x] != -1) {
          checks.fail("cell " + std::to_string(x) +
                      " won twice after reset (stale bits resurrected)");
        }
        owner[x] = static_cast<int>(w.id());
      } else if (owner[x] == -1) {
        checks.fail("cell " + std::to_string(x) +
                    " rejected a claim nobody holds (lost by refresh)");
      }
    }
  };

  ScenarioEngine eng(scn);
  const bool done = eng.run({body, body, body});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_GE(eng.stalls_fired(), 1u) << "the refresh stall never fired";
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  // Sidecar consistency: the refreshed words' occupancy must agree
  // exactly with the owner ledger — no resurrected pre-reset bit, no
  // dropped claim.
  for (std::uint64_t c = 0; c < 128; ++c) {
    EXPECT_EQ(arena.read(c), owner[c] == -1 ? 0u : 1u)
        << "cell " << c << " disagrees with the claim ledger";
  }
}

// ----------------------------------- pinned regression repro schedules ----
//
// The three historical bugs, replayed on fixed (seed, preemption-bound)
// schedules through the instrumented stack. Each fails again if its fix
// is reverted: the schedule is pinned, so the repro is exact, not
// probabilistic.

TEST(ScenarioPinnedRegression, SweepWinsDoNotAccumulateIntoSpuriousGrow) {
  ElasticOptions opts = base_options();
  opts.auto_grow = true;
  opts.grow_miss_threshold = 4;
  ElasticRenamingService svc(64, opts);
  Checks checks;

  Scenario scn;
  scn.seed = 0x9E0571u;  // pinned: replay coordinates of the repro
  scn.preempt_every = 1;

  ScenarioEngine eng(scn);
  const bool done = eng.run({[&](Worker& w) {
    // Fill every cell of the live group, then churn one cell through the
    // sweep backstop: each re-acquisition is *served* (by the sweep), so
    // the miss streak must never reach grow_miss_threshold. Reverting the
    // sweep-win streak reset turns this into four misses and a spurious
    // doubling.
    const std::uint64_t cells =
        svc.capacity() >> ElasticRenamingService::kTagBits;
    std::vector<Name> mine;
    for (std::uint64_t i = 0; i < cells; ++i) {
      w.yield("fill");
      const Name n = svc.acquire();
      if (n < 0) {
        checks.fail("group exhausted early at " + std::to_string(i));
        return;
      }
      mine.push_back(n);
    }
    for (int i = 0; i < 100; ++i) {
      w.yield("churn");
      if (!svc.release(mine.back())) {
        checks.fail("churn release failed");
        return;
      }
      mine.pop_back();
      const Name n = svc.acquire();
      if (n < 0) {
        checks.fail("saturated re-acquire failed at " + std::to_string(i));
        return;
      }
      mine.push_back(n);
    }
    for (const Name n : mine) {
      if (!svc.release(n)) checks.fail("drain release failed");
    }
  }});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  EXPECT_EQ(svc.grow_events(), 0u)
      << "sweep-served acquisitions accumulated into a spurious grow\n"
      << eng.trace();
  EXPECT_EQ(svc.holders(), 64u);
  EXPECT_EQ(svc.generation(), 1u);
}

TEST(ScenarioPinnedRegression, ZeroHardwareConcurrencyShardPolicy) {
  // The hw-detection fault: hardware_concurrency() == 0 ("could not be
  // determined") must shard like hw == 1, not disable dispersion. Pure
  // policy, but asserted from an engine worker so the check rides the
  // same pinned-schedule harness as its siblings.
  Checks checks;
  Scenario scn;
  scn.seed = 0x54A4D5u;
  scn.preempt_every = 1;

  ScenarioEngine eng(scn);
  eng.run({[&](Worker& w) {
    w.yield("policy");
    BatchLayoutParams params;
    params.epsilon = 0.5;
    const std::uint64_t s0 = auto_shard_count(1u << 14, params, 0);
    const std::uint64_t s1 = auto_shard_count(1u << 14, params, 1);
    if (s0 < 1) checks.fail("hw=0 produced zero shards");
    if (s0 != s1) {
      checks.fail("hw=0 sharded differently from hw=1: " + std::to_string(s0) +
                  " vs " + std::to_string(s1));
    }
    if ((s0 & (s0 - 1)) != 0) checks.fail("shard count not a power of two");
  }});
  eng.finish();
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
}

TEST(ScenarioPinnedRegression, StaleReleaseFromRecycledTagIsRejected) {
  ElasticOptions opts = base_options();
  opts.debug_release_guard = true;
  ElasticRenamingService svc(64, opts);
  Checks checks;

  Scenario scn;
  scn.seed = 0x57A1Eu;
  scn.preempt_every = 1;
  // Hold the recycling swap open across a few steps: the stale release in
  // this schedule validates its stamp against a group mid-publication.
  scn.stalls.push_back(
      StallRule{"elastic.swap.publish", kAnyWorker, 1, 40, 1});

  ScenarioEngine eng(scn);
  const bool done = eng.run({[&](Worker& w) {
    // The ABA setup from elastic_regression_test, on a pinned schedule: a
    // stale copy of a generation-1 name survives tag 0's recycling; its
    // release must be rejected by the generation stamp. Reverting the
    // stamp check frees a victim's cell instead.
    w.yield("stale.setup");
    const Name stale = svc.acquire();
    if (stale < 0 || !svc.release(stale)) {
      checks.fail("ABA setup acquire/release failed");
      return;
    }
    w.yield("stale.recycle");
    if (!svc.resize(128)) checks.fail("resize(128) refused");
    svc.reclaim();
    if (!svc.resize(64)) checks.fail("resize(64) refused");
    const Name probe = svc.acquire();
    if (probe < 0 ||
        (static_cast<std::uint64_t>(probe) &
         (ElasticRenamingService::kMaxGroups - 1)) != 0) {
      checks.fail("tag 0 was not recycled — ABA setup did not materialize");
      return;
    }
    svc.release(probe);
    w.yield("stale.fill");
    const std::uint64_t cells =
        svc.capacity() >> ElasticRenamingService::kTagBits;
    std::vector<Name> victims;
    for (std::uint64_t i = 0; i < cells; ++i) {
      const Name n = svc.acquire();
      if (n < 0) {
        checks.fail("victim fill exhausted early");
        return;
      }
      victims.push_back(n);
    }
    w.yield("stale.release");
    if (svc.release(stale)) {
      checks.fail("stale release from a reclaimed generation was accepted");
    }
    for (const Name n : victims) {
      if (!svc.release(n)) {
        checks.fail("victim lost its name to the stale release");
      }
    }
  }});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_TRUE(checks.ok()) << checks.summary() << "seed " << scn.seed << "\n"
                           << eng.trace();
}

}  // namespace
}  // namespace loren
