// Cross-service conformance battery: one parameterized suite asserting
// the renaming-service contract — uniqueness, exhaustion semantics,
// batch fill, release round-trips, reset/resize invalidation, and exact
// live-counter accounting — over the full configuration matrix
// {RenamingService, ElasticRenamingService} x {kCellProbe, kBitmap} x
// {name cache on, off}. Every cell must behave identically at this
// level; substrate and elasticity are implementation detail. Runs under
// TSan in CI (the concurrent-uniqueness cell is the data-race probe).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"

namespace loren {
namespace {

using sim::Name;

enum class Kind { kFixed, kElastic };

struct Config {
  Kind kind;
  ArenaKind arena;
  bool cache;
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  std::string s = info.param.kind == Kind::kFixed ? "Fixed" : "Elastic";
  s += info.param.arena == ArenaKind::kBitmap ? "Bitmap" : "CellProbe";
  s += info.param.cache ? "Cache" : "NoCache";
  return s;
}

/// The conformance surface: the operations whose observable behaviour
/// must not depend on which service (or substrate) backs them.
class ServiceUnderTest {
 public:
  virtual ~ServiceUnderTest() = default;
  virtual Name acquire() = 0;
  virtual bool release(Name name) = 0;
  virtual std::uint64_t acquire_many(std::uint64_t k, Name* out) = 0;
  virtual std::uint64_t release_many(const Name* names,
                                     std::uint64_t count) = 0;
  virtual std::uint64_t flush_thread_cache() = 0;
  /// Upper bound on issued name *values* (fixed: the namespace size;
  /// elastic: the encoded-name bound, which carries the tag bits).
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
  /// Number of acquirable cells — what exhaustion is measured against.
  [[nodiscard]] virtual std::uint64_t cells() const = 0;
  [[nodiscard]] virtual std::uint64_t names_live() const = 0;
  [[nodiscard]] virtual std::uint32_t thread_cache_size() const = 0;
  /// The service-appropriate "every outstanding name is now invalid"
  /// event: reset() for the fixed service, a resize generation bump (and
  /// back, so capacity() is unchanged) for the elastic one. Both must
  /// invalidate thread stashes.
  virtual void invalidate() = 0;
};

class FixedAdapter final : public ServiceUnderTest {
 public:
  FixedAdapter(std::uint64_t n, const Config& cfg) {
    RenamingServiceOptions opts;
    opts.shards = 2;
    opts.arena_kind = cfg.arena;
    opts.name_cache = cfg.cache;
    svc_ = std::make_unique<RenamingService>(n, opts);
  }
  Name acquire() override { return svc_->acquire(); }
  bool release(Name name) override { return svc_->release(name); }
  std::uint64_t acquire_many(std::uint64_t k, Name* out) override {
    return svc_->acquire_many(k, out);
  }
  std::uint64_t release_many(const Name* names, std::uint64_t count) override {
    return svc_->release_many(names, count);
  }
  std::uint64_t flush_thread_cache() override {
    return svc_->flush_thread_cache();
  }
  [[nodiscard]] std::uint64_t capacity() const override {
    return svc_->capacity();
  }
  [[nodiscard]] std::uint64_t cells() const override {
    return svc_->capacity();  // names are dense: one cell per value
  }
  [[nodiscard]] std::uint64_t names_live() const override {
    return svc_->names_live();
  }
  [[nodiscard]] std::uint32_t thread_cache_size() const override {
    return svc_->thread_cache_size();
  }
  void invalidate() override { svc_->reset(); }

 private:
  std::unique_ptr<RenamingService> svc_;
};

class ElasticAdapter final : public ServiceUnderTest {
 public:
  ElasticAdapter(std::uint64_t n, const Config& cfg) {
    ElasticOptions opts;
    opts.shards = 2;
    opts.arena_kind = cfg.arena;
    opts.name_cache = cfg.cache;
    // Pin the namespace: conformance asserts fixed-capacity semantics
    // (exhaustion must mean exhaustion, not a growth trigger).
    opts.auto_grow = false;
    opts.min_holders = n / 2;
    opts.max_holders = n;
    svc_ = std::make_unique<ElasticRenamingService>(n, opts);
  }
  Name acquire() override { return svc_->acquire(); }
  bool release(Name name) override { return svc_->release(name); }
  std::uint64_t acquire_many(std::uint64_t k, Name* out) override {
    return svc_->acquire_many(k, out);
  }
  std::uint64_t release_many(const Name* names, std::uint64_t count) override {
    return svc_->release_many(names, count);
  }
  std::uint64_t flush_thread_cache() override {
    return svc_->flush_thread_cache();
  }
  [[nodiscard]] std::uint64_t capacity() const override {
    return svc_->capacity();
  }
  [[nodiscard]] std::uint64_t cells() const override {
    // capacity() bounds encoded name values (local << kTagBits | tag);
    // the acquirable cell count is the live group's local capacity.
    return svc_->capacity() >> ElasticRenamingService::kTagBits;
  }
  [[nodiscard]] std::uint64_t names_live() const override {
    return svc_->names_live();
  }
  [[nodiscard]] std::uint32_t thread_cache_size() const override {
    return svc_->thread_cache_size();
  }
  void invalidate() override {
    // Two resize hops: the generation (and group tag) changes, every
    // stash goes stale, and the namespace geometry ends up where it
    // started so capacity()-based assertions keep holding.
    const std::uint64_t h = svc_->holders();
    ASSERT_TRUE(svc_->resize(h / 2));
    ASSERT_TRUE(svc_->resize(h));
  }

 private:
  std::unique_ptr<ElasticRenamingService> svc_;
};

constexpr std::uint64_t kHolders = 192;

class ServiceConformance : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const Config& cfg = GetParam();
    if (cfg.kind == Kind::kFixed) {
      svc_ = std::make_unique<FixedAdapter>(kHolders, cfg);
    } else {
      svc_ = std::make_unique<ElasticAdapter>(kHolders, cfg);
    }
  }

  std::unique_ptr<ServiceUnderTest> svc_;
};

TEST_P(ServiceConformance, NamesAreUniqueAndInRange) {
  const std::uint64_t n = svc_->cells() / 2;
  std::set<Name> seen;
  std::vector<Name> held;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Name name = svc_->acquire();
    ASSERT_GE(name, 0) << "failed at " << i << " with half the namespace free";
    EXPECT_LT(static_cast<std::uint64_t>(name), svc_->capacity());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    held.push_back(name);
  }
  for (const Name name : held) EXPECT_TRUE(svc_->release(name));
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, ConcurrentAcquiresNeverCollide) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 24;  // 4*24 = 96 of 192+ cells
  std::vector<std::vector<Name>> held(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t, &held] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const Name name = svc_->acquire();
        if (name >= 0) held[static_cast<std::size_t>(t)].push_back(name);
      }
      // Churn a little so release paths race acquire paths under TSan.
      for (int r = 0; r < 8; ++r) {
        auto& mine = held[static_cast<std::size_t>(t)];
        if (mine.empty()) break;
        EXPECT_TRUE(svc_->release(mine.back()));
        mine.pop_back();
        const Name again = svc_->acquire();
        if (again >= 0) mine.push_back(again);
      }
      svc_->flush_thread_cache();
    });
  }
  for (std::thread& w : workers) w.join();

  std::set<Name> all;
  std::uint64_t total = 0;
  for (const auto& mine : held) {
    for (const Name name : mine) {
      EXPECT_LT(static_cast<std::uint64_t>(name), svc_->capacity());
      EXPECT_TRUE(all.insert(name).second)
          << "name " << name << " issued to two threads";
      ++total;
    }
  }
  EXPECT_EQ(svc_->names_live(), total);  // exact at quiescence post-flush
  for (const auto& mine : held) {
    for (const Name name : mine) EXPECT_TRUE(svc_->release(name));
  }
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, ExhaustionIsExactAndRecoverable) {
  std::vector<Name> held;
  for (;;) {
    const Name name = svc_->acquire();
    if (name < 0) {
      // No sweep budget and no controller configured: the only legal
      // failure is true exhaustion.
      EXPECT_EQ(name, RenamingService::kExhausted);
      break;
    }
    held.push_back(name);
    ASSERT_LE(held.size(), svc_->cells()) << "issued past the namespace";
  }
  // Single-threaded, the deterministic sweep reaches every free cell:
  // failure means every cell really was taken.
  EXPECT_EQ(held.size(), svc_->cells());
  EXPECT_EQ(svc_->names_live(), svc_->cells());

  // Freeing one name makes exactly one acquisition succeed again.
  EXPECT_TRUE(svc_->release(held.back()));
  held.pop_back();
  svc_->flush_thread_cache();  // the freed cell must be globally visible
  const Name again = svc_->acquire();
  EXPECT_GE(again, 0);
  held.push_back(again);

  for (const Name name : held) EXPECT_TRUE(svc_->release(name));
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, BatchFillIsCompleteAtQuiescence) {
  const std::uint64_t k = svc_->cells() / 2;
  std::vector<Name> batch(k);
  ASSERT_EQ(svc_->acquire_many(k, batch.data()), k)
      << "quiescent batch under half the namespace must fill completely";
  std::set<Name> seen;
  for (const Name name : batch) {
    EXPECT_GE(name, 0);
    EXPECT_LT(static_cast<std::uint64_t>(name), svc_->capacity());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate in batch: " << name;
  }
  EXPECT_EQ(svc_->names_live(), k);

  // Batched release frees every valid entry exactly once; a replay of
  // the same array frees nothing (double releases are rejected whether
  // the first release parked the name in a stash or freed the cell).
  EXPECT_EQ(svc_->release_many(batch.data(), k), k);
  EXPECT_EQ(svc_->release_many(batch.data(), k), 0u);
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, ReleaseRoundTripAndForeignValues) {
  const Name name = svc_->acquire();
  ASSERT_GE(name, 0);
  EXPECT_EQ(svc_->names_live(), 1u);

  EXPECT_TRUE(svc_->release(name));
  EXPECT_FALSE(svc_->release(name)) << "double release must be rejected";

  // Foreign values: negative codes and never-issued names change nothing.
  EXPECT_FALSE(svc_->release(RenamingService::kExhausted));
  EXPECT_FALSE(svc_->release(RenamingService::kShed));
  EXPECT_FALSE(
      svc_->release(static_cast<Name>(svc_->capacity() + 1024)));

  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);

  // The round trip: the namespace serves again after the release.
  const Name again = svc_->acquire();
  EXPECT_GE(again, 0);
  EXPECT_TRUE(svc_->release(again));
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, InvalidationDiscardsStashesAndAccountsExactly) {
  // Park names in the thread stash (cache on) or free them outright
  // (cache off), then invalidate: either way the service must come back
  // with an empty, exactly-accounted namespace and a cold stash.
  std::vector<Name> held;
  for (int i = 0; i < 32; ++i) {
    const Name name = svc_->acquire();
    ASSERT_GE(name, 0);
    held.push_back(name);
  }
  for (const Name name : held) EXPECT_TRUE(svc_->release(name));
  if (GetParam().cache) {
    EXPECT_GT(svc_->thread_cache_size(), 0u);  // releases were absorbed
  }

  svc_->invalidate();
  svc_->flush_thread_cache();  // stale stash contents must drain/discard
  EXPECT_EQ(svc_->names_live(), 0u);
  EXPECT_EQ(svc_->thread_cache_size(), 0u);

  // The full namespace is intact and serves fresh unique names.
  std::set<Name> seen;
  std::vector<Name> fresh;
  for (int i = 0; i < 64; ++i) {
    const Name name = svc_->acquire();
    ASSERT_GE(name, 0);
    EXPECT_LT(static_cast<std::uint64_t>(name), svc_->capacity());
    EXPECT_TRUE(seen.insert(name).second);
    fresh.push_back(name);
  }
  EXPECT_EQ(svc_->names_live(), 64u);
  for (const Name name : fresh) EXPECT_TRUE(svc_->release(name));
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

TEST_P(ServiceConformance, CounterAccountingStaysExactUnderMixedTraffic) {
  // Interleave singles and batches, tracking the expected live count;
  // at every quiescent flush point the service's counter must agree.
  std::vector<Name> held;
  Name batch[48];
  const std::uint64_t got = svc_->acquire_many(48, batch);
  ASSERT_EQ(got, 48u);
  held.insert(held.end(), batch, batch + got);
  for (int i = 0; i < 16; ++i) {
    const Name name = svc_->acquire();
    ASSERT_GE(name, 0);
    held.push_back(name);
  }
  EXPECT_EQ(svc_->names_live(), 64u);

  // Release a prefix through singles and a suffix through one batch.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(svc_->release(held.back()));
    held.pop_back();
  }
  EXPECT_EQ(svc_->release_many(held.data() + 40, held.size() - 40),
            held.size() - 40);
  held.resize(40);
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 40u);

  // Drain, including a second pass that must free nothing.
  EXPECT_EQ(svc_->release_many(held.data(), held.size()), held.size());
  EXPECT_EQ(svc_->release_many(held.data(), held.size()), 0u);
  svc_->flush_thread_cache();
  EXPECT_EQ(svc_->names_live(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ServiceConformance,
    ::testing::Values(
        Config{Kind::kFixed, ArenaKind::kCellProbe, true},
        Config{Kind::kFixed, ArenaKind::kCellProbe, false},
        Config{Kind::kFixed, ArenaKind::kBitmap, true},
        Config{Kind::kFixed, ArenaKind::kBitmap, false},
        Config{Kind::kElastic, ArenaKind::kCellProbe, true},
        Config{Kind::kElastic, ArenaKind::kCellProbe, false},
        Config{Kind::kElastic, ArenaKind::kBitmap, true},
        Config{Kind::kElastic, ArenaKind::kBitmap, false}),
    config_name);

}  // namespace
}  // namespace loren
