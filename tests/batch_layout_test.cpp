// Property tests for the ReBatching batch geometry (paper Eq. (1)/(2)).
#include <gtest/gtest.h>

#include <cmath>

#include "renaming/batch_layout.h"

namespace loren {
namespace {

TEST(BatchLayout, RejectsInvalidArguments) {
  EXPECT_THROW(BatchLayout(0, 0.5), std::invalid_argument);
  EXPECT_THROW(BatchLayout(8, 0.0), std::invalid_argument);
  EXPECT_THROW(BatchLayout(8, -1.0), std::invalid_argument);
  EXPECT_THROW(BatchLayout(8, BatchLayoutParams{.epsilon = 1.0, .beta = 0}),
               std::invalid_argument);
}

TEST(BatchLayout, KappaMatchesCeilLogLog) {
  EXPECT_EQ(BatchLayout(1, 1.0).kappa(), 0u);
  EXPECT_EQ(BatchLayout(2, 1.0).kappa(), 0u);
  EXPECT_EQ(BatchLayout(3, 1.0).kappa(), 1u);   // log2 log2 3 ~ 0.66
  EXPECT_EQ(BatchLayout(4, 1.0).kappa(), 1u);   // exactly 1
  EXPECT_EQ(BatchLayout(16, 1.0).kappa(), 2u);  // exactly 2
  EXPECT_EQ(BatchLayout(17, 1.0).kappa(), 3u);
  EXPECT_EQ(BatchLayout(256, 1.0).kappa(), 3u);
  EXPECT_EQ(BatchLayout(65536, 1.0).kappa(), 4u);
  EXPECT_EQ(BatchLayout(1u << 20, 1.0).kappa(), 5u);
}

TEST(BatchLayout, BatchZeroHasSizeN) {
  for (std::uint64_t n : {1u, 2u, 7u, 100u, 4096u}) {
    EXPECT_EQ(BatchLayout(n, 0.5).size(0), n);
  }
}

TEST(BatchLayout, Eq1BatchSizes) {
  const BatchLayout L(1u << 16, 0.5);
  const double eps_n = 0.5 * 65536.0;
  for (std::uint64_t i = 1; i <= L.kappa(); ++i) {
    EXPECT_EQ(L.size(i), static_cast<std::uint64_t>(
                             std::ceil(eps_n / std::exp2(double(i)))));
  }
}

TEST(BatchLayout, OffsetsArePrefixSums) {
  const BatchLayout L(10000, 0.7);
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < L.num_batches(); ++i) {
    EXPECT_EQ(L.offset(i), acc);
    acc += L.size(i);
  }
  EXPECT_EQ(L.total(), acc);
}

TEST(BatchLayout, TotalIsCloseToOnePlusEpsN) {
  // sum b_i <= (1+eps)n - eps*n/2^kappa + kappa (paper Section 4), and at
  // least (1+eps)n - eps*n/2^kappa.
  for (std::uint64_t n : {1u << 10, 1u << 14, 1u << 18}) {
    for (double eps : {0.25, 0.5, 1.0, 2.0}) {
      const BatchLayout L(n, eps);
      const double nd = n;
      const double upper =
          (1 + eps) * nd - eps * nd / std::exp2(double(L.kappa())) +
          static_cast<double>(L.kappa());
      const double lower = (1 + eps) * nd - eps * nd / std::exp2(double(L.kappa()));
      EXPECT_LE(static_cast<double>(L.total()), upper + 1.0);
      EXPECT_GE(static_cast<double>(L.total()), lower);
      EXPECT_GE(L.total(), n);  // namespace can hold everyone
    }
  }
}

TEST(BatchLayout, Eq2ProbeCounts) {
  const BatchLayout L(1u << 16, 0.5);
  const int t0 = static_cast<int>(
      std::ceil(17.0 * std::log(8.0 * std::exp(1.0) / 0.5) / 0.5));
  EXPECT_EQ(L.probes(0), t0);
  for (std::uint64_t i = 1; i + 1 < L.num_batches(); ++i) {
    EXPECT_EQ(L.probes(i), 1);
  }
  EXPECT_EQ(L.probes(L.kappa()), 3);  // default beta
}

TEST(BatchLayout, T0OverrideRespected) {
  const BatchLayout L(1024, BatchLayoutParams{.epsilon = 0.5, .t0_override = 6});
  EXPECT_EQ(L.probes(0), 6);
}

TEST(BatchLayout, BetaRespected) {
  const BatchLayout L(1024, BatchLayoutParams{.epsilon = 0.5, .beta = 7});
  EXPECT_EQ(L.probes(L.kappa()), 7);
}

TEST(BatchLayout, MainPhaseProbeSumIsLogLogPlusConstant) {
  // max_probes = t0 + (kappa-1) + beta = log2 log2 n + O(1).
  const BatchLayoutParams p{.epsilon = 0.5, .beta = 3, .t0_override = 10};
  for (std::uint64_t n : {1u << 8, 1u << 12, 1u << 16, 1u << 20}) {
    const BatchLayout L(n, p);
    EXPECT_EQ(L.max_probes_main_phase(),
              10 + static_cast<int>(L.kappa() - 1) + 3);
  }
}

TEST(BatchLayout, SurvivorBoundShapesMatchLemma42) {
  const BatchLayout L(1u << 20, 0.5);
  // n*_i = eps*n / 2^(2^i + i + delta) for i < kappa.
  const double delta = 0.1;
  for (std::uint64_t i = 1; i + 1 <= L.kappa() - 1; ++i) {
    const double expect = 0.5 * std::exp2(20.0) /
                          std::exp2(std::exp2(double(i)) + double(i) + delta);
    EXPECT_NEAR(L.survivor_bound(i, delta), expect, 1e-6);
  }
  // n*_kappa = log^2 n.
  EXPECT_NEAR(L.survivor_bound(L.kappa()), 400.0, 1e-9);
  EXPECT_THROW((void)L.survivor_bound(0), std::out_of_range);
  EXPECT_THROW((void)L.survivor_bound(L.kappa() + 1), std::out_of_range);
}

TEST(BatchLayout, SurvivorBoundsDecayDoublyExponentially) {
  const BatchLayout L(1u << 20, 0.5);
  for (std::uint64_t i = 1; i + 2 <= L.kappa() - 1; ++i) {
    // Ratio n*_{i+1} / n*_i = 2^-(2^i + 1): super-geometric decay.
    const double ratio = L.survivor_bound(i + 1) / L.survivor_bound(i);
    EXPECT_LT(ratio, std::exp2(-(std::exp2(double(i)))));
  }
}

TEST(BatchLayout, TinyNamespacesAreWellFormed) {
  for (std::uint64_t n = 1; n <= 64; ++n) {
    const BatchLayout L(n, 0.5);
    EXPECT_GE(L.total(), n);
    EXPECT_EQ(L.size(0), n);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < L.num_batches(); ++i) {
      EXPECT_GE(L.size(i), 1u);
      EXPECT_GE(L.probes(i), 1);
      sum += L.size(i);
    }
    EXPECT_EQ(sum, L.total());
  }
}

class BatchLayoutSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BatchLayoutSweep, StructuralInvariants) {
  const auto [n, eps] = GetParam();
  const BatchLayout L(n, eps);
  // Batches are disjoint, ordered, cover [0, total).
  for (std::uint64_t i = 1; i < L.num_batches(); ++i) {
    EXPECT_EQ(L.offset(i), L.offset(i - 1) + L.size(i - 1));
    // Batches B_1.. have geometrically decreasing length; B_0 is larger
    // than B_1 only when eps <= 2 (b_1 = ceil(eps*n/2)).
    if (i >= 2) {
      EXPECT_LE(L.size(i), L.size(i - 1));
    }
  }
  EXPECT_EQ(L.n(), n);
  EXPECT_DOUBLE_EQ(L.epsilon(), eps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchLayoutSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 16, 100, 1024, 65536,
                                         1u << 20),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0)));

}  // namespace
}  // namespace loren
