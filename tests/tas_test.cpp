// Tests for the TAS substrates: atomic arrays, DirectEnv, and the
// read/write TAS protocols (two-process racing consensus, tournament tree,
// sifter). The RW protocols are hammered under adversarial simulated
// schedules across many seeds: safety (at most one winner) must never
// depend on the coin flips or the schedule.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "sim/runner.h"
#include "sim/scheduler.h"
#include "tas/atomic_tas.h"
#include "tas/rw_tas.h"
#include "tas/tas_service.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

// ---------------------------------------------------- AtomicTasArray ----

TEST(AtomicTasArray, FirstCallWins) {
  AtomicTasArray arr(4);
  EXPECT_TRUE(arr.test_and_set(2));
  EXPECT_FALSE(arr.test_and_set(2));
  EXPECT_TRUE(arr.test_and_set(3));
}

TEST(AtomicTasArray, ResetClears) {
  AtomicTasArray arr(2);
  EXPECT_TRUE(arr.test_and_set(0));
  arr.reset();
  EXPECT_TRUE(arr.test_and_set(0));
}

TEST(AtomicTasArray, ReadWriteRoundTrip) {
  AtomicTasArray arr(2);
  arr.write(1, 99);
  EXPECT_EQ(arr.read(1), 99u);
}

TEST(AtomicTasArray, ConcurrentExactlyOneWinnerPerCell) {
  constexpr int kThreads = 8;
  constexpr int kCells = 64;
  AtomicTasArray arr(kCells);
  std::vector<int> wins(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 0; c < kCells; ++c) wins[t] += arr.test_and_set(c) ? 1 : 0;
    });
  }
  for (auto& th : threads) th.join();
  int total = 0;
  for (int w : wins) total += w;
  EXPECT_EQ(total, kCells);  // every cell won exactly once
}

// ----------------------------------------------------------- DirectEnv ----

TEST(DirectEnv, ExecutesImmediately) {
  AtomicTasArray arr(4);
  DirectEnv env(arr, 1, 0);
  EXPECT_TRUE(env.immediate());
  EXPECT_EQ(env.execute_now(sim::OpKind::kTas, 1, 0), 1u);
  EXPECT_EQ(env.execute_now(sim::OpKind::kTas, 1, 0), 0u);
  EXPECT_EQ(env.steps(), 2u);
}

TEST(DirectEnv, EnsureLocationsChecksCapacity) {
  AtomicTasArray arr(4);
  DirectEnv env(arr, 1, 0);
  EXPECT_NO_THROW(env.ensure_locations(4));
  EXPECT_THROW(env.ensure_locations(5), std::length_error);
}

TEST(DirectEnv, PostIsForbidden) {
  AtomicTasArray arr(1);
  DirectEnv env(arr, 1, 0);
  EXPECT_THROW(env.post(sim::PendingOp{}), std::logic_error);
}

TEST(DirectEnv, CoroutineRunsSynchronously) {
  AtomicTasArray arr(2);
  DirectEnv env(arr, 1, 0);
  auto algo = [](Env& e) -> Task<Name> {
    if (co_await sim::tas(e, 0)) co_return 0;
    co_return -1;
  };
  EXPECT_EQ(sim::run_sync(algo(env)), 0);
  EXPECT_EQ(sim::run_sync(algo(env)), -1);
}

// ----------------------------------------------- two-process RW TAS ----

/// Both processes run the protocol on the same object; returns the winner
/// count and whether both terminated.
AlgoFactory two_proc_factory() {
  return [](Env& env, ProcessId pid) -> Task<Name> {
    env.ensure_locations(2);
    const bool won = co_await two_process_rw_tas(env, 0, static_cast<int>(pid));
    co_return won ? 1 : 0;  // "name" encodes the outcome
  };
}

class TwoProcTasSeeds : public ::testing::TestWithParam<int> {};

TEST_P(TwoProcTasSeeds, AtMostOneWinnerEveryScheduleKind) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  std::vector<std::unique_ptr<sim::Strategy>> strategies;
  strategies.push_back(std::make_unique<sim::RoundRobinStrategy>());
  strategies.push_back(std::make_unique<sim::RandomStrategy>());
  strategies.push_back(std::make_unique<sim::LayeredStrategy>());
  strategies.push_back(std::make_unique<sim::CollisionAdversary>());
  for (auto& strat : strategies) {
    RunConfig cfg{.num_processes = 2,
                  .seed = seed,
                  .strategy = strat.get(),
                  .max_total_steps = 100000};
    const RunResult r = sim::simulate(two_proc_factory(), cfg);
    ASSERT_EQ(r.finished, 2u) << strat->name();
    const int winners = static_cast<int>(r.processes[0].name) +
                        static_cast<int>(r.processes[1].name);
    EXPECT_EQ(winners, 1) << strat->name() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoProcTasSeeds, ::testing::Range(0, 50));

TEST(TwoProcTas, SoloProcessWins) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::RoundRobinStrategy strat;
    RunConfig cfg{.num_processes = 1, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(
        [](Env& env, ProcessId) -> Task<Name> {
          env.ensure_locations(2);
          co_return (co_await two_process_rw_tas(env, 0, 0)) ? 1 : 0;
        },
        cfg);
    ASSERT_EQ(r.finished, 1u);
    EXPECT_EQ(r.processes[0].name, 1);  // solo always wins
    EXPECT_LE(r.processes[0].steps, 6u);  // constant solo cost
  }
}

TEST(TwoProcTas, ExpectedStepsAreConstant) {
  // Average steps per process across seeds should be a small constant even
  // under the adaptive adversary.
  double total = 0.0;
  const int kRuns = 200;
  for (int seed = 0; seed < kRuns; ++seed) {
    sim::CollisionAdversary strat;
    RunConfig cfg{.num_processes = 2,
                  .seed = static_cast<std::uint64_t>(seed) + 1000,
                  .strategy = &strat,
                  .max_total_steps = 100000};
    const RunResult r = sim::simulate(two_proc_factory(), cfg);
    total += static_cast<double>(r.total_steps);
  }
  EXPECT_LT(total / kRuns, 40.0);  // loose but catches livelock regressions
}

TEST(TwoProcTas, SurvivorWinsAfterOpponentCrash) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto base = std::make_unique<sim::RoundRobinStrategy>();
    sim::CrashDecorator strat(std::move(base), 1,
                              sim::CrashDecorator::Mode::kRandom,
                              /*interval=*/2);
    RunConfig cfg{.num_processes = 2,
                  .seed = seed,
                  .strategy = &strat,
                  .max_total_steps = 100000};
    const RunResult r = sim::simulate(two_proc_factory(), cfg);
    ASSERT_EQ(r.finished + r.crashed, 2u);
    // Safety: never two winners (a crashed process holds no outcome).
    int winners = 0;
    for (const auto& p : r.processes) {
      if (p.finished && p.name == 1) ++winners;
    }
    EXPECT_LE(winners, 1);
  }
}

// -------------------------------------------------------- tournaments ----

AlgoFactory service_rename_factory(TasService& service, std::uint64_t slots) {
  return [&service, slots](Env& env, ProcessId) -> Task<Name> {
    // Uniform probing through the service: heavy collision pressure.
    for (int tries = 0; tries < 4096; ++tries) {
      const std::uint64_t x = env.random_below(slots);
      if (co_await service.acquire(env, x)) co_return static_cast<Name>(x);
    }
    co_return -1;
  };
}

class ServiceKind : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ServiceKind, UniqueNamesUnderContention) {
  const int kind = std::get<0>(GetParam());
  const std::uint64_t seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  constexpr ProcessId kProcs = 12;
  constexpr std::uint64_t kSlots = 16;
  std::unique_ptr<TasService> service;
  if (kind == 0) {
    service = std::make_unique<HardwareTasService>(0, kSlots);
  } else if (kind == 1) {
    service = std::make_unique<TournamentTasService>(0, kSlots, kProcs);
  } else {
    service = std::make_unique<SifterTasService>(0, kSlots, kProcs);
  }
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kProcs,
                .seed = seed,
                .strategy = &strat,
                .max_total_steps = 2'000'000};
  const RunResult r =
      sim::simulate(service_rename_factory(*service, kSlots), cfg);
  EXPECT_TRUE(r.renaming_correct()) << service->name();
  EXPECT_EQ(r.finished, kProcs) << service->name();
  EXPECT_LT(r.max_name, static_cast<Name>(kSlots));
}

INSTANTIATE_TEST_SUITE_P(KindsAndSeeds, ServiceKind,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range(0, 12)));

TEST(TournamentService, FootprintAndDepth) {
  TournamentTasService svc(0, 10, 8);
  EXPECT_EQ(svc.tree_depth(), 3u);          // 8 leaves
  EXPECT_EQ(svc.footprint(), 10u * 2 * 7);  // 7 internal nodes, 2 regs each
}

TEST(TournamentService, RoundsUpToPowerOfTwoLeaves) {
  TournamentTasService svc(0, 1, 5);
  EXPECT_EQ(svc.tree_depth(), 3u);  // 5 -> 8 leaves
}

TEST(SifterService, CostsLessThanPureTournamentUnderContention) {
  // The sifter's point: most processes lose in 2 register steps instead of
  // fighting through log n tournament rounds.
  constexpr ProcessId kProcs = 16;
  auto run = [&](TasService& svc) {
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = kProcs,
                  .seed = 7,
                  .strategy = &strat,
                  .max_total_steps = 2'000'000};
    // All processes contend on one logical object; losers retry on their
    // own private slot so everyone finishes.
    const RunResult r = sim::simulate(
        [&svc](Env& env, ProcessId pid) -> Task<Name> {
          if (co_await svc.acquire(env, 0)) co_return 0;
          co_return static_cast<Name>(pid) + 1;
        },
        cfg);
    EXPECT_TRUE(r.renaming_correct());
    return r.total_steps;
  };
  TournamentTasService tournament(0, 1, kProcs);
  SifterTasService sifter(0, 1, kProcs);
  const std::uint64_t steps_tournament = run(tournament);
  const std::uint64_t steps_sifter = run(sifter);
  EXPECT_LT(steps_sifter, steps_tournament);
}

}  // namespace
}  // namespace loren
