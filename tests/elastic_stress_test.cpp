// ElasticRenamingService: unit coverage + the burst/drain stress test.
//
// The stress acceptance criteria for the elastic subsystem: under
// concurrent acquire/release spanning >= 2 grow and >= 1 shrink events,
// (a) all held names are globally unique across generations, (b) every
// name stays valid (release succeeds) however many resizes happened since
// it was issued, and (c) after the shrink + drain, capacity() is back
// within the small-group bound and the retired generations' memory is
// reclaimed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "platform/rng.h"
#include "test_seed.h"

namespace loren {
namespace {

using sim::Name;

ElasticOptions small_options() {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  return opts;
}

// ------------------------------------------------------------- unit ----

TEST(Elastic, ConstructionPublishesOneGeneration) {
  ElasticRenamingService svc(64, small_options());
  EXPECT_EQ(svc.holders(), 64u);
  EXPECT_EQ(svc.generation(), 1u);
  EXPECT_EQ(svc.groups_in_flight(), 1u);
  EXPECT_GT(svc.capacity(), 0u);
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(Elastic, AcquireReleaseRoundTrip) {
  ElasticRenamingService svc(64, small_options());
  std::vector<Name> names;
  for (int i = 0; i < 48; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    EXPECT_LT(static_cast<std::uint64_t>(n), svc.capacity());
    names.push_back(n);
  }
  // Uniqueness among concurrently held names.
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
  EXPECT_EQ(svc.names_live(), names.size());
  for (const Name n : names) EXPECT_TRUE(svc.release(n));
  // Live-generation releases park in this thread's stash (still counted
  // live); flushing drains them through the shared tag-table path.
  svc.flush_thread_cache();
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(Elastic, ReleaseValidatesNames) {
  ElasticRenamingService svc(64, small_options());
  const Name n = svc.acquire();
  ASSERT_GE(n, 0);
  EXPECT_TRUE(svc.release(n));
  EXPECT_FALSE(svc.release(n)) << "double release must fail";
  EXPECT_FALSE(svc.release(-1));
  EXPECT_FALSE(svc.release(static_cast<Name>(1) << 40))
      << "a name no generation ever issued must fail";
}

TEST(Elastic, ExplicitGrowAndShrinkMoveCapacity) {
  ElasticRenamingService svc(64, small_options());
  const std::uint64_t small_cap = svc.capacity();
  EXPECT_TRUE(svc.grow());
  EXPECT_EQ(svc.holders(), 128u);
  EXPECT_GT(svc.capacity(), small_cap);
  EXPECT_EQ(svc.grow_events(), 1u);
  EXPECT_TRUE(svc.shrink());
  EXPECT_EQ(svc.holders(), 64u);
  EXPECT_EQ(svc.capacity(), small_cap)
      << "a fresh generation of the same holder count has the same bound";
  EXPECT_EQ(svc.shrink_events(), 1u);
  // At the floor, shrink is a no-op.
  EXPECT_FALSE(svc.shrink());
}

TEST(Elastic, NamesSurviveResizesUntilReleased) {
  ElasticRenamingService svc(64, small_options());
  std::vector<Name> held;
  for (int i = 0; i < 32; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    held.push_back(n);
  }
  ASSERT_TRUE(svc.grow());    // gen 2: the names' group starts draining
  ASSERT_TRUE(svc.grow());    // gen 3
  ASSERT_TRUE(svc.shrink());  // gen 4
  // Gen 1 cannot drain while its names are held; empty intermediate
  // generations may already have been reclaimed by the resizes.
  EXPECT_GE(svc.groups_in_flight(), 2u);
  // Every pre-resize name must still release cleanly, exactly once.
  for (const Name n : held) EXPECT_TRUE(svc.release(n));
  for (const Name n : held) EXPECT_FALSE(svc.release(n));
}

TEST(Elastic, AutoGrowServesDemandBeyondInitialCapacity) {
  ElasticOptions opts = small_options();
  opts.grow_miss_threshold = 2;
  ElasticRenamingService svc(64, opts);
  std::vector<Name> held;
  std::vector<std::uint8_t> seen(1u << 20, 0);
  for (int i = 0; i < 600; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0) << "auto-grow must keep serving (i=" << i << ")";
    ASSERT_LT(static_cast<std::uint64_t>(n), seen.size());
    ASSERT_EQ(seen[static_cast<std::uint64_t>(n)], 0) << "duplicate name " << n;
    seen[static_cast<std::uint64_t>(n)] = 1;
    held.push_back(n);
  }
  EXPECT_GE(svc.grow_events(), 2u)
      << "600 holders from a 64-holder start needs at least two doublings";
  // Held names accumulate across draining generations, so the live group
  // only serves the marginal demand: 256 holders is the floor here.
  EXPECT_GE(svc.holders(), 256u);
  for (const Name n : held) EXPECT_TRUE(svc.release(n));
}

TEST(Elastic, DrainedRetireesAreReclaimed) {
  ElasticRenamingService svc(64, small_options());
  std::vector<Name> held;
  for (int i = 0; i < 32; ++i) held.push_back(svc.acquire());
  ASSERT_TRUE(svc.grow());
  ASSERT_TRUE(svc.grow());
  const std::uint64_t peak_footprint = svc.footprint_bytes();
  ASSERT_TRUE(svc.resize(64));
  for (const Name n : held) ASSERT_TRUE(svc.release(n));
  // Two passes: the first unlinks drained retirees (stage A), the second
  // frees them once the unlink epoch quiesced (stage B).
  for (int i = 0; i < 4 && svc.groups_in_flight() > 1; ++i) svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u);
  EXPECT_GE(svc.reclaimed_groups(), 3u);
  EXPECT_LT(svc.footprint_bytes(), peak_footprint);
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(Elastic, ResizeFailsGracefullyWhenAllTagsAreInFlight) {
  ElasticOptions opts = small_options();
  opts.min_holders = 1;
  opts.max_holders = 1u << 20;
  ElasticRenamingService svc(64, opts);
  // Pin every generation with one held name so nothing can drain.
  std::vector<Name> pins;
  pins.push_back(svc.acquire());
  int resizes = 0;
  while (svc.resize(svc.holders() * 2)) {
    ++resizes;
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    pins.push_back(n);
    ASSERT_LE(resizes, static_cast<int>(ElasticRenamingService::kMaxGroups));
  }
  EXPECT_EQ(resizes, static_cast<int>(ElasticRenamingService::kMaxGroups) - 1)
      << "with every generation pinned, the tag table must fill at 8";
  // Releasing the pins lets reclamation free tags and resizing resume.
  for (const Name n : pins) ASSERT_TRUE(svc.release(n));
  svc.reclaim();
  EXPECT_TRUE(svc.resize(svc.holders() * 2));
}

TEST(Elastic, AcquireManyGrowsOnShortfall) {
  ElasticOptions opts = small_options();
  ElasticRenamingService svc(64, opts);
  // One batch far beyond the initial group: each round claims what the
  // live generation has free, the shortfall grows the namespace, and the
  // next round claims the remainder from the new generation.
  std::vector<Name> names(600);
  const std::uint64_t got = svc.acquire_many(names.size(), names.data());
  ASSERT_EQ(got, names.size());
  EXPECT_GE(svc.grow_events(), 2u)
      << "a 600-name batch from a 64-holder start needs >= 2 doublings";
  std::set<Name> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "duplicate names across generations";
  // The whole batch releases cleanly — including the sub-batches issued
  // by now-retired generations — and exactly once.
  EXPECT_EQ(svc.release_many(names.data(), names.size()), names.size());
  EXPECT_EQ(svc.release_many(names.data(), names.size()), 0u);
  svc.flush_thread_cache();
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(Elastic, AcquireManyRespectsGrowthCeiling) {
  ElasticOptions opts = small_options();
  opts.min_holders = 64;
  opts.max_holders = 64;  // growth unavailable
  ElasticRenamingService svc(64, opts);
  const std::uint64_t cells =
      svc.capacity() >> ElasticRenamingService::kTagBits;
  std::vector<Name> names(cells + 32);
  // The batch overshoots a namespace that cannot grow: every free cell is
  // claimed (the sweep backstop), the rest is an honest shortfall.
  const std::uint64_t got = svc.acquire_many(names.size(), names.data());
  EXPECT_EQ(got, cells);
  EXPECT_EQ(svc.grow_events(), 0u);
  EXPECT_EQ(svc.release_many(names.data(), got), got);
}

// ------------------------------------------------------- stress ----

// Uniqueness ledger: one atomic flag per possible name value. acquire must
// flip 0 -> 1 (no concurrent holder), release 1 -> 0.
class NameLedger {
 public:
  explicit NameLedger(std::size_t bound) : flags_(bound) {}

  bool mark_held(Name n) {
    return flags_[static_cast<std::size_t>(n)].exchange(
               1, std::memory_order_acq_rel) == 0;
  }
  bool mark_free(Name n) {
    return flags_[static_cast<std::size_t>(n)].exchange(
               0, std::memory_order_acq_rel) == 1;
  }
  [[nodiscard]] std::size_t bound() const { return flags_.size(); }

 private:
  std::vector<std::atomic<std::uint8_t>> flags_;
};

TEST(ElasticStress, ConcurrentBatchesStayUniqueAcrossResizes) {
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 4000;
  constexpr std::uint64_t kMaxBatch = 8;
  constexpr std::size_t kMaxHeld = 64;

  ElasticOptions opts = small_options();
  opts.grow_miss_threshold = 2;
  opts.auto_shrink = true;  // exercise resize churn under batches too
  ElasticRenamingService svc(64, opts);

  const std::uint64_t seed = test::stress_seed(
      "ElasticStress.ConcurrentBatchesStayUniqueAcrossResizes", 0xBA7C8);
  NameLedger ledger(1u << 20);
  std::atomic<std::uint64_t> uniqueness_violations{0};
  std::atomic<std::uint64_t> validity_violations{0};
  std::atomic<std::uint64_t> out_of_range{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t, seed] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      std::vector<Name> held;
      Name batch[kMaxBatch];
      for (int i = 0; i < kItersPerThread; ++i) {
        if (held.size() < kMaxHeld && rng.below(2) == 0) {
          const std::uint64_t want = std::min<std::uint64_t>(
              1 + rng.below(kMaxBatch), kMaxHeld - held.size());
          const std::uint64_t got = svc.acquire_many(want, batch);
          for (std::uint64_t j = 0; j < got; ++j) {
            if (static_cast<std::uint64_t>(batch[j]) >= ledger.bound()) {
              out_of_range.fetch_add(1, std::memory_order_relaxed);
            } else if (!ledger.mark_held(batch[j])) {
              uniqueness_violations.fetch_add(1, std::memory_order_relaxed);
            } else {
              held.push_back(batch[j]);
            }
          }
        } else if (!held.empty()) {
          const std::uint64_t m =
              std::min<std::uint64_t>(1 + rng.below(kMaxBatch), held.size());
          for (std::uint64_t j = 0; j < m; ++j) {
            batch[j] = held.back();
            held.pop_back();
            // Ledger first, as in the burst/drain stress: once release_many
            // frees the cell another thread may re-acquire the name.
            if (!ledger.mark_free(batch[j])) {
              uniqueness_violations.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (svc.release_many(batch, m) != m) {
            validity_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      for (const Name n : held) {
        ledger.mark_free(n);
        if (!svc.release(n)) {
          validity_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Drain this worker's stash so quiescent accounting is exact.
      svc.flush_thread_cache();
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(uniqueness_violations.load(), 0u);
  EXPECT_EQ(validity_violations.load(), 0u);
  EXPECT_EQ(out_of_range.load(), 0u);
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(ElasticStress, BurstDrainKeepsNamesUniqueAndValid) {
  constexpr int kThreads = 4;
  constexpr int kBurstHold = 96;  // 4 * 96 demand vs 64 initial holders
  constexpr int kDrainHold = 2;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);

  ElasticOptions opts = small_options();
  opts.grow_miss_threshold = 2;
  // Cache off: this test asserts exact live-count watermarks while the
  // workers are mid-run (the drain wait below), which per-thread stashes
  // would inflate by design. The cache x resize interplay has its own
  // coverage: ConcurrentBatchesStayUniqueAcrossResizes here (cache on)
  // and the stale-stash tests in elastic_regression_test / name_cache_test.
  opts.name_cache = false;
  ElasticRenamingService svc(64, opts);

  NameLedger ledger(1u << 20);
  std::atomic<int> hold_target{kBurstHold};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> uniqueness_violations{0};
  std::atomic<std::uint64_t> validity_violations{0};
  std::atomic<std::uint64_t> out_of_range{0};
  std::atomic<std::uint64_t> total_acquired{0};

  const std::uint64_t seed = test::stress_seed(
      "ElasticStress.BurstDrainKeepsNamesUniqueAndValid", 0xACE0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t, seed] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      std::vector<Name> held;
      held.reserve(kBurstHold + 1);
      auto release_one = [&](std::size_t victim) {
        const Name n = held[victim];
        held[victim] = held.back();
        held.pop_back();
        // Ledger first: the instant release() frees the cell, another
        // thread may legitimately re-acquire this very name.
        if (!ledger.mark_free(n)) {
          uniqueness_violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (!svc.release(n)) {
          validity_violations.fetch_add(1, std::memory_order_relaxed);
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const int target = hold_target.load(std::memory_order_relaxed);
        if (static_cast<int>(held.size()) < target) {
          const Name n = svc.acquire();
          if (n < 0) continue;  // transient exhaustion while resizing
          total_acquired.fetch_add(1, std::memory_order_relaxed);
          if (static_cast<std::uint64_t>(n) >= ledger.bound()) {
            out_of_range.fetch_add(1, std::memory_order_relaxed);
            svc.release(n);
          } else if (!ledger.mark_held(n)) {
            uniqueness_violations.fetch_add(1, std::memory_order_relaxed);
          } else {
            held.push_back(n);
          }
        } else if (!held.empty()) {
          release_one(rng.below(held.size()));
        }
        // Churn: occasionally release even below target so cells recycle.
        if (!held.empty() && rng.below(8) == 0) {
          release_one(rng.below(held.size()));
        }
      }
      while (!held.empty()) release_one(held.size() - 1);
    });
  }

  // Phase 1 — burst: wait until sustained pressure has grown the
  // namespace at least twice (64 -> 128 -> 256 at minimum).
  while (svc.grow_events() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(svc.grow_events(), 2u) << "burst phase never grew the namespace";

  // Phase 2 — drain: demand collapses; shrink back to the floor while the
  // workers keep acquiring/releasing (names from retired generations must
  // stay valid throughout).
  hold_target.store(kDrainHold, std::memory_order_relaxed);
  while (svc.names_live() > kThreads * kDrainHold &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  while (svc.holders() > 64 && std::chrono::steady_clock::now() < deadline) {
    svc.shrink();  // may no-op if a free tag is momentarily unavailable
    svc.reclaim();
  }
  EXPECT_GE(svc.shrink_events(), 1u);
  EXPECT_EQ(svc.holders(), 64u);

  // Phase 3 — shutdown: workers release everything they still hold.
  stop.store(true);
  for (auto& w : workers) w.join();

  EXPECT_EQ(uniqueness_violations.load(), 0u);
  EXPECT_EQ(validity_violations.load(), 0u);
  EXPECT_EQ(out_of_range.load(), 0u);
  EXPECT_GT(total_acquired.load(), 0u);
  EXPECT_EQ(svc.names_live(), 0u);

  // Post-shrink, post-drain: the bound on new names is back to the
  // small-group bound, and the retired generations' memory is gone.
  for (int i = 0; i < 6 && svc.groups_in_flight() > 1; ++i) svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u);
  const ElasticRenamingService reference(64, small_options());
  EXPECT_LE(svc.capacity(), reference.capacity());
  EXPECT_LE(svc.footprint_bytes(), reference.footprint_bytes());
}

}  // namespace
}  // namespace loren
