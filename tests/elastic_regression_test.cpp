// Regression tests for three elastic-path bugs fixed together:
//
//   1. Spurious grows: ElasticRenamingService::acquire's sweep-path wins
//      never cleared miss_streak_, so sweep-served acquisitions let the
//      streak accumulate across calls and one later schedule miss crossed
//      grow_miss_threshold — doubling capacity with no sustained pressure.
//   2. hardware_concurrency() == 0: auto_shard_count used the raw value,
//      where 0 ("unknown") made the `shards < hw` growth condition
//      unsatisfiable by accident of unsigned comparison. Now clamped to
//      1 — the same conservative shard count, but as an explicit,
//      documented contract — and hw is injectable so the policy is
//      unit-testable against any topology.
//   3. Stale double-release ABA: a release() of a name from an already-
//      reclaimed generation whose 3-bit tag has been recycled validated
//      only the tag, freeing a victim's cell in the *new* group. The
//      debug_release_guard generation stamp rejects it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"

namespace loren {
namespace {

using sim::Name;

// ---------------------------------------------------- 1. spurious grow ----

TEST(ElasticRegression, SweepWinsDoNotAccumulateIntoSpuriousGrow) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.auto_grow = true;
  opts.grow_miss_threshold = 4;
  // Cache off: the repro needs every re-acquisition to walk the probe
  // schedule into the sweep; with a stash the released name would be
  // re-issued thread-locally and the sweep path never runs.
  opts.name_cache = false;
  ElasticRenamingService svc(64, opts);

  // Fill every cell of the live group. Each acquisition succeeds (via
  // schedule or sweep), so no true exhaustion and no legitimate grow.
  const std::uint64_t cells =
      svc.capacity() >> ElasticRenamingService::kTagBits;
  std::vector<Name> held;
  held.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0) << "group exhausted early at " << i << " of " << cells;
    held.push_back(n);
  }

  // Saturated churn: release one name, re-acquire it. With a single free
  // cell the probe schedule all but always misses and the deterministic
  // sweep serves the call — a *successful* acquisition every time, so the
  // miss streak must never reach grow_miss_threshold. Unfixed, sweep wins
  // left the streak in place and four such calls doubled capacity.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(svc.release(held.back()));
    held.pop_back();
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    held.push_back(n);
  }

  EXPECT_EQ(svc.grow_events(), 0u)
      << "sweep-served acquisitions accumulated into a spurious grow";
  EXPECT_EQ(svc.holders(), 64u);
  EXPECT_EQ(svc.generation(), 1u);

  for (const Name n : held) EXPECT_TRUE(svc.release(n));
}

// --------------------------------------------- 2. hw-detection faults ----

TEST(AutoShardCount, ZeroHardwareConcurrencyMeansOne) {
  BatchLayoutParams params;
  params.epsilon = 0.5;
  // 0 = "could not be determined" per the standard; the policy must treat
  // it as 1, not let `shards < 0u` disable thread dispersion.
  const std::uint64_t s0 = auto_shard_count(1u << 14, params, 0);
  const std::uint64_t s1 = auto_shard_count(1u << 14, params, 1);
  EXPECT_GE(s0, 1u);
  EXPECT_EQ(s0, s1);
  EXPECT_EQ(s0 & (s0 - 1), 0u) << "not a power of two";
}

TEST(AutoShardCount, ShardsForInjectedTopology) {
  BatchLayoutParams params;
  params.epsilon = 0.5;
  // Large namespace, 8 hardware threads: at least 8 home shards.
  EXPECT_GE(auto_shard_count(1u << 14, params, 8), 8u);
  // Monotone in hw for a fixed n.
  EXPECT_LE(auto_shard_count(1u << 14, params, 2),
            auto_shard_count(1u << 14, params, 16));
  // Tiny namespaces never shard below 64 holders, whatever hw says.
  EXPECT_EQ(auto_shard_count(64, params, 64), 1u);
}

TEST(ShardCountFor, InjectedHwFlowsThroughAndExplicitRequestsStillWin) {
  BatchLayoutParams params;
  params.epsilon = 0.5;
  EXPECT_EQ(shard_count_for(1u << 14, 0, params, 0),
            auto_shard_count(1u << 14, params, 0));
  EXPECT_EQ(shard_count_for(1u << 14, 0, params, 8),
            auto_shard_count(1u << 14, params, 8));
  // An explicit request ignores hw entirely (rounded up to a power of two).
  EXPECT_EQ(shard_count_for(1u << 14, 3, params, 0), 4u);
  EXPECT_EQ(shard_count_for(1u << 14, 4, params, 0), 4u);
}

// ------------------------------------------- 3. stale double-release ----

TEST(ElasticRegression, StaleReleaseFromRecycledTagIsRejected) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.debug_release_guard = true;
  // Cache off: the ABA setup needs the first release to actually free the
  // cell (so gen 1 drains and tag 0 recycles); a stashed release would
  // keep gen 1 alive and the recycle could never materialize.
  opts.name_cache = false;
  ElasticRenamingService svc(64, opts);

  // A (buggy) client acquires, releases, and keeps a stale copy.
  const Name stale = svc.acquire();
  ASSERT_GE(stale, 0);
  ASSERT_EQ(static_cast<std::uint64_t>(stale) &
                (ElasticRenamingService::kMaxGroups - 1),
            0u)
      << "generation 1 must sit in tag slot 0";
  ASSERT_TRUE(svc.release(stale));

  // Recycle tag 0: resize away (gen 2 takes tag 1, gen 1 drains empty and
  // is reclaimed), then resize back (gen 3 takes the freed tag 0).
  ASSERT_TRUE(svc.resize(128));
  svc.reclaim();  // single-threaded: quiescence is immediate, both stages run
  ASSERT_TRUE(svc.resize(64));
  const Name probe = svc.acquire();
  ASSERT_GE(probe, 0);
  ASSERT_EQ(static_cast<std::uint64_t>(probe) &
                (ElasticRenamingService::kMaxGroups - 1),
            0u)
      << "tag 0 was not recycled — the ABA setup did not materialize";
  ASSERT_TRUE(svc.release(probe));

  // Fill the recycled-tag group completely, so whatever cell the stale
  // name points at is now held by a victim.
  const std::uint64_t cells =
      svc.capacity() >> ElasticRenamingService::kTagBits;
  std::vector<Name> victims;
  victims.reserve(cells);
  for (std::uint64_t i = 0; i < cells; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    victims.push_back(n);
  }

  // The stale double-release must be rejected: its generation stamp (1)
  // mismatches the group now holding tag 0. Unguarded, this freed a
  // victim's cell and the victim's own release then failed.
  EXPECT_FALSE(svc.release(stale))
      << "stale release from a reclaimed generation freed a victim's cell";
  for (const Name n : victims) {
    EXPECT_TRUE(svc.release(n)) << "victim lost its name to the stale release";
  }
}

TEST(ElasticRegression, GuardedNamesStillRoundTrip) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.debug_release_guard = true;
  ElasticRenamingService svc(64, opts);

  std::set<Name> names;
  for (int i = 0; i < 48; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    ASSERT_TRUE(names.insert(n).second) << "duplicate " << n;
  }
  // Guarded batches too: stamps ride through acquire_many/release_many.
  Name batch[16];
  const std::uint64_t got = svc.acquire_many(16, batch);
  ASSERT_EQ(got, 16u);
  for (std::uint64_t i = 0; i < got; ++i) {
    ASSERT_TRUE(names.insert(batch[i]).second) << "duplicate " << batch[i];
  }
  EXPECT_EQ(svc.release_many(batch, got), got);
  EXPECT_EQ(svc.release_many(batch, got), 0u) << "double batch release";
  for (const Name n : names) {
    const bool was_batch = std::find(batch, batch + got, n) != batch + got;
    if (!was_batch) {
      EXPECT_TRUE(svc.release(n));
    }
  }
  // Stamped names ride through the stash too; flush for exact accounting.
  svc.flush_thread_cache();
  EXPECT_EQ(svc.names_live(), 0u);
}

}  // namespace
}  // namespace loren
