// Tests for the adaptive algorithms (paper Section 5): AdaptiveReBatching
// (Theorem 5.1) and FastAdaptiveReBatching (Theorem 5.2). The key adaptive
// properties: names O(k) and step bounds depending only on the realized
// contention k, for any k, without knowing n.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "renaming/adaptive.h"
#include "renaming/concurrent.h"
#include "renaming/fast_adaptive.h"
#include "renaming/object_stack.h"
#include "sim/runner.h"
#include "sim/scheduler.h"
#include "tas/tas_arena.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

AlgoFactory adaptive_factory(AdaptiveReBatching& algo) {
  return [&algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo.get_name(env);
  };
}

AlgoFactory fast_factory(FastAdaptiveReBatching& algo) {
  return [&algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo.get_name(env);
  };
}

// ------------------------------------------------------- object stack ----

TEST(ReBatchingStack, LazyConsecutiveNamespaces) {
  ReBatchingStack stack({.epsilon = 1.0}, 0, 20);
  EXPECT_EQ(stack.instantiated(), 0u);
  ReBatching& r3 = stack.object(3);
  EXPECT_EQ(stack.instantiated(), 3u);  // R_1, R_2 created on the way
  EXPECT_EQ(stack.object(1).base(), 0u);
  EXPECT_EQ(stack.object(2).base(), stack.object(1).end());
  EXPECT_EQ(r3.base(), stack.object(2).end());
  EXPECT_EQ(r3.layout().n(), 8u);  // n_3 = 2^3
}

TEST(ReBatchingStack, ObjectIndexOfRoundTrips) {
  ReBatchingStack stack({.epsilon = 1.0}, 0, 20);
  stack.object(6);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const ReBatching& obj = stack.object(i);
    EXPECT_EQ(stack.object_index_of(static_cast<Name>(obj.base())), i);
    EXPECT_EQ(stack.object_index_of(static_cast<Name>(obj.end() - 1)), i);
  }
  EXPECT_EQ(stack.object_index_of(-1), 0u);
  EXPECT_EQ(stack.object_index_of(static_cast<Name>(stack.object(6).end())), 0u);
}

TEST(ReBatchingStack, BaseOffsetRespected) {
  ReBatchingStack stack({.epsilon = 1.0}, 500, 20);
  EXPECT_EQ(stack.object(1).base(), 500u);
  EXPECT_EQ(stack.object_index_of(499), 0u);
  EXPECT_EQ(stack.object_index_of(500), 1u);
}

TEST(ReBatchingStack, RejectsBadIndices) {
  ReBatchingStack stack({.epsilon = 1.0}, 0, 10);
  EXPECT_THROW(stack.object(0), std::out_of_range);
  EXPECT_THROW(stack.object(11), std::out_of_range);
  EXPECT_THROW(ReBatchingStack({.epsilon = 1.0}, 0, 0), std::invalid_argument);
  EXPECT_THROW(ReBatchingStack({.epsilon = 1.0}, 0, 41), std::invalid_argument);
}

// --------------------------------------------------- adaptive renaming ----

class AdaptiveContention : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveContention, NamesAreOrderK) {
  const ProcessId k = static_cast<ProcessId>(1) << GetParam();
  AdaptiveReBatching algo;
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = k, .seed = 42u + k, .strategy = &strat};
  const RunResult r = sim::simulate(adaptive_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, k);
  // Theorem 5.1: largest name <= 4(1+eps)k = 8k for eps=1. Our layout
  // prefix sums give the same constant up to rounding; use 10k + slack.
  EXPECT_LT(r.max_name, static_cast<Name>(10 * std::uint64_t{k} + 64))
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, AdaptiveContention,
                         ::testing::Values(0, 1, 2, 4, 6, 8, 10));

TEST(Adaptive, SoloProcessGetsTinyNameFast) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    AdaptiveReBatching algo;
    sim::RoundRobinStrategy strat;
    RunConfig cfg{.num_processes = 1, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(adaptive_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    // Wins in R_1 (namespace size ~4): name < end of R_1.
    EXPECT_LT(r.max_name, static_cast<Name>(algo.stack().object(1).end()));
    EXPECT_LE(r.max_steps, 4u);
  }
}

TEST(Adaptive, StepsGrowSlowlyWithK) {
  // O((log log k)^2): the max steps at k=1024 should still be modest and
  // the growth from k=16 to k=1024 should be far below linear/logarithmic.
  auto max_steps_at = [](ProcessId k) {
    AdaptiveReBatching algo;
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = k, .seed = 5, .strategy = &strat};
    const RunResult r = sim::simulate(adaptive_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    return r.max_steps;
  };
  const std::uint64_t at16 = max_steps_at(16);
  const std::uint64_t at1024 = max_steps_at(1024);
  EXPECT_LT(at1024, 4 * at16 + 64);  // wildly sublinear growth
}

TEST(Adaptive, AdversarialSchedulesStayCorrect) {
  for (int kind = 0; kind < 2; ++kind) {
    AdaptiveReBatching algo;
    std::unique_ptr<sim::Strategy> strat;
    if (kind == 0) {
      strat = std::make_unique<sim::CollisionAdversary>();
    } else {
      strat = std::make_unique<sim::LayeredStrategy>();
    }
    RunConfig cfg{.num_processes = 128, .seed = 9, .strategy = strat.get()};
    const RunResult r = sim::simulate(adaptive_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_EQ(r.finished, 128u);
  }
}

TEST(Adaptive, CrashTolerance) {
  AdaptiveReBatching algo;
  auto base = std::make_unique<sim::RandomStrategy>();
  sim::CrashDecorator strat(std::move(base), 32,
                            sim::CrashDecorator::Mode::kRandom, 7);
  RunConfig cfg{.num_processes = 128, .seed = 13, .strategy = &strat};
  const RunResult r = sim::simulate(adaptive_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.crashed, 32u);
}

// ----------------------------------------------- fast adaptive (Fig 2) ----

class FastAdaptiveContention : public ::testing::TestWithParam<int> {};

TEST_P(FastAdaptiveContention, NamesAreOrderK) {
  const ProcessId k = static_cast<ProcessId>(1) << GetParam();
  FastAdaptiveReBatching algo;
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = k, .seed = 7u + k, .strategy = &strat};
  const RunResult r = sim::simulate(fast_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, k);
  EXPECT_LT(r.max_name, static_cast<Name>(10 * std::uint64_t{k} + 64))
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, FastAdaptiveContention,
                         ::testing::Values(0, 1, 2, 4, 6, 8, 10));

TEST(FastAdaptive, TotalStepsBeatAdaptivePerProcessTotals) {
  // Theorem 5.2 vs 5.1: total steps O(k log log k) vs Theta(k (log log k)^2).
  // The paper's proof constant t0 = ceil(17 ln(8e/eps)/eps) = 53 swamps the
  // asymptotic separation at reachable k (both algorithms spend ~t0 per
  // object visited in the race), so measure with the practical probe
  // budget; E6 reports both settings.
  constexpr ProcessId k = 4096;
  AdaptiveReBatching slow(AdaptiveReBatching::Options{
      .layout = {.epsilon = 1.0, .beta = 2, .t0_override = 4}});
  FastAdaptiveReBatching fast(
      FastAdaptiveReBatching::Options{.beta = 2, .t0_override = 4});
  sim::RandomStrategy s1, s2;
  RunConfig c1{.num_processes = k, .seed = 3, .strategy = &s1};
  RunConfig c2{.num_processes = k, .seed = 3, .strategy = &s2};
  const RunResult r_slow = sim::simulate(adaptive_factory(slow), c1);
  const RunResult r_fast = sim::simulate(fast_factory(fast), c2);
  EXPECT_TRUE(r_slow.renaming_correct());
  EXPECT_TRUE(r_fast.renaming_correct());
  EXPECT_LT(r_fast.total_steps, r_slow.total_steps);
}

TEST(FastAdaptive, SoloProcess) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FastAdaptiveReBatching algo;
    sim::RoundRobinStrategy strat;
    RunConfig cfg{.num_processes = 1, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(fast_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_LT(r.max_name, static_cast<Name>(algo.stack().object(1).end()));
  }
}

TEST(FastAdaptive, AdversarialSchedulesStayCorrect) {
  for (int seed = 1; seed <= 3; ++seed) {
    FastAdaptiveReBatching algo;
    sim::CollisionAdversary strat;
    RunConfig cfg{.num_processes = 256,
                  .seed = static_cast<std::uint64_t>(seed),
                  .strategy = &strat};
    const RunResult r = sim::simulate(fast_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_EQ(r.finished, 256u);
  }
}

TEST(FastAdaptive, CrashTolerance) {
  FastAdaptiveReBatching algo;
  auto base = std::make_unique<sim::RandomStrategy>();
  sim::CrashDecorator strat(std::move(base), 50,
                            sim::CrashDecorator::Mode::kRandom, 11);
  RunConfig cfg{.num_processes = 256, .seed = 21, .strategy = &strat};
  const RunResult r = sim::simulate(fast_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.crashed, 50u);
}

TEST(FastAdaptive, SharedStackAcrossBothPhases) {
  // Processes race and then descend: every assigned name must come from an
  // instantiated object and map back through object_index_of.
  FastAdaptiveReBatching algo;
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = 512, .seed = 4, .strategy = &strat};
  const RunResult r = sim::simulate(fast_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  for (const auto& p : r.processes) {
    ASSERT_GE(p.name, 0);
    EXPECT_GE(algo.stack().object_index_of(p.name), 1u);
  }
}

TEST(FastAdaptive, DeterministicGivenSeed) {
  FastAdaptiveReBatching a1, a2;
  sim::RandomStrategy s1, s2;
  RunConfig c1{.num_processes = 128, .seed = 55, .strategy = &s1};
  RunConfig c2{.num_processes = 128, .seed = 55, .strategy = &s2};
  const RunResult r1 = sim::simulate(fast_factory(a1), c1);
  const RunResult r2 = sim::simulate(fast_factory(a2), c2);
  for (std::size_t i = 0; i < r1.processes.size(); ++i) {
    EXPECT_EQ(r1.processes[i].name, r2.processes[i].name);
  }
}

// ------------------------------------------- real threads (hardware) ----
// The simulator tests above exercise the algorithms under controlled
// adversaries; these run the same adaptive code over std::thread workers
// and real std::atomic cells, where the interleavings are the machine's.

TEST(AdaptiveHardware, ConcurrentRenamerNamesAreUniqueAndBounded) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 64;  // realized contention k = 256
  AdaptiveConcurrentRenamer renamer(/*max_contention=*/1024);
  std::vector<std::vector<sim::Name>> got(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (unsigned i = 0; i < kPerThread; ++i) {
        got[t].push_back(renamer.get_name());
      }
    });
  }
  for (auto& th : pool) th.join();

  std::vector<sim::Name> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), std::size_t{kThreads} * kPerThread);
  for (const sim::Name n : all) {
    EXPECT_GE(n, 0);
    EXPECT_LT(static_cast<std::uint64_t>(n), renamer.capacity());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "adaptive renaming handed out a duplicate name under real threads";
}

TEST(AdaptiveHardware, SoloThreadGetsSmallName) {
  // Theorem 5.1 at k = 1: the solo process wins in R_1 w.h.p., so its
  // name is O(1) — far below the capacity provisioned for k = 256.
  for (int round = 0; round < 10; ++round) {
    AdaptiveConcurrentRenamer renamer(/*max_contention=*/256);
    const sim::Name n = renamer.get_name();
    ASSERT_GE(n, 0);
    EXPECT_LT(n, 32) << "solo acquisition should stay in the first objects";
  }
}

TEST(AdaptiveHardware, FastAdaptiveOverSharedArenaIsUniqueAndOrderK) {
  // FastAdaptiveReBatching has no dedicated hardware wrapper; drive the
  // coroutine directly over a shared packed TasArena, one ArenaEnv (own
  // rng stream + pid) per acquisition, as AdaptiveConcurrentRenamer does.
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 32;  // realized contention k = 128
  constexpr std::uint64_t kMaxObject = 12;
  FastAdaptiveReBatching algo(
      FastAdaptiveReBatching::Options{.max_object_index = kMaxObject});
  // Size the arena for the deepest object the race may touch.
  const std::uint64_t cells = algo.stack().object(kMaxObject).end();
  TasArena arena(cells, ArenaLayout::kPacked);

  std::vector<std::vector<sim::Name>> got(kThreads);
  std::atomic<std::uint32_t> ticket{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      got[t].reserve(kPerThread);
      for (unsigned i = 0; i < kPerThread; ++i) {
        ArenaEnv env(arena, 0xFA57,
                     ticket.fetch_add(1, std::memory_order_relaxed));
        got[t].push_back(sim::run_sync(algo.get_name(env)));
      }
    });
  }
  for (auto& th : pool) th.join();

  std::vector<sim::Name> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  for (const sim::Name n : all) ASSERT_GE(n, 0);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  // Namespace bound: names O(k) w.h.p. — the doubling race for k = 128
  // settles around R_8; far below the R_12 extent the arena allows.
  EXPECT_LT(all.back(), static_cast<sim::Name>(algo.stack().object(10).end()))
      << "largest name " << all.back() << " is not O(k) for k = 128";
}

// Both adaptive algorithms must assign small names to *late* low-contention
// bursts too: k processes, then the names should not depend on how large
// the stack could have grown.
TEST(Adaptive, RepeatedSmallBurstsKeepNamesSmall) {
  AdaptiveReBatching algo;
  sim::SimEnv env(8, 77);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = 8, .seed = 77, .strategy = &strat};
  const RunResult r = sim::run_execution(env, adaptive_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_LT(r.max_name, 200);
}

}  // namespace
}  // namespace loren
