// Tests for EpochDomain (platform/epoch.h): the quiescence primitive the
// elastic resize protocol is built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "platform/epoch.h"

namespace loren {
namespace {

TEST(EpochDomain, StartsQuiescedAndAtEpochOne) {
  EpochDomain d;
  EXPECT_EQ(d.current(), 1u);
  EXPECT_TRUE(d.quiesced(1));
  EXPECT_TRUE(d.quiesced(d.current()));
}

TEST(EpochDomain, AdvanceReturnsNewEpoch) {
  EpochDomain d;
  EXPECT_EQ(d.advance(), 2u);
  EXPECT_EQ(d.advance(), 3u);
  EXPECT_EQ(d.current(), 3u);
}

TEST(EpochDomain, PinnedReaderBlocksQuiescenceUntilUnpinned) {
  EpochDomain d;
  EpochDomain::Slot& slot = d.register_thread();
  {
    EpochDomain::Guard guard(d, slot);  // pinned at epoch 1
    const std::uint64_t e = d.advance();  // e == 2
    EXPECT_FALSE(d.quiesced(e)) << "reader pinned at 1 must block epoch 2";
  }
  EXPECT_TRUE(d.quiesced(d.current()));
}

TEST(EpochDomain, ReaderPinnedAfterAdvanceDoesNotBlockThatEpoch) {
  EpochDomain d;
  EpochDomain::Slot& slot = d.register_thread();
  const std::uint64_t e = d.advance();  // e == 2
  EpochDomain::Guard guard(d, slot);    // pins at >= 2
  EXPECT_TRUE(d.quiesced(e));
}

TEST(EpochDomain, IdleSlotsNeverBlock) {
  EpochDomain d;
  for (int i = 0; i < 8; ++i) d.register_thread();
  d.advance();
  EXPECT_TRUE(d.quiesced(d.current()));
}

TEST(EpochDomain, GuardsNest_SequentiallyOnOneThread) {
  EpochDomain d;
  EpochDomain::Slot& slot = d.register_thread();
  for (int i = 0; i < 100; ++i) {
    EpochDomain::Guard guard(d, slot);
    EXPECT_NE(slot.pinned.load(), EpochDomain::kIdle);
  }
  EXPECT_EQ(slot.pinned.load(), EpochDomain::kIdle);
}

// The protocol the elastic service runs, in miniature: readers chase a
// published pointer under pins while a writer swaps it out, advances, and
// waits for quiescence before poisoning the old target. If quiescence were
// ever reported early, a reader would observe the poison value.
TEST(EpochDomain, SwapAdvanceQuiesceNeverFreesUnderAReader) {
  constexpr int kReaders = 3;
  constexpr int kSwaps = 200;
  EpochDomain d;
  struct Box {
    std::atomic<std::uint64_t> value{0};
  };
  std::vector<Box> boxes(kSwaps + 1);
  for (int i = 0; i <= kSwaps; ++i) boxes[i].value.store(1);
  std::atomic<Box*> published{&boxes[0]};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> poisoned_reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      EpochDomain::Slot& slot = d.register_thread();
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard guard(d, slot);
        Box* box = published.load(std::memory_order_acquire);
        if (box->value.load(std::memory_order_relaxed) == 0xDEAD) {
          poisoned_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 1; i <= kSwaps; ++i) {
    Box* old = published.exchange(&boxes[i], std::memory_order_acq_rel);
    const std::uint64_t e = d.advance();
    while (!d.quiesced(e)) std::this_thread::yield();
    old->value.store(0xDEAD, std::memory_order_relaxed);  // "free"
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(poisoned_reads.load(), 0u);
}

TEST(EpochDomain, SlotsAreRegisteredPerCall) {
  EpochDomain d;
  EXPECT_EQ(d.slots(), 0u);
  d.register_thread();
  d.register_thread();
  EXPECT_EQ(d.slots(), 2u);
}

}  // namespace
}  // namespace loren
