// The bounded sweep-retry budget (satellite of the scenario-engine PR):
// both services' deterministic sweep backstops accept a per-acquisition
// shard budget, fail fast with the explicit kSweepBudgetExhausted code
// when it runs out, count the event — and, critically, never let a
// budget-truncated scan masquerade as exhaustion pressure (no miss
// streak, no grow): a bounded scan giving up says nothing about how full
// the namespace is.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"

namespace loren {
namespace {

using sim::Name;

TEST(SweepBudget, RenamingServiceFailsFastWithExplicitCode) {
  RenamingServiceOptions opts;
  opts.shards = 4;
  opts.name_cache = false;
  opts.sweep_retry_budget = 1;  // sweep at most one shard per acquisition
  RenamingService svc(256, opts);

  // Fill until the bounded service refuses. The walk may give up early
  // (free cells in un-swept shards are unreachable once the schedule
  // misses), but the refusal must always carry the explicit budget code,
  // never be mistaken for plain -1 exhaustion.
  std::vector<Name> held;
  for (std::uint64_t i = 0; i < svc.capacity(); ++i) {
    const Name n = svc.acquire();
    if (n < 0) {
      EXPECT_EQ(n, RenamingService::kSweepBudgetExhausted)
          << "bounded sweep failed without the explicit code at " << i;
      break;
    }
    held.push_back(n);
  }
  // Whether the loop broke early or ran the namespace truly full, the
  // next acquisition's sweep is truncated (1 of 4 shards) and must
  // report the budget, not exhaustion.
  EXPECT_EQ(svc.acquire(), RenamingService::kSweepBudgetExhausted);
  EXPECT_GE(svc.sweep_budget_exhausted(), 1u);

  for (const Name n : held) EXPECT_TRUE(svc.release(n));
  EXPECT_EQ(svc.names_live(), 0u);
  // With the namespace drained the probe schedule wins again: the budget
  // only bounds the backstop, not steady-state service.
  const Name again = svc.acquire();
  EXPECT_GE(again, 0);
  EXPECT_TRUE(svc.release(again));
}

TEST(SweepBudget, RenamingServiceBatchShortfallCountsBudget) {
  RenamingServiceOptions opts;
  opts.shards = 4;
  opts.name_cache = false;
  opts.sweep_retry_budget = 1;
  RenamingService svc(256, opts);

  // Saturate via batches, then demand more: the shortfall's backstop
  // sweep is budget-truncated and must be counted.
  std::vector<Name> held(svc.capacity());
  const std::uint64_t got = svc.acquire_many(svc.capacity(), held.data());
  held.resize(got);
  Name extra[8];
  const std::uint64_t over = svc.acquire_many(8, extra);
  if (over < 8) {
    EXPECT_GE(svc.sweep_budget_exhausted(), 1u);
  }
  for (std::uint64_t i = 0; i < over; ++i) EXPECT_TRUE(svc.release(extra[i]));
  for (const Name n : held) EXPECT_TRUE(svc.release(n));
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(SweepBudget, ElasticTruncationIsNotExhaustionPressure) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.shards = 4;
  opts.name_cache = false;
  opts.auto_grow = true;  // growth armed: truncation must still not fire it
  opts.grow_miss_threshold = 1000000;  // streak can never legitimately grow
  opts.sweep_retry_budget = 1;
  ElasticRenamingService svc(64, opts);

  std::vector<Name> held;
  Name last = 0;
  for (std::uint64_t i = 0; i <= svc.capacity(); ++i) {
    last = svc.acquire();
    if (last < 0) break;
    held.push_back(last);
  }
  // The bounded walk gave up: explicit code, counted, and — the point of
  // the discipline — no grow happened. A truncated scan feeding the grow
  // path would reintroduce the spurious-grow bug.
  EXPECT_EQ(last, ElasticRenamingService::kSweepBudgetExhausted);
  EXPECT_GE(svc.sweep_budget_exhausted(), 1u);
  EXPECT_EQ(svc.grow_events(), 0u)
      << "a budget-truncated sweep was treated as exhaustion pressure";
  EXPECT_EQ(svc.generation(), 1u);
  EXPECT_EQ(svc.holders(), 64u);

  for (const Name n : held) EXPECT_TRUE(svc.release(n));
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(SweepBudget, ElasticBatchShortfallDoesNotGrow) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.shards = 4;
  opts.name_cache = false;
  opts.auto_grow = true;
  opts.grow_miss_threshold = 1000000;
  opts.sweep_retry_budget = 1;
  ElasticRenamingService svc(64, opts);

  std::vector<Name> held(svc.capacity() + 8);
  const std::uint64_t got = svc.acquire_many(held.size(), held.data());
  held.resize(got);
  // Demand exceeded capacity, so the batch fell short — through the
  // truncated backstop, which must surface in the counter and must not
  // have grown the namespace.
  EXPECT_LT(got, svc.capacity() + 8);
  EXPECT_GE(svc.sweep_budget_exhausted(), 1u);
  EXPECT_EQ(svc.grow_events(), 0u);
  EXPECT_EQ(svc.generation(), 1u);

  EXPECT_EQ(svc.release_many(held.data(), held.size()), held.size());
  EXPECT_EQ(svc.names_live(), 0u);
}

TEST(SweepBudget, ZeroBudgetKeepsTheHistoricalFullSweep) {
  RenamingServiceOptions opts;
  opts.shards = 4;
  opts.name_cache = false;
  opts.sweep_retry_budget = 0;  // unbounded: the pre-budget contract
  RenamingService svc(256, opts);

  std::vector<Name> held;
  for (std::uint64_t i = 0; i < svc.capacity(); ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0) << "unbounded sweep failed on a non-full namespace";
    held.push_back(n);
  }
  // Truly full: plain exhaustion, not a budget report.
  EXPECT_EQ(svc.acquire(), RenamingService::kExhausted);
  EXPECT_EQ(svc.sweep_budget_exhausted(), 0u);
  for (const Name n : held) EXPECT_TRUE(svc.release(n));
}

}  // namespace
}  // namespace loren
