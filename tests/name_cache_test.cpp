// The thread-local name cache (renaming/thread_ctx.h NameStash + its
// integration in RenamingService and ElasticRenamingService):
//
//   * stash hit/miss/overflow-spill units — a released name is re-issued
//     to its releasing thread with no shared traffic, overflow spills the
//     oldest half through the shared path, double releases of stashed
//     names are rejected;
//   * adaptive sizing — the per-thread capacity doubles under sustained
//     hot reuse and halves under adversarial zero-reuse;
//   * reset invalidation — a fixed-service reset() discards stashes, so
//     a stale stashed name is never re-issued into a fresh epoch;
//   * cross-thread handoff stress — names released on thread A must NOT
//     be served to thread B out of A's stash; B can only see them after
//     they spill/flush through the shared path (runs under TSan in CI);
//   * elastic stale-stash regression — after a shrink, a name stashed
//     under a retired generation is never returned by acquire (it is
//     flushed through the tag table instead), and the retired generation
//     still drains and reclaims.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "platform/rng.h"
#include "test_seed.h"
#include "renaming/service.h"
#include "renaming/thread_ctx.h"

namespace loren {
namespace {

using sim::Name;

RenamingServiceOptions cached(std::uint64_t shards, std::uint32_t cap = 16) {
  RenamingServiceOptions opts;
  opts.shards = shards;
  opts.name_cache = true;
  opts.name_cache_capacity = cap;
  return opts;
}

// ------------------------------------------------------- stash units ----

TEST(NameStash, LifoPushPopAndContains) {
  NameStash st;
  st.configure(8);
  EXPECT_TRUE(st.empty());
  EXPECT_EQ(st.capacity(), 8u);
  st.push(10);
  st.push(20);
  EXPECT_EQ(st.size(), 2u);
  EXPECT_TRUE(st.contains(10));
  EXPECT_FALSE(st.contains(30));
  EXPECT_EQ(st.pop(), 20) << "LIFO: the hottest (last released) name first";
  EXPECT_EQ(st.pop(), 10);
  EXPECT_TRUE(st.empty());
}

TEST(NameStash, TakeOldestKeepsTheHotHalf) {
  NameStash st;
  st.configure(8);
  for (std::int64_t i = 0; i < 8; ++i) st.push(i);
  std::int64_t out[8];
  EXPECT_EQ(st.take_oldest(out, 3), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(st.size(), 5u);
  EXPECT_EQ(st.pop(), 7) << "the most recently pushed names survive a spill";
}

TEST(NameStash, ConfigureClampsIntoBounds) {
  NameStash st;
  st.configure(1);
  EXPECT_EQ(st.capacity(), NameStash::kMinCapacity);
  st.configure(1000);
  EXPECT_EQ(st.capacity(), NameStash::kMaxCapacity);
}

TEST(NameStash, AdaptiveWindowGrowsAndShrinksCapacity) {
  NameStash st;
  st.configure(16);
  // A full window of hits doubles the capacity...
  for (std::uint32_t i = 0; i < NameStash::kAdaptWindow; ++i) {
    const auto ws = st.note_acquire(true);
    EXPECT_EQ(ws.rolled, i + 1 == NameStash::kAdaptWindow);
  }
  EXPECT_EQ(st.capacity(), 32u);
  // ...and a full window of misses halves it.
  for (std::uint32_t i = 0; i < NameStash::kAdaptWindow; ++i) {
    st.note_acquire(false);
  }
  EXPECT_EQ(st.capacity(), 16u);
}

// --------------------------------------------------- fixed service ----

TEST(NameCache, HitServesTheReleasedNameLocally) {
  RenamingService service(256, cached(4));
  const Name a = service.acquire();
  ASSERT_GE(a, 0);
  EXPECT_TRUE(service.release(a));
  EXPECT_EQ(service.thread_cache_size(), 1u);
  // The stashed name comes straight back; the cell never went free, so
  // the live count never moved.
  EXPECT_EQ(service.names_live(), 1u);
  EXPECT_EQ(service.acquire(), a);
  EXPECT_EQ(service.thread_cache_size(), 0u);
  EXPECT_TRUE(service.release(a));
  EXPECT_EQ(service.flush_thread_cache(), 1u);
  EXPECT_EQ(service.names_live(), 0u);
}

TEST(NameCache, DoubleReleaseOfStashedNameFails) {
  RenamingService service(256, cached(4));
  const Name a = service.acquire();
  ASSERT_GE(a, 0);
  EXPECT_TRUE(service.release(a));
  EXPECT_FALSE(service.release(a)) << "stash duplicate scan missed it";
  Name arr[2] = {a, a};
  EXPECT_EQ(service.release_many(arr, 2), 0u);
  service.flush_thread_cache();
  EXPECT_FALSE(service.release(a)) << "spilled cell is free; RMW must reject";
}

TEST(NameCache, NeverAcquiredNameIsNotStashed) {
  RenamingService service(256, cached(4));
  // In-range but never acquired: the cell-held validation load must
  // reject it, or the stash would later hand out a claimable cell.
  EXPECT_FALSE(service.release(5));
  EXPECT_EQ(service.thread_cache_size(), 0u);
}

TEST(NameCache, OverflowSpillsThroughTheSharedPath) {
  RenamingService service(256, cached(4, /*cap=*/8));
  std::vector<Name> names;
  for (int i = 0; i < 9; ++i) names.push_back(service.acquire());
  for (const Name n : names) ASSERT_TRUE(service.release(n));
  // The 9th release found the stash full (capacity 8): the oldest
  // cap/2 + 1 = 5 names spilled through the shared path, then the push
  // went through — 3 + 1 remain stashed and 5 cells went free.
  EXPECT_EQ(service.thread_cache_size(), 4u);
  EXPECT_EQ(service.names_live(), 4u);
  // Reacquisition stays duplicate-free across both paths: the first four
  // come from the stash (exactly the four hottest releases), the rest are
  // fresh shared wins (random probes — not necessarily the spilled cells).
  std::set<Name> seen;
  const std::set<Name> hot(names.begin() + 5, names.end());
  for (int i = 0; i < 9; ++i) {
    const Name n = service.acquire();
    ASSERT_GE(n, 0);
    EXPECT_TRUE(seen.insert(n).second) << "duplicate " << n;
    if (i < 4) {
      EXPECT_TRUE(hot.count(n)) << "stash served a non-stashed name";
    }
  }
  EXPECT_EQ(service.names_live(), 9u);
}

TEST(NameCache, AdaptiveCapacityGrowsUnderHotReuse) {
  RenamingService service(1024, cached(4, /*cap=*/16));
  ASSERT_EQ(service.thread_cache_capacity(), 16u);
  const Name a = service.acquire();
  ASSERT_GE(a, 0);
  // >= 3 windows of pure hits: 16 -> 32 -> 64 (and stays clamped there).
  for (std::uint32_t i = 0; i < 4 * NameStash::kAdaptWindow; ++i) {
    ASSERT_TRUE(service.release(a));
    ASSERT_EQ(service.acquire(), a);
  }
  EXPECT_EQ(service.thread_cache_capacity(), NameStash::kMaxCapacity);
  EXPECT_GT(service.cache_hits(), 3u * NameStash::kAdaptWindow - 1);
  service.release(a);
  service.flush_thread_cache();
}

TEST(NameCache, AdaptiveCapacityShrinksUnderZeroReuse) {
  RenamingService service(1024, cached(4, /*cap=*/16));
  // Adversarial zero-reuse: acquire a big block with an empty stash (all
  // misses), release it all (at most cap stashed, rest shared), repeat.
  // Hit rate stays <= cap/block < 1/4, so the capacity walks down to the
  // floor and the stash stops hoarding names.
  std::vector<Name> block(128);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t got = service.acquire_many(block.size(), block.data());
    ASSERT_EQ(got, block.size());
    EXPECT_EQ(service.release_many(block.data(), got), got);
  }
  EXPECT_EQ(service.thread_cache_capacity(), NameStash::kMinCapacity);
  service.flush_thread_cache();
  EXPECT_EQ(service.names_live(), 0u);
}

TEST(NameCache, ResetInvalidatesTheStash) {
  RenamingService service(256, cached(4));
  const Name a = service.acquire();
  ASSERT_GE(a, 0);
  ASSERT_TRUE(service.release(a));
  ASSERT_EQ(service.thread_cache_size(), 1u);
  service.reset();
  // The stash is discarded, not served: the full namespace is acquirable
  // with no duplicates, and `a` appears exactly once (from the arena, not
  // the stale stash).
  EXPECT_EQ(service.thread_cache_size(), 0u);
  std::set<Name> seen;
  for (std::uint64_t i = 0; i < service.capacity(); ++i) {
    const Name n = service.acquire();
    ASSERT_GE(n, 0);
    ASSERT_TRUE(seen.insert(n).second) << "duplicate " << n;
  }
  EXPECT_TRUE(seen.count(a));
}

TEST(NameCache, AcquireManyDrainsStashFirst) {
  RenamingService service(256, cached(4, /*cap=*/16));
  Name block[8];
  ASSERT_EQ(service.acquire_many(8, block), 8u);
  ASSERT_EQ(service.release_many(block, 8), 8u);
  ASSERT_EQ(service.thread_cache_size(), 8u);
  // The batch is served from the stash: same 8 names, zero shared claims.
  Name again[8];
  ASSERT_EQ(service.acquire_many(8, again), 8u);
  EXPECT_EQ(service.thread_cache_size(), 0u);
  std::set<Name> a(block, block + 8), b(again, again + 8);
  EXPECT_EQ(a, b);
  service.release_many(again, 8);
  service.flush_thread_cache();
  EXPECT_EQ(service.names_live(), 0u);
}

// ----------------------------------------- cross-thread handoff ----

TEST(NameCacheStress, HandoffOnlyThroughTheSharedPath) {
  // Thread A acquires the whole namespace, then releases everything: its
  // stash absorbs up to its capacity, the rest spills shared. While A is
  // alive its stash is private (the per-thread magazine never serves
  // another thread) — but when A *exits*, its thread context flushes the
  // stash through the shared release path (renaming/service_directory.h),
  // so no name is stranded in a dead thread's stash. Thread B can then
  // acquire the entire namespace.
  RenamingService service(256, cached(4, /*cap=*/16));
  const std::uint64_t capacity = service.capacity();

  std::vector<Name> a_names;
  std::uint32_t a_stashed = 0;
  std::thread a0([&] {
    for (;;) {
      const Name n = service.acquire();
      if (n < 0) break;
      a_names.push_back(n);
    }
    ASSERT_EQ(a_names.size(), capacity);
    ASSERT_EQ(service.release_many(a_names.data(), a_names.size()), capacity);
    a_stashed = service.thread_cache_size();
    ASSERT_GT(a_stashed, 0u);
  });
  a0.join();
  // A's exit flush drained its stash through release_shared: nothing is
  // live anywhere, including the a_stashed names that used to be parked
  // (and, before the exit-flush fix, leaked forever).
  EXPECT_EQ(service.names_live(), 0u);

  std::vector<Name> b_names;
  std::thread b([&] {
    std::vector<Name> batch(capacity);
    const std::uint64_t got = service.acquire_many(capacity, batch.data());
    b_names.assign(batch.begin(), batch.begin() + got);
  });
  b.join();
  EXPECT_EQ(b_names.size(), capacity)
      << "names parked in dead thread A's stash were leaked";

  // Every one of A's names reappeared for B — handoff went through the
  // shared path (the exit flush), never by reading A's stash directly.
  std::set<Name> b_set(b_names.begin(), b_names.end());
  std::uint64_t invisible = 0;
  for (const Name n : a_names) invisible += b_set.count(n) ? 0 : 1;
  EXPECT_EQ(invisible, 0u);
  EXPECT_EQ(service.names_live(), b_names.size());
}

// The concurrent handoff stress: every released name crosses threads via
// a shared exchange slot; the owner table catches any double issue. Runs
// under TSan in CI.
TEST(NameCacheStress, ConcurrentHandoffKeepsNamesUnique) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  RenamingService service(768, cached(0));
  const std::uint64_t capacity = service.capacity();
  std::vector<std::atomic<int>> owner(capacity);
  for (auto& o : owner) o.store(-1);
  std::vector<std::atomic<Name>> slots(kThreads * 4);
  for (auto& s : slots) s.store(-1);
  std::atomic<std::uint64_t> violations{0};

  const std::uint64_t seed = test::stress_seed(
      "NameCacheStress.ConcurrentHandoffKeepsNamesUnique", 0x44AD0FF);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t, seed] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        const Name mine = service.acquire();
        if (mine < 0) continue;
        int expected = -1;
        if (!owner[mine].compare_exchange_strong(expected, t)) {
          ++violations;
          continue;
        }
        // Publish my name, adopt whoever was parked there, release it.
        const Name theirs =
            slots[rng.below(slots.size())].exchange(mine);
        if (theirs < 0) continue;
        const int holder = owner[theirs].exchange(-1);
        if (holder < 0) ++violations;  // nobody actually held it
        if (!service.release(theirs)) ++violations;
      }
      service.flush_thread_cache();
    });
  }
  for (auto& th : pool) th.join();
  // Drain the slots single-threaded and check the books balance.
  std::uint64_t parked = 0;
  for (auto& s : slots) {
    const Name n = s.load();
    if (n >= 0) {
      ++parked;
      owner[n].store(-1);
      if (!service.release(n)) ++violations;
    }
  }
  service.flush_thread_cache();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(service.names_live(), 0u);
}

// --------------------------------------------- elastic stale stash ----

TEST(ElasticNameCache, StaleStashedNameIsNeverReturnedAfterShrink) {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  ElasticRenamingService svc(64, opts);

  // Stash names under generation 1.
  std::vector<Name> first;
  for (int i = 0; i < 8; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    first.push_back(n);
  }
  for (const Name n : first) ASSERT_TRUE(svc.release(n));
  ASSERT_EQ(svc.thread_cache_size(), 8u);
  const std::set<Name> stale(first.begin(), first.end());

  // Retire generation 1: grow then shrink (gen 3 is live, tag != 0).
  ASSERT_TRUE(svc.grow());
  ASSERT_TRUE(svc.shrink());
  const std::uint64_t gen = svc.generation();
  ASSERT_EQ(gen, 3u);

  // Every subsequent acquire must come from the live generation — never
  // a stale stashed name from retired generation 1.
  std::vector<Name> fresh;
  for (int i = 0; i < 64; ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    EXPECT_FALSE(stale.count(n))
        << "acquire returned a name stashed under a retired generation";
    fresh.push_back(n);
  }
  // The first post-resize call flushed the stale stash through the tag
  // table, so generation 1 drains and reclaims.
  for (const Name n : fresh) ASSERT_TRUE(svc.release(n));
  svc.flush_thread_cache();
  for (int i = 0; i < 4 && svc.groups_in_flight() > 1; ++i) svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u);
  EXPECT_EQ(svc.names_live(), 0u);
}

// Concurrent variant, run under TSan in CI: workers churn with the cache
// on while the main thread forces grow/shrink cycles; the ledger catches
// any stale re-issue (a name from a retired generation being handed out
// while its legitimate holder still has it, or double-issued after a
// flush). Zero uniqueness violations is the acceptance criterion.
TEST(ElasticNameCache, ShrinkStressKeepsStashedNamesUnique) {
  constexpr int kThreads = 4;
  constexpr int kIters = 8000;
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.grow_miss_threshold = 2;
  ElasticRenamingService svc(64, opts);

  std::vector<std::atomic<std::uint8_t>> flags(1u << 20);
  std::atomic<std::uint64_t> violations{0};
  std::atomic<bool> stop{false};

  const std::uint64_t seed = test::stress_seed(
      "ElasticNameCache.ShrinkStressKeepsStashedNamesUnique", 0xE1A57);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t, seed] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t));
      std::vector<Name> held;
      for (int i = 0; i < kIters; ++i) {
        if (held.size() < 32 && rng.below(2) == 0) {
          const Name n = svc.acquire();
          if (n < 0) continue;
          if (static_cast<std::uint64_t>(n) >= flags.size() ||
              flags[n].exchange(1) != 0) {
            ++violations;
          } else {
            held.push_back(n);
          }
        } else if (!held.empty()) {
          const Name n = held.back();
          held.pop_back();
          if (flags[n].exchange(0) != 1) ++violations;
          if (!svc.release(n)) ++violations;
        }
      }
      for (const Name n : held) {
        flags[n].store(0);
        if (!svc.release(n)) ++violations;
      }
      svc.flush_thread_cache();
    });
  }
  // Resize churn: alternate grows and shrinks while the workers run, so
  // stashes are repeatedly invalidated mid-flight.
  std::thread resizer([&, seed] {
    Xoshiro256 rng(mix_seed(seed, 0x5121E));
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      if (rng.below(2) == 0) {
        svc.grow();
      } else {
        svc.shrink();
      }
      svc.reclaim();
      std::this_thread::yield();
    }
  });
  for (auto& th : pool) th.join();
  stop.store(true);
  resizer.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(svc.names_live(), 0u);
  // Everything drained: retirees reclaim down to the single live group.
  for (int i = 0; i < 8 && svc.groups_in_flight() > 1; ++i) svc.reclaim();
  EXPECT_EQ(svc.groups_in_flight(), 1u);
}

}  // namespace
}  // namespace loren
