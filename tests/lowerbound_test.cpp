// Tests for the Section 6 lower-bound machinery: Lemma 6.5 CDF dominance,
// the Lemma 6.4 coupling sampler, type extraction (Lemma 6.3 reduction),
// the layered execution with marking, and the Lemma 6.6 recurrence.
#include <gtest/gtest.h>

#include <cmath>

#include "lowerbound/layered_execution.h"
#include "lowerbound/poisson_coupling.h"
#include "lowerbound/recurrence.h"
#include "platform/poisson.h"
#include "platform/rng.h"
#include "renaming/baselines.h"
#include "renaming/rebatching.h"

namespace loren::lb {
namespace {

using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::Task;

// ---------------------------------------------------------- Lemma 6.5 ----

TEST(CoupledRate, PiecewiseDefinition) {
  EXPECT_DOUBLE_EQ(coupled_rate(0.5), 0.0625);  // lambda^2/4 branch
  EXPECT_DOUBLE_EQ(coupled_rate(1.0), 0.25);    // both branches equal
  EXPECT_DOUBLE_EQ(coupled_rate(8.0), 2.0);     // lambda/4 branch
}

class DominanceGrid : public ::testing::TestWithParam<double> {};

TEST_P(DominanceGrid, Lemma65HoldsOnGrid) {
  const double lambda = GetParam();
  EXPECT_EQ(first_dominance_violation(lambda, 200), -1)
      << "P_lambda(n+1) <= P_gamma(n) violated at lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, DominanceGrid,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 1.0, 2.0,
                                           3.0, 4.0, 8.0, 16.0, 50.0, 200.0));

TEST(Coupling, YNeverExceedsZMinusOne) {
  Xoshiro256 rng(31337);
  for (double lambda : {0.2, 1.0, 4.0, 20.0}) {
    for (int i = 0; i < 5000; ++i) {
      const CoupledSample s = sample_coupled(lambda, rng);
      ASSERT_LE(s.y, s.z == 0 ? 0 : s.z - 1)
          << "lambda=" << lambda << " z=" << s.z << " y=" << s.y;
    }
  }
}

TEST(Coupling, MarginalsHaveTheRightMeans) {
  Xoshiro256 rng(99);
  const double lambda = 6.0;
  const int kSamples = 40000;
  double sum_z = 0, sum_y = 0;
  for (int i = 0; i < kSamples; ++i) {
    const CoupledSample s = sample_coupled(lambda, rng);
    sum_z += static_cast<double>(s.z);
    sum_y += static_cast<double>(s.y);
  }
  EXPECT_NEAR(sum_z / kSamples, lambda, 0.08);
  EXPECT_NEAR(sum_y / kSamples, coupled_rate(lambda), 0.06);
}

TEST(Coupling, ConditionalSamplerRespectsBoundAndMarginal) {
  Xoshiro256 rng(7);
  const double lambda = 3.0;
  // Law of total expectation: E[Y] over Z ~ Pois(lambda) should be gamma.
  double sum_y = 0;
  const int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t z = poisson_sample(lambda, rng);
    const std::uint64_t y = sample_y_given_z(lambda, z, rng);
    ASSERT_LE(y, z == 0 ? 0 : z - 1);
    sum_y += static_cast<double>(y);
  }
  EXPECT_NEAR(sum_y / kSamples, coupled_rate(lambda), 0.05);
}

// ---------------------------------------------------------- Lemma 6.6 ----

TEST(Recurrence, RateStepBranches) {
  EXPECT_DOUBLE_EQ(rate_step(10.0, 100.0), 0.25);  // lambda <= s/2: sq/4s
  EXPECT_DOUBLE_EQ(rate_step(80.0, 100.0), 20.0);  // lambda > s/2: /4
}

TEST(Recurrence, TrajectoryMonotoneDecreasing) {
  const auto traj = rate_trajectory(50.0, 400.0, 6);
  ASSERT_EQ(traj.size(), 7u);
  for (std::size_t i = 1; i < traj.size(); ++i) EXPECT_LT(traj[i], traj[i - 1]);
}

TEST(Recurrence, GuaranteedLayersGrowsWithN) {
  // lambda0 = n/2, s = 2n (s+m with s=m=n): r0 = 1/4 exactly.
  const auto l1 = guaranteed_layers(128.0, 512.0);
  const auto l2 = guaranteed_layers(1u << 14, 1u << 16);
  EXPECT_GE(l2, l1);
  EXPECT_GE(l1, 1u);  // lg lg 512 - lg lg 16 ~ 1.17
}

TEST(Recurrence, GuaranteedLayersMatchesClosedForm) {
  // floor(lg lg s - lg lg 4/r0); see recurrence.cpp for why minus.
  const double s = 65536.0, lambda0 = s / 8.0;  // r0 = 1/8
  const double expect =
      std::floor(std::log2(std::log2(s)) - std::log2(std::log2(32.0)));
  EXPECT_EQ(guaranteed_layers(lambda0, s),
            static_cast<std::uint64_t>(expect));
}

TEST(Recurrence, RejectsOutOfRangeR0) {
  EXPECT_THROW(guaranteed_layers(300.0, 400.0), std::invalid_argument);
  EXPECT_THROW(guaranteed_layers(0.0, 400.0), std::invalid_argument);
}

TEST(Recurrence, TrajectoryStaysAboveFourForGuaranteedLayers) {
  // The paper's final argument: after guaranteed_layers the *bound* is >= 4.
  for (double n : {512.0, 4096.0, 65536.0}) {
    const double s = 2.0 * n;  // s + m with both O(n)
    const double lambda0 = n / 2.0;
    const auto layers = guaranteed_layers(lambda0, s);
    const auto traj = rate_trajectory(lambda0, s, static_cast<int>(layers));
    EXPECT_GE(traj.back(), 4.0) << "n=" << n;
  }
}

// ----------------------------------------------------- type extraction ----

TEST(ExtractTypes, UniformProbingTypes) {
  const std::uint64_t m = 64;
  const auto types = extract_types(
      [m](Env& env, ProcessId) -> Task<Name> {
        co_return co_await uniform_probing(env, m);
      },
      /*num_types=*/32, /*max_layers=*/10, /*seed=*/5);
  ASSERT_EQ(types.sequences.size(), 32u);
  for (const auto& seq : types.sequences) {
    ASSERT_EQ(seq.size(), 10u);  // all-lose: uniform probing never stops
    for (auto loc : seq) EXPECT_LT(loc, m);
  }
  EXPECT_LE(types.num_locations, m);
}

TEST(ExtractTypes, TypesAreDeterministicPerSeed) {
  auto factory = [](Env& env, ProcessId) -> Task<Name> {
    co_return co_await uniform_probing(env, 32);
  };
  const auto a = extract_types(factory, 8, 6, 42);
  const auto b = extract_types(factory, 8, 6, 42);
  EXPECT_EQ(a.sequences, b.sequences);
}

TEST(ExtractTypes, ReBatchingTypesFollowBatchOrder) {
  ReBatching algo(64, 0.5);
  const auto types = extract_types(
      [&algo](Env& env, ProcessId) -> Task<Name> {
        co_return co_await algo.get_name(env);
      },
      8, 12, 3);
  const auto& L = algo.layout();
  for (const auto& seq : types.sequences) {
    ASSERT_EQ(seq.size(), 12u);
    // First t0 probes stay in batch 0.
    const int t0 = L.probes(0);
    for (int j = 0; j < t0 && j < 12; ++j) {
      EXPECT_LT(seq[static_cast<std::size_t>(j)], L.size(0));
    }
  }
}

TEST(ExtractTypes, ShortTypesWhenAlgorithmGivesUp) {
  // linear_scan over m=4 probes only 4 locations then returns -1.
  const auto types = extract_types(
      [](Env& env, ProcessId) -> Task<Name> {
        co_return co_await linear_scan(env, 4);
      },
      4, 100, 1);
  for (const auto& seq : types.sequences) EXPECT_EQ(seq.size(), 4u);
}

// ---------------------------------------------------- layered execution ----

TEST(LayeredExecution, MarkedNeverExceedsAlive) {
  const std::uint64_t n = 256;
  const auto types = extract_types(
      [n](Env& env, ProcessId) -> Task<Name> {
        co_return co_await uniform_probing(env, 2 * n);
      },
      n * n / 64, 8, 11);  // M scaled down for test speed
  LayeredResult res =
      run_layered_execution(types, {.n = n, .max_layers = 8, .seed = 1});
  std::uint64_t prev_alive = res.initial_instances;
  std::uint64_t prev_marked = res.initial_instances;
  for (const auto& layer : res.layers) {
    EXPECT_LE(layer.marked_after, layer.alive_before - layer.wins);
    EXPECT_LE(layer.alive_before, prev_alive);
    EXPECT_LE(layer.marked_after, prev_marked);  // marks only disappear
    prev_alive = layer.alive_before - layer.wins;
    prev_marked = layer.marked_after;
  }
}

TEST(LayeredExecution, InitialInstancesNearNOverTwo) {
  const std::uint64_t n = 512;
  const auto types = extract_types(
      [n](Env& env, ProcessId) -> Task<Name> {
        co_return co_await uniform_probing(env, 2 * n);
      },
      4096, 4, 2);
  double total = 0;
  const int kRuns = 30;
  for (int run = 0; run < kRuns; ++run) {
    const auto res = run_layered_execution(
        types, {.n = n, .max_layers = 1,
                .seed = static_cast<std::uint64_t>(run)});
    total += static_cast<double>(res.initial_instances);
  }
  EXPECT_NEAR(total / kRuns, n / 2.0, n * 0.12);
}

TEST(LayeredExecution, SurvivorsPersistLogLogLayers) {
  // Theorem 6.1's empirical shape: with constant probability, marked
  // processes persist for the guaranteed number of layers.
  const std::uint64_t n = 512;
  const auto types = extract_types(
      [n](Env& env, ProcessId) -> Task<Name> {
        co_return co_await uniform_probing(env, 2 * n);
      },
      4096, 10, 21);
  const auto layers = guaranteed_layers(
      n / 2.0, static_cast<double>(types.num_locations));
  int survived = 0;
  const int kRuns = 25;
  for (int run = 0; run < kRuns; ++run) {
    const auto res = run_layered_execution(
        types, {.n = n, .max_layers = layers,
                .seed = 100 + static_cast<std::uint64_t>(run)});
    if (res.final_marked() > 0) ++survived;
  }
  // The paper proves >= 0.23; empirically it is much higher. Require a
  // conservative fraction to keep the test robust.
  EXPECT_GE(survived, kRuns / 4);
}

TEST(LayeredExecution, RatesTrackLemma66Bound) {
  const std::uint64_t n = 256;
  const auto types = extract_types(
      [n](Env& env, ProcessId) -> Task<Name> {
        co_return co_await uniform_probing(env, 2 * n);
      },
      2048, 6, 9);
  const auto res =
      run_layered_execution(types, {.n = n, .max_layers = 6, .seed = 5});
  for (const auto& layer : res.layers) {
    // Analytic rate after the layer >= Lemma 6.6's guaranteed bound. (Both
    // decay doubly exponentially and may underflow to 0 in late layers.)
    EXPECT_GE(layer.rate_after + 1e-9, layer.rate_bound)
        << "layer " << layer.layer;
    EXPECT_GE(layer.rate_after, 0.0);
  }
  // Early layers must retain positive rate.
  ASSERT_FALSE(res.layers.empty());
  EXPECT_GT(res.layers.front().rate_after, 0.0);
}

TEST(LayeredExecution, EmptyAfterAllWin) {
  // One location per type: every *distinct* type's first instance wins in
  // layer 0. When the Poisson draw duplicates no type (bad_initial false),
  // that means everyone wins.
  TypeSet types;
  types.num_locations = 64;
  for (std::uint64_t i = 0; i < 64; ++i) {
    types.sequences.push_back({static_cast<sim::Location>(i)});
  }
  bool checked = false;
  for (std::uint64_t seed = 0; seed < 32 && !checked; ++seed) {
    const auto res =
        run_layered_execution(types, {.n = 32, .max_layers = 2, .seed = seed});
    if (res.bad_initial || res.layers.empty() ||
        res.initial_instances == 0) {
      continue;
    }
    EXPECT_EQ(res.layers[0].wins, res.layers[0].alive_before);
    EXPECT_EQ(res.layers[1].alive_before, 0u);
    checked = true;
  }
  EXPECT_TRUE(checked) << "no duplicate-free draw in 32 seeds";
}

}  // namespace
}  // namespace loren::lb
