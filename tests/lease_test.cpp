// The lease subsystem (lease/lease_table.h) under a fake, test-owned
// clock — every deadline comparison here is exact, not timing-dependent:
//
//   * open/close/renew/rebind units — live counts, close-after-close and
//     renew-after-expiry guard trips, rebind re-homing a lease onto a
//     new holder's heartbeat;
//   * expiry boundary — a lease expires at exactly open + ttl + grace,
//     never one tick earlier (the "no false expiry" half of the reaper
//     contract, checked to the tick);
//   * heartbeat renewal — a holder that keeps stamping its heartbeat
//     keeps every lease alive indefinitely; the moment it stops, the
//     stale leases expire at stamp + ttl + grace;
//   * wheel cascade math — deadlines spanning all four wheel levels
//     (deltas around the 64 / 4096 / 262144 level boundaries) expire in
//     deadline order across coarse clock jumps, each exactly once;
//   * service integration (both services) — abandoned names are reaped
//     back into the arena and become re-acquirable, a revived holder's
//     late release is rejected, renew_lease reports kLeaseExpired.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "lease/lease_table.h"
#include "renaming/service.h"

namespace loren {
namespace {

using sim::Name;

// The injected clock: a plain function reading a test-owned tick. The
// LeaseOptions clock hook is a stateless function pointer, so the tick
// lives in a file-scope atomic each test resets in its fixture.
std::atomic<std::uint64_t> g_now{0};
std::uint64_t fake_now() { return g_now.load(std::memory_order_relaxed); }

// Reclaim recorder: the table's callback target for the unit tests.
struct Reclaimed {
  std::vector<Name> names;
  static bool sink(void* ctx, Name n) {
    static_cast<Reclaimed*>(ctx)->names.push_back(n);
    return true;
  }
};

lease::LeaseOptions opts_with(std::uint64_t ttl, std::uint64_t grace = 0) {
  lease::LeaseOptions o;
  o.ttl_ticks = ttl;
  o.grace = grace;
  o.clock = &fake_now;
  return o;
}

class LeaseUnit : public ::testing::Test {
 protected:
  void SetUp() override { g_now.store(1, std::memory_order_relaxed); }
};

// ------------------------------------------------------------ units ----

TEST_F(LeaseUnit, OpenCloseLiveCounts) {
  lease::LeaseTable t(opts_with(100), nullptr);
  for (Name n = 0; n < 10; ++n) t.open(n, t.now(), nullptr, nullptr);
  EXPECT_EQ(t.leases_live(), 10u);
  EXPECT_EQ(t.opened(), 10u);
  for (Name n = 0; n < 10; ++n) EXPECT_TRUE(t.close(n, nullptr, nullptr));
  EXPECT_EQ(t.leases_live(), 0u);
  // A second close finds the lease gone: guard trip, not a crash.
  EXPECT_FALSE(t.close(3, nullptr, nullptr));
  EXPECT_EQ(t.guard_trips(), 1u);
}

TEST_F(LeaseUnit, ExpiresAtExactlyTtlPlusGraceNeverEarlier) {
  Reclaimed rec;
  lease::LeaseTable t(opts_with(/*ttl=*/50, /*grace=*/10), nullptr);
  t.set_reclaimer(&Reclaimed::sink, &rec);
  g_now = 100;
  t.open(7, t.now(), nullptr, nullptr);
  // The effective deadline is open + ttl + grace = 160; the tick *before*
  // it must expire nothing — early expiry is the one forbidden outcome.
  g_now = 159;
  EXPECT_EQ(t.reap(t.now(), nullptr), 0u);
  EXPECT_EQ(t.leases_live(), 1u);
  g_now = 160;
  EXPECT_EQ(t.reap(t.now(), nullptr), 1u);
  EXPECT_EQ(t.leases_live(), 0u);
  EXPECT_EQ(t.expired(), 1u);
  ASSERT_EQ(rec.names.size(), 1u);
  EXPECT_EQ(rec.names[0], 7);
  // The reaper won: the holder's late close is rejected.
  EXPECT_FALSE(t.close(7, nullptr, nullptr));
}

TEST_F(LeaseUnit, HeartbeatKeepsEveryLeaseAliveUntilItStops) {
  Reclaimed rec;
  lease::LeaseTable t(opts_with(/*ttl=*/50, /*grace=*/5), nullptr);
  t.set_reclaimer(&Reclaimed::sink, &rec);
  lease::Heartbeat& hb = t.register_thread();
  hb.last.store(fake_now(), std::memory_order_relaxed);
  for (Name n = 0; n < 8; ++n) t.open(n, t.now(), &hb, nullptr);
  // Stamp every 40 ticks (< ttl): across 20 deadline-spans of wall time,
  // nothing may expire — one stamp renews all eight leases at once.
  for (int i = 0; i < 20; ++i) {
    g_now += 40;
    hb.last.store(fake_now(), std::memory_order_relaxed);
    EXPECT_EQ(t.reap(t.now(), nullptr), 0u) << "false expiry at pass " << i;
  }
  EXPECT_EQ(t.leases_live(), 8u);
  // Holder dies (stops stamping): everything expires at stamp + ttl +
  // grace, and the tick before that is still alive.
  const std::uint64_t stamp = hb.last.load(std::memory_order_relaxed);
  g_now = stamp + 50 + 5 - 1;
  EXPECT_EQ(t.reap(t.now(), nullptr), 0u);
  g_now = stamp + 50 + 5;
  EXPECT_EQ(t.reap(t.now(), nullptr), 8u);
  EXPECT_EQ(t.leases_live(), 0u);
  EXPECT_EQ(rec.names.size(), 8u);
}

TEST_F(LeaseUnit, RenewPushesTheDeadlineAndFailsAfterExpiry) {
  Reclaimed rec;
  lease::LeaseTable t(opts_with(/*ttl=*/30), nullptr);
  t.set_reclaimer(&Reclaimed::sink, &rec);
  g_now = 10;
  t.open(1, t.now(), nullptr, nullptr);
  g_now = 35;  // 5 ticks before the original deadline
  EXPECT_TRUE(t.renew(1, t.now(), nullptr, nullptr));
  g_now = 64;  // past the original deadline (40), inside the renewed (65)
  EXPECT_EQ(t.reap(t.now(), nullptr), 0u);
  g_now = 65;
  EXPECT_EQ(t.reap(t.now(), nullptr), 1u);
  EXPECT_FALSE(t.renew(1, t.now(), nullptr, nullptr))
      << "renew revived a dead lease";
  EXPECT_GE(t.guard_trips(), 1u);
}

TEST_F(LeaseUnit, RebindEnforcesHolderIdentity) {
  Reclaimed rec;
  lease::LeaseTable t(opts_with(/*ttl=*/50), nullptr);
  t.set_reclaimer(&Reclaimed::sink, &rec);
  lease::Heartbeat& a = t.register_thread();
  lease::Heartbeat& b = t.register_thread();
  a.last.store(fake_now(), std::memory_order_relaxed);
  b.last.store(fake_now(), std::memory_order_relaxed);
  t.open(9, t.now(), &a, nullptr);
  EXPECT_TRUE(t.validate(9, &a));
  EXPECT_FALSE(t.validate(9, &b)) << "validate matched a foreign holder";
  // A lease bound to a live holder is not stealable — the same-bits ABA
  // defense: when a reaped name is reissued, the revived original holder
  // presents the wrong heartbeat and every mutation is rejected instead
  // of silently applied to the new holder's lease.
  EXPECT_FALSE(t.rebind(9, t.now(), &b));
  EXPECT_FALSE(t.close(9, &b, nullptr)) << "foreign close closed a's lease";
  EXPECT_FALSE(t.renew(9, t.now(), &b, nullptr));
  EXPECT_GE(t.guard_trips(), 3u);
  EXPECT_EQ(t.leases_live(), 1u);
  // Self-rebind is the refresh path (a stash re-absorb by the holder).
  EXPECT_TRUE(t.rebind(9, t.now(), &a));
  EXPECT_TRUE(t.close(9, &a, nullptr));
  // A holderless lease may be adopted by anyone; from then on only the
  // adopter's heartbeat sustains it.
  g_now = 1000;
  t.open(11, t.now(), nullptr, nullptr);
  EXPECT_TRUE(t.rebind(11, t.now(), &b));
  EXPECT_TRUE(t.validate(11, &b));
  for (int i = 0; i < 4; ++i) {
    g_now += 40;
    b.last.store(fake_now(), std::memory_order_relaxed);
    EXPECT_EQ(t.reap(t.now(), nullptr), 0u) << "rebind lost the new holder";
  }
  // b stops; a's stamps must not count for b's lease.
  g_now += 50;
  a.last.store(fake_now(), std::memory_order_relaxed);
  EXPECT_EQ(t.reap(t.now(), nullptr), 1u)
      << "a foreign heartbeat kept a rebound lease alive";
}

TEST_F(LeaseUnit, WheelCascadeExpiresInDeadlineOrderAcrossClockJumps) {
  // Deltas straddling every wheel-level boundary (levels cover 64, 4096,
  // 262144, 16777216 ticks): each lease must survive any reap before its
  // deadline and die on the first reap at-or-after it — including when
  // the clock jumps over several levels' worth of slots at once.
  const std::vector<std::uint64_t> deltas = {1,    2,    63,     64,    65,
                                             100,  4095, 4096,   4097,  9000,
                                             262143, 262144, 262145, 300000};
  const std::uint64_t base = 1000;
  // Per-delta boundary exactness: ttl = delta puts the deadline exactly
  // at base + delta (fresh table per delta so each level is hit alone).
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    SCOPED_TRACE("delta " + std::to_string(deltas[i]));
    Reclaimed r2;
    lease::LeaseTable t2(opts_with(deltas[i]), nullptr);
    t2.set_reclaimer(&Reclaimed::sink, &r2);
    g_now = base;
    t2.open(static_cast<Name>(i), t2.now(), nullptr, nullptr);
    g_now = base + deltas[i] - 1;
    EXPECT_EQ(t2.reap(t2.now(), nullptr), 0u) << "expired a tick early";
    g_now = base + deltas[i];
    EXPECT_EQ(t2.reap(t2.now(), nullptr), 1u) << "failed to expire on time";
  }
  // One shared table, all deadlines staggered, a single coarse jump past
  // every one of them: the cascade must surface each lease exactly once.
  Reclaimed all;
  lease::LeaseTable big(opts_with(/*ttl=*/10), nullptr);
  big.set_reclaimer(&Reclaimed::sink, &all);
  g_now = base;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    g_now = base + deltas[i];  // staggered open times => staggered deadlines
    big.open(static_cast<Name>(100 + i), big.now(), nullptr, nullptr);
  }
  g_now = base + 400000;  // one jump over every level
  EXPECT_EQ(big.reap(big.now(), nullptr), deltas.size());
  EXPECT_EQ(big.leases_live(), 0u);
  std::set<Name> uniq(all.names.begin(), all.names.end());
  EXPECT_EQ(uniq.size(), deltas.size()) << "a lease expired twice or never";
}

TEST_F(LeaseUnit, ClearDropsEverythingWithoutReclaiming) {
  Reclaimed rec;
  lease::LeaseTable t(opts_with(/*ttl=*/10), nullptr);
  t.set_reclaimer(&Reclaimed::sink, &rec);
  for (Name n = 0; n < 5; ++n) t.open(n, t.now(), nullptr, nullptr);
  t.clear();
  EXPECT_EQ(t.leases_live(), 0u);
  g_now += 1000;
  EXPECT_EQ(t.reap(t.now(), nullptr), 0u);
  EXPECT_TRUE(rec.names.empty()) << "clear() must not reclaim cells";
}

// ---------------------------------------------- service integration ----

class LeaseService : public ::testing::Test {
 protected:
  void SetUp() override { g_now.store(1, std::memory_order_relaxed); }
};

TEST_F(LeaseService, FixedServiceReapsAbandonedNamesBackIntoTheArena) {
  RenamingServiceOptions opts;
  opts.name_cache = false;
  opts.lease = opts_with(/*ttl=*/1000, /*grace=*/100);
  RenamingService svc(64, opts);
  ASSERT_TRUE(svc.leasing_enabled());

  // The crashed holder: grabs 16 names on its own thread and exits
  // without releasing — the classic liveness leak.
  std::vector<Name> abandoned;
  std::thread victim([&] {
    for (int i = 0; i < 16; ++i) {
      const Name n = svc.acquire();
      ASSERT_GE(n, 0);
      abandoned.push_back(n);
    }
  });
  victim.join();
  EXPECT_EQ(svc.names_live(), 16u);
  EXPECT_EQ(svc.leases_live(), 16u);

  // Before the ttl runs out the names are (correctly) still theirs.
  g_now += 500;
  EXPECT_EQ(svc.reap_expired(), 0u);
  EXPECT_EQ(svc.names_live(), 16u);

  // Past ttl + grace the reaper hands every cell back.
  g_now += 1000;
  EXPECT_EQ(svc.reap_expired(), 16u);
  EXPECT_EQ(svc.names_live(), 0u);
  EXPECT_EQ(svc.lease_expired(), 16u);

  // The namespace really is whole again: the full capacity is acquirable
  // with no duplicates, including the formerly abandoned names.
  std::set<Name> seen;
  for (std::uint64_t i = 0; i < svc.capacity(); ++i) {
    const Name n = svc.acquire();
    ASSERT_GE(n, 0) << "arena lost cells to the reap";
    ASSERT_TRUE(seen.insert(n).second) << "duplicate " << n;
  }
  for (const Name n : abandoned) EXPECT_TRUE(seen.count(n));
}

TEST_F(LeaseService, FixedServiceRejectsARevivedHoldersLateRelease) {
  RenamingServiceOptions opts;
  opts.name_cache = false;
  opts.lease = opts_with(/*ttl=*/100);
  RenamingService svc(64, opts);

  const Name n = svc.acquire();
  ASSERT_GE(n, 0);
  g_now += 500;  // the holder goes dark for 5 ttls...
  EXPECT_EQ(svc.reap_expired(), 1u);
  EXPECT_EQ(svc.names_live(), 0u);

  // ...then revives and tries to release. The generation/lease guard must
  // reject it: the cell may already belong to someone else.
  const Name other = svc.acquire();
  ASSERT_GE(other, 0);
  EXPECT_FALSE(svc.release(n)) << "late release of an expired lease accepted";
  EXPECT_GE(svc.lease_guard_trips(), 1u);
  EXPECT_EQ(svc.names_live(), 1u) << "the late release freed a victim's cell";
  EXPECT_TRUE(svc.release(other));
}

TEST_F(LeaseService, FixedServiceRenewLeaseContract) {
  RenamingServiceOptions opts;
  opts.name_cache = false;
  opts.lease = opts_with(/*ttl=*/100);
  RenamingService svc(64, opts);

  const Name n = svc.acquire();
  ASSERT_GE(n, 0);
  // Explicit renewals carry a quiet holder across many ttls.
  for (int i = 0; i < 10; ++i) {
    g_now += 90;
    EXPECT_EQ(svc.renew_lease(n), n);
  }
  EXPECT_EQ(svc.reap_expired(), 0u);
  EXPECT_TRUE(svc.release(n));
  // A renewal after expiry reports exactly kLeaseExpired.
  const Name m = svc.acquire();
  ASSERT_GE(m, 0);
  g_now += 1000;
  EXPECT_EQ(svc.reap_expired(), 1u);
  EXPECT_EQ(svc.renew_lease(m), RenamingService::kLeaseExpired);
}

TEST_F(LeaseService, FixedServiceOpsHeartbeatLeasesAliveImplicitly) {
  RenamingServiceOptions opts;
  opts.name_cache = false;
  opts.lease = opts_with(/*ttl=*/100, /*grace=*/10);
  RenamingService svc(64, opts);

  // A churning holder never explicitly renews: its ordinary acquire/
  // release traffic stamps the heartbeat, which must keep the *held*
  // name alive across 50 ttls of wall time.
  const Name held = svc.acquire();
  ASSERT_GE(held, 0);
  for (int i = 0; i < 100; ++i) {
    g_now += 50;  // each gap well under ttl
    const Name n = svc.acquire();
    ASSERT_GE(n, 0);
    ASSERT_TRUE(svc.release(n));
  }
  EXPECT_EQ(svc.reap_expired(), 0u) << "a live, churning holder was expired";
  EXPECT_EQ(svc.lease_expired(), 0u);
  EXPECT_TRUE(svc.release(held));
}

TEST_F(LeaseService, ElasticServiceReapsAbandonedNamesAndReissuesThem) {
  ElasticOptions opts;
  opts.name_cache = false;
  opts.min_holders = 64;
  opts.max_holders = 256;
  opts.auto_grow = false;
  opts.auto_shrink = false;
  opts.lease = opts_with(/*ttl=*/1000, /*grace=*/100);
  ElasticRenamingService svc(64, opts);
  ASSERT_TRUE(svc.leasing_enabled());

  std::vector<Name> abandoned;
  std::thread victim([&] {
    for (int i = 0; i < 16; ++i) {
      const Name n = svc.acquire();
      ASSERT_GE(n, 0);
      abandoned.push_back(n);
    }
  });
  victim.join();
  EXPECT_EQ(svc.names_live(), 16u);

  g_now += 2000;
  EXPECT_EQ(svc.reap_expired(), 16u);
  EXPECT_EQ(svc.names_live(), 0u);
  EXPECT_EQ(svc.lease_expired(), 16u);

  // Reclaimed cells are reissued: drain the whole group uniquely.
  std::set<Name> seen;
  std::vector<Name> mine;
  for (;;) {
    const Name n = svc.acquire();
    if (n < 0) break;
    ASSERT_TRUE(seen.insert(n).second) << "duplicate " << n;
    mine.push_back(n);
  }
  EXPECT_GE(seen.size(), 16u);
  for (const Name n : mine) EXPECT_TRUE(svc.release(n));
}

TEST_F(LeaseService, ElasticServiceRejectsLateReleaseAndRenewAfterExpiry) {
  ElasticOptions opts;
  opts.name_cache = false;
  opts.min_holders = 64;
  opts.max_holders = 256;
  opts.auto_grow = false;
  opts.auto_shrink = false;
  opts.lease = opts_with(/*ttl=*/100);
  ElasticRenamingService svc(64, opts);

  const Name n = svc.acquire();
  ASSERT_GE(n, 0);
  g_now += 500;
  EXPECT_EQ(svc.reap_expired(), 1u);
  EXPECT_EQ(svc.names_live(), 0u);
  EXPECT_EQ(svc.renew_lease(n), ElasticRenamingService::kLeaseExpired);
  const Name other = svc.acquire();
  ASSERT_GE(other, 0);
  EXPECT_FALSE(svc.release(n));
  EXPECT_GE(svc.lease_guard_trips(), 1u);
  EXPECT_EQ(svc.names_live(), 1u);
  EXPECT_TRUE(svc.release(other));
}

TEST_F(LeaseService, StashAbsorbedNamesStayLeasedAndReapable) {
  // With the cache on, a release parks the name in the stash (cell stays
  // taken, lease stays open, rebound to the stashing thread). If that
  // thread then dies *holding a stash*, the exit flush returns the names
  // — but if it parks forever without exiting, the reaper must still get
  // them. Simulate the park by just going quiet on the main thread's
  // stash from a helper thread's point of view.
  RenamingServiceOptions opts;
  opts.name_cache = true;
  opts.name_cache_capacity = 16;
  opts.lease = opts_with(/*ttl=*/100, /*grace=*/10);
  RenamingService svc(64, opts);

  std::thread quiet_holder([&] {
    Name names[8];
    ASSERT_EQ(svc.acquire_many(8, names), 8u);
    ASSERT_EQ(svc.release_many(names, 8), 8u);
    // The names are now parked in this thread's stash, leases rebound to
    // this thread — and the thread blocks forever (simulated: it simply
    // stops calling the service; the thread object outlives the reap).
    ASSERT_EQ(svc.names_live(), 8u) << "stash absorb should keep cells taken";
  });
  quiet_holder.join();
  // NB: joining ran the exit flush, which releases the stash through the
  // shared path — so this exercises flush-beats-reaper: the leases were
  // closed by the flush and the reaper finds nothing.
  EXPECT_EQ(svc.names_live(), 0u);
  g_now += 1000;
  EXPECT_EQ(svc.reap_expired(), 0u)
      << "the exit flush already closed these leases";
  EXPECT_EQ(svc.lease_guard_trips(), 0u);
}

}  // namespace
}  // namespace loren
