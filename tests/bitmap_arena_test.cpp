// Tests for the word-packed BitmapArena substrate and its service
// integration: word-scan claims (mask snapshot -> ctz -> fetch_or ->
// verify), cross-word run claims, lost single-bit races under real
// contention, the per-word generation sidecar across epoch resets, and
// NameStash interop on a bitmap-backed RenamingService. Runs in the TSan
// CI set.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"
#include "tas/arena_segment.h"
#include "tas/bitmap_arena.h"
#include "test_seed.h"

namespace loren {
namespace {

class BitmapArenaLayouts : public ::testing::TestWithParam<ArenaLayout> {};

TEST_P(BitmapArenaLayouts, FirstCallWins) {
  BitmapArena arena(130, GetParam());
  EXPECT_TRUE(arena.test_and_set(2));
  EXPECT_FALSE(arena.test_and_set(2));
  // The last cell lives in a partial top word.
  EXPECT_TRUE(arena.test_and_set(129));
  EXPECT_FALSE(arena.test_and_set(129));
  EXPECT_EQ(arena.read(2), 1u);
  EXPECT_EQ(arena.read(0), 0u);
  EXPECT_EQ(arena.read(129), 1u);
}

TEST_P(BitmapArenaLayouts, TryReleaseValidates) {
  BitmapArena arena(70, GetParam());
  EXPECT_FALSE(arena.try_release(65)) << "never-won cell released";
  ASSERT_TRUE(arena.test_and_set(65));
  EXPECT_TRUE(arena.try_release(65));
  EXPECT_FALSE(arena.try_release(65)) << "double release succeeded";
  EXPECT_TRUE(arena.test_and_set(65));
  arena.reset();
  EXPECT_FALSE(arena.try_release(65)) << "stale-epoch holder released";
  EXPECT_TRUE(arena.test_and_set(65));
}

TEST_P(BitmapArenaLayouts, EpochResetFreesEverythingInO1) {
  BitmapArena arena(200, GetParam());
  for (std::uint64_t i = 0; i < 200; ++i) ASSERT_TRUE(arena.test_and_set(i));
  const std::uint64_t before = arena.epoch();
  arena.reset();
  EXPECT_GT(arena.epoch(), before);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(arena.read(i), 0u) << "cell " << i << " still taken after reset";
  }
  // The word stamps are lazily refreshed: winning a cell of a stale word
  // re-zeroes exactly that word, and everything stays winnable once.
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(arena.test_and_set(i)) << "stale cell " << i << " not winnable";
    EXPECT_FALSE(arena.test_and_set(i));
  }
}

TEST_P(BitmapArenaLayouts, WriteMatchesSeedSemantics) {
  BitmapArena arena(8, GetParam());
  arena.write(3, 1);
  EXPECT_EQ(arena.read(3), 1u);
  EXPECT_FALSE(arena.test_and_set(3));
  arena.write(3, 0);
  EXPECT_EQ(arena.read(3), 0u);
  EXPECT_TRUE(arena.test_and_set(3));
}

TEST_P(BitmapArenaLayouts, TryClaimInWordScansAndClamps) {
  BitmapArena arena(128, GetParam());
  // Claim the whole first word one scan at a time: each call must return
  // a distinct cell of word 0 (the hint only picks the word).
  std::set<std::int64_t> got;
  for (int i = 0; i < 64; ++i) {
    const std::int64_t cell = arena.try_claim_in_word(7, 0, 128);
    ASSERT_GE(cell, 0);
    ASSERT_LT(cell, 64);
    EXPECT_TRUE(got.insert(cell).second) << "cell " << cell << " claimed twice";
  }
  EXPECT_EQ(arena.try_claim_in_word(7, 0, 128), -1) << "full word served";
  // Window clamping: a word straddling [lo, hi) never claims outside it.
  const std::int64_t clamped = arena.try_claim_in_word(70, 70, 80);
  ASSERT_GE(clamped, 70);
  ASSERT_LT(clamped, 80);
  for (int i = 0; i < 9; ++i) {
    ASSERT_GE(arena.try_claim_in_word(70, 70, 80), 70);
  }
  EXPECT_EQ(arena.try_claim_in_word(70, 70, 80), -1);
  EXPECT_EQ(arena.read(69), 0u);
  EXPECT_EQ(arena.read(80), 0u);
}

TEST_P(BitmapArenaLayouts, TryClaimRunSpansWordBoundaries) {
  BitmapArena arena(256, GetParam());
  // Occupy a few cells around the 64/128 boundaries so the run has to
  // skip them and still assemble k across words.
  for (const std::uint64_t taken : {60u, 63u, 64u, 100u, 127u, 128u}) {
    ASSERT_TRUE(arena.test_and_set(taken));
  }
  std::uint64_t out[96];
  const std::uint64_t got = arena.try_claim_run(50, 200, 96, out);
  EXPECT_EQ(got, 96u);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < got; ++i) {
    EXPECT_GE(out[i], 50u);
    EXPECT_LT(out[i], 200u);
    EXPECT_TRUE(seen.insert(out[i]).second) << out[i] << " claimed twice";
    for (const std::uint64_t taken : {60u, 63u, 64u, 100u, 127u, 128u}) {
      EXPECT_NE(out[i], taken) << "claimed an already-taken cell";
    }
  }
  // Exactly the free cells of [50, 200) minus the 6 pre-taken are gone:
  // 150 - 6 - 96 = 48 remain.
  std::uint64_t remaining = 0;
  for (std::uint64_t i = 50; i < 200; ++i) {
    if (arena.read(i) == 0) ++remaining;
  }
  EXPECT_EQ(remaining, 48u);
}

TEST_P(BitmapArenaLayouts, SweepWordSnapshotsOccupancy) {
  BitmapArena arena(100, GetParam());
  EXPECT_EQ(arena.sweep_word(0), ~std::uint64_t{0});
  // The top word is clamped to the arena size: 100 - 64 = 36 valid bits.
  EXPECT_EQ(arena.sweep_word(1), (std::uint64_t{1} << 36) - 1);
  ASSERT_TRUE(arena.test_and_set(0));
  ASSERT_TRUE(arena.test_and_set(65));
  EXPECT_EQ(arena.sweep_word(0), ~std::uint64_t{0} << 1);
  EXPECT_EQ(arena.sweep_word(1),
            ((std::uint64_t{1} << 36) - 1) & ~std::uint64_t{2});
  arena.reset();
  EXPECT_EQ(arena.sweep_word(0), ~std::uint64_t{0}) << "stale word not free";
}

INSTANTIATE_TEST_SUITE_P(Layouts, BitmapArenaLayouts,
                         ::testing::Values(ArenaLayout::kPadded,
                                           ArenaLayout::kPacked));

TEST(BitmapArenaSegment, WordProbeStaysInsideTheSegmentWindow) {
  BitmapArena arena(256, ArenaLayout::kPacked);
  // Two 100-cell shard windows that both straddle word boundaries.
  ArenaSegment a(arena, 28, 100);
  ArenaSegment b(arena, 128, 100);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t cell = a.try_claim_word(static_cast<std::uint64_t>(i));
    if (cell >= 0) {
      EXPECT_LT(cell, 100);
      EXPECT_EQ(b.read(static_cast<std::uint64_t>(cell)), 0u)
          << "segment a claimed into segment b's window";
    }
  }
  std::uint64_t out[100];
  EXPECT_EQ(b.try_claim_run(0, 100, 100, out), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_LT(out[i], 100u);
}

// Real-thread TAS safety on ONE word: every loss is a lost single-bit
// race inside try_claim_in_word's fetch_or retry loop. At most one winner
// per (cell, epoch) regardless of interleaving.
TEST(BitmapArenaThreads, LostSingleBitRacesPreserveUniqueness) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 400;
  BitmapArena arena(64, ArenaLayout::kPadded);
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> start{0};
    std::vector<std::vector<std::int64_t>> wins(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        start.fetch_add(1);
        while (start.load(std::memory_order_acquire) < kThreads) {
        }
        // Everyone hammers the same word until it is full.
        while (true) {
          const std::int64_t cell = arena.try_claim_in_word(0, 0, 64);
          if (cell < 0) break;
          wins[t].push_back(cell);
        }
      });
    }
    for (auto& th : pool) th.join();
    std::set<std::int64_t> all;
    std::size_t total = 0;
    for (const auto& w : wins) {
      total += w.size();
      for (const std::int64_t c : w) {
        EXPECT_TRUE(all.insert(c).second)
            << "cell " << c << " won twice in round " << round;
      }
    }
    EXPECT_EQ(total, 64u) << "claims lost in round " << round;
    arena.reset();  // quiesced: all workers joined
  }
}

// The per-word generation sidecar under a post-reset first-touch storm:
// reset() at quiescence, then every thread races to refresh the same
// stale words while claiming. No claim may land on pre-zero garbage and
// no refresh may wipe a landed claim — so across all threads exactly
// `size` wins per epoch.
TEST(BitmapArenaThreads, ResetThenConcurrentFirstTouchRefresh) {
  constexpr int kThreads = 4;
  constexpr int kEpochs = 200;
  constexpr std::uint64_t kSize = 192;  // three words
  BitmapArena arena(kSize, ArenaLayout::kPacked);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // Leave the words partially set before the reset so the lazy re-zero
    // has garbage to clear.
    std::uint64_t scratch[kSize];
    arena.try_claim_run(0, kSize, epoch % (kSize + 1), scratch);
    arena.reset();
    std::atomic<int> start{0};
    std::vector<std::uint64_t> counts(kThreads, 0);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        start.fetch_add(1);
        while (start.load(std::memory_order_acquire) < kThreads) {
        }
        std::uint64_t buf[8];
        std::uint64_t got;
        while ((got = arena.try_claim_run(0, kSize, 8, buf)) > 0) {
          counts[t] += got;
        }
      });
    }
    for (auto& th : pool) th.join();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    EXPECT_EQ(total, kSize) << "epoch " << epoch
                            << ": refresh raced a claim (lost or duplicated)";
  }
}

// ---------------------------------------------------------------- services

TEST(BitmapService, FillExhaustReleaseRoundTrip) {
  RenamingServiceOptions opts;
  opts.arena_kind = ArenaKind::kBitmap;
  opts.name_cache = false;
  RenamingService service(256, opts);
  std::vector<sim::Name> held;
  for (;;) {
    const sim::Name name = service.acquire();
    if (name < 0) break;
    held.push_back(name);
  }
  // Exhaustion is exact with the cache off: every cell was handed out
  // exactly once.
  EXPECT_EQ(held.size(), service.capacity());
  std::set<sim::Name> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), held.size());
  EXPECT_EQ(service.names_live(), held.size());
  for (const sim::Name name : held) EXPECT_TRUE(service.release(name));
  EXPECT_EQ(service.names_live(), 0u);
  EXPECT_FALSE(service.release(held[0])) << "double release succeeded";
}

TEST(BitmapService, AcquireManyClaimsRunsAcrossWords) {
  RenamingServiceOptions opts;
  opts.arena_kind = ArenaKind::kBitmap;
  opts.name_cache = false;
  RenamingService service(512, opts);
  std::vector<sim::Name> names(300);
  const std::uint64_t got = service.acquire_many(300, names.data());
  EXPECT_EQ(got, 300u);
  std::set<sim::Name> unique(names.begin(), names.begin() + got);
  EXPECT_EQ(unique.size(), got);
  EXPECT_EQ(service.release_many(names.data(), got), got);
  EXPECT_EQ(service.names_live(), 0u);
}

TEST(BitmapService, ResetInvalidatesAndReissues) {
  RenamingServiceOptions opts;
  opts.arena_kind = ArenaKind::kBitmap;
  opts.name_cache = false;
  RenamingService service(128, opts);
  std::vector<sim::Name> names(64);
  ASSERT_EQ(service.acquire_many(64, names.data()), 64u);
  service.reset();
  EXPECT_EQ(service.names_live(), 0u);
  EXPECT_FALSE(service.release(names[0])) << "stale-epoch name released";
  std::vector<sim::Name> again(128);
  EXPECT_EQ(service.acquire_many(128, again.data()), 128u);
}

// NameStash interop on a bitmap-backed service: stash hits must serve
// names whose bits stay set, spills must really free bits, and uniqueness
// must hold across threads churning with caches on.
TEST(BitmapService, NameStashInteropUnderChurn) {
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  RenamingServiceOptions opts;
  opts.arena_kind = ArenaKind::kBitmap;
  opts.name_cache = true;
  // The service's internal probe RNG streams are this test's only
  // randomness: log/override the seed they all derive from.
  opts.seed = test::stress_seed("BitmapService.NameStashInteropUnderChurn",
                                opts.seed);
  RenamingService service(1024, opts);
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      std::vector<sim::Name> held;
      for (int i = 0; i < kOps; ++i) {
        const sim::Name name = service.acquire();
        if (name < 0) {
          failed.store(true);
          break;
        }
        held.push_back(name);
        if (held.size() >= 16) {
          // Mix single and batched releases so the stash absorbs, spills,
          // and forwards.
          service.release(held.back());
          held.pop_back();
          service.release_many(held.data(), 8);
          held.erase(held.begin(), held.begin() + 8);
        }
      }
      for (const sim::Name n : held) service.release(n);
      service.flush_thread_cache();
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_FALSE(failed.load()) << "acquire failed under ample capacity";
  EXPECT_EQ(service.names_live(), 0u)
      << "names leaked through the stash on a bitmap substrate";
  EXPECT_GT(service.cache_hits(), 0u) << "stash never served a bitmap name";
}

TEST(BitmapElastic, GrowShrinkReclaimOnBitmapSubstrate) {
  ElasticOptions opts;
  opts.arena_kind = ArenaKind::kBitmap;
  opts.seed = test::stress_seed("BitmapElastic.GrowShrinkReclaimOnBitmapSubstrate",
                                opts.seed);
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.name_cache = false;
  ElasticRenamingService service(64, opts);
  // Saturate past the initial capacity: growth must kick in and every
  // name must stay unique across the generations it spans.
  std::vector<sim::Name> held;
  for (int i = 0; i < 1500; ++i) {
    const sim::Name name = service.acquire();
    ASSERT_GE(name, 0) << "exhausted despite growth headroom at " << i;
    held.push_back(name);
  }
  std::set<sim::Name> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), held.size());
  EXPECT_GE(service.grow_events(), 1u);
  // Drain and shrink back; retired bitmap-backed generations must still
  // release correctly through the tag table and reclaim.
  for (const sim::Name name : held) EXPECT_TRUE(service.release(name));
  EXPECT_EQ(service.names_live(), 0u);
  while (service.shrink()) {
  }
  service.reclaim();
  EXPECT_EQ(service.holders(), 64u);
  EXPECT_EQ(service.groups_in_flight(), 1u);
}

}  // namespace
}  // namespace loren
