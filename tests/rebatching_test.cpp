// Tests for the ReBatching algorithm (paper Section 4): correctness under
// every adversary, step bounds, survivor decay (Lemma 4.2), the backup
// phase, stats instrumentation, and crash tolerance.
#include <gtest/gtest.h>

#include <memory>

#include "renaming/rebatching.h"
#include "sim/runner.h"
#include "sim/scheduler.h"

namespace loren {
namespace {

using sim::AlgoFactory;
using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

AlgoFactory rebatching_factory(ReBatching& algo) {
  return [&algo](Env& env, ProcessId) -> Task<Name> {
    co_return co_await algo.get_name(env);
  };
}

std::unique_ptr<sim::Strategy> make_strategy(int kind) {
  switch (kind) {
    case 0: return std::make_unique<sim::RoundRobinStrategy>();
    case 1: return std::make_unique<sim::RandomStrategy>();
    case 2: return std::make_unique<sim::LayeredStrategy>();
    default: return std::make_unique<sim::CollisionAdversary>();
  }
}

class ReBatchingAdversaries
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReBatchingAdversaries, FullContentionUniqueAndBounded) {
  const auto [kind, seed] = GetParam();
  constexpr std::uint64_t kN = 256;
  ReBatching algo(kN, 0.5);
  auto strat = make_strategy(kind);
  RunConfig cfg{.num_processes = kN,
                .seed = static_cast<std::uint64_t>(seed),
                .strategy = strat.get()};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, kN);
  // Namespace: every name inside [0, total).
  EXPECT_LT(r.max_name, static_cast<Name>(algo.layout().total()));
  // Worst case is the backup sweep; sane upper bound check.
  EXPECT_LE(r.max_steps,
            static_cast<std::uint64_t>(algo.layout().max_probes_main_phase()) +
                algo.layout().total());
}

INSTANTIATE_TEST_SUITE_P(Grid, ReBatchingAdversaries,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 2, 3)));

TEST(ReBatching, SoloProcessWinsFirstProbe) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ReBatching algo(64, 0.5);
    sim::RoundRobinStrategy strat;
    RunConfig cfg{.num_processes = 1, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_EQ(r.max_steps, 1u);  // empty batch 0: first probe always wins
    EXPECT_LT(r.max_name, 64);  // a batch-0 name
  }
}

TEST(ReBatching, TinyNamespaces) {
  for (std::uint64_t n = 1; n <= 8; ++n) {
    ReBatching algo(n, 0.5);
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = static_cast<ProcessId>(n),
                  .seed = n,
                  .strategy = &strat};
    const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct()) << "n=" << n;
    EXPECT_EQ(r.finished, n);
  }
}

TEST(ReBatching, StepComplexityIsLogLogPlusConstantWhp) {
  // Measured max steps should stay below the paper's t0 + (kappa-1) + beta
  // main-phase budget (i.e. no process enters the backup) and the *typical*
  // max should be far below it.
  constexpr std::uint64_t kN = 1u << 12;
  ReBatching algo(kN, 0.5);
  const auto budget =
      static_cast<std::uint64_t>(algo.layout().max_probes_main_phase());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ReBatchingStats stats;
    algo.attach_stats(&stats);
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = kN, .seed = seed, .strategy = &strat};
    const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    EXPECT_LE(r.max_steps, budget);
    EXPECT_EQ(stats.backup_entries, 0u);
    algo.attach_stats(nullptr);
    // New env per seed: reset shared memory by rebuilding the algo is not
    // needed (simulate creates a fresh SimEnv each time).
  }
}

TEST(ReBatching, TotalStepsLinearInN) {
  // Theorem 4.1: total step complexity O(n) w.h.p.
  for (std::uint64_t n : {1u << 10, 1u << 12, 1u << 14}) {
    ReBatching algo(n, 0.5);
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = static_cast<ProcessId>(n),
                  .seed = 99,
                  .strategy = &strat};
    const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    // Far below t0*n (every process exhausting batch 0): in practice ~4n.
    EXPECT_LT(r.total_steps, 8 * n) << "n=" << n;
  }
}

TEST(ReBatching, SurvivorDecayRespectsLemma42Bounds) {
  constexpr std::uint64_t kN = 1u << 14;
  ReBatching algo(kN, 0.5);
  ReBatchingStats stats;
  algo.attach_stats(&stats);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kN, .seed = 7, .strategy = &strat};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  // n_{i+1} = failed[i] should be below the paper's n*_{i+1} bound. For
  // i+1 in 1..kappa-1 the bound is eps*n/2^(2^i+i+delta); allow the kappa
  // cases their log^2 n bound.
  const auto& L = algo.layout();
  for (std::uint64_t i = 1; i <= L.kappa(); ++i) {
    EXPECT_LE(static_cast<double>(stats.failed[i - 1]),
              L.survivor_bound(i) + 1.0)
        << "batch " << i;
  }
  EXPECT_EQ(stats.backup_entries, 0u);
  // Everyone enters batch 0.
  EXPECT_EQ(stats.entered[0], kN);
  // Monotone: entered[i+1] == failed[i] when all processes proceed.
  for (std::uint64_t i = 0; i + 1 < L.num_batches(); ++i) {
    EXPECT_EQ(stats.entered[i + 1], stats.failed[i]);
  }
}

TEST(ReBatching, BackupPhaseHandlesPathologicalLayouts) {
  // Force the backup: tiny t0/beta so random probing nearly always fails,
  // n processes on an n-name namespace (eps tiny => nearly no slack).
  constexpr std::uint64_t kN = 32;
  ReBatching algo(kN, ReBatching::Options{
                          .layout = {.epsilon = 0.02, .beta = 1,
                                     .t0_override = 1}});
  ReBatchingStats stats;
  algo.attach_stats(&stats);
  sim::CollisionAdversary strat;  // worst-case scheduling on top
  RunConfig cfg{.num_processes = kN, .seed = 3, .strategy = &strat};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  // Even in the pathological setup, renaming must stay correct and total:
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, kN);
  EXPECT_GE(stats.backup_entries, 1u);  // the point of this configuration
}

TEST(ReBatching, NoBackupReturnsMinusOneWhenSqueezed) {
  // With backup disabled and more processes than can plausibly win with
  // 1-probe budgets, some processes must return -1 (used by Section 5).
  constexpr std::uint64_t kN = 16;
  ReBatching algo(kN, ReBatching::Options{
                          .layout = {.epsilon = 0.01, .beta = 1,
                                     .t0_override = 1},
                          .backup = false});
  sim::CollisionAdversary strat;
  RunConfig cfg{.num_processes = 64, .seed = 5, .strategy = &strat};
  sim::SimEnv env(64, 5);
  const RunResult r = sim::run_execution(env, rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.names_unique);
  EXPECT_EQ(r.finished, 64u);
  std::uint64_t failures = 0;
  for (const auto& p : r.processes) failures += p.name == -1 ? 1 : 0;
  EXPECT_GE(failures, 1u);
}

TEST(ReBatching, CrashesDoNotBreakUniqueness) {
  constexpr std::uint64_t kN = 128;
  for (int mode = 0; mode < 2; ++mode) {
    ReBatching algo(kN, 0.5);
    auto base = std::make_unique<sim::RandomStrategy>();
    sim::CrashDecorator strat(std::move(base), /*max_crashes=*/40,
                              mode == 0 ? sim::CrashDecorator::Mode::kRandom
                                        : sim::CrashDecorator::Mode::kBeforeWin,
                              /*interval=*/5);
    RunConfig cfg{.num_processes = kN, .seed = 31, .strategy = &strat};
    const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
    EXPECT_TRUE(r.renaming_correct());
    // The run may finish before every scheduled crash fires.
    EXPECT_GE(r.crashed, 1u);
    EXPECT_LE(r.crashed, 40u);
    EXPECT_EQ(r.finished, kN - r.crashed);
  }
}

TEST(ReBatching, FewerProcessesThanCapacity) {
  // k << n: processes should win almost immediately in batch 0.
  ReBatching algo(1u << 12, 0.5);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = 64, .seed = 8, .strategy = &strat};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_LE(r.max_steps, 3u);
}

TEST(ReBatching, NamesLandInTheRightBatchRanges) {
  constexpr std::uint64_t kN = 512;
  ReBatching algo(kN, 0.5);
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = kN, .seed = 15, .strategy = &strat};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  // Most names come from batch 0 (size n); count them.
  std::uint64_t batch0 = 0;
  for (const auto& p : r.processes) {
    if (p.name >= 0 && static_cast<std::uint64_t>(p.name) < kN) ++batch0;
  }
  EXPECT_GT(batch0, kN * 8 / 10);
}

TEST(ReBatching, BaseOffsetsNamespace) {
  ReBatching algo(64, ReBatching::Options{.layout = {.epsilon = 0.5},
                                          .base = 1000});
  sim::RandomStrategy strat;
  RunConfig cfg{.num_processes = 64, .seed = 2, .strategy = &strat};
  const RunResult r = sim::simulate(rebatching_factory(algo), cfg);
  EXPECT_TRUE(r.renaming_correct());
  for (const auto& p : r.processes) {
    ASSERT_GE(p.name, 1000);
    ASSERT_LT(p.name, static_cast<Name>(algo.end()));
    EXPECT_TRUE(algo.owns(p.name));
  }
  EXPECT_FALSE(algo.owns(999));
  EXPECT_FALSE(algo.owns(-1));
}

TEST(ReBatching, DeterministicAcrossIdenticalRuns) {
  ReBatching a1(128, 0.5), a2(128, 0.5);
  sim::RandomStrategy s1, s2;
  RunConfig c1{.num_processes = 128, .seed = 77, .strategy = &s1};
  RunConfig c2{.num_processes = 128, .seed = 77, .strategy = &s2};
  const RunResult r1 = sim::simulate(rebatching_factory(a1), c1);
  const RunResult r2 = sim::simulate(rebatching_factory(a2), c2);
  for (std::size_t i = 0; i < r1.processes.size(); ++i) {
    EXPECT_EQ(r1.processes[i].name, r2.processes[i].name);
    EXPECT_EQ(r1.processes[i].steps, r2.processes[i].steps);
  }
}

}  // namespace
}  // namespace loren
