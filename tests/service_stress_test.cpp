// Real-thread stress tests for the sharded RenamingService: global
// uniqueness and namespace bounds under acquire/release churn across
// shards, epoch-reset correctness, and the overflow/steal path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "platform/rng.h"
#include "renaming/service.h"

namespace loren {
namespace {

RenamingServiceOptions sharded(std::uint64_t shards,
                               ArenaLayout layout = ArenaLayout::kPadded) {
  RenamingServiceOptions opts;
  opts.shards = shards;
  opts.arena_layout = layout;
  return opts;
}

TEST(RenamingService, SingleThreadFillsWholeNamespace) {
  RenamingService service(256, sharded(4));
  EXPECT_EQ(service.num_shards(), 4u);
  std::set<sim::Name> names;
  for (std::uint64_t i = 0; i < service.capacity(); ++i) {
    const sim::Name name = service.acquire();
    ASSERT_GE(name, 0) << "exhausted after " << i << " of "
                       << service.capacity();
    ASSERT_LT(static_cast<std::uint64_t>(name), service.capacity());
    ASSERT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
  EXPECT_EQ(service.acquire(), -1) << "acquired beyond capacity";
  EXPECT_EQ(service.names_live(), service.capacity());
}

TEST(RenamingService, ReleaseValidates) {
  RenamingService service(64, sharded(2));
  const sim::Name name = service.acquire();
  ASSERT_GE(name, 0);
  EXPECT_FALSE(service.release(-1));
  EXPECT_FALSE(service.release(static_cast<sim::Name>(service.capacity())));
  EXPECT_TRUE(service.release(name));
  EXPECT_FALSE(service.release(name)) << "double release succeeded";
  // The release parked the name in this thread's stash (still counted
  // live); flushing drains it through the shared path.
  EXPECT_EQ(service.names_live(), 1u);
  EXPECT_EQ(service.flush_thread_cache(), 1u);
  EXPECT_EQ(service.names_live(), 0u);
}

TEST(RenamingService, ReleaseValidatesUncached) {
  // Same contract with the name cache off: validation is the single RMW.
  RenamingServiceOptions opts = sharded(2);
  opts.name_cache = false;
  RenamingService service(64, opts);
  const sim::Name name = service.acquire();
  ASSERT_GE(name, 0);
  EXPECT_TRUE(service.release(name));
  EXPECT_FALSE(service.release(name)) << "double release succeeded";
  EXPECT_EQ(service.names_live(), 0u);
  EXPECT_EQ(service.flush_thread_cache(), 0u) << "nothing to flush uncached";
}

TEST(RenamingService, EpochResetMakesStaleCellsWinnable) {
  RenamingService service(64, sharded(4));
  std::vector<sim::Name> first;
  for (int i = 0; i < 64; ++i) {
    const sim::Name name = service.acquire();
    ASSERT_GE(name, 0);
    first.push_back(name);
  }
  service.reset();
  EXPECT_EQ(service.names_live(), 0u);
  // Stale-generation cells must be winnable: the full namespace is
  // acquirable again, including every name held before the reset.
  std::set<sim::Name> names;
  for (std::uint64_t i = 0; i < service.capacity(); ++i) {
    const sim::Name name = service.acquire();
    ASSERT_GE(name, 0) << "stale cell not winnable after epoch reset";
    ASSERT_TRUE(names.insert(name).second);
  }
  for (const sim::Name name : first) {
    EXPECT_TRUE(names.count(name)) << "pre-reset name " << name
                                   << " unreachable after reset";
  }
}

// The core stress: T real threads churn acquire/release; every acquired
// name is tagged in a shared owner table with compare-exchange, so any
// uniqueness violation (two concurrent holders of one name) trips the CAS.
void churn_stress(std::uint64_t n, std::uint64_t shards, ArenaLayout layout,
                  int threads, int iters_per_thread) {
  RenamingService service(n, sharded(shards, layout));
  const std::uint64_t capacity = service.capacity();
  std::vector<std::atomic<int>> owner(capacity);
  for (auto& o : owner) o.store(-1);
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> exhausted{0};

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(0xC0FFEE + t);
      std::vector<sim::Name> held;
      // Keep 8..48 names held: an unbounded coin-flip walk would let the
      // total live set wander past n, where exhaustion is legitimate and
      // outside the long-lived contract (at most n concurrent holders).
      constexpr std::size_t kMaxHeld = 48;
      for (int i = 0; i < iters_per_thread; ++i) {
        if (held.size() < 8 ||
            (held.size() < kMaxHeld && rng.below(2) == 0)) {
          const sim::Name name = service.acquire();
          if (name < 0) {
            ++exhausted;
            continue;
          }
          if (static_cast<std::uint64_t>(name) >= capacity) {
            ++violations;  // namespace bound broken
            continue;
          }
          int expected = -1;
          if (!owner[name].compare_exchange_strong(expected, t)) {
            ++violations;  // uniqueness broken: someone already holds it
          } else {
            held.push_back(name);
          }
        } else {
          const sim::Name name = held.back();
          held.pop_back();
          int expected = t;
          if (!owner[name].compare_exchange_strong(expected, -1)) {
            ++violations;
          }
          if (!service.release(name)) ++violations;  // we do hold it
        }
      }
      for (const sim::Name name : held) {
        owner[name].store(-1);
        if (!service.release(name)) ++violations;
      }
      // Drain this worker's stash so quiescent accounting is exact.
      service.flush_thread_cache();
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(violations.load(), 0u);
  // Total concurrent holders stay under n (<= kMaxHeld per thread, plus
  // a bounded per-thread stash), so the namespace should never have been
  // exhausted.
  EXPECT_EQ(exhausted.load(), 0u);
  EXPECT_EQ(service.names_live(), 0u) << "live counter drifted";
}

// Namespace sizing: per-thread demand is kMaxHeld (48) held names plus a
// stash of up to NameStash::kMaxCapacity (64) parked ones — 112 per
// thread. What bounds exhaustion is capacity() = ~(1+eps)n, not n, so
// with eps = 0.5 the n=768 runs give capacity >= 1152 >= 8 * 112 = 896
// and the zero-exhaustion assertion is airtight.
TEST(RenamingServiceStress, ChurnAcrossShardsPadded) {
  churn_stress(/*n=*/768, /*shards=*/4, ArenaLayout::kPadded, /*threads=*/8,
               /*iters=*/20000);
}

TEST(RenamingServiceStress, ChurnAcrossShardsPacked) {
  churn_stress(/*n=*/768, /*shards=*/8, ArenaLayout::kPacked, /*threads=*/8,
               /*iters=*/20000);
}

TEST(RenamingServiceStress, ChurnSingleShard) {
  churn_stress(/*n=*/512, /*shards=*/1, ArenaLayout::kPadded, /*threads=*/4,
               /*iters=*/20000);
}

TEST(RenamingServiceStress, OverflowStealsFromNeighbours) {
  // More concurrent holders than one shard serves: threads must steal
  // across shards, and every name must still be unique and in range.
  RenamingService service(256, sharded(4));
  const std::uint64_t per_shard = service.shard_holders();
  ASSERT_LT(per_shard, 256u);
  constexpr int kThreads = 4;
  // Collectively hold ~85% of capacity so some shards must overflow.
  const std::uint64_t target = service.capacity() * 85 / 100 / kThreads;
  std::vector<std::vector<sim::Name>> held(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < target; ++i) {
        const sim::Name name = service.acquire();
        if (name >= 0) held[t].push_back(name);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::set<sim::Name> all;
  for (const auto& names : held) {
    for (const sim::Name name : names) {
      ASSERT_LT(static_cast<std::uint64_t>(name), service.capacity());
      ASSERT_TRUE(all.insert(name).second) << "duplicate " << name;
    }
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(target) * kThreads);
  EXPECT_EQ(service.names_live(), all.size());
}

TEST(RenamingService, AcquireManyFillsAndExhausts) {
  RenamingService service(256, sharded(4));
  const std::uint64_t capacity = service.capacity();
  std::set<sim::Name> names;
  std::vector<sim::Name> all;
  std::vector<sim::Name> batch(50);
  // Batches drain the namespace completely: every name unique and in
  // range, partial batches only at the very end, then hard exhaustion.
  for (;;) {
    const std::uint64_t got = service.acquire_many(batch.size(), batch.data());
    if (got == 0) break;
    for (std::uint64_t i = 0; i < got; ++i) {
      ASSERT_GE(batch[i], 0);
      ASSERT_LT(static_cast<std::uint64_t>(batch[i]), capacity);
      ASSERT_TRUE(names.insert(batch[i]).second) << "duplicate " << batch[i];
      all.push_back(batch[i]);
    }
    if (got < batch.size()) {
      EXPECT_EQ(names.size(), capacity)
          << "a partial batch is only legal on exhaustion";
    }
  }
  EXPECT_EQ(names.size(), capacity);
  EXPECT_EQ(service.acquire_many(1, batch.data()), 0u);
  EXPECT_EQ(service.names_live(), capacity);
  // Batched release round-trip; double release frees nothing (stashed
  // entries are caught by the duplicate scan, spilled ones by the RMW).
  EXPECT_EQ(service.release_many(all.data(), all.size()), capacity);
  EXPECT_EQ(service.release_many(all.data(), all.size()), 0u);
  service.flush_thread_cache();
  EXPECT_EQ(service.names_live(), 0u);
}

TEST(RenamingService, AcquireManyMatchesSinglesSemantics) {
  // A batch of k against k singles on an identical twin service: both
  // must succeed fully and stay within the namespace bound.
  RenamingService batched(256, sharded(4));
  sim::Name batch[16];
  ASSERT_EQ(batched.acquire_many(16, batch), 16u);
  std::set<sim::Name> unique(batch, batch + 16);
  EXPECT_EQ(unique.size(), 16u);
  EXPECT_EQ(batched.names_live(), 16u);
  // Mixed-mode interop: singles release what a batch acquired (the first
  // 16 park in this thread's stash; the flush spills them).
  for (const sim::Name n : batch) EXPECT_TRUE(batched.release(n));
  batched.flush_thread_cache();
  EXPECT_EQ(batched.names_live(), 0u);
  // And a batch releases what singles acquired.
  std::vector<sim::Name> singles;
  for (int i = 0; i < 16; ++i) singles.push_back(batched.acquire());
  EXPECT_EQ(batched.release_many(singles.data(), singles.size()), 16u);
  batched.flush_thread_cache();
  EXPECT_EQ(batched.names_live(), 0u);
}

// Batched variant of the churn stress: threads acquire in zipf-ish sized
// batches and release in batches, with the same CAS-owner-table uniqueness
// oracle. Runs under TSan in CI like the single-name churn.
void batch_churn_stress(std::uint64_t n, std::uint64_t shards,
                        ArenaLayout layout, int threads,
                        int iters_per_thread) {
  RenamingService service(n, sharded(shards, layout));
  const std::uint64_t capacity = service.capacity();
  std::vector<std::atomic<int>> owner(capacity);
  for (auto& o : owner) o.store(-1);
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> short_batches{0};

  constexpr std::uint64_t kMaxBatch = 16;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(0xBA7C4 + t);
      std::vector<sim::Name> held;
      sim::Name batch[kMaxBatch];
      constexpr std::size_t kMaxHeld = 48;
      for (int i = 0; i < iters_per_thread; ++i) {
        if (held.size() < kMaxHeld && rng.below(2) == 0) {
          const std::uint64_t want =
              std::min<std::uint64_t>(1 + rng.below(kMaxBatch),
                                      kMaxHeld - held.size());
          // A single acquire_many pass can transiently come up short
          // under churn (cells freed behind the sweep cursor are not
          // revisited — see service.h); with the live total bounded well
          // under n, a *bounded retry* must top the batch up. Only a
          // persistent shortfall counts as exhaustion.
          std::uint64_t got = service.acquire_many(want, batch);
          for (int retry = 0; got < want && retry < 8; ++retry) {
            got += service.acquire_many(want - got, batch + got);
          }
          if (got < want) ++short_batches;
          for (std::uint64_t j = 0; j < got; ++j) {
            const sim::Name name = batch[j];
            if (static_cast<std::uint64_t>(name) >= capacity) {
              ++violations;  // namespace bound broken
              continue;
            }
            int expected = -1;
            if (!owner[name].compare_exchange_strong(expected, t)) {
              ++violations;  // uniqueness broken
            } else {
              held.push_back(name);
            }
          }
        } else if (!held.empty()) {
          const std::uint64_t m =
              std::min<std::uint64_t>(1 + rng.below(kMaxBatch), held.size());
          for (std::uint64_t j = 0; j < m; ++j) {
            const sim::Name name = held.back();
            held.pop_back();
            batch[j] = name;
            int expected = t;
            if (!owner[name].compare_exchange_strong(expected, -1)) {
              ++violations;
            }
          }
          if (service.release_many(batch, m) != m) ++violations;
        }
      }
      if (!held.empty()) {
        for (const sim::Name name : held) owner[name].store(-1);
        if (service.release_many(held.data(), held.size()) != held.size()) {
          ++violations;
        }
      }
      // Drain this worker's stash so quiescent accounting is exact.
      service.flush_thread_cache();
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(violations.load(), 0u);
  // <= kMaxHeld live per thread keeps total demand under n, so a batch
  // that stays short across the retries means real exhaustion, which the
  // bound rules out.
  EXPECT_EQ(short_batches.load(), 0u);
  EXPECT_EQ(service.names_live(), 0u) << "live counter drifted";
}

TEST(RenamingServiceStress, BatchChurnAcrossShardsPadded) {
  batch_churn_stress(/*n=*/768, /*shards=*/4, ArenaLayout::kPadded,
                     /*threads=*/8, /*iters=*/8000);
}

TEST(RenamingServiceStress, BatchChurnAcrossShardsPacked) {
  batch_churn_stress(/*n=*/768, /*shards=*/8, ArenaLayout::kPacked,
                     /*threads=*/8, /*iters=*/8000);
}

TEST(RenamingService, AutoShardingPicksPowerOfTwo) {
  RenamingService service(1u << 14, RenamingServiceOptions{});
  const std::uint64_t s = service.num_shards();
  EXPECT_GE(s, 1u);
  EXPECT_EQ(s & (s - 1), 0u) << "shard count not a power of two";
  EXPECT_GE(service.shard_holders(), 64u);
  EXPECT_GE(service.capacity(), 1u << 14);
}

TEST(RenamingService, ResetUnderRepeatedRounds) {
  // The bench-pool pattern: fill to 60%, reset, refill — across rounds the
  // service must keep producing unique names without reallocation.
  RenamingService service(128, sharded(4));
  const std::uint64_t threshold = service.capacity() * 6 / 10;
  for (int round = 0; round < 50; ++round) {
    std::set<sim::Name> names;
    for (std::uint64_t i = 0; i < threshold; ++i) {
      const sim::Name name = service.acquire();
      ASSERT_GE(name, 0);
      ASSERT_TRUE(names.insert(name).second)
          << "duplicate in round " << round;
    }
    service.reset();
  }
}

}  // namespace
}  // namespace loren
