// Tests for long-lived renaming: acquire/release churn under adversarial
// schedules, with the high-water-uniqueness invariant checked on every
// interleaving step.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "renaming/long_lived.h"
#include "sim/explorer.h"
#include "sim/runner.h"
#include "sim/scheduler.h"

namespace loren {
namespace {

using sim::Env;
using sim::Name;
using sim::ProcessId;
using sim::RunConfig;
using sim::RunResult;
using sim::Task;

/// Each process performs `rounds` acquire/release cycles and returns its
/// last held name; a per-process log records every acquisition.
struct ChurnLog {
  std::vector<std::vector<Name>> acquired;  // per process, in order
};

sim::AlgoFactory churn_factory(LongLivedRenaming& renamer, int rounds,
                               ChurnLog* log) {
  return [&renamer, rounds, log](Env& env, ProcessId pid) -> Task<Name> {
    Name last = -1;
    for (int r = 0; r < rounds; ++r) {
      const Name name = co_await renamer.acquire(env);
      if (name < 0) co_return -1;  // namespace exhausted: test failure
      log->acquired[pid].push_back(name);
      last = name;
      const bool ok = co_await renamer.release(env, name);
      if (!ok) co_return -1;
    }
    co_return last;
  };
}

TEST(LongLived, ChurnKeepsNamesInNamespace) {
  constexpr ProcessId kProcs = 32;
  constexpr int kRounds = 8;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    LongLivedRenaming renamer(kProcs, 0.5);
    ChurnLog log;
    log.acquired.resize(kProcs);
    sim::RandomStrategy strat;
    RunConfig cfg{.num_processes = kProcs, .seed = seed, .strategy = &strat};
    const RunResult r =
        sim::simulate(churn_factory(renamer, kRounds, &log), cfg);
    EXPECT_EQ(r.finished, kProcs);
    for (const auto& p : r.processes) {
      EXPECT_GE(p.name, 0);  // nobody ran out of names
    }
    // Every acquisition stayed inside the (1+eps)n namespace even though
    // total acquisitions (kProcs * kRounds) far exceed its size.
    std::uint64_t total = 0;
    for (const auto& v : log.acquired) {
      total += v.size();
      for (Name n : v) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, static_cast<Name>(renamer.capacity()));
      }
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kProcs) * kRounds);
    EXPECT_GT(total, renamer.capacity());  // reuse actually happened
  }
}

TEST(LongLived, AdversarialChurnStaysCorrect) {
  constexpr ProcessId kProcs = 16;
  LongLivedRenaming renamer(kProcs, 0.5);
  ChurnLog log;
  log.acquired.resize(kProcs);
  sim::CollisionAdversary strat;
  RunConfig cfg{.num_processes = kProcs, .seed = 3, .strategy = &strat};
  const RunResult r = sim::simulate(churn_factory(renamer, 6, &log), cfg);
  EXPECT_EQ(r.finished, kProcs);
  for (const auto& p : r.processes) EXPECT_GE(p.name, 0);
}

TEST(LongLived, ReleaseRejectsForeignNames) {
  LongLivedRenaming renamer(8, 0.5);
  sim::RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 1, .seed = 1, .strategy = &strat};
  const RunResult r = sim::simulate(
      [&renamer](Env& env, ProcessId) -> Task<Name> {
        // Releasing a name outside the namespace must fail without a step.
        const bool ok = co_await renamer.release(env, 1'000'000);
        co_return ok ? 0 : 1;
      },
      cfg);
  EXPECT_EQ(r.processes[0].name, 1);
  EXPECT_EQ(r.processes[0].steps, 0u);  // rejected locally
}

// The core long-lived safety property, checked exhaustively: at every
// point of every schedule, a name is held by at most one process. We
// verify it via the explorer on a tiny instance: 2 processes, 2 rounds,
// and the final memory state must show exactly the released cells free.
TEST(LongLived, ExhaustiveHoldUniqueness) {
  auto renamer = std::make_shared<LongLivedRenaming>(
      2, ReBatching::Options{
             .layout = {.epsilon = 0.5, .beta = 1, .t0_override = 1}});
  // Each process: acquire a, acquire b (holding two names!), release both.
  // Holding two names per process doubles the concurrent-holder count; the
  // namespace of ReBatching(2) with backup still covers it (total >= 4...
  // with eps=0.5 and n=2, total = 3, so EXPECT the third/fourth acquire to
  // sometimes fail => processes must tolerate -1).
  auto factory = [renamer](Env& env, ProcessId) -> Task<Name> {
    const Name a = co_await renamer->acquire(env);
    if (a < 0) co_return 0;
    const Name b = co_await renamer->acquire(env);
    const bool dup = (b == a);  // must never happen while a is held
    if (b >= 0) co_await renamer->release(env, b);
    co_await renamer->release(env, a);
    co_return dup ? -7 : 1;  // -7 flags a uniqueness violation
  };
  const sim::ExploreResult r = sim::explore(
      factory,
      sim::ExploreConfig{.num_processes = 2, .max_decisions = 12,
                         .max_paths = 3'000'000},
      [](const sim::PathOutcome& o) {
        for (std::size_t i = 0; i < o.names.size(); ++i) {
          if (o.finished[i] && o.names[i] == -7) return false;
        }
        return true;
      });
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.paths_completed, 10u);
}

}  // namespace
}  // namespace loren
