// Tests for the simulation framework: Task coroutines, SimEnv semantics,
// scheduler strategies, the runner, crash injection, and determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/env.h"
#include "sim/runner.h"
#include "sim/scheduler.h"
#include "sim/sim_env.h"
#include "sim/task.h"

namespace loren::sim {
namespace {

// ------------------------------------------------------------- Task ----

Task<int> immediate_value(int v) { co_return v; }

Task<int> nested_add(int a, int b) {
  const int x = co_await immediate_value(a);
  const int y = co_await immediate_value(b);
  co_return x + y;
}

Task<int> recursive_sum(int n) {
  if (n == 0) co_return 0;
  co_return n + co_await recursive_sum(n - 1);
}

TEST(TaskTest, ImmediateCompletion) {
  auto t = immediate_value(42);
  EXPECT_FALSE(t.done());  // lazily started
  t.resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 42);
}

TEST(TaskTest, NestedAwaitRunsToCompletion) {
  auto t = nested_add(2, 3);
  t.resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 5);
}

TEST(TaskTest, DeepRecursionViaSymmetricTransfer) {
  auto t = recursive_sum(2000);
  t.resume();
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.result(), 2000 * 2001 / 2);
}

Task<int> throwing_task() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable
}

TEST(TaskTest, ExceptionPropagates) {
  auto t = throwing_task();
  t.resume();
  ASSERT_TRUE(t.done());
  EXPECT_THROW(t.result(), std::runtime_error);
}

Task<int> awaits_thrower() {
  const int v = co_await throwing_task();
  co_return v;
}

TEST(TaskTest, ExceptionPropagatesThroughNestedAwait) {
  auto t = awaits_thrower();
  t.resume();
  ASSERT_TRUE(t.done());
  EXPECT_THROW(t.result(), std::runtime_error);
}

TEST(TaskTest, MoveSemantics) {
  auto t = immediate_value(7);
  Task<int> u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): move contract
  u.resume();
  EXPECT_EQ(u.result(), 7);
}

TEST(TaskTest, DestroyingSuspendedTaskIsSafe) {
  SimEnv env(1, 9);
  env.ensure_locations(4);
  auto algo = [](Env& e) -> Task<Name> {
    if (co_await tas(e, 0)) co_return 0;
    co_return -1;
  };
  {
    auto t = algo(env);
    env.set_current(0);
    t.resume();
    EXPECT_FALSE(t.done());
    // Task goes out of scope while suspended at the TAS awaiter.
  }
  SUCCEED();
}

// ------------------------------------------------------------ SimEnv ----

TEST(SimEnvTest, TasSemanticsFirstWins) {
  SimEnv env(2, 1);
  env.ensure_locations(1);
  PendingOp op{OpKind::kTas, 0, 0, nullptr, {}};
  EXPECT_EQ(env.execute(0, op), 1u);  // first access wins
  EXPECT_EQ(env.execute(1, op), 0u);  // later accesses lose
  EXPECT_EQ(env.cell(0), 1u);
}

TEST(SimEnvTest, ReadWriteSemantics) {
  SimEnv env(1, 1);
  env.ensure_locations(3);
  PendingOp w{OpKind::kWrite, 2, 77, nullptr, {}};
  env.execute(0, w);
  PendingOp r{OpKind::kRead, 2, 0, nullptr, {}};
  EXPECT_EQ(env.execute(0, r), 77u);
}

TEST(SimEnvTest, StepAccounting) {
  SimEnv env(2, 1);
  env.ensure_locations(2);
  PendingOp op{OpKind::kTas, 0, 0, nullptr, {}};
  env.execute(0, op);
  env.execute(0, op);
  env.execute(1, op);
  EXPECT_EQ(env.steps(0), 2u);
  EXPECT_EQ(env.steps(1), 1u);
  EXPECT_EQ(env.total_steps(), 3u);
  EXPECT_EQ(env.tas_count(), 3u);
  EXPECT_EQ(env.rw_count(), 0u);
}

TEST(SimEnvTest, GrowsOnDemand) {
  SimEnv env(1, 1);
  EXPECT_EQ(env.num_locations(), 0u);
  PendingOp op{OpKind::kTas, 100, 0, nullptr, {}};
  env.execute(0, op);
  EXPECT_GE(env.num_locations(), 101u);
}

TEST(SimEnvTest, RandomStreamsPerProcessAreDeterministic) {
  SimEnv a(2, 5), b(2, 5);
  a.set_current(0);
  b.set_current(0);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.random_below(1000), b.random_below(1000));
  }
  a.set_current(1);
  // Different process => (almost surely) different stream.
  int same = 0;
  for (int i = 0; i < 32; ++i) same += a.random_below(1000) == b.random_below(1000);
  EXPECT_LE(same, 4);
}

TEST(SimEnvTest, DoublePostThrows) {
  SimEnv env(1, 1);
  env.set_current(0);
  env.post(PendingOp{});
  EXPECT_THROW(env.post(PendingOp{}), std::logic_error);
}

// --------------------------------------------------------- strategies ----

/// n processes, each TASes its own location then returns it: trivially
/// correct renaming used to exercise the runner.
AlgoFactory own_slot_algo() {
  return [](Env& env, ProcessId pid) -> Task<Name> {
    env.ensure_locations(pid + 1);
    if (co_await tas(env, pid)) co_return static_cast<Name>(pid);
    co_return -1;
  };
}

/// Everyone fights for location 0 first, loser takes own slot: creates
/// contention the adversaries can exploit.
AlgoFactory contended_algo() {
  return [](Env& env, ProcessId pid) -> Task<Name> {
    env.ensure_locations(1 + pid + 1);
    if (co_await tas(env, 0)) co_return 0;
    if (co_await tas(env, 1 + pid)) co_return static_cast<Name>(1 + pid);
    co_return -1;
  };
}

class StrategyParamTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Strategy> make() {
    switch (GetParam()) {
      case 0: return std::make_unique<RoundRobinStrategy>();
      case 1: return std::make_unique<RandomStrategy>();
      case 2: return std::make_unique<LayeredStrategy>();
      default: return std::make_unique<CollisionAdversary>();
    }
  }
};

TEST_P(StrategyParamTest, OwnSlotAllFinish) {
  auto strat = make();
  RunConfig cfg{.num_processes = 64, .seed = 11, .strategy = strat.get()};
  const RunResult r = simulate(own_slot_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, 64u);
  EXPECT_EQ(r.total_steps, 64u);  // one step each
  EXPECT_EQ(r.max_steps, 1u);
}

TEST_P(StrategyParamTest, ContendedUniqueNames) {
  auto strat = make();
  RunConfig cfg{.num_processes = 32, .seed = 13, .strategy = strat.get()};
  const RunResult r = simulate(contended_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.finished, 32u);
  // Exactly one process wins location 0 in one step; the rest take two.
  EXPECT_EQ(r.total_steps, 1u + 2u * 31u);
}

TEST_P(StrategyParamTest, DeterministicGivenSeed) {
  auto s1 = make();
  auto s2 = make();
  RunConfig c1{.num_processes = 16, .seed = 21, .strategy = s1.get()};
  RunConfig c2{.num_processes = 16, .seed = 21, .strategy = s2.get()};
  const RunResult r1 = simulate(contended_algo(), c1);
  const RunResult r2 = simulate(contended_algo(), c2);
  ASSERT_EQ(r1.processes.size(), r2.processes.size());
  for (std::size_t i = 0; i < r1.processes.size(); ++i) {
    EXPECT_EQ(r1.processes[i].name, r2.processes[i].name);
    EXPECT_EQ(r1.processes[i].steps, r2.processes[i].steps);
  }
}

std::string strategy_param_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "RoundRobin";
    case 1: return "Random";
    case 2: return "Layered";
    default: return "Collision";
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyParamTest,
                         ::testing::Values(0, 1, 2, 3), strategy_param_name);

TEST(LayeredStrategyTest, CountsLayers) {
  LayeredStrategy strat;
  RunConfig cfg{.num_processes = 8, .seed = 3, .strategy = &strat};
  const RunResult r = simulate(own_slot_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  // Every process takes exactly one step => exactly one layer formed.
  EXPECT_EQ(strat.layers_completed(), 1u);
}

TEST(CollisionAdversaryTest, SchedulesDoomedProbesFirst) {
  // With the contended algorithm, the adversary should make every process
  // waste its location-0 probe after the first winner.
  CollisionAdversary strat;
  RunConfig cfg{.num_processes = 16, .seed = 5, .strategy = &strat};
  const RunResult r = simulate(contended_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.total_steps, 1u + 2u * 15u);
}

// ------------------------------------------------------------ crashes ----

TEST(CrashTest, RandomCrashesAreTolerated) {
  auto base = std::make_unique<RoundRobinStrategy>();
  CrashDecorator strat(std::move(base), /*max_crashes=*/8,
                       CrashDecorator::Mode::kRandom, /*interval=*/3);
  RunConfig cfg{.num_processes = 32, .seed = 17, .strategy = &strat};
  const RunResult r = simulate(contended_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.crashed, 8u);
  EXPECT_EQ(r.finished, 24u);
}

TEST(CrashTest, BeforeWinCrashesWasteNoNames) {
  auto base = std::make_unique<RoundRobinStrategy>();
  CrashDecorator strat(std::move(base), /*max_crashes=*/4,
                       CrashDecorator::Mode::kBeforeWin);
  RunConfig cfg{.num_processes = 8, .seed = 19, .strategy = &strat};
  const RunResult r = simulate(own_slot_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.crashed, 4u);
  EXPECT_EQ(r.finished, 4u);
}

TEST(CrashTest, AllButOneCrash) {
  auto base = std::make_unique<RoundRobinStrategy>();
  CrashDecorator strat(std::move(base), /*max_crashes=*/31,
                       CrashDecorator::Mode::kRandom, /*interval=*/1);
  RunConfig cfg{.num_processes = 32, .seed = 23, .strategy = &strat};
  const RunResult r = simulate(contended_algo(), cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.crashed, 31u);
  EXPECT_EQ(r.finished, 1u);
}

// ------------------------------------------------------------- runner ----

TEST(RunnerTest, RejectsMissingStrategy) {
  RunConfig cfg{.num_processes = 2, .seed = 1, .strategy = nullptr};
  EXPECT_THROW(simulate(own_slot_algo(), cfg), std::invalid_argument);
}

TEST(RunnerTest, StepGuardFires) {
  // A process that loops forever on a lost TAS.
  AlgoFactory spin = [](Env& env, ProcessId) -> Task<Name> {
    env.ensure_locations(1);
    for (;;) {
      if (co_await tas(env, 0)) co_return 0;
    }
  };
  RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 2,
                .seed = 1,
                .strategy = &strat,
                .max_total_steps = 1000};
  EXPECT_THROW(simulate(spin, cfg), std::runtime_error);
}

TEST(RunnerTest, ProcessWithNoSharedStepsFinishesAtStart) {
  AlgoFactory local_only = [](Env&, ProcessId pid) -> Task<Name> {
    co_return static_cast<Name>(pid);
  };
  RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 4, .seed = 1, .strategy = &strat};
  const RunResult r = simulate(local_only, cfg);
  EXPECT_TRUE(r.renaming_correct());
  EXPECT_EQ(r.total_steps, 0u);
}

TEST(RunnerTest, DuplicateNamesDetected) {
  AlgoFactory dup = [](Env&, ProcessId) -> Task<Name> { co_return 7; };
  RoundRobinStrategy strat;
  RunConfig cfg{.num_processes = 3, .seed = 1, .strategy = &strat};
  const RunResult r = simulate(dup, cfg);
  EXPECT_FALSE(r.names_unique);
  EXPECT_FALSE(r.renaming_correct());
}

}  // namespace
}  // namespace loren::sim
