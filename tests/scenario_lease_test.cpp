// Deterministic crash-storm scenarios for the lease subsystem
// (lease/lease_table.h): parked holders, the reaper, and the late-release
// guard, all driven under the ScenarioEngine's seeded scheduler with a
// test-owned lease clock (a file-scope counter the scenario advances
// explicitly, so every deadline comparison in a run is replayable).
//
// The three claims pinned here, per docs/leases.md:
//   1. Recovery: a storm that parks holders forever (crash model:
//      StallRule{stall_steps = 0}) ends with every abandoned name
//      reclaimed, zero false expiries of live renewing holders, and
//      global uniqueness intact throughout.
//   2. The same storm without leasing demonstrably leaks — the namespace
//      stays down by exactly the abandoned names with no mechanism to
//      recover them.
//   3. The release guard is load-bearing: a pinned schedule stalls a
//      releaser *inside* LeaseTable::close while the reaper expires the
//      lease and the name is reissued to another thread. With the guard
//      on, the revived holder's release is rejected (an hb-identity
//      trip); with release_guard = false the same schedule applies the
//      stale release to the new holder's cell and the very next acquire
//      double-grants the name — the silent ABA the guard exists to stop.
//
// Only builds under -DLOREN_SIM (CMakeLists excludes scenario_* tests
// otherwise): the stalls aim at LOREN_SIM_POINT tags.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"
#include "sim/scenario/engine.h"
#include "sim/scenario/scenario.h"

namespace loren {
namespace {

using scenario::Scenario;
using scenario::ScenarioEngine;
using scenario::StallRule;
using Worker = ScenarioEngine::Worker;
using sim::Name;

// Test-owned lease clock. The engine's step counter would also be
// deterministic, but it only ticks on worker threads — the post-storm
// reap below runs from the main thread, which must see the same clock
// the workers' heartbeats were stamped with.
std::atomic<std::uint64_t> g_now{1};
std::uint64_t fake_now() { return g_now.load(std::memory_order_relaxed); }

// Same recorder discipline as scenario_test.cpp: no gtest asserts on
// worker threads; bodies record, main asserts with seed + trace.
struct Checks {
  std::mutex mu;
  std::vector<std::string> failures;
  void fail(std::string msg) {
    std::lock_guard<std::mutex> lock(mu);
    failures.push_back(std::move(msg));
  }
  [[nodiscard]] bool ok() {
    std::lock_guard<std::mutex> lock(mu);
    return failures.empty();
  }
  [[nodiscard]] std::string summary() {
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    for (const std::string& f : failures) out += "  " + f + "\n";
    return out;
  }
};

struct HeldSet {
  std::mutex mu;
  std::set<Name> names;
  bool add(Name n) {
    std::lock_guard<std::mutex> lock(mu);
    return names.insert(n).second;
  }
  void remove(Name n) {
    std::lock_guard<std::mutex> lock(mu);
    names.erase(n);
  }
};

ElasticOptions storm_options(std::uint64_t ttl, std::uint64_t grace) {
  ElasticOptions opts;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.auto_grow = false;
  opts.auto_shrink = false;
  // Cache off: every acquisition must walk the instrumented shared path
  // (and open a lease there), and stashes would blur the live-name
  // accounting the storm asserts on.
  opts.name_cache = false;
  opts.lease.ttl_ticks = ttl;
  opts.lease.grace = grace;
  opts.lease.clock = &fake_now;
  return opts;
}

// A holder that "crashes": acquires `count` names, records them, then
// parks forever at victim.hold (the matching StallRule has
// stall_steps = 0). Resumed only by eng.finish(), at which point its
// leases are long reaped — every late release must come back rejected.
ScenarioEngine::Body victim(ElasticRenamingService* svc, Checks* checks,
                            HeldSet* held, std::mutex* abandoned_mu,
                            std::vector<Name>* abandoned, int count) {
  return [=](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < count; ++i) {
      w.yield("victim.acquire");
      const Name n = svc->acquire();
      if (n < 0) {
        checks->fail("victim acquire failed pre-crash");
        continue;
      }
      if (!held->add(n)) {
        checks->fail("duplicate live name " + std::to_string(n) +
                     " acquired by victim w" + std::to_string(w.id()));
      }
      mine.push_back(n);
    }
    {
      std::lock_guard<std::mutex> lock(*abandoned_mu);
      abandoned->insert(abandoned->end(), mine.begin(), mine.end());
    }
    w.yield("victim.hold");  // parks here: the crash
    // --- revived by finish(), far in the future ---
    for (const Name n : mine) {
      if (svc->release(n)) {
        checks->fail("revived holder's late release of " + std::to_string(n) +
                     " was APPLIED (silent ABA)");
      }
    }
  };
}

// A live holder: churns acquire/release and must never be falsely
// expired — every release of a name it holds has to succeed.
ScenarioEngine::Body churner(ElasticRenamingService* svc, Checks* checks,
                             HeldSet* held, int ops) {
  return [=](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < ops; ++i) {
      w.yield("churn.op");
      if (mine.size() < 6 && (mine.empty() || w.rng().below(2) == 0)) {
        const Name n = svc->acquire();
        if (n < 0) continue;
        if (!held->add(n)) {
          checks->fail("duplicate live name " + std::to_string(n));
        }
        mine.push_back(n);
      } else {
        const Name n = mine.back();
        mine.pop_back();
        held->remove(n);
        if (!svc->release(n)) {
          checks->fail("live holder's release of " + std::to_string(n) +
                       " rejected (false expiry)");
        }
      }
    }
    for (const Name n : mine) {
      held->remove(n);
      if (!svc->release(n)) {
        checks->fail("live holder's final release rejected (false expiry)");
      }
    }
  };
}

// The lease clock: one engine worker advancing g_now a tick per slice,
// so time moves *during* the storm (heartbeats are stamped at differing
// ticks, renewals matter) while staying far below ttl + grace — a false
// expiry of a churner is a bug, not a flake.
ScenarioEngine::Body ticker(int ticks) {
  return [=](Worker& w) {
    for (int i = 0; i < ticks; ++i) {
      w.yield("clock.tick");
      g_now.fetch_add(1, std::memory_order_relaxed);
    }
  };
}

struct StormResult {
  std::string trace;
  std::size_t abandoned = 0;
  std::uint64_t reaped = 0;
};

// One full crash-storm: 2 victims park holding names, 2 churners + the
// ticker keep running; after run() returns the main thread jumps the
// clock past ttl + grace and reaps; finish() then revives the victims
// into a world where their names belong to someone else.
StormResult run_crash_storm(std::uint64_t seed, bool leases_on) {
  g_now.store(1, std::memory_order_relaxed);
  const std::uint64_t ttl = 5000;
  const std::uint64_t grace = 100;
  ElasticRenamingService svc(
      64, storm_options(leases_on ? ttl : 0, leases_on ? grace : 0));
  Checks checks;
  HeldSet held;
  std::mutex abandoned_mu;
  std::vector<Name> abandoned;

  Scenario scn;
  scn.seed = seed;
  scn.preempt_every = 1;
  // Workers 0 and 1 are the victims: park forever at the hold point.
  scn.stalls.push_back(StallRule{"victim.hold", 0, 0, 0, 1});
  scn.stalls.push_back(StallRule{"victim.hold", 1, 0, 0, 1});

  ScenarioEngine eng(scn);
  const bool done =
      eng.run({victim(&svc, &checks, &held, &abandoned_mu, &abandoned, 4),
               victim(&svc, &checks, &held, &abandoned_mu, &abandoned, 4),
               churner(&svc, &checks, &held, 40),
               churner(&svc, &checks, &held, 40), ticker(400)});

  StormResult r;
  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_EQ(eng.parked(), 2u) << "a victim failed to crash\n" << eng.trace();
  EXPECT_TRUE(checks.ok()) << checks.summary() << "seed " << seed << "\n"
                           << eng.trace();
  r.abandoned = abandoned.size();
  EXPECT_GE(r.abandoned, 1u);
  // Churners drained; exactly the abandoned names are still live, and
  // nothing expired while every holder was either live or not yet stale.
  EXPECT_EQ(svc.names_live(), r.abandoned);
  if (leases_on) {
    EXPECT_EQ(svc.lease_expired(), 0u) << "a lease expired mid-storm";
    EXPECT_EQ(svc.lease_guard_trips(), 0u) << "a guard tripped mid-storm";
  }

  // The holders are dead; let their leases go stale and reap.
  g_now.fetch_add(ttl + grace + 1, std::memory_order_relaxed);
  r.reaped = svc.reap_expired();

  if (leases_on) {
    EXPECT_EQ(r.reaped, r.abandoned) << "reaper missed abandoned names";
    EXPECT_EQ(svc.lease_expired(), r.abandoned);
    EXPECT_EQ(svc.names_live(), 0u) << "abandoned names not reclaimed";
    // The recovered capacity is genuinely reusable: re-acquire it all.
    // (These leases bind to the main thread's heartbeat — which is the
    // point: the revived victims below present the wrong identity.)
    std::vector<Name> reissued(r.abandoned);
    EXPECT_EQ(svc.acquire_many(reissued.size(), reissued.data()),
              reissued.size())
        << "reclaimed capacity was not reusable";
    for (const Name n : abandoned) held.remove(n);

    // Revive the victims: their late releases must all be rejected (the
    // victim bodies record a failure otherwise), and every reissued name
    // must still be live afterwards — nothing was double-freed.
    eng.finish();
    EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
    EXPECT_EQ(svc.names_live(), reissued.size())
        << "a late release freed a reissued cell";
    EXPECT_GE(svc.lease_guard_trips(), r.abandoned)
        << "late releases were not detected";
    EXPECT_EQ(svc.release_many(reissued.data(), reissued.size()),
              reissued.size());
  } else {
    // No leases: the abandoned names are simply gone. There is no reap
    // mechanism — this is the leak the subsystem exists to fix.
    EXPECT_EQ(r.reaped, 0u);
    EXPECT_EQ(svc.names_live(), r.abandoned) << "leak model changed";
    // And the failure is silent in both directions: when the dead
    // holders are revived, their stale releases are *applied* without
    // complaint (the victim bodies record each application as a
    // failure — without leasing, every one of them fires).
    eng.finish();
    EXPECT_EQ(svc.names_live(), 0u);
    std::size_t applied = 0;
    {
      std::lock_guard<std::mutex> lock(checks.mu);
      for (const std::string& f : checks.failures) {
        applied += f.find("APPLIED") != std::string::npos ? 1 : 0;
      }
      EXPECT_EQ(applied, checks.failures.size())
          << "unexpected failures:\n" << checks.summary();
    }
    EXPECT_EQ(applied, r.abandoned)
        << "stale releases were not all silently applied";
  }

  r.trace = eng.trace();
  return r;
}

TEST(ScenarioLease, CrashStormRecoversEveryAbandonedName) {
  run_crash_storm(0x1EA5Eu, /*leases_on=*/true);
}

TEST(ScenarioLease, SameStormWithoutLeasesLeaksForever) {
  run_crash_storm(0x1EA5Eu, /*leases_on=*/false);
}

TEST(ScenarioLease, StormTraceIsByteIdenticalPerSeed) {
  const StormResult a = run_crash_storm(0x1EA5E2u, true);
  const StormResult b = run_crash_storm(0x1EA5E2u, true);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace) << "same seed produced different schedules";
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.reaped, b.reaped);
  EXPECT_NE(a.trace, run_crash_storm(0x1EA5E3u, true).trace)
      << "distinct seeds explored the same schedule";
}

// ------------------------- pinned schedule: expiry vs late release ------
//
// The fixed service is the sharpest ABA instrument: its names carry no
// generation bits, so a reaped-and-reissued cell yields *identical* name
// bits. Worker 0 is stalled inside LeaseTable::close (at the lease.close
// sim point, before the shard lock); while it hangs, worker 1 drives the
// clock past expiry, reaps, and re-acquires the very same cell. Worker 0
// then resumes its release holding stale name bits that now denote
// worker 1's name.
//
// Returns true iff the schedule produced a double-grant (two holders
// observing the same live name) — which must be impossible with the
// guard on and is reliably reproduced with it off.
bool run_pinned_late_release(bool guard_on, std::string* trace_out) {
  g_now.store(1, std::memory_order_relaxed);
  RenamingServiceOptions opts;
  opts.shards = 1;  // one shard: local index == name, no interleaving
  opts.name_cache = false;
  opts.lease.ttl_ticks = 50;
  opts.lease.grace = 10;
  opts.lease.clock = &fake_now;
  opts.lease.release_guard = guard_on;
  RenamingService svc(4, opts);
  Checks checks;

  std::atomic<Name> victim_name{-1};
  std::atomic<bool> victim_done{false};
  std::atomic<bool> victim_release_applied{false};
  std::atomic<bool> double_grant{false};

  Scenario scn;
  scn.seed = 0xABAu;
  scn.preempt_every = 1;
  // Freeze worker 0 inside its release's lease close for a long time —
  // long enough for worker 1's whole expiry+reissue dance.
  scn.stalls.push_back(StallRule{"lease.close", 0, 0, 4000, 1});

  ScenarioEngine eng(scn);
  const bool done = eng.run(
      {// Worker 0: the reviving holder. Acquires, then releases; the
       // release hangs at lease.close until far past its own expiry.
       [&](Worker& w) {
         w.yield("victim.acquire");
         const Name n = svc.acquire();
         if (n < 0) {
           checks.fail("victim acquire failed");
           return;
         }
         victim_name.store(n, std::memory_order_release);
         w.yield("victim.release");
         victim_release_applied.store(svc.release(n),
                                      std::memory_order_release);
         victim_done.store(true, std::memory_order_release);
       },
       // Worker 1: owns the rest of the namespace, expires the victim's
       // lease, takes over its cell, and probes for the double-grant.
       [&](Worker& w) {
         // Pre-fill the other cells so the victim's is the only one a
         // post-reap acquire can return.
         Name rest[3];
         w.yield("driver.prefill");
         if (svc.acquire_many(3, rest) != 3) {
           checks.fail("driver prefill failed");
           return;
         }
         // Wait until the victim holds its name, then age it out. Each
         // pass advances the clock and reaps; reap_expired deliberately
         // does not renew the caller (it must be able to expire the
         // caller's own abandoned names), so the driver keeps its three
         // leases fresh with an explicit renew per pass.
         while (victim_name.load(std::memory_order_acquire) < 0) {
           w.yield("driver.wait_hold");
         }
         while (svc.lease_expired() == 0) {
           w.yield("driver.age");
           g_now.fetch_add(10, std::memory_order_relaxed);
           if (svc.renew_lease(rest[0]) != rest[0]) {
             checks.fail("driver's own renew failed");
             return;
           }
           svc.reap_expired();
           if (g_now.load(std::memory_order_relaxed) > 100000) {
             checks.fail("victim lease never expired");
             return;
           }
         }
         // Reissue: the freed cell comes back with identical name bits.
         w.yield("driver.reissue");
         const Name taken = svc.acquire();
         if (taken != victim_name.load(std::memory_order_acquire)) {
           checks.fail("reissued name " + std::to_string(taken) +
                       " != victim's " +
                       std::to_string(victim_name.load()));
           return;
         }
         // Burn steps until the victim's stall expires and its whole
         // stale release has run to completion (rejected or applied).
         while (!victim_done.load(std::memory_order_acquire)) {
           w.yield("driver.wait_release");
         }
         // The probe: if the stale release freed *our* cell, the next
         // acquire double-grants name bits we still hold.
         w.yield("driver.probe");
         const Name probe = svc.acquire();
         if (probe == taken) double_grant.store(true);
         if (probe >= 0 && probe != taken) svc.release(probe);
         svc.release(taken);
         svc.release_many(rest, 3);
       }});
  eng.finish();

  EXPECT_TRUE(done) << "livelock guard tripped\n" << eng.trace();
  EXPECT_GE(eng.stalls_fired(), 1u) << "the close stall never fired";
  EXPECT_TRUE(checks.ok()) << checks.summary() << eng.trace();
  EXPECT_GE(svc.lease_guard_trips(), 1u)
      << "the late release was never detected";
  // The victim's own view must agree with the guard setting: rejected
  // when guarded, silently applied when not.
  EXPECT_EQ(victim_release_applied.load(), !guard_on);
  if (trace_out != nullptr) *trace_out = eng.trace();
  return double_grant.load();
}

TEST(ScenarioLease, PinnedLateReleaseIsRejectedByTheGuard) {
  std::string trace;
  EXPECT_FALSE(run_pinned_late_release(/*guard_on=*/true, &trace))
      << "guarded late release still double-granted\n"
      << trace;
}

TEST(ScenarioLease, SameScheduleWithGuardOffDoubleGrants) {
  // The control experiment proving the schedule actually reaches the
  // race (and that the pinned test above would fail were the guard
  // reverted): with release_guard off the stale release lands on the
  // reissued cell and the very next acquire double-grants it.
  std::string trace;
  EXPECT_TRUE(run_pinned_late_release(/*guard_on=*/false, &trace))
      << "unguarded schedule no longer reproduces the ABA\n"
      << trace;
}

}  // namespace
}  // namespace loren
