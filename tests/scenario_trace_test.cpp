// Deterministic event traces under the scenario engine (-DLOREN_SIM
// plus -DLOREN_TELEMETRY).
//
// Under a running ScenarioEngine, trace_ticks() returns the engine's
// step counter instead of the TSC (telemetry/trace.h), so every
// LOREN_TRACE event emitted by an engine-bound worker is stamped
// deterministically. This test pins that contract end to end: the same
// seeded scenario run twice — trace_reset() between — must drain to a
// byte-identical chrome://tracing JSON, timestamps included. That is
// what makes a trace from a failing scenario seed attachable to a bug
// report as an exact, replayable event log rather than a one-off.
//
// Builds only under -DLOREN_SIM (the tests/scenario_ glob filter);
// skips unless -DLOREN_TELEMETRY is also on, because without the macro
// the library emits no events to compare.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "elastic/elastic_service.h"
#include "sim/scenario/engine.h"
#include "sim/scenario/scenario.h"
#include "telemetry/trace.h"

namespace loren {
namespace {

using scenario::Scenario;
using scenario::ScenarioEngine;
using Worker = ScenarioEngine::Worker;
using sim::Name;

// The helpers are only called from the LOREN_TELEMETRY test bodies; a
// telemetry-off sim build would flag them unused under -Werror.
#ifdef LOREN_TELEMETRY
ElasticOptions trace_options() {
  ElasticOptions opts;
  opts.epsilon = 0.5;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  // Cache off: every acquisition walks the traced shared paths.
  opts.name_cache = false;
  opts.auto_grow = false;
  return opts;
}

/// Churn body: all randomness from Worker::rng(), so the op sequence —
/// and with it every traced event — replays with the schedule.
ScenarioEngine::Body churner(ElasticRenamingService* svc, int ops) {
  return [=](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < ops; ++i) {
      w.yield("trace.churn");
      if (mine.size() < 6 && (mine.empty() || w.rng().below(2) == 0)) {
        const Name n = svc->acquire();
        if (n >= 0) mine.push_back(n);
      } else {
        svc->release(mine.back());
        mine.pop_back();
      }
    }
    for (const Name n : mine) svc->release(n);
  };
}

/// One full seeded run: churners plus a resizer (grow, shrink, reclaim,
/// so the elastic.grow / elastic.shrink / elastic.unlink /
/// elastic.reclaim trace tags all fire inside the engine). Every traced
/// event happens on an engine-bound worker — nothing traces from the
/// main thread, which would stamp nondeterministic TSC ticks into the
/// drain. Returns the drained chrome JSON.
std::string traced_run(std::uint64_t seed) {
  telemetry::trace_reset();
  ElasticRenamingService svc(64, trace_options());
  Scenario scn;
  scn.seed = seed;
  scn.preempt_every = 1;
  ScenarioEngine eng(scn);
  const bool done = eng.run(
      {churner(&svc, 30), churner(&svc, 30), [&svc](Worker& w) {
         w.yield("trace.resize");
         svc.resize(128);
         w.yield("trace.shrink");
         svc.resize(64);
         w.yield("trace.reclaim");
         svc.reclaim();
         svc.reclaim();
       }});
  eng.finish();
  EXPECT_TRUE(done) << "livelock guard tripped, seed " << seed << "\n"
                    << eng.trace();
  return telemetry::trace_chrome_json();
}
#endif  // LOREN_TELEMETRY

TEST(ScenarioTrace, SameSeedDrainsByteIdenticalTrace) {
#ifndef LOREN_TELEMETRY
  GTEST_SKIP() << "built without -DLOREN_TELEMETRY: no events to compare";
#else
  const std::string first = traced_run(0x77ACEu);
  const std::string second = traced_run(0x77ACEu);
  ASSERT_NE(first.find("\"traceEvents\""), std::string::npos);
  // The drain must carry real library events, not just an empty shell.
  EXPECT_NE(first.find("elastic.grow"), std::string::npos)
      << "resizer's grow never traced";
  EXPECT_NE(first.find("epoch.pin"), std::string::npos)
      << "churn never traced an epoch pin";
  // The whole point: engine-stamped timestamps make the two drains
  // byte-identical, not merely same-shaped.
  EXPECT_EQ(first, second) << "same seed produced different event traces";
  telemetry::trace_reset();
#endif
}

TEST(ScenarioTrace, DistinctSeedsDiverge) {
#ifndef LOREN_TELEMETRY
  GTEST_SKIP() << "built without -DLOREN_TELEMETRY: no events to compare";
#else
  const std::string a = traced_run(0x7D1u);
  const std::string b = traced_run(0x7D2u);
  // Different interleavings order the same protocol steps differently;
  // identical traces here would mean the timestamps aren't really
  // schedule-derived.
  EXPECT_NE(a, b) << "distinct seeds drained identical traces";
  telemetry::trace_reset();
#endif
}

}  // namespace
}  // namespace loren
