// Tests for the TasArena substrate: both layouts, generation-stamped
// epoch reset, validated release, and real-thread TAS safety (at most one
// winner per cell per epoch regardless of interleaving).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "tas/tas_arena.h"

namespace loren {
namespace {

class TasArenaLayouts : public ::testing::TestWithParam<ArenaLayout> {};

TEST_P(TasArenaLayouts, FirstCallWins) {
  TasArena arena(4, GetParam());
  EXPECT_TRUE(arena.test_and_set(2));
  EXPECT_FALSE(arena.test_and_set(2));
  EXPECT_TRUE(arena.test_and_set(3));
  EXPECT_EQ(arena.read(2), 1u);
  EXPECT_EQ(arena.read(0), 0u);
}

TEST_P(TasArenaLayouts, EpochResetFreesEverythingInO1) {
  TasArena arena(8, GetParam());
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(arena.test_and_set(i));
  const std::uint64_t before = arena.epoch();
  arena.reset();
  EXPECT_EQ(arena.epoch(), before + 1);
  // Every stale-generation cell must be winnable again.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(arena.read(i), 0u) << "cell " << i << " still taken after reset";
    EXPECT_TRUE(arena.test_and_set(i)) << "stale cell " << i << " not winnable";
    EXPECT_FALSE(arena.test_and_set(i));
  }
}

TEST_P(TasArenaLayouts, StaleStampIsNotTaken) {
  TasArena arena(2, GetParam());
  ASSERT_TRUE(arena.test_and_set(0));
  arena.reset();
  // The raw stamp survives (no O(m) zeroing happened)...
  EXPECT_NE(arena.raw_stamp(0), 0u);
  // ...but the logical view is free.
  EXPECT_EQ(arena.read(0), 0u);
}

TEST_P(TasArenaLayouts, TryReleaseValidates) {
  TasArena arena(4, GetParam());
  EXPECT_FALSE(arena.try_release(1)) << "never-won cell released";
  ASSERT_TRUE(arena.test_and_set(1));
  EXPECT_TRUE(arena.try_release(1));
  EXPECT_FALSE(arena.try_release(1)) << "double release succeeded";
  // Released cells are reacquirable (long-lived renaming).
  EXPECT_TRUE(arena.test_and_set(1));
  // A stale-epoch holder is not releasable after reset...
  arena.reset();
  EXPECT_FALSE(arena.try_release(1));
  // ...but is winnable.
  EXPECT_TRUE(arena.test_and_set(1));
}

TEST_P(TasArenaLayouts, WriteMatchesSeedSemantics) {
  TasArena arena(2, GetParam());
  arena.write(0, 1);
  EXPECT_EQ(arena.read(0), 1u);
  EXPECT_FALSE(arena.test_and_set(0));
  arena.write(0, 0);
  EXPECT_EQ(arena.read(0), 0u);
  EXPECT_TRUE(arena.test_and_set(0));
}

TEST_P(TasArenaLayouts, PaddedCellsDontShareCacheLines) {
  TasArena arena(16, GetParam());
  const std::uint64_t per_cell =
      arena.footprint_bytes() / arena.size();
  if (GetParam() == ArenaLayout::kPadded) {
    EXPECT_EQ(per_cell, TasArena::kCacheLine);
  } else {
    EXPECT_EQ(per_cell, sizeof(std::uint64_t));
  }
}

TEST_P(TasArenaLayouts, AtMostOneWinnerPerCellUnderRealThreads) {
  constexpr std::uint64_t kCells = 64;
  constexpr int kThreads = 8;
  for (int round = 0; round < 20; ++round) {
    TasArena arena(kCells, GetParam());
    std::vector<std::atomic<int>> winners(kCells);
    for (auto& w : winners) w.store(0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&arena, &winners] {
        for (std::uint64_t i = 0; i < kCells; ++i) {
          if (arena.test_and_set(i)) winners[i].fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    for (std::uint64_t i = 0; i < kCells; ++i) {
      EXPECT_EQ(winners[i].load(), 1) << "cell " << i << " round " << round;
    }
  }
}

TEST_P(TasArenaLayouts, WinPublishesDataToLosers) {
  // The acq_rel exchange must hand the winner's prior writes to any
  // thread that observes the cell taken (the release/acquire pairing the
  // memory-order weakening argument relies on).
  for (int round = 0; round < 200; ++round) {
    TasArena arena(1, GetParam());
    std::uint64_t payload = 0;
    std::thread writer([&] {
      payload = 42;
      ASSERT_TRUE(arena.test_and_set(0));
    });
    std::thread reader([&] {
      while (arena.read(0) == 0) {
      }
      EXPECT_EQ(payload, 42u);
    });
    writer.join();
    reader.join();
  }
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, TasArenaLayouts,
                         ::testing::Values(ArenaLayout::kPadded,
                                           ArenaLayout::kPacked),
                         [](const auto& param_info) {
                           return param_info.param == ArenaLayout::kPadded
                                      ? "padded"
                                      : "packed";
                         });

TEST(TasArenaEnv, CoroutineAlgorithmsRunOnTheArena) {
  TasArena arena(8);
  ArenaEnv env(arena, /*seed=*/7, /*pid=*/0);
  EXPECT_EQ(env.execute_now(sim::OpKind::kTas, 3, 0), 1u);
  EXPECT_EQ(env.execute_now(sim::OpKind::kTas, 3, 0), 0u);
  EXPECT_EQ(env.execute_now(sim::OpKind::kRead, 3, 0), 1u);
  env.execute_now(sim::OpKind::kWrite, 3, 0);
  EXPECT_EQ(env.execute_now(sim::OpKind::kRead, 3, 0), 0u);
}

}  // namespace
}  // namespace loren
