// Adaptive-control scenarios under the deterministic scheduler: a seeded
// burst storm saturates a pinned elastic namespace with the controller in
// kAdapt mode, a stall rule freezes a worker at the exact step where the
// shed gate flips ("control.shed"), and the run must show (a) exact shed
// accounting — every kShed the workload observed is counted, nothing
// else — (b) bounded behaviour at saturation (the livelock guard stays
// quiet and post-shed rejections never walk the arena), and (c) a
// byte-identical controller decision trace when the same seed replays.
// Only built under -DLOREN_SIM (the tags these scenarios stall on do not
// fire otherwise).
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"
#include "sim/scenario/engine.h"
#include "sim/scenario/scenario.h"

namespace loren {
namespace {

using control::ControlMode;
using scenario::kAnyWorker;
using scenario::Scenario;
using scenario::ScenarioEngine;
using scenario::StallRule;
using Worker = ScenarioEngine::Worker;
using sim::Name;

// Per-run outcome tallies, recorded by workload bodies and asserted on
// the main thread (gtest assertions must not run on engine workers).
// Serialized-phase discipline makes the mutex uncontended.
struct Tallies {
  std::mutex mu;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t real_failures = 0;  // kExhausted / kSweepBudgetExhausted
  std::uint64_t other = 0;          // anything else is a contract breach

  void note(Name n) {
    std::lock_guard<std::mutex> lock(mu);
    if (n >= 0) {
      ++ok;
    } else if (n == ElasticRenamingService::kShed) {
      ++shed;
    } else if (n == ElasticRenamingService::kExhausted ||
               n == ElasticRenamingService::kSweepBudgetExhausted) {
      ++real_failures;
    } else {
      ++other;
    }
  }
};

ElasticOptions storm_options() {
  ElasticOptions opts;
  opts.min_holders = 64;
  opts.max_holders = 64;  // pinned namespace: the storm must saturate
  opts.auto_grow = false;
  opts.name_cache = false;  // every acquisition walks the shared paths
  opts.control.mode = ControlMode::kAdapt;
  opts.control.retry_budget = 3;
  // The controller's clock is the engine's serialized step counter under
  // LOREN_SIM; a short window gives several rollovers per run.
  opts.control.window = 64;
  opts.control.target_p99 = 16;
  return opts;
}

struct StormResult {
  bool done = false;
  std::string engine_trace;
  std::string controller_trace;
  std::uint64_t windows = 0;
};

// The burst storm: three workers grab-and-hold past capacity, hammer the
// saturated namespace for a while (this is where the shed gate flips and
// where the stall rule freezes a worker), then release everything and
// verify re-admission. Asserts the exact-accounting invariants inline.
StormResult run_burst_storm(std::uint64_t seed) {
  ElasticRenamingService svc(64, storm_options());
  Tallies tallies;
  std::mutex held_mu;  // collects per-worker holdings for the final drain
  std::vector<Name> all_held;

  Scenario scn;
  scn.seed = seed;
  scn.preempt_every = 1;
  // Freeze the worker that is about to flip the admission gate, right at
  // the flip, while the storm keeps pounding the saturated namespace.
  scn.stalls.push_back(StallRule{"control.shed", kAnyWorker, 0, 60, 1});

  auto body = [&](Worker& w) {
    std::vector<Name> mine;
    // Burst: demand well past this worker's fair share of the cells.
    for (int i = 0; i < 40; ++i) {
      w.yield("storm.burst");
      const Name n = svc.acquire();
      tallies.note(n);
      if (n >= 0) mine.push_back(n);
    }
    // Saturated hammering: nothing is released, so every acquisition
    // fails — first with real (swept) codes that exhaust the retry
    // budget, then with kShed.
    for (int i = 0; i < 60; ++i) {
      w.yield("storm.hammer");
      const Name n = svc.acquire();
      tallies.note(n);
      if (n >= 0) mine.push_back(n);  // raced a late burst slot: keep it
    }
    std::lock_guard<std::mutex> lock(held_mu);
    all_held.insert(all_held.end(), mine.begin(), mine.end());
  };
  // A dedicated ticker polls the controller every step, standing in for
  // the op-path's sampled rollover checks — window cadence then depends
  // only on the (deterministic) engine step count, not on op totals.
  auto ticker = [&](Worker& w) {
    for (int i = 0; i < 150; ++i) {
      w.yield("storm.tick");
      svc.controller()->poll();
    }
  };

  ScenarioEngine eng(scn);
  StormResult result;
  result.done = eng.run({body, body, body, ticker});
  eng.finish();
  result.engine_trace = eng.trace();

  EXPECT_TRUE(result.done) << "livelock guard tripped at saturation (an "
                              "unbounded spin), seed "
                           << seed << "\n"
                           << eng.trace();
  EXPECT_GE(eng.stalls_fired(), 1u)
      << "the control.shed stall never fired — the gate did not flip "
         "during the storm, seed "
      << seed;

  // Exact accounting, storm phase: 3x100 acquisitions, every outcome in
  // exactly one legal bucket, and the service's counters agree with what
  // the workload observed — shed-for-shed, failure-for-failure. The
  // burst wins every acquirable cell ((1+eps)-padded, so more than the
  // 64 holders) and nothing beyond.
  const std::uint64_t cells =
      svc.capacity() >> ElasticRenamingService::kTagBits;
  {
    std::lock_guard<std::mutex> lock(held_mu);
    EXPECT_EQ(tallies.ok + tallies.shed + tallies.real_failures, 300u);
    EXPECT_EQ(tallies.other, 0u) << "undocumented failure code surfaced";
    EXPECT_EQ(tallies.ok, all_held.size());
    EXPECT_EQ(tallies.ok, cells) << "burst must win exactly the namespace";
    EXPECT_GE(tallies.shed, 1u) << "saturation never shed, seed " << seed;
    EXPECT_GE(tallies.real_failures, storm_options().control.retry_budget)
        << "shed tripped before the budget was spent";
  }
  EXPECT_EQ(svc.shed_events(), tallies.shed);
  EXPECT_EQ(svc.controller()->saturation_events(), tallies.real_failures);
  EXPECT_EQ(svc.names_live(), cells);

  // Recovery: one release re-admits; the drain leaves a clean service.
  EXPECT_FALSE(all_held.empty());
  if (!all_held.empty()) {
    EXPECT_TRUE(svc.release(all_held.back()));
    all_held.pop_back();
    const Name again = svc.acquire();
    EXPECT_GE(again, 0) << "release did not re-admit, seed " << seed;
    if (again >= 0) all_held.push_back(again);
  }
  std::set<Name> unique(all_held.begin(), all_held.end());
  EXPECT_EQ(unique.size(), all_held.size()) << "duplicate names issued";
  for (const Name n : all_held) EXPECT_TRUE(svc.release(n));
  EXPECT_EQ(svc.names_live(), 0u);

  result.windows = svc.controller()->windows();
  result.controller_trace = svc.controller()->trace();
  return result;
}

TEST(ScenarioControl, BurstStormShedsExactlyAndStaysBounded) {
  const StormResult r = run_burst_storm(0xB5057u);
  EXPECT_TRUE(r.done);
  // The storm ran long enough for the controller to actually observe it.
  EXPECT_GE(r.windows, 1u) << "no window ever rolled over:\n"
                           << r.controller_trace;
  EXPECT_FALSE(r.controller_trace.empty());
}

TEST(ScenarioControl, ControllerTraceIsByteIdenticalPerSeed) {
  const StormResult first = run_burst_storm(0xC0FFEEu);
  const StormResult second = run_burst_storm(0xC0FFEEu);
  ASSERT_FALSE(first.controller_trace.empty());
  // The controller's decision log is a pure function of the observation
  // sequence, and under the engine the observation sequence is a pure
  // function of the seed: replaying the seed must reproduce the decision
  // trace byte for byte (the property that makes control regressions
  // replayable at all).
  EXPECT_EQ(first.controller_trace, second.controller_trace)
      << "same seed produced different control decisions";
  EXPECT_EQ(first.engine_trace, second.engine_trace)
      << "same seed produced different schedules";
}

// A worker parked (crash model) inside the admission flip must not wedge
// the rest of the fleet: the gate it was about to set stays observable
// state others can still trip, releases still clear it, and the run
// drains — shedding is heuristic admission state, never a lock.
TEST(ScenarioControl, WorkerParkedAtShedFlipDoesNotWedgeAdmission) {
  ElasticRenamingService svc(64, storm_options());
  Tallies tallies;

  Scenario scn;
  scn.seed = 0xAB5EDu;
  scn.preempt_every = 1;
  scn.stalls.push_back(StallRule{"control.shed", 0, 0, 0, 1});  // park w0

  auto hammer = [&](Worker& w) {
    std::vector<Name> mine;
    for (int i = 0; i < 50; ++i) {
      w.yield("park.op");
      const Name n = svc.acquire();
      tallies.note(n);
      if (n >= 0) mine.push_back(n);
    }
    for (const Name n : mine) svc.release(n);
  };

  ScenarioEngine eng(scn);
  const bool done = eng.run({hammer, hammer});
  EXPECT_TRUE(done) << "fleet wedged behind a parked admission flip\n"
                    << eng.trace();
  eng.finish();  // resume the parked worker; it drains its own holdings
  EXPECT_EQ(svc.names_live(), 0u);
  EXPECT_EQ(svc.shed_events(), tallies.shed);
}

}  // namespace
}  // namespace loren
