// The telemetry layer (telemetry/metrics.h + telemetry/trace.h):
//
//   * registry units — interning is idempotent, the overflow sink
//     absorbs metric creation past the fixed caps, the log2 bucket
//     scheme and its quantile reconstruction are exact at the edges;
//   * multi-thread stress — N threads hammer counters and histograms
//     through their own stripes while the main thread snapshots
//     mid-flight (the benign-approximation contract), then the
//     post-join snapshot must show the exact sums (runs under TSan in
//     CI: the record path must be single-writer clean);
//   * exposition — write_text/write_json carry every minted metric;
//   * trace ring units — emit/drain ordering, overwrite-oldest
//     wraparound accounting, reset, chrome JSON shape (the trace
//     *functions* are always compiled; only the LOREN_TRACE macro is
//     build-gated);
//   * service integration — attaching a registry via the options
//     switches both services into detailed mode: the service.* /
//     elastic.* counters land in the attached registry, the sampled
//     per-op histograms fill, and the legacy accessors (cache_hits,
//     sweep_budget_exhausted, grow_events, ...) read through to the
//     same counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "elastic/elastic_service.h"
#include "renaming/service.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace loren::telemetry {
namespace {

TEST(MetricsRegistryTest, InterningIsIdempotent) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("stack.ops");
  const MetricId b = reg.counter("stack.ops");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.counter("stack.other"));
  // Counter and histogram id spaces are independent: the same name mints
  // fresh ids in each.
  const MetricId h = reg.histogram("stack.ops");
  EXPECT_EQ(h, reg.histogram("stack.ops"));
}

TEST(MetricsRegistryTest, CounterAndHistogramRoundTrip) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("test.count");
  const MetricId h = reg.histogram("test.hist");
  MetricsRegistry::ThreadStripe& stripe = reg.stripe();
  stripe.add(c);
  stripe.add(c, 41);
  stripe.record(h, 0);
  stripe.record(h, 5);
  stripe.record(h, 1000);
  EXPECT_EQ(reg.counter_value(c), 42u);
  const HistogramSnapshot hs = reg.histogram_value(h);
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 1005u);
  EXPECT_EQ(hs.buckets[bucket_of(0)], 1u);
  EXPECT_EQ(hs.buckets[bucket_of(5)], 1u);
  EXPECT_EQ(hs.buckets[bucket_of(1000)], 1u);
}

TEST(MetricsRegistryTest, Log2BucketScheme) {
  // bucket_of == bit_width: 0 -> 0, [2^(b-1), 2^b - 1] -> b.
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(255), 8u);
  EXPECT_EQ(bucket_of(256), 9u);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), 64u);
  // Upper edges are inclusive and saturate at the top bucket.
  EXPECT_EQ(bucket_upper_edge(0), 0u);
  EXPECT_EQ(bucket_upper_edge(1), 1u);
  EXPECT_EQ(bucket_upper_edge(8), 255u);
  EXPECT_EQ(bucket_upper_edge(64), ~std::uint64_t{0});
  // Every representable value lands inside its bucket's range.
  for (std::uint32_t b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(bucket_of(bucket_upper_edge(b)), b);
  }
}

TEST(MetricsRegistryTest, QuantilesReportBucketUpperEdges) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("q.hist");
  MetricsRegistry::ThreadStripe& stripe = reg.stripe();
  // 99 values of 1 and one value of 1000: p50 is bucket(1)'s edge, p99
  // still inside the 1s, p100 would be bucket(1000)'s edge.
  for (int i = 0; i < 99; ++i) stripe.record(h, 1);
  stripe.record(h, 1000);
  const HistogramSnapshot hs = reg.histogram_value(h);
  EXPECT_EQ(hs.p50(), 1u);
  EXPECT_EQ(hs.p99(), 1u);
  EXPECT_EQ(hs.quantile(1.0), bucket_upper_edge(bucket_of(1000)));
  const HistogramSnapshot empty =
      reg.histogram_value(reg.histogram("q.empty"));
  EXPECT_EQ(empty.quantile(0.99), 0u);
}

TEST(MetricsRegistryTest, OverflowSinkAbsorbsExcessMetrics) {
  MetricsRegistry reg;
  // Mint past both caps: creation must keep returning a usable id (the
  // sink), never fail — instrumentation must not take the service down.
  MetricId last_c = 0;
  for (std::uint32_t i = 0; i < MetricsRegistry::kMaxCounters + 8; ++i) {
    last_c = reg.counter("overflow.c." + std::to_string(i));
  }
  MetricId last_h = 0;
  for (std::uint32_t i = 0; i < MetricsRegistry::kMaxHistograms + 8; ++i) {
    last_h = reg.histogram("overflow.h." + std::to_string(i));
  }
  EXPECT_LT(last_c, MetricsRegistry::kMaxCounters);
  EXPECT_LT(last_h, MetricsRegistry::kMaxHistograms);
  MetricsRegistry::ThreadStripe& stripe = reg.stripe();
  stripe.add(last_c, 7);
  stripe.record(last_h, 3);
  EXPECT_EQ(reg.counter_value(last_c), 7u);
  EXPECT_EQ(reg.histogram_value(last_h).count, 1u);
}

TEST(MetricsRegistryTest, MultiThreadStressExactAfterJoin) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("stress.count");
  const MetricId h = reg.histogram("stress.hist");
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 200000;
  std::atomic<bool> go{false};
  std::atomic<bool> stop_snapshots{false};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      MetricsRegistry::ThreadStripe& stripe = reg.stripe();
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kOps; ++i) {
        stripe.add(c);
        stripe.record(h, i & 1023);
      }
    });
  }
  // Snapshot while writers are in flight: values are approximate but the
  // walk must be safe and the totals bounded by the final sums.
  std::thread snapshotter([&] {
    while (!stop_snapshots.load(std::memory_order_acquire)) {
      const MetricsSnapshot s = reg.snapshot();
      const CounterSnapshot* cs = s.counter("stress.count");
      ASSERT_NE(cs, nullptr);
      EXPECT_LE(cs->value, kThreads * kOps);
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  stop_snapshots.store(true, std::memory_order_release);
  snapshotter.join();
  // Writers joined: the snapshot is exact.
  EXPECT_EQ(reg.counter_value(c), kThreads * kOps);
  const HistogramSnapshot hs = reg.histogram_value(h);
  EXPECT_EQ(hs.count, kThreads * kOps);
  EXPECT_GE(reg.thread_count(), kThreads);
}

TEST(MetricsRegistryTest, ExpositionCarriesEveryMetric) {
  MetricsRegistry reg;
  reg.stripe().add(reg.counter("expo.count"), 3);
  reg.stripe().record(reg.histogram("expo.hist"), 9);
  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("expo.count 3"), std::string::npos);
  EXPECT_NE(text.str().find("expo.hist_count 1"), std::string::npos);
  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"expo.count\":3"), std::string::npos);
  EXPECT_NE(json.str().find("\"expo.hist\""), std::string::npos);
}

// ---------------------------------------------------------------- trace --

TEST(TraceRingTest, EmitDrainOrderAndReset) {
  trace_reset();
  const std::uint16_t a = intern_tag("test.alpha");
  const std::uint16_t b = intern_tag("test.beta");
  EXPECT_EQ(a, intern_tag("test.alpha"));  // content-compared interning
  trace_emit(a, 1);
  trace_emit(b, 2);
  trace_emit(a, 3);
  const std::vector<TraceEvent> events = trace_snapshot();
  ASSERT_EQ(events.size(), 3u);
  // One thread: per-thread seq carries emission order through the sort.
  EXPECT_STREQ(events[0].tag, "test.alpha");
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_STREQ(events[1].tag, "test.beta");
  EXPECT_EQ(events[1].arg, 2u);
  EXPECT_STREQ(events[2].tag, "test.alpha");
  EXPECT_EQ(events[2].arg, 3u);
  EXPECT_LE(events[0].ts, events[1].ts);
  EXPECT_LE(events[1].ts, events[2].ts);
  trace_reset();
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDropped) {
  trace_reset();
  const std::uint16_t tag = intern_tag("test.wrap");
  const std::uint64_t dropped_before = trace_dropped();
  const std::uint64_t total = kTraceRingEvents + 100;
  for (std::uint64_t i = 0; i < total; ++i) trace_emit(tag, i);
  const std::vector<TraceEvent> events = trace_snapshot();
  ASSERT_EQ(events.size(), kTraceRingEvents);
  // Overwrite-oldest: the surviving window is exactly the newest events.
  EXPECT_EQ(events.front().arg, static_cast<std::uint32_t>(100));
  EXPECT_EQ(events.back().arg, static_cast<std::uint32_t>(total - 1));
  EXPECT_EQ(trace_dropped() - dropped_before, 100u);
  trace_reset();
}

TEST(TraceRingTest, ChromeJsonShape) {
  trace_reset();
  trace_emit(intern_tag("test.json"), 42);
  const std::string json = trace_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  trace_reset();
}

TEST(TraceRingTest, ConcurrentEmitAndDrainIsSafe) {
  trace_reset();
  const std::uint16_t tag = intern_tag("test.mt");
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) trace_emit(tag, i++);
    });
  }
  // Benign racing drain: values may be mid-overwrite, the walk must not
  // crash or produce events with unknown tags.
  for (int i = 0; i < 50; ++i) {
    for (const TraceEvent& e : trace_snapshot()) {
      EXPECT_STREQ(e.tag, "test.mt");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : pool) th.join();
  trace_reset();
}

// ---------------------------------------------------- service integration --

TEST(ServiceTelemetryTest, AttachedRegistrySeesFixedServiceMetrics) {
  MetricsRegistry reg;
  RenamingServiceOptions opts;
  opts.telemetry.registry = &reg;
  RenamingService svc(256, opts);
  constexpr int kRounds = 4096;  // > kLatencySampleMask: samples must land
  std::vector<sim::Name> names;
  for (int i = 0; i < kRounds; ++i) {
    const sim::Name name = svc.acquire();
    ASSERT_GE(name, 0);
    ASSERT_TRUE(svc.release(name));
  }
  const MetricsSnapshot s = reg.snapshot();
  // The stash serves the steady state: hits counted in the attached
  // registry, and the accessors read the same counters.
  const CounterSnapshot* hits = s.counter("service.cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_GT(hits->value, 0u);
  EXPECT_EQ(svc.cache_hits(), hits->value);
  EXPECT_EQ(svc.cache_misses(), s.counter("service.cache.misses")->value);
  // Detailed mode: the sampled per-op histograms fill.
  const HistogramSnapshot* ticks = s.histogram("service.acquire.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_GT(ticks->count, 0u);
  EXPECT_GT(s.histogram("service.release.ticks")->count, 0u);
}

TEST(ServiceTelemetryTest, DetachedServiceKeepsHistogramsOff) {
  RenamingService svc(256, RenamingServiceOptions{});
  for (int i = 0; i < 4096; ++i) {
    const sim::Name name = svc.acquire();
    ASSERT_GE(name, 0);
    ASSERT_TRUE(svc.release(name));
  }
  // No attached registry: event counters still count (one idiom), the
  // per-op histograms stay empty (default config pays nothing per op).
  EXPECT_GT(svc.cache_hits(), 0u);
  const MetricsSnapshot s = svc.metrics_registry().snapshot();
  EXPECT_EQ(s.histogram("service.acquire.ticks")->count, 0u);
  EXPECT_EQ(s.histogram("service.acquire.probe_len")->count, 0u);
}

TEST(ServiceTelemetryTest, AttachedRegistrySeesElasticMetrics) {
  MetricsRegistry reg;
  ElasticOptions opts;
  opts.min_holders = 64;
  opts.max_holders = 4096;
  opts.telemetry.registry = &reg;
  ElasticRenamingService svc(64, opts);
  for (int i = 0; i < 4096; ++i) {
    const sim::Name name = svc.acquire();
    ASSERT_GE(name, 0);
    ASSERT_TRUE(svc.release(name));
  }
  svc.grow();
  svc.shrink();
  svc.reclaim();
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(svc.grow_events(), s.counter("elastic.grow.events")->value);
  EXPECT_EQ(svc.shrink_events(), s.counter("elastic.shrink.events")->value);
  EXPECT_EQ(svc.reclaimed_groups(),
            s.counter("elastic.reclaim.groups")->value);
  EXPECT_GT(s.counter("elastic.epoch.advances")->value, 0u);
  EXPECT_GT(s.histogram("elastic.acquire.ticks")->count, 0u);
  // The reclaim pass saw retired groups: quiescence waits recorded.
  EXPECT_GT(s.histogram("elastic.reclaim.quiesce_ticks")->count, 0u);
}

TEST(ServiceTelemetryTest, SharedRegistryAggregatesAcrossServices) {
  MetricsRegistry reg;
  RenamingServiceOptions opts;
  opts.telemetry.registry = &reg;
  RenamingService a(128, opts);
  RenamingService b(128, opts);
  for (int i = 0; i < 512; ++i) {
    const sim::Name na = a.acquire();
    const sim::Name nb = b.acquire();
    ASSERT_GE(na, 0);
    ASSERT_GE(nb, 0);
    a.release(na);
    b.release(nb);
  }
  // Same names intern to the same ids: the counter is the aggregate, and
  // each service's accessor reads that shared aggregate.
  const std::uint64_t hits =
      reg.snapshot().counter("service.cache.hits")->value;
  EXPECT_EQ(a.cache_hits(), hits);
  EXPECT_EQ(b.cache_hits(), hits);
  EXPECT_GT(hits, 0u);
}

TEST(ServiceTelemetryTest, MultiThreadServiceStressWithAttachedRegistry) {
  MetricsRegistry reg;
  RenamingServiceOptions opts;
  opts.name_cache = false;  // force every op through the instrumented path
  opts.telemetry.registry = &reg;
  RenamingService svc(1u << 12, opts);
  constexpr unsigned kThreads = 4;
  constexpr int kOps = 20000;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        const sim::Name name = svc.acquire();
        if (name < 0 || !svc.release(name)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0u);
  const MetricsSnapshot s = reg.snapshot();
  const HistogramSnapshot* probes = s.histogram("service.acquire.probe_len");
  ASSERT_NE(probes, nullptr);
  // 1-in-256 sampling over kThreads * kOps uncached acquires: samples
  // must have landed from every thread's stream.
  EXPECT_GT(probes->count, 0u);
  EXPECT_GE(reg.thread_count(), kThreads);
}

}  // namespace
}  // namespace loren::telemetry
