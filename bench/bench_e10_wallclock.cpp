// E10 — practicality on real hardware (google-benchmark).
//
// Wall-clock benchmarks over std::atomic cells:
//   * BM_GetName / BM_GetNameDirect — acquisition latency, coroutine vs
//     hand-inlined fast path (the coroutine/virtual-Env overhead ablation);
//   * BM_UniformProbe / BM_LinearScan — baselines at the same namespace;
//   * BM_Epsilon — how the namespace slack eps changes the cost (ablation
//     of the t0 = ceil(17 ln(8e/eps)/eps) constant);
//   * BM_Threaded — contended acquisition throughput with real threads.
//
// Acquisitions are measured in "fresh namespace" batches: each iteration
// claims one name; when the renamer is ~60% full it is replaced (reset),
// so the numbers reflect the loaded-but-not-exhausted regime.
#include <benchmark/benchmark.h>

#include <memory>

#include "platform/rng.h"
#include "renaming/concurrent.h"

namespace {

constexpr std::uint64_t kN = 1u << 14;

class RenamerPool {
 public:
  explicit RenamerPool(double epsilon) : epsilon_(epsilon) { refresh(); }

  loren::ConcurrentRenamer& get() {
    if (++used_ > kN * 6 / 10) refresh();
    return *renamer_;
  }

 private:
  void refresh() {
    renamer_ = std::make_unique<loren::ConcurrentRenamer>(kN, epsilon_);
    used_ = 0;
  }
  double epsilon_;
  std::unique_ptr<loren::ConcurrentRenamer> renamer_;
  std::uint64_t used_ = 0;
};

void BM_GetName(benchmark::State& state) {
  RenamerPool pool(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name());
  }
}
BENCHMARK(BM_GetName);

void BM_GetNameDirect(benchmark::State& state) {
  RenamerPool pool(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name_direct());
  }
}
BENCHMARK(BM_GetNameDirect);

void BM_UniformProbe(benchmark::State& state) {
  // Baseline: uniform probing over the same-size namespace, hand-inlined.
  const std::uint64_t m = loren::BatchLayout(kN, 0.5).total();
  auto cells = std::make_unique<loren::AtomicTasArray>(m);
  loren::Xoshiro256 rng(1);
  std::uint64_t used = 0;
  for (auto _ : state) {
    if (++used > m * 6 / 10) {
      cells = std::make_unique<loren::AtomicTasArray>(m);
      used = 0;
    }
    std::int64_t name = -1;
    for (;;) {
      const std::uint64_t x = rng.below(m);
      if (cells->test_and_set(x)) {
        name = static_cast<std::int64_t>(x);
        break;
      }
    }
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_UniformProbe);

void BM_Epsilon(benchmark::State& state) {
  // eps in {1/8, 1/4, 1/2, 1, 2} scaled by 1000 in the range arg.
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  RenamerPool pool(eps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name_direct());
  }
  state.SetLabel("eps=" + std::to_string(eps) + " t0=" +
                 std::to_string(loren::BatchLayout(kN, eps).probes(0)));
}
BENCHMARK(BM_Epsilon)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

void BM_Threaded(benchmark::State& state) {
  // Contended acquire/release cycles with real threads (long-lived
  // renaming steady state: at most `threads` names live at once, so the
  // namespace never fills and no reset is needed mid-benchmark).
  static loren::ConcurrentRenamer renamer(kN, 0.5);
  for (auto _ : state) {
    const auto name = renamer.get_name_direct();
    benchmark::DoNotOptimize(name);
    if (name >= 0) renamer.release(name);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Threaded)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
