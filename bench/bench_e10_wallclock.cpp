// E10 — practicality on real hardware (google-benchmark).
//
// Wall-clock benchmarks over std::atomic cells:
//   * BM_GetName / BM_GetNameDirect — acquisition latency, coroutine vs
//     hand-inlined fast path (the coroutine/virtual-Env overhead ablation);
//   * BM_UniformProbe / BM_LinearScan — baselines at the same namespace;
//   * BM_Epsilon — how the namespace slack eps changes the cost (ablation
//     of the t0 = ceil(17 ln(8e/eps)/eps) constant);
//   * BM_Threaded — contended acquisition throughput with real threads.
//
// Acquisitions are measured in "fresh namespace" batches: each iteration
// claims one name; when the renamer is ~60% full the namespace is reset —
// an O(1) epoch bump on the TasArena substrate, so the refresh no longer
// perturbs the measurement the way the seed's reallocation did — and the
// numbers reflect the loaded-but-not-exhausted regime.
//
// For the multithreaded scenario matrix (padded vs packed, sharded vs
// single, churn shapes) see bench_throughput.cpp, which emits
// BENCH_throughput.json.
#include <benchmark/benchmark.h>

#include <memory>

#include "platform/rng.h"
#include "renaming/concurrent.h"

namespace {

constexpr std::uint64_t kN = 1u << 14;

class RenamerPool {
 public:
  explicit RenamerPool(double epsilon)
      : renamer_(std::make_unique<loren::ConcurrentRenamer>(kN, epsilon)) {}

  loren::ConcurrentRenamer& get() {
    if (++used_ > kN * 6 / 10) {
      renamer_->reset();  // O(1) epoch bump (seed: O(m) reallocation)
      used_ = 0;
    }
    return *renamer_;
  }

 private:
  std::unique_ptr<loren::ConcurrentRenamer> renamer_;
  std::uint64_t used_ = 0;
};

void BM_GetName(benchmark::State& state) {
  RenamerPool pool(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name());
  }
}
BENCHMARK(BM_GetName);

void BM_GetNameDirect(benchmark::State& state) {
  RenamerPool pool(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name_direct());
  }
}
BENCHMARK(BM_GetNameDirect);

void BM_UniformProbe(benchmark::State& state) {
  // Baseline: uniform probing over the same-size namespace, hand-inlined.
  // Packed arena so cell density and the O(1) epoch refresh match what
  // the renamer benches above pay — the comparison isolates the probe
  // policy, not the reset strategy.
  const std::uint64_t m = loren::BatchLayout(kN, 0.5).total();
  loren::TasArena cells(m, loren::ArenaLayout::kPacked);
  loren::Xoshiro256 rng(1);
  std::uint64_t used = 0;
  for (auto _ : state) {
    if (++used > m * 6 / 10) {
      cells.reset();
      used = 0;
    }
    std::int64_t name = -1;
    for (;;) {
      const std::uint64_t x = rng.below(m);
      if (cells.test_and_set(x)) {
        name = static_cast<std::int64_t>(x);
        break;
      }
    }
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_UniformProbe);

void BM_Epsilon(benchmark::State& state) {
  // eps in {1/8, 1/4, 1/2, 1, 2} scaled by 1000 in the range arg.
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  RenamerPool pool(eps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get().get_name_direct());
  }
  state.SetLabel("eps=" + std::to_string(eps) + " t0=" +
                 std::to_string(loren::BatchLayout(kN, eps).probes(0)));
}
BENCHMARK(BM_Epsilon)->Arg(125)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000);

// Contended acquire/release cycles with real threads (long-lived renaming
// steady state: at most `threads` names live at once, so the namespace
// never fills and no reset is needed mid-benchmark).
//
// The renamer is recreated by the Setup hook, which google-benchmark runs
// once per benchmark run before any thread starts (and Teardown after all
// threads join). The seed used a function-local `static`, so every run
// after the first measured a namespace still partially filled by earlier
// runs' leftover names (a thread that observed name -1 never released).
std::unique_ptr<loren::ConcurrentRenamer> g_threaded_renamer;

void ThreadedSetup(const benchmark::State&) {
  g_threaded_renamer = std::make_unique<loren::ConcurrentRenamer>(kN, 0.5);
}
void ThreadedTeardown(const benchmark::State&) { g_threaded_renamer.reset(); }

void BM_Threaded(benchmark::State& state) {
  loren::ConcurrentRenamer& renamer = *g_threaded_renamer;
  for (auto _ : state) {
    const auto name = renamer.get_name_direct();
    benchmark::DoNotOptimize(name);
    if (name >= 0) renamer.release(name);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Threaded)
    ->Setup(ThreadedSetup)
    ->Teardown(ThreadedTeardown)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
