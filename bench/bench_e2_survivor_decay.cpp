// E2 — Lemma 4.2 (survivor decay): the number n_i of processes that fail
// every probe on batch B_{i-1} satisfies n_i <= n*_i w.h.p., with
//   n*_i = eps*n / 2^(2^i + i + delta)   (1 <= i < kappa)
//   n*_kappa = log^2 n,
// and consequently no process ever runs the backup phase.
//
// We instrument ReBatching with per-batch entered/failed counters and
// print measured n_i against the bound, plus the backup-entry count.
#include <cmath>

#include "bench_util.h"
#include "renaming/rebatching.h"

using namespace loren;
using namespace loren::bench;

int main() {
  std::printf("# E2 — survivor decay across batches (Lemma 4.2)\n");
  std::printf("\npaper: n_i drops roughly as n / 2^(2^i); backup phase "
              "probability < 1/n^(beta-o(1)).\n");

  for (const std::uint64_t logn : {12u, 16u, 20u}) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    ReBatching algo(n, 0.5);
    ReBatchingStats stats;
    std::vector<std::vector<std::string>> rows;
    const std::uint64_t seeds = 3;
    // Accumulate failures across seeds (fresh SimEnv per run).
    std::vector<double> failed_acc(algo.layout().num_batches(), 0.0);
    double backup_acc = 0.0;
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      algo.attach_stats(&stats);
      auto strat = strategy_by_name("random");
      sim::RunConfig cfg{.num_processes = static_cast<sim::ProcessId>(n),
                         .seed = 2000 + seed,
                         .strategy = strat.get()};
      const Measurement m = measure(
          [&algo](sim::Env& env, sim::ProcessId) -> sim::Task<sim::Name> {
            co_return co_await algo.get_name(env);
          },
          cfg);
      (void)m;
      for (std::size_t i = 0; i < failed_acc.size(); ++i) {
        failed_acc[i] += static_cast<double>(stats.failed[i]);
      }
      backup_acc += static_cast<double>(stats.backup_entries);
    }
    const auto& L = algo.layout();
    for (std::uint64_t i = 1; i <= L.kappa(); ++i) {
      const double measured = failed_acc[i - 1] / double(seeds);
      rows.push_back({fmt_u(n), fmt_u(i), fmt(measured, 1),
                      fmt(L.survivor_bound(i), 1),
                      fmt(measured / std::max(L.survivor_bound(i), 1e-9), 3)});
    }
    print_table("n = " + std::to_string(n) +
                    " (eps=0.5, avg of 3 seeds; n_i vs n*_i)",
                {"n", "i", "measured n_i", "paper bound n*_i",
                 "measured/bound"},
                rows);
    std::printf("backup-phase entries: %.1f per run (paper: ~0)\n",
                backup_acc / double(seeds));
  }

  std::printf("\nReading: measured survivors sit well below the Lemma 4.2 "
              "bounds at every\nbatch, and the backup phase never runs — "
              "matching the w.h.p. claim.\n");
  return 0;
}
