// E9 — the Section 2 remark: running the renaming algorithms over TAS
// implemented from read/write registers costs a multiplicative factor
// (O(lg lg k) with the adaptive constructions the paper cites; our
// substrates pay O(lg n) for the tournament and less for sifter+tournament
// in the common uncontended case).
//
// Table: ReBatching over (a) hardware TAS, (b) tournament-of-2-process-TAS,
// (c) sifter + tournament — total register steps, steps per probe, and the
// measured multiplicative factor vs hardware.
#include "bench_util.h"
#include "renaming/rebatching.h"
#include "tas/rw_tas.h"
#include "tas/tas_service.h"

using namespace loren;
using namespace loren::bench;

namespace {

struct ServiceRun {
  double total_steps = 0;
  double max_steps = 0;
  bool correct = true;
};

ServiceRun run_with(TasService* service, std::uint64_t n, std::uint64_t seed) {
  ReBatching algo(n, ReBatching::Options{.layout = {.epsilon = 0.5},
                                         .service = service});
  auto strat = strategy_by_name("random");
  sim::RunConfig cfg{.num_processes = static_cast<sim::ProcessId>(n),
                     .seed = seed,
                     .strategy = strat.get(),
                     .max_total_steps = 50'000'000};
  const Measurement m = measure(
      [&algo](sim::Env& env, sim::ProcessId) -> sim::Task<sim::Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  return {double(m.result.total_steps), m.steps.max,
          m.result.renaming_correct()};
}

}  // namespace

int main() {
  std::printf("# E9 — hardware TAS vs read/write TAS substrates (Sec. 2)\n");
  std::printf("\npaper: with TAS from reads/writes, expected worst-case "
              "complexity grows by a\nmultiplicative factor; w.h.p. bounds "
              "become at least logarithmic [22].\n");

  std::vector<std::vector<std::string>> rows;
  for (const std::uint64_t n : {64u, 128u, 256u}) {
    const BatchLayout layout(n, 0.5);
    double hw_total = 0, tour_total = 0, sift_total = 0;
    double hw_max = 0, tour_max = 0, sift_max = 0;
    const std::uint64_t seeds = 3;
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const ServiceRun hw = run_with(nullptr, n, 7000 + s);
      TournamentTasService tournament(0, layout.total(),
                                      static_cast<sim::ProcessId>(n));
      const ServiceRun tour = run_with(&tournament, n, 7100 + s);
      SifterTasService sifter(0, layout.total(),
                              static_cast<sim::ProcessId>(n));
      const ServiceRun sift = run_with(&sifter, n, 7200 + s);
      hw_total += hw.total_steps;
      tour_total += tour.total_steps;
      sift_total += sift.total_steps;
      hw_max += hw.max_steps;
      tour_max += tour.max_steps;
      sift_max += sift.max_steps;
    }
    const double depth =
        double(TournamentTasService(0, 1, static_cast<sim::ProcessId>(n))
                   .tree_depth());
    rows.push_back({fmt_u(n), fmt(depth, 0), fmt(hw_total / seeds, 0),
                    fmt(tour_total / seeds, 0), fmt(sift_total / seeds, 0),
                    fmt(tour_total / hw_total, 1),
                    fmt(sift_total / hw_total, 1)});
  }
  print_table("ReBatching total steps by TAS substrate (full contention, "
              "avg of 3 seeds)",
              {"n", "tree depth lg n", "hardware", "tournament",
               "sifter+tournament", "tournament factor", "sifter factor"},
              rows);

  std::printf(
      "\nReading: the tournament pays ~4-6 register ops per 2-process node "
      "times\nlg n depth per probe (factor tracks the tree depth); the "
      "sifter eliminates\nmost contended nodes and cuts the factor, the "
      "same effect the paper's cited\nadaptive TAS constructions push to "
      "O(lg lg k). Hardware TAS is what the\npaper assumes — this is the "
      "cost of not having it.\n");
  return 0;
}
