// E11 — ablation of the ReBatching design choice: *why geometric batches?*
//
// Section 4's key idea is to concentrate the eps*n slack into batches of
// geometrically decreasing size probed in order. This ablation keeps the
// total space fixed at (1+eps)n and the worst-case probe budget comparable,
// and varies only the geometry:
//   * geometric  — the paper: B_0 = n, B_i = eps*n/2^i, 1 probe each;
//   * flat       — one batch of (1+eps)n, budgeted uniform probing
//                  (the strawman);
//   * two-level  — B_0 = n then a single slack batch of eps*n;
//   * equal-split— B_0 = n then kappa equal slack batches of eps*n/kappa.
// All variants fall back to a sequential scan, so correctness is identical;
// the measurement is the step distribution (max / p99 / mean) and how many
// processes exhaust their randomized budget.
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "renaming/batch_layout.h"
#include "sim/runner.h"

using namespace loren;
using namespace loren::bench;

namespace {

struct Geometry {
  std::string label;
  std::vector<std::pair<std::uint64_t, int>> batches;  // (size, probes)
};

Geometry geometric(std::uint64_t n, double eps, int t0) {
  const BatchLayout L(n, BatchLayoutParams{.epsilon = eps, .beta = 3,
                                           .t0_override = t0});
  Geometry g{"geometric (paper)", {}};
  for (std::uint64_t i = 0; i < L.num_batches(); ++i) {
    g.batches.emplace_back(L.size(i), L.probes(i));
  }
  return g;
}

Geometry flat(std::uint64_t n, double eps, int budget) {
  const auto total = BatchLayout(n, eps).total();
  return Geometry{"flat (uniform, budgeted)", {{total, budget}}};
}

Geometry two_level(std::uint64_t n, double eps, int t0) {
  const auto total = BatchLayout(n, eps).total();
  return Geometry{"two-level", {{n, t0}, {total - n, 4}}};
}

Geometry equal_split(std::uint64_t n, double eps, int t0) {
  const BatchLayout L(n, eps);
  const std::uint64_t kappa = std::max<std::uint64_t>(L.kappa(), 1);
  const std::uint64_t slack = L.total() - n;
  Geometry g{"equal-split", {{n, t0}}};
  for (std::uint64_t i = 0; i < kappa; ++i) {
    const std::uint64_t size = slack / kappa + (i < slack % kappa ? 1 : 0);
    if (size > 0) g.batches.emplace_back(size, i + 1 == kappa ? 3 : 1);
  }
  return g;
}

sim::AlgoFactory factory_for(const Geometry& g) {
  auto batches = std::make_shared<std::vector<std::pair<std::uint64_t, int>>>(
      g.batches);
  return [batches](sim::Env& env, sim::ProcessId) -> sim::Task<sim::Name> {
    std::uint64_t total = 0;
    for (const auto& [size, probes] : *batches) total += size;
    env.ensure_locations(total);
    std::uint64_t offset = 0;
    for (const auto& [size, probes] : *batches) {
      for (int j = 0; j < probes; ++j) {
        const std::uint64_t x = offset + env.random_below(size);
        if (co_await sim::tas(env, x)) co_return static_cast<sim::Name>(x);
      }
      offset += size;
    }
    for (std::uint64_t u = 0; u < total; ++u) {  // backup: identical for all
      if (co_await sim::tas(env, u)) co_return static_cast<sim::Name>(u);
    }
    co_return -1;
  };
}

}  // namespace

int main() {
  std::printf("# E11 — ablation: batch geometry (the Section 4 design choice)\n");
  std::printf("\nfixed: namespace (1+eps)n, eps=0.5, t0=8, backup identical; "
              "varies: how the\neps*n slack is split into batches.\n");

  for (const std::uint64_t n : {std::uint64_t{1} << 12, std::uint64_t{1} << 16}) {
    std::vector<std::vector<std::string>> rows;
    std::vector<Geometry> geometries = {
        geometric(n, 0.5, 8),
        flat(n, 0.5, 8 + 4),  // same total worst-case budget as geometric-ish
        two_level(n, 0.5, 8),
        equal_split(n, 0.5, 8),
    };
    for (const auto& g : geometries) {
      double max_acc = 0, p99_acc = 0, mean_acc = 0;
      const std::uint64_t seeds = 3;
      int budget = 0;
      for (const auto& [size, probes] : g.batches) budget += probes;
      for (std::uint64_t s = 0; s < seeds; ++s) {
        auto strat = strategy_by_name("random");
        sim::RunConfig cfg{.num_processes = static_cast<sim::ProcessId>(n),
                           .seed = 8000 + s,
                           .strategy = strat.get()};
        const Measurement m = measure(factory_for(g), cfg);
        max_acc += m.steps.max;
        p99_acc += m.steps.p99;
        mean_acc += m.steps.mean;
      }
      rows.push_back({g.label, fmt_u(g.batches.size()),
                      fmt_u(static_cast<std::uint64_t>(budget)),
                      fmt(max_acc / seeds, 1), fmt(p99_acc / seeds, 1),
                      fmt(mean_acc / seeds, 2)});
    }
    print_table("n = " + std::to_string(n) + " (avg of 3 seeds)",
                {"geometry", "batches", "probe budget", "max steps",
                 "p99 steps", "mean steps"},
                rows);
  }

  std::printf(
      "\nReading: the geometric split gives the smallest worst-case probe "
      "budget for\nthe same tail guarantee — flat probing needs its whole "
      "budget in the tail,\ntwo-level wastes slack on a batch that is still "
      "contended, and equal-split\npays extra probes per level. The "
      "doubly-exponential survivor decay (E2) is\nwhat the geometric sizing "
      "buys.\n");
  return 0;
}
