// E3 — Theorem 4.1 (total step complexity): all n processes together take
// O(n) shared-memory steps w.h.p. (and in expectation for beta >= 3).
//
// We sweep n and print total steps / n, which should converge to a
// constant, under both an oblivious and the adaptive collision adversary,
// and for both the paper's t0 and the practical t0 (the constant differs,
// the linearity does not).
#include "bench_util.h"
#include "renaming/rebatching.h"

using namespace loren;
using namespace loren::bench;

namespace {

double total_steps_per_n(std::uint64_t n, int t0_override,
                         const std::string& adversary, std::uint64_t seed) {
  ReBatching algo(n, ReBatching::Options{
                         .layout = {.epsilon = 0.5, .beta = 3,
                                    .t0_override = t0_override}});
  auto strat = strategy_by_name(adversary);
  sim::RunConfig cfg{.num_processes = static_cast<sim::ProcessId>(n),
                     .seed = seed,
                     .strategy = strat.get()};
  const Measurement m = measure(
      [&algo](sim::Env& env, sim::ProcessId) -> sim::Task<sim::Name> {
        co_return co_await algo.get_name(env);
      },
      cfg);
  return static_cast<double>(m.result.total_steps) / static_cast<double>(n);
}

}  // namespace

int main() {
  std::printf("# E3 — ReBatching total step complexity O(n) (Theorem 4.1)\n");
  std::printf("\npaper: total steps <= n*t0 + sum_i n*_i t_i = O(n) w.h.p.\n");

  std::vector<std::vector<std::string>> rows;
  for (std::uint64_t logn = 8; logn <= 18; logn += 2) {
    const std::uint64_t n = std::uint64_t{1} << logn;
    const Summary oblivious = over_seeds(3, 3000 + logn, [&](std::uint64_t s) {
      return total_steps_per_n(n, 0, "random", s);
    });
    const Summary practical = over_seeds(3, 3100 + logn, [&](std::uint64_t s) {
      return total_steps_per_n(n, 8, "random", s);
    });
    std::string adaptive = "-";
    if (n <= (1u << 12)) {
      const Summary a = over_seeds(3, 3200 + logn, [&](std::uint64_t s) {
        return total_steps_per_n(n, 0, "collision", s);
      });
      adaptive = fmt(a.mean, 2);
    }
    rows.push_back({fmt_u(n), fmt(oblivious.mean, 2), adaptive,
                    fmt(practical.mean, 2)});
  }
  print_table("total steps / n (avg of 3 seeds)",
              {"n", "oblivious (paper t0)", "collision adversary (paper t0)",
               "oblivious (t0=8)"},
              rows);

  std::printf("\nReading: total-steps/n stays a constant (~4-6) across three "
              "orders of\nmagnitude — the O(n) claim — and the adversary "
              "cannot push it past the\nconstant either.\n");
  return 0;
}
